//! A genuinely distributed maximal matching in the **identifier model**
//! — the Panconesi–Rizzi `O(Δ + log* n)` construction the paper cites in
//! Section 1.3 (reference \[19\]).
//!
//! With unique identifiers the symmetry barriers of the port-numbering
//! model disappear: a maximal matching (hence a 2-approximate edge
//! dominating set) is computable in rounds independent of the
//! approximation quality. The algorithm:
//!
//! 1. **Orient** every edge toward its lower-identifier endpoint; the
//!    out-edges of a node, in port order, index up to `Δ` **forests**
//!    (following out-edges strictly decreases identifiers, so each class
//!    is acyclic, with out-degree at most 1 per node — parent pointers).
//! 2. **Colour** all forests in parallel with Cole–Vishkin iterated
//!    bit-reduction, starting from the identifiers: after `O(log* n)`
//!    iterations every forest is properly coloured with at most 6
//!    colours.
//! 3. **Match** forest by forest, colour class by colour class:
//!    unmatched nodes of the current colour propose to their forest
//!    parent; an unmatched parent accepts its smallest-port proposal.
//!    Each forest pass adds a maximal matching among still-unmatched
//!    nodes; every edge lives in exactly one forest, so the union is a
//!    maximal matching of the whole graph.
//!
//! Round complexity: `1 + O(log* n) + O(Δ)` — compare with the anonymous
//! `A(Δ)` protocol's `O(Δ²)` and its factor-4 barrier.

use pn_graph::{EdgeId, PortNumberedGraph};
use pn_runtime::{collect_send, NodeAlgorithm, PortSet, RuntimeError, Simulator, WrongCount};

/// Cole–Vishkin iterations hard-wired into the schedule. Identifiers are
/// `u64`, so colours shrink 64-bit → ≤13 → ≤9 → ≤7 → ≤6 values within
/// five iterations; 12 leaves a wide margin (extra iterations keep the
/// colouring proper and below 6).
const CV_ITERATIONS: usize = 12;

/// Messages of the identifier-model matching protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IdMmMsg {
    /// Round 0: the sender's unique identifier.
    Ident(u64),
    /// Cole–Vishkin rounds: the sender's colour vector, one colour per
    /// forest index `0..Δ`; a receiving child indexes it by the forest
    /// number of the shared edge (the rank among the child's out-edges).
    Colors(Vec<u64>),
    /// Matching rounds: a proposal along a forest edge.
    Propose,
    /// Matching rounds: the answer to a proposal.
    Response(bool),
    /// Filler.
    Nothing,
}

/// Identifier-model messages carry unbounded payloads (`u64` idents,
/// colour vectors), so they do not pack: the packed entry points fall
/// back to the generic engine for this protocol.
impl pn_runtime::PackedMessage for IdMmMsg {
    fn lane_bits(_max_degree: usize) -> Option<u32> {
        None
    }

    fn encode(&self, _max_degree: usize) -> u64 {
        unreachable!("IdMmMsg does not pack (lane_bits is None)")
    }

    fn decode(_code: u64, _max_degree: usize) -> Option<Self> {
        unreachable!("IdMmMsg does not pack (lane_bits is None)")
    }
}

/// Number of rounds of the protocol for degree bound `delta`.
pub fn id_matching_rounds(delta: usize) -> usize {
    1 + CV_ITERATIONS + delta * 6 * 2
}

/// Node state machine for the identifier-model maximal matching.
#[derive(Clone, Debug)]
pub struct IdMatchingNode {
    delta: usize,
    degree: usize,
    id: u64,
    their_id: Vec<u64>,
    /// Out-edges (ports toward lower identifiers) in port order; the
    /// position in this list is the forest index of the edge.
    out_ports: Vec<usize>,
    /// Colour per forest index (0..delta): this node's Cole–Vishkin
    /// colour *as a member of* each forest. Children read entry `f` of
    /// the parent's vector; a node with no out-edge of rank `f` is a
    /// root of forest `f` and folds against a pseudo-parent.
    colors: Vec<u64>,
    matched: bool,
    matched_port: Option<usize>,
    pending: Option<usize>,
    incoming: Vec<usize>,
}

impl IdMatchingNode {
    /// Creates the state machine for degree bound `delta`, a node of
    /// degree `degree` with unique identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `degree > delta`.
    pub fn new(delta: usize, degree: usize, id: u64) -> Self {
        assert!(degree <= delta, "node degree exceeds Δ");
        IdMatchingNode {
            delta,
            degree,
            id,
            their_id: vec![0; degree],
            out_ports: Vec::new(),
            colors: vec![id; delta.max(1)],
            matched: false,
            matched_port: None,
            pending: None,
            incoming: Vec::new(),
        }
    }

    /// One Cole–Vishkin step for colour `c` against parent colour `p`
    /// (`c != p`): the index of the lowest differing bit, shifted left,
    /// plus that bit of `c`.
    fn cv_step(c: u64, p: u64) -> u64 {
        debug_assert_ne!(c, p, "proper colouring before a CV step");
        let i = (c ^ p).trailing_zeros() as u64;
        2 * i + ((c >> i) & 1)
    }

    fn schedule(&self, round: usize) -> Phase {
        if round == 0 {
            return Phase::Ident;
        }
        let r = round - 1;
        if r < CV_ITERATIONS {
            return Phase::ColeVishkin;
        }
        let r = r - CV_ITERATIONS;
        let step = r / 2;
        let forest = step / 6;
        let color = (step % 6) as u64;
        if r.is_multiple_of(2) {
            Phase::Propose { forest, color }
        } else {
            Phase::Respond
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Ident,
    ColeVishkin,
    Propose { forest: usize, color: u64 },
    Respond,
}

impl NodeAlgorithm for IdMatchingNode {
    type Message = IdMmMsg;
    type Output = PortSet;

    fn send(&mut self, round: usize) -> Vec<IdMmMsg> {
        collect_send(self, round, self.degree)
    }

    fn send_into(
        &mut self,
        round: usize,
        outbox: &mut [Option<IdMmMsg>],
    ) -> Result<(), WrongCount> {
        match self.schedule(round) {
            Phase::Ident => outbox.fill(Some(IdMmMsg::Ident(self.id))),
            Phase::ColeVishkin => {
                // The colour vector is part of the protocol (children index
                // the parent's vector); the clone per port is inherent to
                // the message, not to the engine.
                outbox.fill(Some(IdMmMsg::Colors(self.colors.clone())));
            }
            Phase::Propose { forest, color } => {
                outbox.fill(Some(IdMmMsg::Nothing));
                self.pending = None;
                if !self.matched && self.colors.get(forest) == Some(&color) {
                    if let Some(&port) = self.out_ports.get(forest) {
                        self.pending = Some(port);
                        outbox[port] = Some(IdMmMsg::Propose);
                    }
                }
            }
            Phase::Respond => {
                outbox.fill(Some(IdMmMsg::Nothing));
                let incoming = std::mem::take(&mut self.incoming);
                for &q in &incoming {
                    outbox[q] = Some(IdMmMsg::Response(false));
                }
                if !self.matched {
                    if let Some(&best) = incoming.iter().min() {
                        outbox[best] = Some(IdMmMsg::Response(true));
                        self.matched = true;
                        self.matched_port = Some(best);
                    }
                }
            }
        }
        Ok(())
    }

    fn receive(&mut self, round: usize, inbox: &[Option<IdMmMsg>]) -> Option<PortSet> {
        if self.degree == 0 {
            return Some(PortSet::new());
        }
        match self.schedule(round) {
            Phase::Ident => {
                for (q, m) in inbox.iter().enumerate() {
                    match m {
                        Some(IdMmMsg::Ident(x)) => self.their_id[q] = *x,
                        other => unreachable!("round 0 expects Ident, got {other:?}"),
                    }
                }
                // Out-edges point to strictly lower identifiers.
                self.out_ports = (0..self.degree)
                    .filter(|&q| self.their_id[q] < self.id)
                    .collect();
                None
            }
            Phase::ColeVishkin => {
                // New colour per forest: children read the parent's colour
                // for that forest from the parent's vector — the parent's
                // colour of forest f sits at index f of *its* vector, but
                // we receive the whole vector and we know which forest the
                // shared edge is in from OUR side (it is our out-edge).
                let mut next = self.colors.clone();
                for (f, &port) in self.out_ports.iter().enumerate() {
                    let parent_colors = match &inbox[port] {
                        Some(IdMmMsg::Colors(v)) => v,
                        other => unreachable!("CV round expects Colors, got {other:?}"),
                    };
                    // The parent's colour *in forest f* is its vector at
                    // index f: every node keeps a colour per forest index.
                    let p = parent_colors.get(f).copied().unwrap_or(0);
                    next[f] = Self::cv_step(self.colors[f], p);
                }
                // Forest roots (no out-edge of that index): fold against a
                // pseudo-parent that differs in the lowest bit.
                for (f, slot) in next.iter_mut().enumerate().skip(self.out_ports.len()) {
                    let c = self.colors[f];
                    *slot = Self::cv_step(c, c ^ 1);
                }
                self.colors = next;
                None
            }
            Phase::Propose { .. } => {
                self.incoming.clear();
                for (q, m) in inbox.iter().enumerate() {
                    if m == &Some(IdMmMsg::Propose) {
                        self.incoming.push(q);
                    }
                }
                None
            }
            Phase::Respond => {
                if let Some(q) = self.pending.take() {
                    if inbox[q] == Some(IdMmMsg::Response(true)) {
                        self.matched = true;
                        self.matched_port = Some(q);
                    }
                }
                if round + 1 == id_matching_rounds(self.delta) {
                    let mut x = PortSet::new();
                    if let Some(q) = self.matched_port {
                        x.insert(pn_graph::Port::from_index(q));
                    }
                    Some(x)
                } else {
                    None
                }
            }
        }
    }

    fn corrupt(&mut self, entropy: u64) {
        // Garble the matching bookkeeping and the learned labels; round 0
        // re-derives `out_ports` from the real `Ident` exchange before
        // anything reads them. Two fields stay intact by contract: `id`
        // (global uniqueness is what makes the forest orientation acyclic)
        // and `colors` (the Cole–Vishkin step requires a proper colouring
        // along forest edges — an invariant no single node can re-satisfy
        // locally, so scrambling it would break `cv_step`'s precondition
        // rather than model a recoverable fault).
        if self.degree == 0 {
            return;
        }
        let mut next = pn_runtime::entropy_stream(entropy);
        for x in &mut self.their_id {
            *x = next();
        }
        self.out_ports = (0..self.degree).filter(|_| next() & 1 == 0).collect();
        self.matched = next() & 1 == 0;
        self.matched_port = (next() & 1 == 0).then(|| (next() % self.degree as u64) as usize);
        self.pending = (next() & 1 == 0).then(|| (next() % self.degree as u64) as usize);
        self.incoming = (0..self.degree).filter(|_| next() & 1 == 0).collect();
    }

    fn reset(&mut self) {
        *self = IdMatchingNode::new(self.delta, self.degree, self.id);
    }
}

/// Runs the identifier-model maximal matching on `g` with the given
/// unique identifiers.
///
/// # Errors
///
/// Propagates simulator errors (none occur for distinct identifiers and
/// `max_degree(g) <= delta`).
///
/// # Panics
///
/// Panics if `ids` has the wrong length or contains duplicates.
pub fn id_matching_distributed(
    g: &PortNumberedGraph,
    delta: usize,
    ids: &[u64],
) -> Result<Vec<EdgeId>, RuntimeError> {
    assert_eq!(ids.len(), g.node_count(), "one identifier per node");
    {
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "identifiers must be unique");
    }
    let run = Simulator::new(g)
        .run_with_inputs(ids, |degree, &id| IdMatchingNode::new(delta, degree, id))?;
    pn_runtime::edge_set_from_outputs(g, &run.outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmm::is_maximal_matching;
    use pn_graph::{generators, ports};

    fn check(g: &pn_graph::SimpleGraph, seed: u64) {
        let pg = ports::shuffled_ports(g, seed).unwrap();
        let delta = pg.max_degree();
        let ids: Vec<u64> = (0..g.node_count() as u64).map(|i| i * 7 + 3).collect();
        let edges = id_matching_distributed(&pg, delta, &ids).unwrap();
        let simple = pg.to_simple().unwrap();
        assert!(
            is_maximal_matching(&simple, &edges),
            "not a maximal matching"
        );
    }

    #[test]
    fn maximal_on_classic_graphs() {
        check(&generators::petersen(), 1);
        check(&generators::complete(6).unwrap(), 2);
        check(&generators::cycle(9).unwrap(), 3);
        check(&generators::grid(4, 4).unwrap(), 4);
        check(&generators::star(7).unwrap(), 5);
        check(&generators::hypercube(4).unwrap(), 6);
    }

    #[test]
    fn maximal_on_random_graphs() {
        for seed in 0..8 {
            let g = generators::gnp(16, 0.3, seed).unwrap();
            if g.is_edgeless() {
                continue;
            }
            check(&g, seed);
        }
    }

    #[test]
    fn round_count_formula() {
        let g = generators::random_regular(12, 4, 9).unwrap();
        let pg = ports::shuffled_ports(&g, 9).unwrap();
        let ids: Vec<u64> = (0..12u64).collect();
        let run = Simulator::new(&pg)
            .run_with_inputs(&ids, |d, &id| IdMatchingNode::new(4, d, id))
            .unwrap();
        assert_eq!(run.rounds, id_matching_rounds(4));
    }

    #[test]
    fn identifier_values_do_not_break_it() {
        // Adversarial identifiers: huge, consecutive, bit-patterned.
        let g = generators::cycle(8).unwrap();
        let pg = ports::canonical_ports(&g).unwrap();
        for ids in [
            (0..8u64).map(|i| u64::MAX - i).collect::<Vec<_>>(),
            (0..8u64).map(|i| i << 60 | i).collect::<Vec<_>>(),
            vec![5, 2, 9, 1, 7, 3, 8, 4],
        ] {
            let edges = id_matching_distributed(&pg, 2, &ids).unwrap();
            assert!(is_maximal_matching(&pg.to_simple().unwrap(), &edges));
        }
    }

    #[test]
    fn cv_step_properties() {
        // Proper colourings stay proper: if c != p then step(c, x) for
        // the same parent chain differs from the parent's own step.
        let pairs = [(0b1010u64, 0b1000u64), (7, 1), (u64::MAX, 0), (13, 12)];
        for (c, p) in pairs {
            let s = IdMatchingNode::cv_step(c, p);
            assert!(s <= 2 * 63 + 1);
            // Re-stepping with the parent's own next colour keeps them
            // distinct (the CV invariant) for a concrete grandparent.
            let gp = p ^ 0b100;
            let sp = IdMatchingNode::cv_step(p, gp);
            if s == sp {
                panic!("CV step collided: c={c}, p={p}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_ids_rejected() {
        let g = ports::canonical_ports(&generators::path(3).unwrap()).unwrap();
        let _ = id_matching_distributed(&g, 2, &[1, 1, 2]);
    }

    #[test]
    fn corrupt_then_reset_restores_the_initial_state() {
        let mut node = IdMatchingNode::new(4, 3, 42);
        let fresh = format!("{node:?}");
        node.corrupt(0xfeed_cafe);
        assert_ne!(format!("{node:?}"), fresh, "corruption must change state");
        node.reset();
        assert_eq!(format!("{node:?}"), fresh, "reset must restore it");
    }

    #[test]
    fn corrupted_epochs_stay_well_defined() {
        use pn_runtime::{ChurnEvent, ChurnSimulator};
        let g = ports::shuffled_ports(&generators::petersen(), 4).unwrap();
        let mut sim = ChurnSimulator::new(&g, |v, d| {
            IdMatchingNode::new(3, d, v.index() as u64 * 7 + 3)
        })
        .unwrap();
        let burst: Vec<_> = (0..10)
            .map(|v| ChurnEvent::Corrupt {
                v: pn_graph::NodeId::new(v),
                entropy: 0x9e37 ^ (v as u64) << 3,
            })
            .collect();
        sim.apply_burst(&burst).unwrap();
        let epoch = sim.stabilize().unwrap(); // must complete, never panic
        assert_eq!(epoch.corrupted, 10);
        // After the corruption drains, the next epoch converges cleanly.
        let clean = sim.stabilize().unwrap();
        let edges = pn_runtime::edge_set_from_outputs(&g, &clean.outputs).unwrap();
        assert!(is_maximal_matching(&g.to_simple().unwrap(), &edges));
    }
}

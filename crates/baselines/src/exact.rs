//! Exact minimum edge dominating set by branch and bound.
//!
//! Intended for the small instances used in tests and ratio experiments
//! (tens of edges); the problem is NP-hard (Yannakakis–Gavril), so no
//! polynomial algorithm exists unless P = NP.
//!
//! The search branches on an undominated edge `e = {u, v}`: any feasible
//! solution must contain an edge incident to `u` or `v`. The lower bound
//! prunes with a greedy packing of undominated edges whose dominator sets
//! are pairwise disjoint.

use pn_graph::{EdgeId, NodeId, SimpleGraph};

/// Exact minimum edge dominating set of `g`.
///
/// Returns an optimal edge set (empty iff the graph has no edges). For
/// graphs with more than a few dozen edges this gets exponentially slow —
/// it is a test oracle, not a production solver.
///
/// # Examples
///
/// ```
/// use pn_graph::generators;
/// use eds_baselines::exact::minimum_edge_dominating_set;
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// let g = generators::path(4)?; // 3 edges: the middle edge dominates all
/// let opt = minimum_edge_dominating_set(&g);
/// assert_eq!(opt.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn minimum_edge_dominating_set(g: &SimpleGraph) -> Vec<EdgeId> {
    let m = g.edge_count();
    if m == 0 {
        return Vec::new();
    }
    // Candidate dominators of each edge: itself plus adjacent edges.
    let dominators: Vec<Vec<EdgeId>> = g
        .edges()
        .map(|(e, u, v)| {
            let mut dom: Vec<EdgeId> = g.incident_edges(u).chain(g.incident_edges(v)).collect();
            dom.push(e);
            dom.sort_unstable();
            dom.dedup();
            dom
        })
        .collect();

    let mut best: Vec<EdgeId> = g.edges().map(|(e, _, _)| e).collect(); // all edges: feasible
    let mut chosen: Vec<EdgeId> = Vec::new();
    // dominated-count per edge (by how many chosen edges).
    let mut dominated = vec![0usize; m];
    let mut node_deg_selected = vec![0usize; g.node_count()];

    fn choose(
        g: &SimpleGraph,
        e: EdgeId,
        dominated: &mut [usize],
        node_deg_selected: &mut [usize],
        delta: isize,
    ) {
        let (u, v) = g.endpoints(e);
        for w in [u, v] {
            for f in g.incident_edges(w) {
                dominated[f.index()] = (dominated[f.index()] as isize + delta) as usize;
            }
        }
        // The edge dominates itself once via each endpoint; it was counted
        // twice above, which is fine for a >0 test, but keep the node
        // degree tally for feasibility bookkeeping.
        node_deg_selected[u.index()] = (node_deg_selected[u.index()] as isize + delta) as usize;
        node_deg_selected[v.index()] = (node_deg_selected[v.index()] as isize + delta) as usize;
    }

    fn lower_bound(g: &SimpleGraph, dominated: &[usize], dominators: &[Vec<EdgeId>]) -> usize {
        // Greedy packing: pick undominated edges whose dominator sets are
        // pairwise disjoint; each needs its own dominator.
        let mut blocked = vec![false; g.edge_count()];
        let mut lb = 0;
        for (e, _, _) in g.edges() {
            if dominated[e.index()] > 0 || blocked[e.index()] {
                continue;
            }
            lb += 1;
            for &f in &dominators[e.index()] {
                // Block every edge sharing a potential dominator.
                let (fu, fv) = g.endpoints(f);
                for w in [fu, fv] {
                    for h in g.incident_edges(w) {
                        blocked[h.index()] = true;
                    }
                }
                blocked[f.index()] = true;
            }
        }
        lb
    }

    fn search(
        g: &SimpleGraph,
        dominators: &[Vec<EdgeId>],
        chosen: &mut Vec<EdgeId>,
        dominated: &mut Vec<usize>,
        node_deg_selected: &mut Vec<usize>,
        best: &mut Vec<EdgeId>,
    ) {
        if chosen.len() + 1 > best.len() {
            return;
        }
        // Find the undominated edge with the fewest candidate dominators
        // (fail-first ordering).
        let mut pick: Option<EdgeId> = None;
        let mut pick_size = usize::MAX;
        for (e, _, _) in g.edges() {
            if dominated[e.index()] == 0 {
                let size = dominators[e.index()].len();
                if size < pick_size {
                    pick = Some(e);
                    pick_size = size;
                }
            }
        }
        let Some(e) = pick else {
            // Everything dominated: feasible solution.
            if chosen.len() < best.len() {
                *best = chosen.clone();
            }
            return;
        };
        if chosen.len() + lower_bound(g, dominated, dominators) >= best.len() {
            return;
        }
        for &f in &dominators[e.index()] {
            chosen.push(f);
            choose(g, f, dominated, node_deg_selected, 1);
            search(g, dominators, chosen, dominated, node_deg_selected, best);
            choose(g, f, dominated, node_deg_selected, -1);
            chosen.pop();
        }
    }

    search(
        g,
        &dominators,
        &mut chosen,
        &mut dominated,
        &mut node_deg_selected,
        &mut best,
    );
    best.sort_unstable();
    best
}

/// Checks whether `edges` is an edge dominating set of `g`.
pub fn is_edge_dominating_set(g: &SimpleGraph, edges: &[EdgeId]) -> bool {
    let mut covered = vec![false; g.node_count()];
    for &e in edges {
        let (u, v) = g.endpoints(e);
        covered[u.index()] = true;
        covered[v.index()] = true;
    }
    g.edges()
        .all(|(_, u, v)| covered[u.index()] || covered[v.index()])
}

/// The minimum edge dominating set *size* (convenience wrapper).
pub fn minimum_eds_size(g: &SimpleGraph) -> usize {
    minimum_edge_dominating_set(g).len()
}

/// Exhaustive check helper: nodes covered by an edge set.
pub fn covered_by(g: &SimpleGraph, edges: &[EdgeId]) -> Vec<NodeId> {
    let mut covered = vec![false; g.node_count()];
    for &e in edges {
        let (u, v) = g.endpoints(e);
        covered[u.index()] = true;
        covered[v.index()] = true;
    }
    (0..g.node_count())
        .map(NodeId::new)
        .filter(|v| covered[v.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pn_graph::generators;

    #[test]
    fn known_optima() {
        // Path P4 (3 edges): 1. Cycle C5: 2. K4: 2. Star: 1. Petersen: 3.
        assert_eq!(minimum_eds_size(&generators::path(4).unwrap()), 1);
        assert_eq!(minimum_eds_size(&generators::cycle(5).unwrap()), 2);
        assert_eq!(minimum_eds_size(&generators::complete(4).unwrap()), 2);
        assert_eq!(minimum_eds_size(&generators::star(6).unwrap()), 1);
        assert_eq!(minimum_eds_size(&generators::petersen()), 3);
    }

    #[test]
    fn cycles_need_ceil_n_over_3() {
        for n in 3..=9 {
            let g = generators::cycle(n).unwrap();
            assert_eq!(minimum_eds_size(&g), n.div_ceil(3), "C{n}");
        }
    }

    #[test]
    fn output_is_feasible() {
        for seed in 0..6 {
            let g = generators::gnp(9, 0.35, seed).unwrap();
            let opt = minimum_edge_dominating_set(&g);
            assert!(is_edge_dominating_set(&g, &opt));
        }
    }

    #[test]
    fn empty_graph() {
        let g = SimpleGraph::new(5);
        assert!(minimum_edge_dominating_set(&g).is_empty());
    }

    #[test]
    fn optimum_no_larger_than_any_maximal_matching() {
        for seed in 0..6 {
            let g = generators::gnp(10, 0.3, 100 + seed).unwrap();
            let mm = pn_graph::matching::greedy_maximal_matching(&g);
            assert!(minimum_eds_size(&g) <= mm.len());
        }
    }
}

//! Baselines for the identifier model.
//!
//! The paper contrasts the port-numbering model with networks that have
//! unique node identifiers, where maximal matchings are computable in
//! `O(log⁴ n)` (Hańćkowiak et al.) or `O(Δ + log* n)` (Panconesi–Rizzi)
//! rounds. What those algorithms *output* is a maximal matching whose
//! choice depends on the identifier assignment; the round structure is
//! irrelevant to solution quality. We model the family by a deterministic
//! sequential process over identifier-ordered edges, which reproduces the
//! achievable quality (a 2-approximation) for any identifier assignment.

use pn_graph::{EdgeId, SimpleGraph};

/// A maximal matching computed greedily over edges ordered by their
/// endpoint identifiers `(min(id_u, id_v), max(id_u, id_v), edge id)` —
/// the canonical outcome of an identifier-based distributed matching
/// algorithm.
///
/// `ids[v]` is the unique identifier of node `v`.
///
/// # Panics
///
/// Panics if `ids` has the wrong length or contains duplicates.
pub fn id_greedy_matching(g: &SimpleGraph, ids: &[u64]) -> Vec<EdgeId> {
    assert_eq!(ids.len(), g.node_count(), "one identifier per node");
    {
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "identifiers must be unique");
    }
    let mut order: Vec<(u64, u64, EdgeId)> = g
        .edges()
        .map(|(e, u, v)| {
            let a = ids[u.index()];
            let b = ids[v.index()];
            (a.min(b), a.max(b), e)
        })
        .collect();
    order.sort_unstable();
    let mut covered = vec![false; g.node_count()];
    let mut matching = Vec::new();
    for (_, _, e) in order {
        let (u, v) = g.endpoints(e);
        if !covered[u.index()] && !covered[v.index()] {
            covered[u.index()] = true;
            covered[v.index()] = true;
            matching.push(e);
        }
    }
    matching
}

/// Runs [`id_greedy_matching`] with the identity identifier assignment.
pub fn id_greedy_matching_default(g: &SimpleGraph) -> Vec<EdgeId> {
    let ids: Vec<u64> = (0..g.node_count() as u64).collect();
    id_greedy_matching(g, &ids)
}

/// The best and worst matching sizes over `samples` random identifier
/// permutations (seeded) — quantifies how much identifier choice affects
/// the ID-model baseline.
pub fn id_sensitivity(g: &SimpleGraph, samples: usize, seed: u64) -> (usize, usize) {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut best = usize::MAX;
    let mut worst = 0;
    for _ in 0..samples.max(1) {
        let mut ids: Vec<u64> = (0..g.node_count() as u64).collect();
        ids.shuffle(&mut rng);
        let size = id_greedy_matching(g, &ids).len();
        best = best.min(size);
        worst = worst.max(size);
    }
    (best, worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmm::is_maximal_matching;
    use pn_graph::generators;

    #[test]
    fn produces_maximal_matchings() {
        for seed in 0..5 {
            let g = generators::gnp(12, 0.3, seed).unwrap();
            let m = id_greedy_matching_default(&g);
            if g.edge_count() > 0 {
                assert!(is_maximal_matching(&g, &m));
            }
        }
    }

    #[test]
    fn identifier_assignment_changes_output() {
        // On a path, processing from one end vs the middle gives different
        // matchings.
        let g = generators::path(5).unwrap();
        let a = id_greedy_matching(&g, &[0, 1, 2, 3, 4]);
        let b = id_greedy_matching(&g, &[4, 0, 1, 2, 3]);
        assert!(is_maximal_matching(&g, &a));
        assert!(is_maximal_matching(&g, &b));
        assert_ne!(a, b);
    }

    #[test]
    fn sensitivity_bounds_are_ordered() {
        let g = generators::petersen();
        let (best, worst) = id_sensitivity(&g, 20, 7);
        assert!(best <= worst);
        // Petersen: maximal matchings have size 3..=5.
        assert!(best >= 3 && worst <= 5);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_ids_rejected() {
        let g = generators::path(3).unwrap();
        let _ = id_greedy_matching(&g, &[1, 1, 2]);
    }
}

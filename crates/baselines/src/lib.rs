//! Centralised exact solvers and classical baselines for minimum edge
//! dominating sets.
//!
//! * [`exact`] — branch-and-bound exact minimum edge dominating set (the
//!   test oracle for all approximation-ratio experiments);
//! * [`mmm`] — branch-and-bound exact minimum maximal matching; by
//!   Yannakakis–Gavril it equals the minimum EDS, giving an independent
//!   cross-check of the exact solver;
//! * [`two_approx`] — the classical maximal-matching 2-approximation and
//!   the EDS → maximal-matching conversion;
//! * [`id_based`] — identifier-model baselines (the quality achievable by
//!   Hańćkowiak et al. / Panconesi–Rizzi style algorithms);
//! * [`weighted`] — the weighted variant (Section 1.2): exact
//!   minimum-weight EDS and a weight-aware greedy heuristic;
//! * [`distributed_mm`] — a genuinely distributed identifier-model
//!   maximal matching (Panconesi–Rizzi style: forest decomposition +
//!   Cole–Vishkin colouring, `O(Δ + log* n)` rounds);
//! * [`randomized_mm`] — a randomised distributed maximal matching
//!   (Israeli–Itai style, `O(log n)` rounds w.h.p.): what the paper's
//!   deterministic impossibilities cost relative to coin flips.
//!
//! # Example
//!
//! ```
//! use pn_graph::generators;
//! use eds_baselines::{exact, two_approx};
//! # fn main() -> Result<(), pn_graph::GraphError> {
//! let g = generators::petersen();
//! let opt = exact::minimum_edge_dominating_set(&g);
//! let approx = two_approx::two_approximation(&g);
//! assert!(approx.len() <= 2 * opt.len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod distributed_mm;
pub mod exact;
pub mod id_based;
pub mod mmm;
pub mod randomized_mm;
pub mod two_approx;
pub mod weighted;

//! Exact minimum *maximal matching* by branch and bound.
//!
//! A minimum maximal matching is also a minimum edge dominating set
//! (paper Section 1.1, after Allan–Laskar and Yannakakis–Gavril), which
//! makes this solver an independent oracle for cross-checking
//! [`crate::exact`]: the two optima must coincide on every graph.

use pn_graph::{EdgeId, SimpleGraph};

/// Exact minimum maximal matching of `g`.
///
/// Branches on an edge with both endpoints unmatched: a maximal matching
/// must contain some edge incident to one of those endpoints. When no
/// such edge exists, the current matching is maximal.
///
/// # Examples
///
/// ```
/// use pn_graph::generators;
/// use eds_baselines::mmm::minimum_maximal_matching;
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// let g = generators::cycle(6)?;
/// assert_eq!(minimum_maximal_matching(&g).len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn minimum_maximal_matching(g: &SimpleGraph) -> Vec<EdgeId> {
    let mut best: Vec<EdgeId> = pn_graph::matching::greedy_maximal_matching(g);
    let mut chosen = Vec::new();
    let mut matched = vec![false; g.node_count()];

    fn search(
        g: &SimpleGraph,
        chosen: &mut Vec<EdgeId>,
        matched: &mut Vec<bool>,
        best: &mut Vec<EdgeId>,
    ) {
        if chosen.len() >= best.len() {
            return;
        }
        // An edge with both endpoints free forces a branch.
        let mut free_edge = None;
        for (e, u, v) in g.edges() {
            if !matched[u.index()] && !matched[v.index()] {
                free_edge = Some((e, u, v));
                break;
            }
        }
        let Some((_, u, v)) = free_edge else {
            // Matching is maximal.
            if chosen.len() < best.len() {
                *best = chosen.clone();
            }
            return;
        };
        // Some edge incident to u or v must be matched; enumerate the
        // candidates with both endpoints currently free.
        let mut candidates: Vec<EdgeId> = Vec::new();
        for w in [u, v] {
            for f in g.incident_edges(w) {
                let (a, b) = g.endpoints(f);
                if !matched[a.index()] && !matched[b.index()] && !candidates.contains(&f) {
                    candidates.push(f);
                }
            }
        }
        for f in candidates {
            let (a, b) = g.endpoints(f);
            matched[a.index()] = true;
            matched[b.index()] = true;
            chosen.push(f);
            search(g, chosen, matched, best);
            chosen.pop();
            matched[a.index()] = false;
            matched[b.index()] = false;
        }
    }

    search(g, &mut chosen, &mut matched, &mut best);
    best.sort_unstable();
    best
}

/// Checks whether `edges` is a maximal matching of `g`.
pub fn is_maximal_matching(g: &SimpleGraph, edges: &[EdgeId]) -> bool {
    if !pn_graph::matching::is_matching(g, edges) {
        return false;
    }
    let covered = pn_graph::matching::covered_nodes(g, edges);
    g.edges()
        .all(|(_, u, v)| covered[u.index()] || covered[v.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::minimum_eds_size;
    use pn_graph::generators;

    #[test]
    fn known_optima() {
        assert_eq!(
            minimum_maximal_matching(&generators::path(4).unwrap()).len(),
            1
        );
        assert_eq!(
            minimum_maximal_matching(&generators::cycle(5).unwrap()).len(),
            2
        );
        assert_eq!(
            minimum_maximal_matching(&generators::complete(4).unwrap()).len(),
            2
        );
        assert_eq!(minimum_maximal_matching(&generators::petersen()).len(), 3);
    }

    #[test]
    fn output_is_maximal_matching() {
        for seed in 0..8 {
            let g = generators::gnp(9, 0.4, seed).unwrap();
            let mm = minimum_maximal_matching(&g);
            assert!(is_maximal_matching(&g, &mm));
        }
    }

    #[test]
    fn equals_minimum_eds_yannakakis_gavril() {
        // The theorem: min maximal matching size = min EDS size.
        for seed in 0..10 {
            let g = generators::gnp(9, 0.35, 300 + seed).unwrap();
            assert_eq!(
                minimum_maximal_matching(&g).len(),
                minimum_eds_size(&g),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = SimpleGraph::new(3);
        assert!(minimum_maximal_matching(&g).is_empty());
    }

    #[test]
    fn maximality_checker_rejects_non_maximal() {
        let g = generators::path(5).unwrap(); // edges 0-1,1-2,2-3,3-4
                                              // Empty is a matching but not maximal.
        assert!(!is_maximal_matching(&g, &[]));
        // Edge 1 (nodes 1-2) alone leaves edge 3-4 undominated.
        assert!(!is_maximal_matching(&g, &[EdgeId::new(1)]));
        // Edges 0 and 2 cover everything.
        assert!(is_maximal_matching(&g, &[EdgeId::new(0), EdgeId::new(2)]));
    }
}

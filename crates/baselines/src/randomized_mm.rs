//! A randomised distributed maximal matching — the "what if we allow
//! randomness?" counterpoint to the paper's deterministic model.
//!
//! The paper studies *deterministic* algorithms, where anonymous
//! symmetry is unbreakable (Theorems 1–2). Randomness breaks it cheaply:
//! in the style of Israeli–Itai, each phase every unmatched node flips a
//! coin to act as a **proposer** or an **acceptor**; proposers offer to
//! a uniformly random free neighbour, acceptors take a random incoming
//! offer, and matched pairs retire. The role split keeps every node on
//! at most one new edge per phase; a constant fraction of the remaining
//! edges disappears per phase in expectation, so `O(log n)` phases
//! suffice with high probability.
//!
//! The protocol is implemented as a [`NodeAlgorithm`] whose nodes are
//! seeded through [`Simulator::run_with_inputs`] — the seeds are the
//! *only* symmetry break: no identifiers, no port-numbering tricks. For
//! a fixed seed assignment the execution is fully deterministic and
//! reproducible.

use pn_graph::{EdgeId, Port, PortNumberedGraph};
use pn_runtime::{collect_send, NodeAlgorithm, PortSet, RuntimeError, Simulator, WrongCount};

/// Messages of the randomised matching protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RandMmMsg {
    /// Still unmatched (sent every status round on every port).
    Free(bool),
    /// A proposal (propose rounds).
    Propose,
    /// Answer to a proposal (respond rounds).
    Response(bool),
    /// Filler.
    Nothing,
}

impl pn_runtime::PackedMessage for RandMmMsg {
    fn lane_bits(_max_degree: usize) -> Option<u32> {
        pn_runtime::lane_width_for(6)
    }

    fn encode(&self, _max_degree: usize) -> u64 {
        match self {
            RandMmMsg::Free(false) => 1,
            RandMmMsg::Free(true) => 2,
            RandMmMsg::Propose => 3,
            RandMmMsg::Response(false) => 4,
            RandMmMsg::Response(true) => 5,
            RandMmMsg::Nothing => 6,
        }
    }

    fn decode(code: u64, _max_degree: usize) -> Option<Self> {
        match code {
            1 => Some(RandMmMsg::Free(false)),
            2 => Some(RandMmMsg::Free(true)),
            3 => Some(RandMmMsg::Propose),
            4 => Some(RandMmMsg::Response(false)),
            5 => Some(RandMmMsg::Response(true)),
            6 => Some(RandMmMsg::Nothing),
            _ => None,
        }
    }
}

/// Node state machine for the randomised matching.
#[derive(Clone, Debug)]
pub struct RandMatchingNode {
    degree: usize,
    /// The construction-time seed, retained so `reset` can re-derive the
    /// whole initial state.
    seed: u64,
    rng: u64,
    phases: usize,
    matched: bool,
    matched_port: Option<usize>,
    /// This phase's coin flip: `true` = proposer, `false` = acceptor.
    proposer_role: bool,
    neighbor_free: Vec<bool>,
    pending: Option<usize>,
    incoming: Vec<usize>,
}

impl RandMatchingNode {
    /// Creates the state machine: `degree` ports, a per-node random
    /// `seed`, and the number of proposal `phases` to run (callers use
    /// `O(log n)`; see [`randomized_matching_phases`]).
    pub fn new(degree: usize, seed: u64, phases: usize) -> Self {
        RandMatchingNode {
            degree,
            seed,
            rng: seed ^ 0x9e37_79b9_7f4a_7c15,
            phases,
            matched: false,
            matched_port: None,
            proposer_role: false,
            neighbor_free: vec![true; degree],
            pending: None,
            incoming: Vec::new(),
        }
    }

    /// xorshift64* step.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Phases (status + propose + respond triples) sufficient for maximality
/// with overwhelming probability on `n`-node graphs.
pub fn randomized_matching_phases(n: usize) -> usize {
    8 * (usize::BITS - n.max(2).leading_zeros()) as usize + 16
}

/// Total protocol rounds for a given phase count.
pub fn randomized_matching_rounds(phases: usize) -> usize {
    3 * phases
}

impl NodeAlgorithm for RandMatchingNode {
    type Message = RandMmMsg;
    type Output = PortSet;

    fn send(&mut self, round: usize) -> Vec<RandMmMsg> {
        collect_send(self, round, self.degree)
    }

    fn send_into(
        &mut self,
        round: usize,
        outbox: &mut [Option<RandMmMsg>],
    ) -> Result<(), WrongCount> {
        let d = self.degree;
        match round % 3 {
            0 => {
                // New phase: flip the proposer/acceptor coin.
                self.proposer_role = self.next_rand() & 1 == 1;
                outbox.fill(Some(RandMmMsg::Free(!self.matched)));
            }
            1 => {
                // Proposers offer to a uniformly random free neighbour.
                outbox.fill(Some(RandMmMsg::Nothing));
                self.pending = None;
                if !self.matched && self.proposer_role {
                    let free_count = self.neighbor_free.iter().filter(|&&f| f).count();
                    if free_count > 0 {
                        let pick = (self.next_rand() % free_count as u64) as usize;
                        let q = (0..d)
                            .filter(|&q| self.neighbor_free[q])
                            .nth(pick)
                            .expect("pick < free_count");
                        self.pending = Some(q);
                        outbox[q] = Some(RandMmMsg::Propose);
                    }
                }
            }
            _ => {
                outbox.fill(Some(RandMmMsg::Nothing));
                let incoming = std::mem::take(&mut self.incoming);
                for &q in &incoming {
                    outbox[q] = Some(RandMmMsg::Response(false));
                }
                // Only acceptors take an offer; proposers reject all, so
                // no node can end the phase on two new edges.
                if !self.matched && !self.proposer_role && !incoming.is_empty() {
                    let q = incoming[(self.next_rand() % incoming.len() as u64) as usize];
                    outbox[q] = Some(RandMmMsg::Response(true));
                    self.matched = true;
                    self.matched_port = Some(q);
                }
            }
        }
        Ok(())
    }

    fn receive(&mut self, round: usize, inbox: &[Option<RandMmMsg>]) -> Option<PortSet> {
        if self.degree == 0 {
            return Some(PortSet::new());
        }
        match round % 3 {
            0 => {
                for (q, m) in inbox.iter().enumerate() {
                    if let Some(RandMmMsg::Free(f)) = m {
                        self.neighbor_free[q] = *f;
                    }
                }
                None
            }
            1 => {
                self.incoming.clear();
                for (q, m) in inbox.iter().enumerate() {
                    if m == &Some(RandMmMsg::Propose) {
                        self.incoming.push(q);
                    }
                }
                None
            }
            _ => {
                if let Some(q) = self.pending.take() {
                    if inbox[q] == Some(RandMmMsg::Response(true)) {
                        self.matched = true;
                        self.matched_port = Some(q);
                    }
                }
                if round + 1 >= randomized_matching_rounds(self.phases) {
                    let mut x = PortSet::new();
                    if let Some(q) = self.matched_port {
                        x.insert(Port::from_index(q));
                    }
                    Some(x)
                } else {
                    None
                }
            }
        }
    }

    fn corrupt(&mut self, entropy: u64) {
        // Everything soft is garbleable: the xorshift state accepts any
        // word (`next_rand` guards against 0), the matching bookkeeping
        // is bits, and port references stay < degree. `degree`, `seed`,
        // and `phases` define the schedule and the reset state.
        if self.degree == 0 {
            return;
        }
        let mut next = pn_runtime::entropy_stream(entropy);
        self.rng = next();
        self.matched = next() & 1 == 0;
        self.matched_port = (next() & 1 == 0).then(|| (next() % self.degree as u64) as usize);
        self.proposer_role = next() & 1 == 0;
        for b in &mut self.neighbor_free {
            *b = next() & 1 == 0;
        }
        self.pending = (next() & 1 == 0).then(|| (next() % self.degree as u64) as usize);
        self.incoming = (0..self.degree).filter(|_| next() & 1 == 0).collect();
    }

    fn reset(&mut self) {
        *self = RandMatchingNode::new(self.degree, self.seed, self.phases);
    }
}

/// Runs the randomised matching on `g` with per-node `seeds` for
/// [`randomized_matching_phases`]`(n)` phases and returns the matched
/// edges.
///
/// The result is a matching by construction; it is maximal with
/// overwhelming probability (the property tests check maximality on
/// every sampled execution, with fixed seeds for reproducibility).
///
/// # Errors
///
/// Propagates simulator errors (none occur on valid inputs).
///
/// # Panics
///
/// Panics if `seeds.len()` differs from the node count.
pub fn randomized_matching_distributed(
    g: &PortNumberedGraph,
    seeds: &[u64],
) -> Result<Vec<EdgeId>, RuntimeError> {
    assert_eq!(seeds.len(), g.node_count(), "one seed per node");
    let phases = randomized_matching_phases(g.node_count());
    let run = Simulator::new(g).run_with_inputs(seeds, |degree, &seed| {
        RandMatchingNode::new(degree, seed, phases)
    })?;
    pn_runtime::edge_set_from_outputs(g, &run.outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmm::is_maximal_matching;
    use pn_graph::{generators, ports};

    fn seeds(n: usize, salt: u64) -> Vec<u64> {
        (0..n as u64)
            .map(|i| i.wrapping_mul(0x517c_c1b7_2722_0a95) ^ salt)
            .collect()
    }

    #[test]
    fn maximal_on_classic_graphs() {
        for (name, g) in [
            ("petersen", generators::petersen()),
            ("k6", generators::complete(6).unwrap()),
            ("cycle11", generators::cycle(11).unwrap()),
            ("grid5x5", generators::grid(5, 5).unwrap()),
            ("star8", generators::star(8).unwrap()),
        ] {
            let pg = ports::shuffled_ports(&g, 5).unwrap();
            let edges = randomized_matching_distributed(&pg, &seeds(g.node_count(), 42)).unwrap();
            assert!(
                is_maximal_matching(&pg.to_simple().unwrap(), &edges),
                "{name}"
            );
        }
    }

    #[test]
    fn maximal_on_random_graphs_many_seeds() {
        for salt in 0..10u64 {
            let g = generators::gnp(20, 0.25, salt).unwrap();
            if g.is_edgeless() {
                continue;
            }
            let pg = ports::shuffled_ports(&g, salt).unwrap();
            let edges = randomized_matching_distributed(&pg, &seeds(20, salt * 97 + 1)).unwrap();
            assert!(
                is_maximal_matching(&pg.to_simple().unwrap(), &edges),
                "salt {salt}"
            );
        }
    }

    #[test]
    fn breaks_symmetry_where_determinism_cannot() {
        // The symmetric cycle defeats every deterministic anonymous
        // algorithm (the paper's Theorem 1 machinery); random seeds break
        // it immediately.
        let mut b = pn_graph::PnGraphBuilder::new();
        let n = 8;
        for _ in 0..n {
            b.add_node(2);
        }
        for v in 0..n {
            b.connect(
                pn_graph::Endpoint::new(pn_graph::NodeId::new(v), Port::new(1)),
                pn_graph::Endpoint::new(pn_graph::NodeId::new((v + 1) % n), Port::new(2)),
            )
            .unwrap();
        }
        let pg = b.finish().unwrap();
        let edges = randomized_matching_distributed(&pg, &seeds(n, 7)).unwrap();
        let simple = pg.to_simple().unwrap();
        assert!(is_maximal_matching(&simple, &edges));
        // A *proper* nonempty subset: impossible deterministically.
        assert!(!edges.is_empty());
        assert!(edges.len() < pg.edge_count());
    }

    #[test]
    fn deterministic_for_fixed_seeds() {
        let g = generators::petersen();
        let pg = ports::shuffled_ports(&g, 1).unwrap();
        let s = seeds(10, 3);
        let a = randomized_matching_distributed(&pg, &s).unwrap();
        let b = randomized_matching_distributed(&pg, &s).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn phases_grow_logarithmically() {
        assert!(randomized_matching_phases(2) < randomized_matching_phases(1 << 20));
        let small = randomized_matching_phases(16);
        let large = randomized_matching_phases(16 * 1024);
        // 10 extra doublings -> 80 extra phases.
        assert_eq!(large - small, 8 * 10);
    }

    #[test]
    fn corrupt_then_reset_restores_the_initial_state() {
        let mut node = RandMatchingNode::new(3, 99, 7);
        let fresh = format!("{node:?}");
        node.corrupt(0xdead_beef);
        assert_ne!(format!("{node:?}"), fresh, "corruption must change state");
        node.reset();
        assert_eq!(format!("{node:?}"), fresh, "reset must restore it");
    }

    #[test]
    fn corrupted_epochs_stay_well_defined() {
        use pn_runtime::{ChurnEvent, ChurnSimulator};
        let g = ports::shuffled_ports(&generators::petersen(), 2).unwrap();
        let phases = randomized_matching_phases(10);
        let s = seeds(10, 11);
        let mut sim =
            ChurnSimulator::new(&g, |v, d| RandMatchingNode::new(d, s[v.index()], phases)).unwrap();
        let burst: Vec<_> = (0..10)
            .map(|v| ChurnEvent::Corrupt {
                v: pn_graph::NodeId::new(v),
                entropy: v as u64 * 77 + 5,
            })
            .collect();
        sim.apply_burst(&burst).unwrap();
        let epoch = sim.stabilize().unwrap(); // must complete, never panic
        assert_eq!(epoch.corrupted, 10);
        // The queue drains: the next epoch is the clean baseline again.
        let clean = sim.stabilize().unwrap();
        assert_eq!(clean.corrupted, 0);
        let edges = pn_runtime::edge_set_from_outputs(&g, &clean.outputs).unwrap();
        assert!(is_maximal_matching(&g.to_simple().unwrap(), &edges));
    }
}

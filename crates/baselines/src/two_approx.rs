//! The classical centralised 2-approximation and the Yannakakis–Gavril
//! conversion between edge dominating sets and maximal matchings.
//!
//! * any maximal matching is an edge dominating set of size at most
//!   `2 · OPT` (paper Section 1.2);
//! * conversely, from any edge dominating set `D` one can construct a
//!   maximal matching with at most `|D|` edges (paper Section 1.1) — the
//!   constructive direction of "minimum maximal matching = minimum EDS".

use pn_graph::matching::{greedy_maximal_matching, greedy_maximal_matching_in};
use pn_graph::{EdgeId, SimpleGraph};

/// The classical 2-approximation: any maximal matching (greedy here).
///
/// # Examples
///
/// ```
/// use pn_graph::generators;
/// use eds_baselines::two_approx::two_approximation;
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// let g = generators::cycle(9)?;
/// let d = two_approximation(&g);
/// // OPT = 3 for C9; a maximal matching has at most 2*3 edges... and at
/// // least 3.
/// assert!(d.len() >= 3 && d.len() <= 6);
/// # Ok(())
/// # }
/// ```
pub fn two_approximation(g: &SimpleGraph) -> Vec<EdgeId> {
    greedy_maximal_matching(g)
}

/// Converts an edge dominating set into a maximal matching of size at
/// most `|D|` (Yannakakis–Gavril, via the Allan–Laskar argument in the
/// claw-free line graph).
///
/// Construction: take a maximal matching inside `D`, then extend greedily
/// to a maximal matching of the whole graph. Each extension edge charges
/// a distinct unused `D`-edge, so the size never exceeds `|D|`.
///
/// # Panics
///
/// Debug-asserts that `d` is actually an edge dominating set.
pub fn eds_to_maximal_matching(g: &SimpleGraph, d: &[EdgeId]) -> Vec<EdgeId> {
    debug_assert!(
        crate::exact::is_edge_dominating_set(g, d),
        "input must be an edge dominating set"
    );
    let in_d: std::collections::HashSet<EdgeId> = d.iter().copied().collect();
    // Phase 1: maximal matching within D (greedy over D in edge order).
    let mut matching = greedy_maximal_matching_in(g, |e| in_d.contains(&e));
    // Phase 2: extend to a maximal matching of G.
    let mut covered = pn_graph::matching::covered_nodes(g, &matching);
    for (e, u, v) in g.edges() {
        if !covered[u.index()] && !covered[v.index()] {
            covered[u.index()] = true;
            covered[v.index()] = true;
            matching.push(e);
        }
    }
    matching
}

/// End-to-end 2-approximation quality report: `(|D|, opt)` on demand for
/// experiments; `opt` computed by the exact solver, so keep graphs small.
pub fn ratio_against_exact(g: &SimpleGraph) -> (usize, usize) {
    let approx = two_approximation(g);
    let opt = crate::exact::minimum_eds_size(g);
    (approx.len(), opt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmm::is_maximal_matching;
    use pn_graph::generators;

    #[test]
    fn two_approx_is_feasible_and_within_factor_two() {
        for seed in 0..8 {
            let g = generators::gnp(9, 0.4, seed).unwrap();
            let d = two_approximation(&g);
            assert!(crate::exact::is_edge_dominating_set(&g, &d));
            let opt = crate::exact::minimum_eds_size(&g);
            assert!(d.len() <= 2 * opt.max(1), "seed {seed}");
        }
    }

    #[test]
    fn conversion_never_grows() {
        for seed in 0..8 {
            let g = generators::gnp(10, 0.35, 50 + seed).unwrap();
            if g.is_edgeless() {
                continue;
            }
            // Use a deliberately sloppy EDS: all edges incident to node 0
            // plus a maximal matching of the rest.
            let d = crate::exact::minimum_edge_dominating_set(&g);
            let mm = eds_to_maximal_matching(&g, &d);
            assert!(is_maximal_matching(&g, &mm), "seed {seed}");
            assert!(
                mm.len() <= d.len(),
                "seed {seed}: {} > {}",
                mm.len(),
                d.len()
            );
        }
    }

    #[test]
    fn conversion_on_non_matching_eds() {
        // A star's EDS {all edges} converts to a single-edge maximal
        // matching.
        let g = generators::star(5).unwrap();
        let d: Vec<EdgeId> = g.edges().map(|(e, _, _)| e).collect();
        let mm = eds_to_maximal_matching(&g, &d);
        assert_eq!(mm.len(), 1);
    }

    #[test]
    fn ratio_report() {
        let g = generators::cycle(9).unwrap();
        let (approx, opt) = ratio_against_exact(&g);
        assert_eq!(opt, 3);
        assert!(approx >= opt && approx <= 2 * opt);
    }
}

//! Weighted edge dominating sets (paper Section 1.2).
//!
//! The weighted problem is strictly harder: approximating minimum-weight
//! edge *covers* is as hard as minimum-weight vertex cover, and the best
//! known polynomial guarantee for minimum-weight EDS is the
//! Fujito–Nagamochi 2-approximation. This module provides
//!
//! * an exact branch-and-bound solver for minimum-weight EDS (test
//!   oracle, small instances);
//! * a weight-aware greedy heuristic (cheapest dominator per undominated
//!   edge), which carries no worst-case guarantee but performs well and
//!   gives the experiments a comparison point;
//! * uniform-weight consistency: with all weights 1 the exact solver
//!   agrees with the unweighted one.

use pn_graph::{EdgeId, SimpleGraph};

/// Per-edge weights, indexed by [`EdgeId`].
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeWeights {
    weights: Vec<u64>,
}

impl EdgeWeights {
    /// Creates weights from a vector indexed by edge id.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the graph when later used.
    pub fn new(weights: Vec<u64>) -> Self {
        EdgeWeights { weights }
    }

    /// Uniform weights (all 1) for a graph.
    pub fn uniform(g: &SimpleGraph) -> Self {
        EdgeWeights {
            weights: vec![1; g.edge_count()],
        }
    }

    /// Seeded random integer weights in `1..=max`.
    pub fn random(g: &SimpleGraph, max: u64, seed: u64) -> Self {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        EdgeWeights {
            weights: (0..g.edge_count())
                .map(|_| rng.gen_range(1..=max))
                .collect(),
        }
    }

    /// The weight of one edge.
    pub fn weight(&self, e: EdgeId) -> u64 {
        self.weights[e.index()]
    }

    /// Total weight of an edge set.
    pub fn total(&self, edges: &[EdgeId]) -> u64 {
        edges.iter().map(|&e| self.weight(e)).sum()
    }

    /// Number of weighted edges.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` if there are no weights.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

/// Exact minimum-weight edge dominating set by branch and bound.
///
/// Branches on an undominated edge over its candidate dominators in
/// increasing weight order; prunes with a packing bound (disjoint
/// undominated regions each need their own cheapest dominator).
///
/// # Examples
///
/// ```
/// use pn_graph::generators;
/// use eds_baselines::weighted::{minimum_weight_eds, EdgeWeights};
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// let g = generators::path(4)?;
/// let w = EdgeWeights::new(vec![10, 1, 10]);
/// let (eds, weight) = minimum_weight_eds(&g, &w);
/// assert_eq!(weight, 1); // the cheap middle edge dominates everything
/// assert_eq!(eds.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn minimum_weight_eds(g: &SimpleGraph, w: &EdgeWeights) -> (Vec<EdgeId>, u64) {
    assert_eq!(w.len(), g.edge_count(), "one weight per edge");
    let m = g.edge_count();
    if m == 0 {
        return (Vec::new(), 0);
    }
    // Candidate dominators per edge, cheapest first.
    let dominators: Vec<Vec<EdgeId>> = g
        .edges()
        .map(|(e, u, v)| {
            let mut dom: Vec<EdgeId> = g
                .incident_edges(u)
                .chain(g.incident_edges(v))
                .chain(std::iter::once(e))
                .collect();
            dom.sort_unstable();
            dom.dedup();
            dom.sort_by_key(|&f| w.weight(f));
            dom
        })
        .collect();

    let all: Vec<EdgeId> = g.edges().map(|(e, _, _)| e).collect();
    let mut best: Vec<EdgeId> = all.clone();
    let mut best_weight: u64 = w.total(&all);
    let mut chosen: Vec<EdgeId> = Vec::new();
    let mut dominated = vec![0usize; m];

    fn apply(g: &SimpleGraph, e: EdgeId, dominated: &mut [usize], delta: isize) {
        let (u, v) = g.endpoints(e);
        for x in [u, v] {
            for f in g.incident_edges(x) {
                dominated[f.index()] = (dominated[f.index()] as isize + delta) as usize;
            }
        }
    }

    fn lower_bound(
        g: &SimpleGraph,
        w: &EdgeWeights,
        dominated: &[usize],
        dominators: &[Vec<EdgeId>],
    ) -> u64 {
        let mut blocked = vec![false; g.edge_count()];
        let mut lb = 0u64;
        for (e, _, _) in g.edges() {
            if dominated[e.index()] > 0 || blocked[e.index()] {
                continue;
            }
            // This edge needs a dominator costing at least its cheapest.
            lb += dominators[e.index()]
                .first()
                .map(|&f| w.weight(f))
                .unwrap_or(0);
            for &f in &dominators[e.index()] {
                let (fu, fv) = g.endpoints(f);
                for x in [fu, fv] {
                    for h in g.incident_edges(x) {
                        blocked[h.index()] = true;
                    }
                }
                blocked[f.index()] = true;
            }
        }
        lb
    }

    #[allow(clippy::too_many_arguments)]
    fn search(
        g: &SimpleGraph,
        w: &EdgeWeights,
        dominators: &[Vec<EdgeId>],
        chosen: &mut Vec<EdgeId>,
        chosen_weight: u64,
        dominated: &mut Vec<usize>,
        best: &mut Vec<EdgeId>,
        best_weight: &mut u64,
    ) {
        let pick = g
            .edges()
            .filter(|(e, _, _)| dominated[e.index()] == 0)
            .min_by_key(|(e, _, _)| dominators[e.index()].len())
            .map(|(e, _, _)| e);
        let Some(e) = pick else {
            if chosen_weight < *best_weight {
                *best = chosen.clone();
                *best_weight = chosen_weight;
            }
            return;
        };
        if chosen_weight + lower_bound(g, w, dominated, dominators) >= *best_weight {
            return;
        }
        for &f in &dominators[e.index()] {
            let fw = w.weight(f);
            if chosen_weight + fw >= *best_weight {
                // Dominators are sorted by weight: nothing cheaper follows.
                break;
            }
            chosen.push(f);
            apply(g, f, dominated, 1);
            search(
                g,
                w,
                dominators,
                chosen,
                chosen_weight + fw,
                dominated,
                best,
                best_weight,
            );
            apply(g, f, dominated, -1);
            chosen.pop();
        }
    }

    search(
        g,
        w,
        &dominators,
        &mut chosen,
        0,
        &mut dominated,
        &mut best,
        &mut best_weight,
    );
    best.sort_unstable();
    (best, best_weight)
}

/// Weight-aware greedy heuristic: repeatedly dominate the currently
/// undominated edge whose cheapest dominator is cheapest, taking that
/// dominator.
///
/// No worst-case guarantee (the weighted problem needs the
/// Fujito–Nagamochi primal–dual machinery for a factor 2); useful as an
/// experimental baseline.
pub fn greedy_weighted_eds(g: &SimpleGraph, w: &EdgeWeights) -> Vec<EdgeId> {
    assert_eq!(w.len(), g.edge_count(), "one weight per edge");
    let mut dominated = vec![false; g.edge_count()];
    let mut chosen: Vec<EdgeId> = Vec::new();
    loop {
        // Cheapest dominator over all undominated edges.
        let mut pick: Option<(u64, EdgeId)> = None;
        for (e, u, v) in g.edges() {
            if dominated[e.index()] {
                continue;
            }
            for f in g
                .incident_edges(u)
                .chain(g.incident_edges(v))
                .chain(std::iter::once(e))
            {
                let cand = (w.weight(f), f);
                if pick.is_none() || cand < pick.expect("checked") {
                    pick = Some(cand);
                }
            }
        }
        let Some((_, f)) = pick else { break };
        chosen.push(f);
        let (u, v) = g.endpoints(f);
        for x in [u, v] {
            for h in g.incident_edges(x) {
                dominated[h.index()] = true;
            }
        }
    }
    chosen.sort_unstable();
    chosen.dedup();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{is_edge_dominating_set, minimum_eds_size};
    use pn_graph::generators;

    #[test]
    fn uniform_weights_match_unweighted_optimum() {
        for seed in 0..6 {
            let g = generators::gnp(8, 0.4, seed).unwrap();
            let w = EdgeWeights::uniform(&g);
            let (eds, weight) = minimum_weight_eds(&g, &w);
            assert!(is_edge_dominating_set(&g, &eds));
            assert_eq!(weight as usize, minimum_eds_size(&g), "seed {seed}");
        }
    }

    #[test]
    fn cheap_middle_edge_wins() {
        let g = generators::path(4).unwrap();
        let w = EdgeWeights::new(vec![5, 1, 5]);
        let (eds, weight) = minimum_weight_eds(&g, &w);
        assert_eq!(weight, 1);
        assert_eq!(eds, vec![EdgeId::new(1)]);
    }

    #[test]
    fn expensive_middle_edge_avoided() {
        // Path of 4 edges: picking the two cheap outer edges (1 + 1)
        // beats the one expensive centre (100).
        let g = generators::path(5).unwrap();
        let w = EdgeWeights::new(vec![1, 100, 100, 1]);
        let (eds, weight) = minimum_weight_eds(&g, &w);
        assert!(is_edge_dominating_set(&g, &eds));
        assert_eq!(weight, 2);
    }

    #[test]
    fn greedy_is_feasible_and_no_better_than_exact() {
        for seed in 0..6 {
            let g = generators::gnp(9, 0.35, 70 + seed).unwrap();
            let w = EdgeWeights::random(&g, 10, seed);
            let greedy = greedy_weighted_eds(&g, &w);
            assert!(is_edge_dominating_set(&g, &greedy), "seed {seed}");
            let (_, opt) = minimum_weight_eds(&g, &w);
            assert!(w.total(&greedy) >= opt, "seed {seed}");
        }
    }

    #[test]
    fn weights_accessors() {
        let g = generators::path(3).unwrap();
        let w = EdgeWeights::new(vec![3, 4]);
        assert_eq!(w.weight(EdgeId::new(0)), 3);
        assert_eq!(w.total(&[EdgeId::new(0), EdgeId::new(1)]), 7);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        let r1 = EdgeWeights::random(&g, 5, 1);
        let r2 = EdgeWeights::random(&g, 5, 1);
        assert_eq!(r1, r2);
    }

    #[test]
    fn empty_graph() {
        let g = SimpleGraph::new(3);
        let w = EdgeWeights::uniform(&g);
        let (eds, weight) = minimum_weight_eds(&g, &w);
        assert!(eds.is_empty());
        assert_eq!(weight, 0);
        assert!(greedy_weighted_eds(&g, &w).is_empty());
    }
}

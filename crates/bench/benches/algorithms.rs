//! Criterion benchmarks for the paper's three algorithms: wall-clock
//! scaling in `n` (at fixed degree) and in `d`/`Δ` (at fixed `n`), for
//! both the centralised references and the full message-passing
//! protocols.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eds_core::bounded_degree::bounded_degree_reference;
use eds_core::distributed::{BoundedDegreeNode, RegularOddNode};
use eds_core::port_one::{port_one_reference, PortOneNode};
use eds_core::regular_odd::regular_odd_reference;
use pn_graph::{generators, ports, PortNumberedGraph};
use pn_runtime::Simulator;

fn regular_instance(n: usize, d: usize, seed: u64) -> PortNumberedGraph {
    let g = generators::random_regular(n, d, seed).expect("regular graph");
    ports::shuffled_ports(&g, seed ^ 0xabc).expect("ports")
}

fn bench_port_one(c: &mut Criterion) {
    let mut group = c.benchmark_group("port_one");
    for n in [64usize, 256, 1024] {
        let pg = regular_instance(n, 4, n as u64);
        group.bench_with_input(BenchmarkId::new("reference", n), &pg, |b, pg| {
            b.iter(|| port_one_reference(pg))
        });
        group.bench_with_input(BenchmarkId::new("distributed", n), &pg, |b, pg| {
            b.iter(|| Simulator::new(pg).run(PortOneNode::new).unwrap())
        });
    }
    group.finish();
}

fn bench_regular_odd(c: &mut Criterion) {
    let mut group = c.benchmark_group("regular_odd");
    // Scaling in n at d = 3.
    for n in [64usize, 256, 1024] {
        let pg = regular_instance(n, 3, n as u64);
        group.bench_with_input(BenchmarkId::new("reference_n", n), &pg, |b, pg| {
            b.iter(|| regular_odd_reference(pg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("distributed_n", n), &pg, |b, pg| {
            b.iter(|| Simulator::new(pg).run(RegularOddNode::new).unwrap())
        });
    }
    // Scaling in d at n = 128.
    for d in [3usize, 5, 7, 9] {
        let pg = regular_instance(128, d, d as u64);
        group.bench_with_input(BenchmarkId::new("reference_d", d), &pg, |b, pg| {
            b.iter(|| regular_odd_reference(pg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("distributed_d", d), &pg, |b, pg| {
            b.iter(|| Simulator::new(pg).run(RegularOddNode::new).unwrap())
        });
    }
    group.finish();
}

fn bench_bounded_degree(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounded_degree");
    for n in [64usize, 256, 1024] {
        let g = generators::random_bounded_degree(n, 5, 0.8, n as u64).expect("graph");
        let pg = ports::shuffled_ports(&g, 5).expect("ports");
        group.bench_with_input(BenchmarkId::new("reference_n", n), &pg, |b, pg| {
            b.iter(|| bounded_degree_reference(pg, 5).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("distributed_n", n), &pg, |b, pg| {
            b.iter(|| {
                Simulator::new(pg)
                    .run(|deg: usize| BoundedDegreeNode::new(5, deg))
                    .unwrap()
            })
        });
    }
    for delta in [3usize, 5, 7] {
        let g = generators::random_bounded_degree(128, delta, 0.8, delta as u64).expect("graph");
        let pg = ports::shuffled_ports(&g, 7).expect("ports");
        group.bench_with_input(BenchmarkId::new("reference_delta", delta), &pg, |b, pg| {
            b.iter(|| bounded_degree_reference(pg, delta).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("distributed_delta", delta),
            &pg,
            |b, pg| {
                b.iter(|| {
                    Simulator::new(pg)
                        .run(|deg: usize| BoundedDegreeNode::new(delta, deg))
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(150))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_port_one, bench_regular_odd, bench_bounded_degree
}
criterion_main!(benches);

//! Criterion benchmarks for the baselines: the exact branch-and-bound
//! solvers (exponential — small instances only), the classical greedy
//! 2-approximation, and the identifier-model matching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eds_baselines::weighted::{greedy_weighted_eds, minimum_weight_eds, EdgeWeights};
use eds_baselines::{exact, id_based, mmm, two_approx};
use eds_core::vertex_cover::vertex_cover_reference;
use pn_graph::{generators, ports};

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact");
    for n in [8usize, 10, 12] {
        let g = generators::gnp(n, 0.4, n as u64).expect("graph");
        group.bench_with_input(BenchmarkId::new("min_eds", n), &g, |b, g| {
            b.iter(|| exact::minimum_edge_dominating_set(g))
        });
        group.bench_with_input(BenchmarkId::new("min_maximal_matching", n), &g, |b, g| {
            b.iter(|| mmm::minimum_maximal_matching(g))
        });
    }
    group.finish();
}

fn bench_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristics");
    for n in [256usize, 1024] {
        let g = generators::random_regular(n, 6, n as u64).expect("graph");
        group.bench_with_input(BenchmarkId::new("greedy_2approx", n), &g, |b, g| {
            b.iter(|| two_approx::two_approximation(g))
        });
        group.bench_with_input(BenchmarkId::new("id_greedy", n), &g, |b, g| {
            b.iter(|| id_based::id_greedy_matching_default(g))
        });
    }
    group.finish();
}

fn bench_conversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("conversion");
    for n in [128usize, 512] {
        let g = generators::random_regular(n, 4, n as u64).expect("graph");
        let d = two_approx::two_approximation(&g);
        group.bench_with_input(
            BenchmarkId::new("eds_to_maximal_matching", n),
            &(g, d),
            |b, (g, d)| b.iter(|| two_approx::eds_to_maximal_matching(g, d)),
        );
    }
    group.finish();
}

fn bench_weighted(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted");
    for n in [8usize, 10] {
        let g = generators::gnp(n, 0.4, n as u64).expect("graph");
        let w = EdgeWeights::random(&g, 10, 7);
        group.bench_with_input(
            BenchmarkId::new("exact_min_weight", n),
            &(g, w),
            |b, (g, w)| b.iter(|| minimum_weight_eds(g, w)),
        );
    }
    let g = generators::random_regular(256, 4, 99).expect("graph");
    let w = EdgeWeights::random(&g, 10, 8);
    group.bench_with_input(
        BenchmarkId::new("greedy_weighted", 256),
        &(g, w),
        |b, (g, w)| b.iter(|| greedy_weighted_eds(g, w)),
    );
    group.finish();
}

fn bench_vertex_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex_cover");
    for n in [128usize, 512] {
        let g = generators::random_regular(n, 4, n as u64).expect("graph");
        let pg = ports::shuffled_ports(&g, 3).expect("ports");
        group.bench_with_input(BenchmarkId::new("three_approx", n), &pg, |b, pg| {
            b.iter(|| vertex_cover_reference(pg))
        });
    }
    group.finish();
}

fn bench_distributed_baselines(c: &mut Criterion) {
    use eds_baselines::distributed_mm::id_matching_distributed;
    use eds_baselines::randomized_mm::randomized_matching_distributed;
    let mut group = c.benchmark_group("distributed_baselines");
    for n in [128usize, 512] {
        let g = generators::random_regular(n, 4, n as u64).expect("graph");
        let pg = ports::shuffled_ports(&g, 5).expect("ports");
        let ids: Vec<u64> = (0..n as u64).collect();
        group.bench_with_input(
            BenchmarkId::new("id_matching", n),
            &(pg.clone(), ids),
            |b, (pg, ids)| b.iter(|| id_matching_distributed(pg, 4, ids).unwrap()),
        );
        let seeds: Vec<u64> = (0..n as u64).map(|i| i * 77 + 13).collect();
        group.bench_with_input(
            BenchmarkId::new("randomized_matching", n),
            &(pg, seeds),
            |b, (pg, seeds)| b.iter(|| randomized_matching_distributed(pg, seeds).unwrap()),
        );
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(150))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_exact, bench_heuristics, bench_conversion, bench_weighted,
        bench_vertex_cover, bench_distributed_baselines
}
criterion_main!(benches);

//! Criterion benchmarks for the certified LP lower-bound pipeline:
//! the exact-rational seeded simplex across sparse, regular and
//! heavy-tailed instances, the matching-seed fallback, and the
//! independent certificate checker. The interesting curve is simplex
//! cost vs edge count — it informs the `LpBudget` default that gates
//! which sweep instances get LP bounds rather than folklore bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eds_lp::{eds_dual_certificate, vc_dual_certificate, LpBudget};
use pn_graph::generators;

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_dual");
    let budget = LpBudget::default();
    for n in [12usize, 24, 48] {
        let g = generators::random_regular(n, 3, n as u64).expect("graph");
        group.bench_with_input(BenchmarkId::new("eds_regular3", n), &g, |b, g| {
            b.iter(|| eds_dual_certificate(g, &budget))
        });
        group.bench_with_input(BenchmarkId::new("vc_regular3", n), &g, |b, g| {
            b.iter(|| vc_dual_certificate(g, &budget))
        });
    }
    for n in [24usize, 48] {
        let g = generators::preferential_attachment(n, 2, n as u64).expect("graph");
        group.bench_with_input(BenchmarkId::new("eds_power_law", n), &g, |b, g| {
            b.iter(|| eds_dual_certificate(g, &budget))
        });
    }
    group.finish();
}

fn bench_fallback_and_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_support");
    // The matching-seed path is what million-edge sweep instances pay.
    let big = generators::random_regular(2048, 3, 7).expect("graph");
    group.bench_function("matching_seed_2048", |b| {
        b.iter(|| eds_dual_certificate(&big, &LpBudget::disabled()))
    });
    // The checker is the trusted base — it must stay cheap enough to
    // run on every certificate a sweep emits.
    let g = generators::random_regular(48, 3, 11).expect("graph");
    let cert = eds_dual_certificate(&g, &LpBudget::default());
    group.bench_function("verify_48", |b| b.iter(|| cert.verify(&g).is_ok()));
    group.finish();
}

criterion_group!(benches, bench_simplex, bench_fallback_and_checker);
criterion_main!(benches);

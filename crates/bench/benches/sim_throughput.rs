//! Round-engine throughput: rounds/sec and messages/sec of the
//! synchronous simulator on the three canonical substrate shapes —
//! a long cycle (sparse, diameter-bound), random `d`-regular graphs
//! (the paper's main workload), and a cyclic Petersen covering (the
//! lower-bound machinery's lift construction).
//!
//! The gossip protocol used here is deliberately cheap per node so the
//! numbers measure the engine, not the algorithm. Run alongside the
//! `sim_benchmark` binary, which emits the tracked `BENCH_sim.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pn_graph::{covering, generators, ports, PortNumberedGraph};
use pn_runtime::{collect_send, NodeAlgorithm, Simulator, WrongCount};

/// Fixed number of rounds every node runs before halting.
const ROUNDS: usize = 16;

#[derive(Clone)]
struct Gossip {
    degree: usize,
    acc: u64,
    left: usize,
}

impl Gossip {
    fn new(degree: usize) -> Self {
        Gossip {
            degree,
            acc: degree as u64,
            left: ROUNDS,
        }
    }
}

impl NodeAlgorithm for Gossip {
    type Message = u64;
    type Output = u64;

    fn send(&mut self, round: usize) -> Vec<u64> {
        collect_send(self, round, self.degree)
    }

    fn send_into(&mut self, _round: usize, outbox: &mut [Option<u64>]) -> Result<(), WrongCount> {
        for (q, slot) in outbox.iter_mut().enumerate() {
            *slot = Some(self.acc.wrapping_add(q as u64));
        }
        Ok(())
    }

    fn receive(&mut self, _round: usize, inbox: &[Option<u64>]) -> Option<u64> {
        for m in inbox.iter().flatten() {
            self.acc = self.acc.rotate_left(5).wrapping_add(*m);
        }
        self.left -= 1;
        (self.left == 0).then_some(self.acc)
    }
}

/// The same protocol with the pre-PR allocating `send` and no
/// `send_into` override — the honest baseline for the legacy engine
/// (one fresh `Vec` per node per round, as algorithms did before the
/// migration).
#[derive(Clone)]
struct LegacyGossip(Gossip);

impl LegacyGossip {
    fn new(degree: usize) -> Self {
        LegacyGossip(Gossip::new(degree))
    }
}

impl NodeAlgorithm for LegacyGossip {
    type Message = u64;
    type Output = u64;

    fn send(&mut self, _round: usize) -> Vec<u64> {
        (0..self.0.degree)
            .map(|q| self.0.acc.wrapping_add(q as u64))
            .collect()
    }

    fn receive(&mut self, round: usize, inbox: &[Option<u64>]) -> Option<u64> {
        self.0.receive(round, inbox)
    }
}

fn bench_workload(c: &mut Criterion, name: &str, sizes: &[(usize, PortNumberedGraph)]) {
    let mut group = c.benchmark_group(format!("sim_throughput/{name}"));
    for (n, pg) in sizes {
        // One "element" = one executed round, so the reported rate is
        // rounds/sec; messages/sec is rounds/sec x ports.
        group.throughput(Throughput::Elements(ROUNDS as u64));
        group.bench_with_input(BenchmarkId::new("send_into", n), pg, |b, pg| {
            let sim = Simulator::new(pg);
            b.iter(|| sim.run(Gossip::new).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("legacy_send", n), pg, |b, pg| {
            b.iter(|| eds_bench::legacy_engine::run_legacy(pg, LegacyGossip::new, 1 << 20).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parallel4", n), pg, |b, pg| {
            let sim = Simulator::new(pg);
            b.iter(|| sim.run_parallel(Gossip::new, 4).unwrap())
        });
    }
    group.finish();
}

fn bench_cycle(c: &mut Criterion) {
    let sizes: Vec<(usize, PortNumberedGraph)> = [1_000usize, 10_000, 100_000]
        .into_iter()
        .map(|n| {
            let g = generators::cycle(n).expect("cycle");
            (n, ports::canonical_ports(&g).expect("ports"))
        })
        .collect();
    bench_workload(c, "cycle", &sizes);
}

fn bench_random_regular(c: &mut Criterion) {
    let sizes: Vec<(usize, PortNumberedGraph)> = [1_000usize, 10_000]
        .into_iter()
        .map(|n| {
            let g = generators::random_regular(n, 3, n as u64).expect("regular");
            (n, ports::shuffled_ports(&g, 7).expect("ports"))
        })
        .collect();
    bench_workload(c, "random_3_regular", &sizes);
}

fn bench_petersen_covering(c: &mut Criterion) {
    let base = ports::shuffled_ports(&generators::petersen(), 3).expect("ports");
    let sizes: Vec<(usize, PortNumberedGraph)> = [100usize, 1_000]
        .into_iter()
        .map(|layers| {
            let (lift, _) = covering::cyclic_lift(&base, layers);
            (lift.node_count(), lift)
        })
        .collect();
    bench_workload(c, "petersen_cover", &sizes);
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(150))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_cycle, bench_random_regular, bench_petersen_covering
}
criterion_main!(benches);

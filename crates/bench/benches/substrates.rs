//! Criterion benchmarks for the substrate machinery: Euler circuits,
//! Petersen 2-factorisation, Hopcroft–Karp, port assignment, covering-map
//! verification and lifts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pn_graph::covering::{cyclic_lift, identity_map};
use pn_graph::euler::euler_circuits;
use pn_graph::factorization::two_factorize_simple;
use pn_graph::matching::{greedy_maximal_matching, hopcroft_karp, Bipartite};
use pn_graph::{generators, ports, MultiGraph};

fn bench_euler(c: &mut Criterion) {
    let mut group = c.benchmark_group("euler");
    for n in [64usize, 256, 1024] {
        let g = generators::random_regular(n, 6, n as u64).expect("graph");
        let m = MultiGraph::from_simple(&g);
        group.bench_with_input(BenchmarkId::new("circuits", n), &m, |b, m| {
            b.iter(|| euler_circuits(m).unwrap())
        });
    }
    group.finish();
}

fn bench_factorization(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_factorize");
    for n in [32usize, 128, 512] {
        let g = generators::random_regular(n, 6, n as u64).expect("graph");
        group.bench_with_input(BenchmarkId::new("d6", n), &g, |b, g| {
            b.iter(|| two_factorize_simple(g).unwrap())
        });
    }
    for d in [2usize, 4, 8] {
        let g = generators::random_regular(128, d, d as u64).expect("graph");
        group.bench_with_input(BenchmarkId::new("n128_d", d), &g, |b, g| {
            b.iter(|| two_factorize_simple(g).unwrap())
        });
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for n in [64usize, 256, 1024] {
        // 4-regular bipartite graph for Hopcroft-Karp.
        let mut bip = Bipartite::new(n, n);
        for u in 0..n {
            for s in 0..4 {
                bip.add_edge(u, (u * 3 + s * 7) % n, 0);
            }
        }
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &bip, |b, bip| {
            b.iter(|| hopcroft_karp(bip))
        });
        let g = generators::random_regular(n, 4, n as u64).expect("graph");
        group.bench_with_input(BenchmarkId::new("greedy_maximal", n), &g, |b, g| {
            b.iter(|| greedy_maximal_matching(g))
        });
    }
    group.finish();
}

fn bench_ports_and_covering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ports_covering");
    for n in [64usize, 256] {
        let g = generators::random_regular(n, 4, n as u64).expect("graph");
        group.bench_with_input(BenchmarkId::new("two_factor_ports", n), &g, |b, g| {
            b.iter(|| ports::two_factor_ports(g).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("shuffled_ports", n), &g, |b, g| {
            b.iter(|| ports::shuffled_ports(g, 1).unwrap())
        });
        let pg = ports::canonical_ports(&g).expect("ports");
        group.bench_with_input(BenchmarkId::new("covering_verify", n), &pg, |b, pg| {
            let f = identity_map(pg);
            b.iter(|| f.verify(pg, pg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("cyclic_lift_x4", n), &pg, |b, pg| {
            b.iter(|| cyclic_lift(pg, 4))
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(150))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_euler, bench_factorization, bench_matching, bench_ports_and_covering
}
criterion_main!(benches);

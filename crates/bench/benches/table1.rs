//! Criterion benchmark for the Table 1 pipeline: constructing each
//! lower-bound instance and running its tight algorithm. One benchmark
//! per table row family, parameterised by the degree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eds_core::distributed::{bounded_degree_distributed, regular_odd_distributed};
use eds_core::port_one::port_one_reference;
use eds_lower_bounds::{even, odd};

fn bench_even_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_even");
    for d in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::new("construct", d), &d, |b, &d| {
            b.iter(|| even::build(d).unwrap())
        });
        let inst = even::build(d).unwrap();
        group.bench_with_input(BenchmarkId::new("port_one", d), &inst, |b, inst| {
            b.iter(|| port_one_reference(&inst.graph))
        });
    }
    group.finish();
}

fn bench_odd_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_odd");
    for d in [3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::new("construct", d), &d, |b, &d| {
            b.iter(|| odd::build(d).unwrap())
        });
        let inst = odd::build(d).unwrap();
        group.bench_with_input(BenchmarkId::new("thm4_protocol", d), &inst, |b, inst| {
            b.iter(|| regular_odd_distributed(&inst.graph).unwrap())
        });
    }
    group.finish();
}

fn bench_bounded_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_bounded");
    for delta in [4usize, 6, 8] {
        let inst = even::build(2 * (delta / 2)).unwrap();
        group.bench_with_input(
            BenchmarkId::new("a_delta_protocol", delta),
            &inst,
            |b, inst| b.iter(|| bounded_degree_distributed(&inst.graph, delta).unwrap()),
        );
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(150))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_even_rows, bench_odd_rows, bench_bounded_rows
}
criterion_main!(benches);

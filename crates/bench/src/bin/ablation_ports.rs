//! Ablation **X-ports**: how much of the lower bound is the *wiring*?
//!
//! The Theorem 1/2 instances are ordinary graphs plus a very specific
//! port numbering (ports threaded along oriented 2-factors, which makes
//! all nodes locally identical). This ablation runs the same algorithms
//! on the same *graphs* under three numberings:
//!
//! * `adversarial` — the paper's 2-factorised numbering (the instance);
//! * `canonical`   — adjacency order;
//! * `random`      — seeded shuffles (best/worst over 20 seeds).
//!
//! The measured ratios show where the hardness lives: the adversarial
//! wiring forces the published worst case, while benign wirings of the
//! identical topology are often far cheaper. This is the paper's
//! Section 1.5 point — in edge-based covering problems the edges only
//! "look identical" if the adversary wires them so.
//!
//! Run with: `cargo run --release -p eds-bench --bin ablation_ports`

use eds_bench::Table;
use eds_core::port_one::port_one_reference;
use eds_core::regular_odd::regular_odd_reference;
use eds_lower_bounds::{even, odd};
use pn_graph::{ports, PortNumberedGraph, SimpleGraph};

/// Which of the paper's regular-graph algorithms to run.
#[derive(Clone, Copy)]
enum Algo {
    PortOne,
    RegularOdd,
}

fn measure(pg: &PortNumberedGraph, algo: Algo) -> usize {
    match algo {
        Algo::PortOne => port_one_reference(pg).len(),
        Algo::RegularOdd => regular_odd_reference(pg)
            .expect("simple graph")
            .dominating_set
            .len(),
    }
}

struct AblationRow {
    adversarial: usize,
    canonical: usize,
    random_best: usize,
    random_worst: usize,
}

fn ablate(instance: &PortNumberedGraph, graph: &SimpleGraph, algo: Algo) -> AblationRow {
    let adversarial = measure(instance, algo);
    let canonical = measure(&ports::canonical_ports(graph).expect("ports"), algo);
    let mut random_best = usize::MAX;
    let mut random_worst = 0usize;
    for seed in 0..20u64 {
        let size = measure(&ports::shuffled_ports(graph, seed).expect("ports"), algo);
        random_best = random_best.min(size);
        random_worst = random_worst.max(size);
    }
    AblationRow {
        adversarial,
        canonical,
        random_best,
        random_worst,
    }
}

fn main() {
    println!("Ablation: same graph, different port numberings");
    println!("(cells are ratios |D| / |OPT|; 20 random numberings per row)");
    println!();

    let mut table = Table::new(vec![
        "instance",
        "bound",
        "adversarial",
        "canonical",
        "random best",
        "random worst",
    ]);
    let ratio = |size: usize, opt: usize| format!("{:.4}", size as f64 / opt as f64);

    for d in [4usize, 6, 8] {
        let inst = even::build(d).expect("construction");
        let graph = inst.graph.to_simple().expect("simple");
        let row = ablate(&inst.graph, &graph, Algo::PortOne);
        let opt = inst.optimal_size();
        assert_eq!(
            row.adversarial,
            2 * d - 1,
            "adversarial numbering must force a full 2-factor"
        );
        table.row(vec![
            format!("Thm-1 graph d={d} (port-1 alg)"),
            format!("{:.4}", 4.0 - 2.0 / d as f64),
            ratio(row.adversarial, opt),
            ratio(row.canonical, opt),
            ratio(row.random_best, opt),
            ratio(row.random_worst, opt),
        ]);
    }

    for d in [3usize, 5, 7] {
        let inst = odd::build(d).expect("construction");
        let graph = inst.graph.to_simple().expect("simple");
        let row = ablate(&inst.graph, &graph, Algo::RegularOdd);
        let opt = inst.optimal_size();
        assert_eq!(
            row.adversarial,
            (2 * d - 1) * d,
            "adversarial numbering must force (2d-1)d edges"
        );
        table.row(vec![
            format!("Thm-2 graph d={d} (Thm-4 alg)"),
            format!("{:.4}", 4.0 - 6.0 / (d as f64 + 1.0)),
            ratio(row.adversarial, opt),
            ratio(row.canonical, opt),
            ratio(row.random_best, opt),
            ratio(row.random_worst, opt),
        ]);
    }

    print!("{table}");
    println!();
    println!(
        "the adversarial 2-factorised numbering forces the published worst \
         case on every instance; benign numberings of the same topology are \
         substantially cheaper"
    );
}

//! Extension experiment **X-adversary**: exhaustive adversary search over
//! *all* port numberings of small graphs.
//!
//! The paper's lower bounds exhibit one adversarial numbering per
//! instance; this experiment inverts the question. For each small graph
//! we enumerate every port numbering (`Π_v d(v)!` of them), run the
//! algorithm on each, and report the worst ratio the strongest possible
//! port-numbering adversary can force on that topology. Findings:
//!
//! * on the Theorem 1 graph (`d = 2`: the triangle `A ∪ B = K₃`) the
//!   exhaustive worst case equals the paper bound `4 - 2/d = 3` — the
//!   construction is adversary-optimal, not just a witness;
//! * even cycles `C_{2k}` *also* saturate the `d = 2` bound (the
//!   symmetric numbering forces the whole cycle), while odd cycles,
//!   `K₄` and paths cap the adversary strictly below the bound —
//!   illustrating the paper's remark that for edge-based problems the
//!   lower-bound instances are delicate: topology and wiring must
//!   conspire.
//!
//! Run with: `cargo run --release -p eds-bench --bin adversary_search`

use eds_bench::Table;
use eds_core::bounded_degree::bounded_degree_reference;
use eds_core::port_one::port_one_reference;
use eds_core::regular_odd::regular_odd_reference;
use pn_graph::ports::{all_port_orders, ports_from_orders};
use pn_graph::{generators, SimpleGraph};

fn worst_case<F>(g: &SimpleGraph, run: F) -> (usize, usize, usize)
where
    F: Fn(&pn_graph::PortNumberedGraph) -> usize,
{
    let opt = eds_baselines::exact::minimum_eds_size(g);
    let mut worst = 0;
    let mut count = 0;
    for orders in all_port_orders(g) {
        let pg = ports_from_orders(g, &orders).expect("valid orders");
        worst = worst.max(run(&pg));
        count += 1;
    }
    (worst, opt, count)
}

fn main() {
    println!("Exhaustive port-numbering adversary on small graphs");
    println!();
    let mut table = Table::new(vec![
        "graph",
        "algorithm",
        "numberings",
        "worst |D|",
        "OPT",
        "worst ratio",
        "paper bound",
    ]);

    // Theorem 1 graph for d = 2 is the triangle: bound 3 must be achieved.
    let triangle = generators::cycle(3).unwrap();
    let (worst, opt, count) = worst_case(&triangle, |pg| port_one_reference(pg).len());
    assert_eq!(worst, 3, "the exhaustive adversary must reach the bound");
    table.row(vec![
        "triangle (= Thm-1 graph, d=2)".to_owned(),
        "port-1".to_owned(),
        count.to_string(),
        worst.to_string(),
        opt.to_string(),
        format!("{:.4}", worst as f64 / opt as f64),
        "3.0000".to_owned(),
    ]);

    // Benign 2-regular topologies: the adversary is much weaker.
    for n in [4usize, 5, 6] {
        let g = generators::cycle(n).unwrap();
        let (worst, opt, count) = worst_case(&g, |pg| port_one_reference(pg).len());
        table.row(vec![
            format!("cycle C{n}"),
            "port-1".to_owned(),
            count.to_string(),
            worst.to_string(),
            opt.to_string(),
            format!("{:.4}", worst as f64 / opt as f64),
            "3.0000".to_owned(),
        ]);
    }

    // 3-regular: K4 under the Theorem 4 algorithm (bound 2.5).
    let k4 = generators::complete(4).unwrap();
    let (worst, opt, count) = worst_case(&k4, |pg| {
        regular_odd_reference(pg)
            .expect("simple")
            .dominating_set
            .len()
    });
    table.row(vec![
        "K4".to_owned(),
        "Thm 4".to_owned(),
        count.to_string(),
        worst.to_string(),
        opt.to_string(),
        format!("{:.4}", worst as f64 / opt as f64),
        "2.5000".to_owned(),
    ]);

    // Bounded degree: paths under A(2) (bound 3).
    for n in [4usize, 5, 6] {
        let g = generators::path(n).unwrap();
        let (worst, opt, count) = worst_case(&g, |pg| {
            bounded_degree_reference(pg, 2)
                .expect("runs")
                .dominating_set
                .len()
        });
        table.row(vec![
            format!("path P{n}"),
            "A(2)".to_owned(),
            count.to_string(),
            worst.to_string(),
            opt.to_string(),
            format!("{:.4}", worst as f64 / opt as f64),
            "3.0000".to_owned(),
        ]);
    }

    print!("{table}");
    println!();
    println!(
        "the Theorem 1 topology (and even cycles) let the adversary force \
         the full d = 2 bound; on K4 and paths the adversary stays strictly \
         below the respective bounds"
    );
}

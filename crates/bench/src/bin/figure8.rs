//! Regenerates **Figure 8** of the paper: the distinguishable matchings
//! `M_G(i, j)` of a 3-regular port-numbered graph, and the two phases of
//! the Theorem 4 algorithm on it.
//!
//! Run with: `cargo run -p eds-bench --bin figure8 [seed]`

use eds_bench::Table;
use eds_core::labels::Labels;
use eds_core::regular_odd::regular_odd_with_labels;
use pn_graph::{generators, ports};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    // A 3-regular graph with a scrambled port numbering, like the
    // figure's example.
    let g = generators::petersen();
    let pg = ports::shuffled_ports(&g, seed).expect("valid ports");
    let simple = pg.to_simple().expect("simple");
    let labels = Labels::compute(&pg).expect("simple graph");

    println!("=== Figure 8(a): distinguishable neighbours (3-regular, seed {seed}) ===");
    for v in pg.nodes() {
        match labels.distinguishable_neighbor(v) {
            Some((u, _)) => println!("  node {v}: distinguishable neighbour {u}"),
            None => println!("  node {v}: none"),
        }
    }

    println!();
    println!("=== Figure 8(b): the matchings M(i, j) ===");
    let mut table = Table::new(vec!["pair", "edges", "is matching"]);
    for (i, j, m) in labels.pairs() {
        let edges: Vec<String> = m
            .iter()
            .map(|&e| {
                let (u, v) = pg.edge(e).nodes();
                format!("{u}-{v}")
            })
            .collect();
        table.row(vec![
            format!("M({i},{j})"),
            if edges.is_empty() {
                "-".to_owned()
            } else {
                edges.join(" ")
            },
            pn_graph::matching::is_matching(&simple, m).to_string(),
        ]);
    }
    print!("{table}");

    let result = regular_odd_with_labels(&pg, &labels).expect("runs");
    println!();
    println!("=== Figure 8(c): Phase I — spanning-forest edge cover ===");
    println!(
        "  {} edges: {}",
        result.phase1.len(),
        render_edges(&pg, &result.phase1)
    );
    println!(
        "  forest: {}, edge cover: {}",
        eds_verify::check_forest(&simple, &result.phase1).is_ok(),
        eds_verify::check_edge_cover(&simple, &result.phase1).is_ok(),
    );

    println!();
    println!("=== Figure 8(d): Phase II — star-forest edge dominating set ===");
    println!(
        "  {} edges: {}",
        result.dominating_set.len(),
        render_edges(&pg, &result.dominating_set)
    );
    println!(
        "  star forest: {}, edge cover: {}, dominating: {}",
        eds_verify::check_star_forest(&simple, &result.dominating_set).is_ok(),
        eds_verify::check_edge_cover(&simple, &result.dominating_set).is_ok(),
        eds_verify::check_edge_dominating_set(&simple, &result.dominating_set).is_ok(),
    );
    let d = 3;
    println!(
        "  size bound |D| <= d|V|/(d+1): {} <= {}",
        result.dominating_set.len(),
        d * pg.node_count() / (d + 1)
    );
}

fn render_edges(pg: &pn_graph::PortNumberedGraph, edges: &[pn_graph::EdgeId]) -> String {
    edges
        .iter()
        .map(|&e| {
            let (u, v) = pg.edge(e).nodes();
            format!("{u}-{v}")
        })
        .collect::<Vec<_>>()
        .join(" ")
}

//! Regenerates **Figure 9** of the paper: the three phases of the
//! Theorem 5 algorithm `A(Δ)` and the Section 7 accounting (internal
//! nodes, costs, the edge sets `M`, `P`, `C`, `F`, weights, and the
//! double-counting bound).
//!
//! Run with: `cargo run -p eds-bench --bin figure9 [n] [delta] [seed]`

use eds_bench::Table;
use eds_core::analysis::{EdgeClass, Section7Analysis};
use eds_core::bounded_degree::{bounded_degree_reference, check_section7_properties};
use pn_graph::matching::greedy_maximal_matching;
use pn_graph::{generators, ports};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(24);
    let delta: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);

    let g = generators::random_bounded_degree(n, delta, 0.8, seed).expect("generator");
    let pg = ports::shuffled_ports(&g, seed ^ 0xf19).expect("valid ports");
    let simple = pg.to_simple().expect("simple");

    println!("=== Figure 9: A(Δ) phases, n = {n}, Δ = {delta}, seed = {seed} ===");
    println!(
        "instance: {} nodes, {} edges, max degree {}",
        pg.node_count(),
        pg.edge_count(),
        pg.max_degree()
    );

    let result = bounded_degree_reference(&pg, delta).expect("algorithm runs");
    println!();
    println!(
        "Phase I   matching on distinguishable edges: {} edges",
        result.phase1.len()
    );
    for (idx, m_i) in result.phase2_added.iter().enumerate() {
        println!(
            "Phase II  B_{} maximal matching M_{}: {} edges",
            idx + 2,
            idx + 2,
            m_i.len()
        );
    }
    println!("Matching M (phases I+II): {} edges", result.matching.len());
    println!(
        "Phase III 2-matching P: {} edges",
        result.two_matching.len()
    );
    println!("Output D = M ∪ P: {} edges", result.dominating_set.len());
    println!();
    println!(
        "Section 7.3 properties (a)-(c): {}",
        match check_section7_properties(&pg, &result) {
            Ok(()) => "all hold".to_owned(),
            Err(e) => format!("VIOLATED: {e}"),
        }
    );

    // Section 7.4-7.8 accounting against a maximal matching D*.
    let dstar = greedy_maximal_matching(&simple);
    let analysis = Section7Analysis::build(&pg, &result, &dstar).expect("accounting");

    println!();
    println!(
        "=== Section 7 accounting (D* = greedy maximal matching, {} edges) ===",
        dstar.len()
    );
    let class_count = |c: EdgeClass| analysis.classes.iter().filter(|&&x| x == c).count();
    println!(
        "edge partition: |M| = {}, |P| = {}, |C| = {}, |F| = {}",
        class_count(EdgeClass::InM),
        class_count(EdgeClass::InP),
        class_count(EdgeClass::InC),
        class_count(EdgeClass::InF),
    );

    let mut hist = Table::new(vec!["cost c(v)", "internal nodes I_x"]);
    for (x, count) in analysis.histogram.iter().enumerate() {
        hist.row(vec![format!("{}/2", x), count.to_string()]);
    }
    print!("{hist}");
    println!(
        "identities: |I| = 2|D*| = {}, Σ x I_x = 2|D| = {}",
        2 * analysis.dstar_size,
        2 * analysis.d_size
    );
    println!(
        "total edge weight w(E) = {} (must be >= 0)",
        analysis.total_weight
    );
    match analysis.verify(&pg, delta) {
        Ok(()) => println!("every inequality of the Section 7 proof holds on this instance"),
        Err(e) => {
            println!("PROOF INEQUALITY VIOLATED: {e}");
            std::process::exit(1);
        }
    }
    let k = (delta / 2) as f64;
    println!(
        "ratio |D|/|D*| = {:.4} <= 4 - 1/k = {:.4}",
        analysis.d_size as f64 / analysis.dstar_size as f64,
        4.0 - 1.0 / k
    );
}

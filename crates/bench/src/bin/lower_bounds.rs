//! Regenerates **Figures 4–7** of the paper: the lower-bound
//! constructions of Theorems 1 and 2, their port numberings, optimal
//! solutions, target multigraphs and covering maps — and demonstrates the
//! covering-map indistinguishability *executably* by running the
//! distributed protocols on both the construction `G` and its quotient
//! multigraph `M` and comparing outputs along the fibres.
//!
//! Run with: `cargo run -p eds-bench --bin lower_bounds [d_even] [d_odd]`

use eds_core::distributed::{BoundedDegreeNode, RegularOddNode};
use eds_lower_bounds::{even, odd};
use pn_runtime::{fiber_agreement, Simulator};

fn main() {
    let d_even: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let d_odd: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    figure4(d_even);
    println!();
    figures5to7(d_odd);
}

/// Figure 4: the Theorem 1 graph for even `d` (paper shows d = 6).
fn figure4(d: usize) {
    println!("=== Figure 4: Theorem 1 construction, d = {d} (even) ===");
    let inst = even::build(d).expect("even d >= 2");
    let g = &inst.graph;
    println!(
        "G: {} nodes (A = {}, B = {}), {} edges, {}-regular: {}",
        g.node_count(),
        d,
        d - 1,
        g.edge_count(),
        d,
        g.regular_degree() == Some(d),
    );
    println!(
        "optimal EDS S: {} edges; |E| = (2d-1)|S|: {}",
        inst.optimal_size(),
        g.edge_count() == (2 * d - 1) * inst.optimal_size(),
    );
    println!(
        "port numbering: ports 2i-1 -> 2i along {} oriented 2-factors",
        d / 2
    );
    println!(
        "covering map onto the 1-node multigraph M: verified = {}",
        inst.covering.verify(g, &inst.target).is_ok()
    );

    // Executable indistinguishability: the A(d+1) protocol cannot tell
    // the 2d-1 nodes of G from the single node of M.
    let delta = d + 1;
    let on_g = Simulator::new(g)
        .run(|deg: usize| BoundedDegreeNode::new(delta, deg))
        .expect("protocol runs on G");
    let on_m = Simulator::new(&inst.target)
        .run(|deg: usize| BoundedDegreeNode::new(delta, deg))
        .expect("protocol runs on M");
    let fibers = inst.covering.fibers(inst.target.node_count());
    let agree =
        fiber_agreement(&fibers, &on_g.outputs).is_ok() && on_g.outputs[0] == on_m.outputs[0];
    println!(
        "indistinguishability: all {} nodes of G output exactly what the \
         single node of M outputs: {}",
        g.node_count(),
        agree
    );
    assert!(agree, "covering-map lemma violated");
}

/// Figures 5–7: the Theorem 2 construction for odd `d` (paper shows
/// d = 5), component structure, hubs, optimum and quotient multigraph.
fn figures5to7(d: usize) {
    println!("=== Figures 5-7: Theorem 2 construction, d = {d} (odd) ===");
    let inst = odd::build(d).expect("odd d >= 1");
    let k = (d - 1) / 2;
    let g = &inst.graph;
    println!(
        "G: {} nodes = {} components H(l) of {} nodes + {} hubs (P: {}, Q: {})",
        g.node_count(),
        d,
        4 * k + 1,
        d + 2 * k,
        d,
        2 * k,
    );
    println!(
        "{}-regular: {}; edges: {}",
        d,
        g.regular_degree() == Some(d),
        g.edge_count()
    );
    println!(
        "each H(l): star R(l) ({} edges) + matching S(l) ({} edges) + crown T(l) ({} edges)",
        2 * k,
        k,
        2 * k * (2 * k).saturating_sub(1),
    );
    println!(
        "optimal EDS D* = Y ∪ ⋃S(l): {} edges = (k+1)d with k = {k}",
        inst.optimal_size()
    );
    println!(
        "target multigraph M: {} nodes (x_1..x_{d}, y); covering map verified = {}",
        inst.target.node_count(),
        inst.covering.verify(g, &inst.target).is_ok()
    );

    // Executable indistinguishability with the Theorem 4 protocol: every
    // node of component H(l) answers exactly like the quotient node x_l,
    // and every hub like y.
    let on_g = Simulator::new(g)
        .run(RegularOddNode::new)
        .expect("protocol runs on G");
    let on_m = Simulator::new(&inst.target)
        .run(RegularOddNode::new)
        .expect("protocol runs on M");
    let fibers = inst.covering.fibers(inst.target.node_count());
    let mut agree = fiber_agreement(&fibers, &on_g.outputs).is_ok();
    for (x, fiber) in fibers.iter().enumerate() {
        if let Some(&v) = fiber.first() {
            agree &= on_g.outputs[v.index()] == on_m.outputs[x];
        }
    }
    println!("indistinguishability: fibre outputs on G match the quotient M: {agree}");
    assert!(agree, "covering-map lemma violated");

    // The forced cost: the Theorem 4 protocol on this instance pays
    // exactly (2d-1) d edges.
    let edges = pn_runtime::edge_set_from_outputs(g, &on_g.outputs).expect("consistent");
    println!(
        "protocol output on G: {} edges (theory forces (2d-1)d = {}), ratio {:.4} \
         = 4 - 6/(d+1) = {:.4}",
        edges.len(),
        (2 * d - 1) * d,
        edges.len() as f64 / inst.optimal_size() as f64,
        4.0 - 6.0 / (d as f64 + 1.0),
    );
}

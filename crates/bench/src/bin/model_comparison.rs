//! Extension experiment **X-models**: identifier model vs port-numbering
//! model, measured on identical instances.
//!
//! The paper's Section 1.3–1.4 positions the two models:
//!
//! * **with identifiers**, a maximal matching — hence a 2-approximate
//!   EDS — is computable in `O(Δ + log* n)` rounds (Panconesi–Rizzi;
//!   implemented as a real message-passing protocol in
//!   `eds_baselines::distributed_mm`);
//! * **anonymously**, nothing better than `4 - 2/d` (even `d`) is
//!   possible at any speed, and the tight `A(Δ)` protocol needs `O(Δ²)`
//!   rounds.
//!
//! This binary runs both protocols on the same graphs and reports rounds,
//! messages and solution quality side by side.
//!
//! Run with: `cargo run --release -p eds-bench --bin model_comparison`

use eds_baselines::distributed_mm::{id_matching_distributed, id_matching_rounds, IdMatchingNode};
use eds_baselines::randomized_mm::{
    randomized_matching_distributed, randomized_matching_phases, randomized_matching_rounds,
};
use eds_bench::Table;
use eds_core::distributed::{bounded_schedule_length, BoundedDegreeNode};
use pn_graph::{generators, ports};
use pn_runtime::Simulator;

fn main() {
    println!(
        "Deterministic-ID vs randomized-anonymous vs deterministic-anonymous, identical instances"
    );
    println!();
    let mut table = Table::new(vec![
        "instance",
        "n",
        "ID rounds",
        "rand rounds",
        "anon rounds",
        "ID |D|",
        "rand |D|",
        "anon |D|",
    ]);

    for (name, n, d) in [
        ("random 4-regular", 32usize, 4usize),
        ("random 4-regular", 128, 4),
        ("random 4-regular", 512, 4),
        ("random 6-regular", 128, 6),
        ("torus 12x12", 144, 4),
    ] {
        let g = if name.starts_with("torus") {
            generators::torus(12, 12).expect("torus")
        } else {
            generators::random_regular(n, d, n as u64).expect("regular")
        };
        let pg = ports::shuffled_ports(&g, n as u64).expect("ports");
        let delta = pg.max_degree();
        let ids: Vec<u64> = (0..g.node_count() as u64)
            .map(|i| i * 1_000_003 % 65_537)
            .collect();
        // The modular scramble may collide for large n; fall back to
        // identity-based unique ids.
        let ids = if has_duplicates(&ids) {
            (0..g.node_count() as u64).collect()
        } else {
            ids
        };

        let id_run = Simulator::new(&pg)
            .run_with_inputs(&ids, |deg, &id| IdMatchingNode::new(delta, deg, id))
            .expect("id protocol");
        let id_edges = id_matching_distributed(&pg, delta, &ids).expect("id protocol");

        let anon_run = Simulator::new(&pg)
            .run(|deg: usize| BoundedDegreeNode::new(delta, deg))
            .expect("anonymous protocol");
        let anon_edges =
            pn_runtime::edge_set_from_outputs(&pg, &anon_run.outputs).expect("consistent");

        let seeds: Vec<u64> = (0..pg.node_count() as u64)
            .map(|i| i.wrapping_mul(0x517c_c1b7_2722_0a95) ^ 0xabcd)
            .collect();
        let rand_edges = randomized_matching_distributed(&pg, &seeds).expect("rand protocol");
        let rand_rounds = randomized_matching_rounds(randomized_matching_phases(pg.node_count()));

        assert_eq!(id_run.rounds, id_matching_rounds(delta));
        assert_eq!(anon_run.rounds, bounded_schedule_length(delta));
        table.row(vec![
            name.to_owned(),
            pg.node_count().to_string(),
            id_run.rounds.to_string(),
            rand_rounds.to_string(),
            anon_run.rounds.to_string(),
            id_edges.len().to_string(),
            rand_edges.len().to_string(),
            anon_edges.len().to_string(),
        ]);
    }
    print!("{table}");
    println!();
    println!(
        "three regimes, exactly as the theory places them: deterministic \
         IDs give a maximal matching in O(Δ + log* n) rounds; random seeds \
         give one in O(log n) rounds (the round column grows with n); \
         deterministic anonymity runs in O(Δ²) rounds but is capped at the \
         factor ~4 worst case the paper proves — on these benign inputs \
         all three qualities happen to be close"
    );
}

fn has_duplicates(ids: &[u64]) -> bool {
    let mut sorted = ids.to_vec();
    sorted.sort_unstable();
    sorted.windows(2).any(|w| w[0] == w[1])
}

//! Extension experiment **X-random**: average-case approximation quality.
//!
//! The paper's ratios are worst-case over adversarial instances and port
//! numberings; this binary measures how the algorithms behave on *random*
//! instances, against the exact optimum (branch and bound) and the
//! classical baselines. The worst-case bounds must never be exceeded; in
//! practice the algorithms land far below them.
//!
//! Run with: `cargo run --release -p eds-bench --bin random_ratio [n] [samples]`

use eds_bench::Table;
use eds_core::bounded_degree::bounded_degree_reference;
use eds_core::port_one::port_one_reference;
use eds_core::regular_odd::regular_odd_reference;
use eds_lower_bounds::bound::corollary1_bound;
use pn_graph::{generators, ports};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(12);
    let samples: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);

    println!("Average-case approximation ratios on random d-regular graphs");
    println!("(n = {n}, {samples} seeds per row; OPT by branch and bound)");
    println!();

    let mut table = Table::new(vec![
        "d",
        "algorithm",
        "worst-case bound",
        "mean ratio",
        "max ratio",
        "mean |D|",
        "mean OPT",
        "2-approx mean",
    ]);

    for d in 2..=6usize {
        let mut ratios = Vec::new();
        let mut sizes = Vec::new();
        let mut opts = Vec::new();
        let mut greedy_ratios = Vec::new();
        for seed in 0..samples {
            let n_eff = if (n * d) % 2 == 1 { n + 1 } else { n };
            let g =
                generators::random_regular(n_eff, d, seed * 131 + d as u64).expect("regular graph");
            let pg = ports::shuffled_ports(&g, seed).expect("ports");
            let simple = pg.to_simple().expect("simple");
            let opt = eds_baselines::exact::minimum_eds_size(&simple);
            let found = if d % 2 == 0 {
                port_one_reference(&pg).len()
            } else {
                regular_odd_reference(&pg)
                    .expect("runs")
                    .dominating_set
                    .len()
            };
            let greedy = eds_baselines::two_approx::two_approximation(&simple).len();
            ratios.push(found as f64 / opt as f64);
            greedy_ratios.push(greedy as f64 / opt as f64);
            sizes.push(found as f64);
            opts.push(opt as f64);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let max = |v: &[f64]| v.iter().cloned().fold(f64::MIN, f64::max);
        let bound = if d % 2 == 0 {
            4.0 - 2.0 / d as f64
        } else {
            4.0 - 6.0 / (d as f64 + 1.0)
        };
        let algo = if d % 2 == 0 {
            "port-1 (Thm 3)"
        } else {
            "Thm 4"
        };
        assert!(
            max(&ratios) <= bound + 1e-9,
            "worst-case bound exceeded at d = {d}"
        );
        table.row(vec![
            d.to_string(),
            algo.to_owned(),
            format!("{bound:.4}"),
            format!("{:.4}", mean(&ratios)),
            format!("{:.4}", max(&ratios)),
            format!("{:.2}", mean(&sizes)),
            format!("{:.2}", mean(&opts)),
            format!("{:.4}", mean(&greedy_ratios)),
        ]);
    }
    print!("{table}");

    println!();
    println!("Bounded-degree A(Δ) on random graphs of max degree Δ:");
    let mut table2 = Table::new(vec![
        "Δ",
        "worst-case bound",
        "mean ratio",
        "max ratio",
        "mean |D|",
        "mean OPT",
    ]);
    for delta in 2..=6usize {
        let mut ratios = Vec::new();
        let mut sizes = Vec::new();
        let mut opts = Vec::new();
        for seed in 0..samples {
            let g = generators::random_bounded_degree(n, delta, 0.8, seed * 17 + delta as u64)
                .expect("bounded graph");
            if g.is_edgeless() {
                continue;
            }
            let pg = ports::shuffled_ports(&g, seed).expect("ports");
            let simple = pg.to_simple().expect("simple");
            let opt = eds_baselines::exact::minimum_eds_size(&simple);
            let found = bounded_degree_reference(&pg, delta)
                .expect("runs")
                .dominating_set
                .len();
            ratios.push(found as f64 / opt as f64);
            sizes.push(found as f64);
            opts.push(opt as f64);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let max = |v: &[f64]| v.iter().cloned().fold(f64::MIN, f64::max);
        let bound = corollary1_bound(delta).as_f64();
        assert!(
            max(&ratios) <= bound + 1e-9,
            "worst-case bound exceeded at Δ = {delta}"
        );
        table2.row(vec![
            delta.to_string(),
            format!("{bound:.4}"),
            format!("{:.4}", mean(&ratios)),
            format!("{:.4}", max(&ratios)),
            format!("{:.2}", mean(&sizes)),
            format!("{:.2}", mean(&opts)),
        ]);
    }
    print!("{table2}");
    println!();
    println!("all measured ratios stay within the paper's worst-case bounds");
}

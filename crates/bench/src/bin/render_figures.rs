//! Renders the paper's figures as Graphviz DOT files.
//!
//! Writes one `.dot` file per figure into the output directory
//! (default `figures/`):
//!
//! * `figure1_{a,b,c,d}.dot` — EDS / maximal matching / minimum EDS /
//!   minimum maximal matching on the Figure 1-style graph;
//! * `figure2_multigraph.dot` — the two-node multigraph with port labels;
//! * `figure4_even_d4.dot` — the Theorem 1 construction (optimal `S` in
//!   red, factor `G(1)` — the forced output — in blue);
//! * `figure5_component_d5.dot` — one `H(ℓ)` component of the Theorem 2
//!   construction (matching `S(ℓ)` in red, star `R(ℓ)` in green);
//! * `figure8_matchings.dot` — a 3-regular graph with the union of the
//!   distinguishable matchings highlighted.
//!
//! Render with e.g. `dot -Tpng figures/figure4_even_d4.dot -o fig4.png`.
//!
//! Run with: `cargo run -p eds-bench --bin render_figures [out_dir]`

use eds_core::labels::Labels;
use eds_core::port_one::port_one_reference;
use pn_graph::dot::{pn_to_dot, to_dot, EdgeClassStyle};
use pn_graph::{generators, ports, Endpoint, PnGraphBuilder, Port, SimpleGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "figures".to_owned());
    std::fs::create_dir_all(&out_dir)?;
    let write = |name: &str, contents: String| -> std::io::Result<()> {
        let path = format!("{out_dir}/{name}");
        std::fs::write(&path, contents)?;
        println!("wrote {path}");
        Ok(())
    };

    // --- Figure 1: the four panels on one graph. ---
    let mut g = SimpleGraph::new(7);
    for (u, v) in [
        (0, 1),
        (1, 2),
        (0, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (3, 5),
        (0, 6),
    ] {
        g.add_edge_ids(u, v)?;
    }
    let panel_a: Vec<_> = g
        .incident_edges(pn_graph::NodeId::new(2))
        .chain(g.incident_edges(pn_graph::NodeId::new(4)))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    write(
        "figure1_a.dot",
        to_dot(&g, "fig1a", &[EdgeClassStyle::new("eds", "red", panel_a)]),
    )?;
    let panel_b = eds_baselines::two_approx::two_approximation(&g);
    write(
        "figure1_b.dot",
        to_dot(
            &g,
            "fig1b",
            &[EdgeClassStyle::new("maximal matching", "blue", panel_b)],
        ),
    )?;
    let panel_c = eds_baselines::exact::minimum_edge_dominating_set(&g);
    write(
        "figure1_c.dot",
        to_dot(
            &g,
            "fig1c",
            &[EdgeClassStyle::new("minimum eds", "red", panel_c)],
        ),
    )?;
    let panel_d = eds_baselines::mmm::minimum_maximal_matching(&g);
    write(
        "figure1_d.dot",
        to_dot(
            &g,
            "fig1d",
            &[EdgeClassStyle::new(
                "minimum maximal matching",
                "blue",
                panel_d,
            )],
        ),
    )?;

    // --- Figure 2: the multigraph with ports. ---
    let mut b = PnGraphBuilder::new();
    let s = b.add_node(3);
    let t = b.add_node(4);
    b.connect(
        Endpoint::new(s, Port::new(1)),
        Endpoint::new(t, Port::new(2)),
    )?;
    b.connect(
        Endpoint::new(s, Port::new(2)),
        Endpoint::new(t, Port::new(1)),
    )?;
    b.fix_point(Endpoint::new(s, Port::new(3)))?;
    b.connect(
        Endpoint::new(t, Port::new(3)),
        Endpoint::new(t, Port::new(4)),
    )?;
    let m = b.finish()?;
    write("figure2_multigraph.dot", pn_to_dot(&m, "fig2", &[]))?;

    // --- Figure 4: Theorem 1 construction at d = 4. ---
    let inst = eds_lower_bounds::even::build(4)?;
    let forced = port_one_reference(&inst.graph);
    write(
        "figure4_even_d4.dot",
        pn_to_dot(
            &inst.graph,
            "fig4",
            &[
                EdgeClassStyle::new("forced 2-factor output", "blue", forced),
                EdgeClassStyle::new("optimal S", "red", inst.optimal.clone()),
            ],
        ),
    )?;

    // --- Figure 5: one component of the Theorem 2 construction, d = 5. ---
    let inst5 = eds_lower_bounds::odd::build(5)?;
    let layout = eds_lower_bounds::odd::Layout::new(5);
    let view = inst5.graph.to_simple()?;
    // Collect H(1)'s internal edges and classify.
    let mut s_edges = Vec::new();
    let mut r_edges = Vec::new();
    for t in 1..=layout.k {
        s_edges.push(
            view.find_edge(layout.a(1, 2 * t - 1), layout.a(1, 2 * t))
                .expect("S(1) edge"),
        );
    }
    for i in 1..=2 * layout.k {
        r_edges.push(
            view.find_edge(layout.c(1), layout.b(1, i))
                .expect("R(1) edge"),
        );
    }
    write(
        "figure5_component_d5.dot",
        pn_to_dot(
            &inst5.graph,
            "fig5",
            &[
                EdgeClassStyle::new("matching S(1)", "red", s_edges),
                EdgeClassStyle::new("star R(1)", "green", r_edges),
            ],
        ),
    )?;

    // --- Figure 8: distinguishable matchings of a 3-regular graph. ---
    let petersen = ports::shuffled_ports(&generators::petersen(), 1)?;
    let labels = Labels::compute(&petersen)?;
    write(
        "figure8_matchings.dot",
        pn_to_dot(
            &petersen,
            "fig8",
            &[EdgeClassStyle::new(
                "union of M(i,j)",
                "purple",
                labels.all_distinguishable_edges(),
            )],
        ),
    )?;

    println!("done: render with `dot -Tpng <file> -o <out>.png`");
    Ok(())
}

//! Extension experiment **X-rounds**: measured round complexity.
//!
//! The paper claims `O(1)` rounds for Theorem 3, `O(d²)` for Theorem 4
//! and `O(Δ²)` for Theorem 5 — independent of `n` (these are *local*
//! algorithms). This binary measures actual round counts across `d`, `Δ`
//! and `n`, confirming both the quadratic growth in the degree bound and
//! the complete independence from the network size.
//!
//! Run with: `cargo run --release -p eds-bench --bin round_complexity`

use eds_bench::Table;
use eds_core::distributed::{
    bounded_schedule_length, regular_odd_rounds, BoundedDegreeNode, RegularOddNode,
};
use eds_core::port_one::PortOneNode;
use pn_graph::{generators, ports};
use pn_runtime::Simulator;

fn main() {
    println!("Measured round complexity (local algorithms: no n-dependence)");
    println!();

    // Rounds vs degree at fixed n.
    let mut table = Table::new(vec!["algorithm", "param", "n", "rounds", "formula"]);
    for d in [2usize, 4, 6, 8] {
        let g = generators::random_regular(2 * d + 4, d, d as u64).expect("graph");
        let pg = ports::shuffled_ports(&g, 1).expect("ports");
        let run = Simulator::new(&pg).run(PortOneNode::new).expect("runs");
        table.row(vec![
            "port-1 (Thm 3)".to_owned(),
            format!("d={d}"),
            pg.node_count().to_string(),
            run.rounds.to_string(),
            "1".to_owned(),
        ]);
    }
    for d in [1usize, 3, 5, 7] {
        let g = generators::random_regular(2 * d + 4, d, d as u64).expect("graph");
        let pg = ports::shuffled_ports(&g, 2).expect("ports");
        let run = Simulator::new(&pg).run(RegularOddNode::new).expect("runs");
        assert_eq!(run.rounds, regular_odd_rounds(d));
        table.row(vec![
            "Thm 4".to_owned(),
            format!("d={d}"),
            pg.node_count().to_string(),
            run.rounds.to_string(),
            format!("2+2d² = {}", regular_odd_rounds(d)),
        ]);
    }
    for delta in [2usize, 3, 4, 5, 6] {
        let g = generators::random_bounded_degree(24, delta, 0.8, delta as u64).expect("graph");
        let pg = ports::shuffled_ports(&g, 3).expect("ports");
        let run = Simulator::new(&pg)
            .run(|deg: usize| BoundedDegreeNode::new(delta, deg))
            .expect("runs");
        assert_eq!(run.rounds, bounded_schedule_length(delta));
        table.row(vec![
            "A(Δ) (Thm 5)".to_owned(),
            format!("Δ={delta}"),
            pg.node_count().to_string(),
            run.rounds.to_string(),
            format!("O(Δ²) = {}", bounded_schedule_length(delta)),
        ]);
    }
    print!("{table}");

    // Independence from n.
    println!();
    println!("Round counts as n grows (d = 4 regular, A(5)): locality in action");
    let mut table2 = Table::new(vec!["n", "Thm 3 rounds", "A(5) rounds"]);
    for n in [16usize, 64, 256, 1024] {
        let g = generators::random_regular(n, 4, n as u64).expect("graph");
        let pg = ports::shuffled_ports(&g, 4).expect("ports");
        let r1 = Simulator::new(&pg)
            .run(PortOneNode::new)
            .expect("runs")
            .rounds;
        let r2 = Simulator::new(&pg)
            .run(|deg: usize| BoundedDegreeNode::new(5, deg))
            .expect("runs")
            .rounds;
        table2.row(vec![n.to_string(), r1.to_string(), r2.to_string()]);
    }
    print!("{table2}");
    println!();
    println!("rounds are constant in n for every algorithm, as the paper proves");
}

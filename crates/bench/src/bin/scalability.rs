//! Extension experiment **X-scale**: how large a network the simulator
//! handles, and what the parallel driver buys.
//!
//! Runs the distributed `A(Δ)` protocol on random geometric
//! "sensor networks" from 10⁴ to 2·10⁵ nodes, sequentially and with the
//! multi-threaded driver, reporting wall-clock times, message totals and
//! (identical) solution sizes. Locality makes the round count constant,
//! so total work grows linearly in the number of links — the simulation
//! scales the same way.
//!
//! Run with: `cargo run --release -p eds-bench --bin scalability [max_n]`

use eds_bench::Table;
use eds_core::distributed::BoundedDegreeNode;
use pn_graph::{generators, ports, NodeId, SimpleGraph};
use pn_runtime::Simulator;
use std::time::Instant;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(160_000);
    let delta = 6;
    let threads = std::thread::available_parallelism()
        .map(|x| x.get())
        .unwrap_or(4);

    println!(
        "Scalability of the distributed A({delta}) protocol (parallel driver: {threads} threads)"
    );
    println!();
    let mut table = Table::new(vec![
        "nodes", "links", "rounds", "messages", "|D|", "seq (ms)", "par (ms)", "speedup",
    ]);

    let mut n = 10_000usize;
    while n <= max_n {
        // Degree-capped random geometric network.
        let radius = (2.0 / n as f64).sqrt();
        let full = generators::random_geometric(n, radius, n as u64).expect("generator");
        let mut g = SimpleGraph::new(n);
        for (_, u, v) in full.edges() {
            if g.degree(u) < delta && g.degree(v) < delta {
                g.add_edge(u, v).expect("valid edge");
            }
        }
        let _ = NodeId::new(0);
        let pg = ports::shuffled_ports(&g, n as u64).expect("ports");

        let t0 = Instant::now();
        let seq = Simulator::new(&pg)
            .run(|d: usize| BoundedDegreeNode::new(delta, d))
            .expect("sequential run");
        let t_seq = t0.elapsed();

        let t0 = Instant::now();
        let par = Simulator::new(&pg)
            .run_parallel(|d: usize| BoundedDegreeNode::new(delta, d), threads)
            .expect("parallel run");
        let t_par = t0.elapsed();

        assert_eq!(seq.outputs, par.outputs, "parallel must be bit-identical");
        let edges = pn_runtime::edge_set_from_outputs(&pg, &seq.outputs).expect("consistent");

        table.row(vec![
            n.to_string(),
            pg.edge_count().to_string(),
            seq.rounds.to_string(),
            seq.messages.to_string(),
            edges.len().to_string(),
            format!("{:.0}", t_seq.as_secs_f64() * 1e3),
            format!("{:.0}", t_par.as_secs_f64() * 1e3),
            format!("{:.2}x", t_seq.as_secs_f64() / t_par.as_secs_f64()),
        ]);
        n *= 2;
    }
    print!("{table}");
    println!();
    if threads <= 1 {
        println!(
            "round count is flat (locality); time scales with links; only one \
             core is available here, so the parallel driver is exercised for \
             bit-identical correctness rather than speedup"
        );
    } else {
        println!(
            "round count is flat (locality); time scales with links; the \
             parallel driver gives bit-identical outputs"
        );
    }
}

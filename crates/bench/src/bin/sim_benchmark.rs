//! Emits `BENCH_sim.json`: the tracked round-engine throughput numbers.
//!
//! For each workload the binary runs the same gossip protocol through
//! the preserved pre-optimisation loop
//! ([`eds_bench::legacy_engine::run_legacy`]), the current sequential
//! engine ([`pn_runtime::Simulator::run`], `send_into`-based), and the
//! persistent worker-pool parallel engine at 1/2/4/8 threads, asserts
//! all [`pn_runtime::Run`]s are bit-identical, and records rounds/sec
//! and messages/sec plus two speedups: sequential over legacy and the
//! best parallel configuration over sequential (the thread-scaling
//! curve). `host_threads` records the measuring host's available
//! parallelism — on a single-core host the parallel curve measures pure
//! pool overhead and the best ratio is expected to sit just below 1.
//!
//! Usage:
//!
//! ```text
//! sim_benchmark [--reduced] [--check-parallel] [--out PATH]
//! ```
//!
//! * `--reduced` measures only the ≥100k-node workload (the CI
//!   perf-smoke set) and skips the slow legacy engine;
//! * `--check-parallel` exits non-zero if `run_parallel(4)` falls below
//!   90% of sequential throughput on any ≥100k-node workload — the
//!   break-even regression gate, with one fresh remeasurement before a
//!   failure is declared (shared CI runners are noisy). The check is
//!   skipped (with a notice) when the host has fewer than four cores,
//!   where a 4-thread pool competes with itself for timeslices (and on
//!   one core beating sequential is physically impossible);
//! * `--out PATH` overrides the report path (default `BENCH_sim.json`
//!   in the current directory).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use eds_bench::legacy_engine::run_legacy;
use pn_graph::{covering, generators, ports, PortNumberedGraph};
use pn_runtime::{collect_send, NodeAlgorithm, Run, Simulator, WrongCount};

/// Fixed number of rounds every node runs before halting.
const ROUNDS: usize = 16;

/// The parallel thread counts of the scaling curve.
const THREAD_CURVE: [usize; 4] = [1, 2, 4, 8];

/// The perf-smoke gate: parallel(4) must reach this fraction of
/// sequential throughput on ≥100k-node workloads (multi-core hosts).
const BREAK_EVEN_TOLERANCE: f64 = 0.9;

#[derive(Clone)]
struct Gossip {
    degree: usize,
    acc: u64,
    left: usize,
}

impl Gossip {
    fn new(degree: usize) -> Self {
        Gossip {
            degree,
            acc: degree as u64,
            left: ROUNDS,
        }
    }
}

impl NodeAlgorithm for Gossip {
    type Message = u64;
    type Output = u64;

    fn send(&mut self, round: usize) -> Vec<u64> {
        collect_send(self, round, self.degree)
    }

    fn send_into(&mut self, _round: usize, outbox: &mut [Option<u64>]) -> Result<(), WrongCount> {
        for (q, slot) in outbox.iter_mut().enumerate() {
            *slot = Some(self.acc.wrapping_add(q as u64));
        }
        Ok(())
    }

    fn receive(&mut self, _round: usize, inbox: &[Option<u64>]) -> Option<u64> {
        for m in inbox.iter().flatten() {
            self.acc = self.acc.rotate_left(5).wrapping_add(*m);
        }
        self.left -= 1;
        (self.left == 0).then_some(self.acc)
    }
}

/// The same protocol with the pre-PR allocating `send` and no
/// `send_into` override — the honest baseline for [`run_legacy`]: one
/// fresh `Vec` per node per round, exactly what algorithms did before
/// the migration (going through `collect_send` here would handicap the
/// baseline with an extra buffer and pass).
#[derive(Clone)]
struct LegacyGossip(Gossip);

impl LegacyGossip {
    fn new(degree: usize) -> Self {
        LegacyGossip(Gossip::new(degree))
    }
}

impl NodeAlgorithm for LegacyGossip {
    type Message = u64;
    type Output = u64;

    fn send(&mut self, _round: usize) -> Vec<u64> {
        (0..self.0.degree)
            .map(|q| self.0.acc.wrapping_add(q as u64))
            .collect()
    }

    fn receive(&mut self, round: usize, inbox: &[Option<u64>]) -> Option<u64> {
        self.0.receive(round, inbox)
    }
}

/// Times `f` adaptively: repeats until ~0.5 s of measurement, reports
/// the best (lowest) seconds per call.
fn time_best<R>(mut f: impl FnMut() -> R) -> f64 {
    // Warm-up and calibration.
    let start = Instant::now();
    let _ = f();
    let once = start.elapsed().as_secs_f64().max(1e-9);
    let reps = ((0.25 / once).ceil() as usize).clamp(1, 1000);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..reps {
            let _ = f();
        }
        best = best.min(start.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

fn assert_identical(a: &Run<u64>, b: &Run<u64>, what: &str) {
    assert!(
        a.outputs == b.outputs
            && a.halted_at == b.halted_at
            && a.rounds == b.rounds
            && a.messages == b.messages,
        "engines diverged: {what}"
    );
}

struct Row {
    name: &'static str,
    nodes: usize,
    ports: usize,
    rounds: usize,
    /// `None` under `--reduced` (legacy skipped).
    legacy_rps: Option<f64>,
    sequential_rps: f64,
    /// One rate per [`THREAD_CURVE`] entry.
    parallel_rps: [f64; THREAD_CURVE.len()],
    sequential_mps: f64,
    speedup_sequential_vs_legacy: Option<f64>,
    speedup_parallel_best_vs_sequential: f64,
}

impl Row {
    fn parallel_at(&self, threads: usize) -> f64 {
        THREAD_CURVE
            .iter()
            .position(|&t| t == threads)
            .map(|i| self.parallel_rps[i])
            .expect("threads on the curve")
    }
}

fn measure(name: &'static str, pg: &PortNumberedGraph, with_legacy: bool) -> Row {
    let sim = Simulator::new(pg);
    let seq = sim.run(Gossip::new).expect("sequential run");
    let old = with_legacy.then(|| {
        let old = run_legacy(pg, LegacyGossip::new, 1 << 20).expect("legacy run");
        assert_identical(&seq, &old, "sequential vs legacy");
        old
    });
    for threads in THREAD_CURVE {
        let par = sim
            .run_parallel(Gossip::new, threads)
            .expect("parallel run");
        assert_identical(&seq, &par, &format!("sequential vs parallel({threads})"));
    }

    let t_seq = time_best(|| sim.run(Gossip::new).unwrap());
    let t_old = old.map(|_| time_best(|| run_legacy(pg, LegacyGossip::new, 1 << 20).unwrap()));
    let mut parallel_rps = [0.0; THREAD_CURVE.len()];
    for (slot, threads) in parallel_rps.iter_mut().zip(THREAD_CURVE) {
        let t = time_best(|| sim.run_parallel(Gossip::new, threads).unwrap());
        *slot = seq.rounds as f64 / t;
    }

    let rounds = seq.rounds;
    let sequential_rps = rounds as f64 / t_seq;
    let best_parallel = parallel_rps[1..] // threads >= 2: the pool proper
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    Row {
        name,
        nodes: pg.node_count(),
        ports: pg.port_count(),
        rounds,
        legacy_rps: t_old.map(|t| rounds as f64 / t),
        sequential_rps,
        parallel_rps,
        sequential_mps: seq.messages as f64 / t_seq,
        speedup_sequential_vs_legacy: t_old.map(|t| t / t_seq),
        speedup_parallel_best_vs_sequential: best_parallel / sequential_rps,
    }
}

fn render_json(rows: &[Row], host_threads: usize) -> String {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"sim_throughput\",");
    let _ = writeln!(json, "  \"protocol_rounds\": {ROUNDS},");
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    // `engines_bit_identical` covers exactly the engines this run
    // compared; under `--reduced` the legacy engine is skipped, which
    // `legacy_engine_compared` records.
    let legacy_compared = rows.iter().all(|r| r.legacy_rps.is_some());
    let _ = writeln!(json, "  \"legacy_engine_compared\": {legacy_compared},");
    let _ = writeln!(json, "  \"engines_bit_identical\": true,");
    let _ = writeln!(json, "  \"workloads\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(json, "      \"nodes\": {},", r.nodes);
        let _ = writeln!(json, "      \"ports\": {},", r.ports);
        let _ = writeln!(json, "      \"rounds\": {},", r.rounds);
        if let Some(legacy) = r.legacy_rps {
            let _ = writeln!(json, "      \"legacy_rounds_per_sec\": {legacy:.1},");
        }
        let _ = writeln!(
            json,
            "      \"sequential_rounds_per_sec\": {:.1},",
            r.sequential_rps
        );
        for (rate, threads) in r.parallel_rps.iter().zip(THREAD_CURVE) {
            let _ = writeln!(
                json,
                "      \"parallel{threads}_rounds_per_sec\": {rate:.1},"
            );
        }
        let _ = writeln!(
            json,
            "      \"sequential_messages_per_sec\": {:.1},",
            r.sequential_mps
        );
        if let Some(speedup) = r.speedup_sequential_vs_legacy {
            let _ = writeln!(
                json,
                "      \"speedup_sequential_vs_legacy\": {speedup:.2},"
            );
        }
        let _ = writeln!(
            json,
            "      \"speedup_parallel_best_vs_sequential\": {:.2}",
            r.speedup_parallel_best_vs_sequential
        );
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    json
}

fn main() -> ExitCode {
    let mut reduced = false;
    let mut check_parallel = false;
    let mut out = "BENCH_sim.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reduced" => reduced = true,
            "--check-parallel" => check_parallel = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: sim_benchmark [--reduced] [--check-parallel] [--out PATH]");
                return ExitCode::from(2);
            }
        }
    }

    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let with_legacy = !reduced;
    let mut graphs: Vec<(&'static str, PortNumberedGraph)> = Vec::new();

    let cycle = ports::canonical_ports(&generators::cycle(100_000).unwrap()).unwrap();
    graphs.push(("cycle_100k", cycle));

    if !reduced {
        let reg = ports::shuffled_ports(&generators::random_regular(10_000, 3, 10_000).unwrap(), 7)
            .unwrap();
        graphs.push(("random_3_regular_10k", reg));

        let base = ports::shuffled_ports(&generators::petersen(), 3).unwrap();
        let (lift, _) = covering::cyclic_lift(&base, 1_000);
        graphs.push(("petersen_cover_10k", lift));
    }

    let rows: Vec<Row> = graphs
        .iter()
        .map(|(name, pg)| measure(name, pg, with_legacy))
        .collect();

    let json = render_json(&rows, host_threads);
    std::fs::write(&out, &json).expect("write benchmark report");
    print!("{json}");
    for r in &rows {
        let legacy = r
            .legacy_rps
            .map_or("      (skipped)".to_owned(), |v| format!("{v:>10.0} r/s"));
        eprintln!(
            "{:<22} legacy {legacy}   sequential {:>10.0} r/s   parallel 1/2/4/8 {:>8.0}/{:>8.0}/{:>8.0}/{:>8.0} r/s   best-parallel/seq {:.2}x",
            r.name,
            r.sequential_rps,
            r.parallel_rps[0],
            r.parallel_rps[1],
            r.parallel_rps[2],
            r.parallel_rps[3],
            r.speedup_parallel_best_vs_sequential,
        );
    }

    if check_parallel {
        if host_threads < 4 {
            // Below four cores the 4-thread pool competes with itself
            // for timeslices and break-even is not a meaningful floor —
            // on one core it is physically unreachable.
            eprintln!(
                "check-parallel: host has {host_threads} core(s); the 4-thread pool needs \
                 four cores for break-even to be a meaningful floor — check skipped"
            );
            return ExitCode::SUCCESS;
        }
        let mut ok = true;
        for (r, (name, pg)) in rows.iter().zip(&graphs).filter(|(r, _)| r.nodes >= 100_000) {
            let mut ratio = r.parallel_at(4) / r.sequential_rps;
            if ratio < BREAK_EVEN_TOLERANCE {
                // Shared CI runners are noisy; give a transient stall
                // one fresh measurement before declaring a regression.
                eprintln!(
                    "check-parallel: {name} at {ratio:.2}x on the first pass — remeasuring once"
                );
                let retry = measure(name, pg, false);
                ratio = ratio.max(retry.parallel_at(4) / retry.sequential_rps);
            }
            if ratio < BREAK_EVEN_TOLERANCE {
                eprintln!(
                    "check-parallel FAILED on {name}: parallel4 at {ratio:.2}x of sequential \
                     (floor {BREAK_EVEN_TOLERANCE:.2}x)"
                );
                ok = false;
            } else {
                eprintln!(
                    "check-parallel ok on {name}: parallel4 at {ratio:.2}x of sequential \
                     (floor {BREAK_EVEN_TOLERANCE:.2}x)"
                );
            }
        }
        if !ok {
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

//! Emits `BENCH_sim.json`: the tracked round-engine throughput numbers.
//!
//! For each workload the binary runs the same gossip protocol through
//! the preserved pre-optimisation loop
//! ([`eds_bench::legacy_engine::run_legacy`]), the current sequential
//! engine ([`pn_runtime::Simulator::run`], `send_into`-based), and the
//! persistent worker-pool parallel engine at 1/2/4/8 threads, asserts
//! all [`pn_runtime::Run`]s are bit-identical, and records rounds/sec
//! and messages/sec plus two speedups: sequential over legacy and the
//! best parallel configuration over sequential (the thread-scaling
//! curve). `host_threads` records the measuring host's available
//! parallelism — on a single-core host the parallel curve measures pure
//! pool overhead (`parallel_fields_overhead_only` is emitted `true` and
//! the best ratio is expected to sit just below 1).
//!
//! On top of the generic curve, every workload measures the **bit-packed
//! tier**: a bool-message gossip through the packed bridge engine
//! (`run_packed`, verified bit-identical against the generic engine on
//! the same protocol) and, on regular graphs whose window fits a word,
//! the native 4-bit OR-gossip [`pn_runtime::WordKernel`]
//! (`run_packed_kernel`, verified against its scalar twin) — the
//! messages/sec headline the ROADMAP's raw-speed item tracks.
//!
//! Usage:
//!
//! ```text
//! sim_benchmark [--reduced] [--check-parallel] [--rounds N]
//!               [--streamed N] [--out PATH]
//! ```
//!
//! * `--reduced` measures only the ≥100k-node workload (the CI
//!   perf-smoke set) and skips the slow legacy engine;
//! * `--check-parallel` exits non-zero if `run_parallel(4)` falls below
//!   90% of sequential throughput on any ≥100k-node workload — the
//!   break-even regression gate, with one fresh remeasurement before a
//!   failure is declared (shared CI runners are noisy). The check is
//!   skipped (with a notice) when the host has fewer than four cores,
//!   where a 4-thread pool competes with itself for timeslices (and on
//!   one core beating sequential is physically impossible);
//! * `--rounds N` sets the protocol's fixed halting round (default 16;
//!   recorded as `protocol_rounds` — reports with different values are
//!   not comparable, which the perf gate checks);
//! * `--streamed N` switches to the lean streamed-kernel mode for the
//!   10M–100M tier: an `N`-node streamed cycle, the OR-gossip word
//!   kernel only (the scalar-twin verification runs when `N` ≤ 2M; at
//!   larger sizes the twin alone would dominate the wall clock), no
//!   legacy/parallel curves — the mode the nightly 100M smoke runs,
//!   with a few GB of RAM instead of a materialised scenario. Writes
//!   `BENCH_sim_streamed.json` unless `--out` overrides;
//! * `--out PATH` overrides the report path (default `BENCH_sim.json`
//!   in the current directory).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use eds_bench::legacy_engine::run_legacy;
use pn_graph::{covering, generators, ports, PortNumberedGraph};
use pn_runtime::{
    collect_send, kernel_reference_run, NodeAlgorithm, OrGossipKernel, Run, Simulator, WordKernel,
    WrongCount,
};

/// Default number of rounds every node runs before halting
/// (`--rounds` overrides).
const DEFAULT_ROUNDS: usize = 16;

/// The parallel thread counts of the scaling curve.
const THREAD_CURVE: [usize; 4] = [1, 2, 4, 8];

/// The perf-smoke gate: parallel(4) must reach this fraction of
/// sequential throughput on ≥100k-node workloads (multi-core hosts).
const BREAK_EVEN_TOLERANCE: f64 = 0.9;

#[derive(Clone)]
struct Gossip {
    degree: usize,
    acc: u64,
    left: usize,
}

impl Gossip {
    fn new(degree: usize, rounds: usize) -> Self {
        Gossip {
            degree,
            acc: degree as u64,
            left: rounds,
        }
    }
}

impl NodeAlgorithm for Gossip {
    type Message = u64;
    type Output = u64;

    fn send(&mut self, round: usize) -> Vec<u64> {
        collect_send(self, round, self.degree)
    }

    fn send_into(&mut self, _round: usize, outbox: &mut [Option<u64>]) -> Result<(), WrongCount> {
        for (q, slot) in outbox.iter_mut().enumerate() {
            *slot = Some(self.acc.wrapping_add(q as u64));
        }
        Ok(())
    }

    fn receive(&mut self, _round: usize, inbox: &[Option<u64>]) -> Option<u64> {
        for m in inbox.iter().flatten() {
            self.acc = self.acc.rotate_left(5).wrapping_add(*m);
        }
        self.left -= 1;
        (self.left == 0).then_some(self.acc)
    }
}

/// The same protocol with the pre-PR allocating `send` and no
/// `send_into` override — the honest baseline for [`run_legacy`]: one
/// fresh `Vec` per node per round, exactly what algorithms did before
/// the migration (going through `collect_send` here would handicap the
/// baseline with an extra buffer and pass).
#[derive(Clone)]
struct LegacyGossip(Gossip);

impl LegacyGossip {
    fn new(degree: usize, rounds: usize) -> Self {
        LegacyGossip(Gossip::new(degree, rounds))
    }
}

impl NodeAlgorithm for LegacyGossip {
    type Message = u64;
    type Output = u64;

    fn send(&mut self, _round: usize) -> Vec<u64> {
        (0..self.0.degree)
            .map(|q| self.0.acc.wrapping_add(q as u64))
            .collect()
    }

    fn receive(&mut self, round: usize, inbox: &[Option<u64>]) -> Option<u64> {
        self.0.receive(round, inbox)
    }
}

/// A `bool`-message gossip for the packed **bridge** measurement: same
/// round structure as [`Gossip`], but a 2-bit lane alphabet so the
/// packed engine is eligible. Compared against itself on the generic
/// engine — bridge vs generic on the *same* protocol is the honest
/// speedup.
#[derive(Clone)]
struct ParityGossip {
    degree: usize,
    flag: bool,
    left: usize,
}

impl ParityGossip {
    fn new(degree: usize, rounds: usize) -> Self {
        ParityGossip {
            degree,
            flag: degree % 2 == 1,
            left: rounds,
        }
    }
}

impl NodeAlgorithm for ParityGossip {
    type Message = bool;
    type Output = bool;

    fn send(&mut self, round: usize) -> Vec<bool> {
        collect_send(self, round, self.degree)
    }

    fn send_into(&mut self, _round: usize, outbox: &mut [Option<bool>]) -> Result<(), WrongCount> {
        for slot in outbox.iter_mut() {
            *slot = Some(self.flag);
        }
        Ok(())
    }

    fn receive(&mut self, _round: usize, inbox: &[Option<bool>]) -> Option<bool> {
        for m in inbox.iter().flatten() {
            self.flag ^= m;
        }
        self.left -= 1;
        (self.left == 0).then_some(self.flag)
    }
}

/// Times `f` adaptively: repeats until ~0.5 s of measurement, reports
/// the best (lowest) seconds per call.
fn time_best<R>(mut f: impl FnMut() -> R) -> f64 {
    // Warm-up and calibration.
    let start = Instant::now();
    let _ = f();
    let once = start.elapsed().as_secs_f64().max(1e-9);
    let reps = ((0.25 / once).ceil() as usize).clamp(1, 1000);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..reps {
            let _ = f();
        }
        best = best.min(start.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

fn assert_identical<O: PartialEq>(a: &Run<O>, b: &Run<O>, what: &str) {
    assert!(
        a.outputs == b.outputs
            && a.halted_at == b.halted_at
            && a.rounds == b.rounds
            && a.messages == b.messages,
        "engines diverged: {what}"
    );
}

struct Row {
    name: &'static str,
    nodes: usize,
    ports: usize,
    rounds: usize,
    /// `None` under `--reduced` (legacy skipped).
    legacy_rps: Option<f64>,
    sequential_rps: f64,
    /// One rate per [`THREAD_CURVE`] entry.
    parallel_rps: [f64; THREAD_CURVE.len()],
    sequential_mps: f64,
    /// The bool-message gossip through the packed bridge engine.
    packed_bridge_rps: f64,
    /// ... and through the generic engine (same protocol) — the
    /// denominator of the honest bridge speedup.
    bridge_generic_rps: f64,
    /// The native word kernel, when the graph is regular and the 4-bit
    /// window fits a word.
    kernel_mps: Option<f64>,
    speedup_sequential_vs_legacy: Option<f64>,
    speedup_parallel_best_vs_sequential: f64,
}

impl Row {
    fn parallel_at(&self, threads: usize) -> f64 {
        THREAD_CURVE
            .iter()
            .position(|&t| t == threads)
            .map(|i| self.parallel_rps[i])
            .expect("threads on the curve")
    }

    fn speedup_packed_bridge(&self) -> f64 {
        self.packed_bridge_rps / self.bridge_generic_rps
    }

    /// The raw-speed headline: word-kernel messages/sec over the generic
    /// engine's messages/sec on the same graph and round count.
    fn speedup_kernel_vs_sequential_mps(&self) -> Option<f64> {
        self.kernel_mps.map(|k| k / self.sequential_mps)
    }
}

fn measure(name: &'static str, pg: &PortNumberedGraph, with_legacy: bool, rounds: usize) -> Row {
    let sim = Simulator::new(pg);
    let gossip = |d: usize| Gossip::new(d, rounds);
    let legacy_gossip = |d: usize| LegacyGossip::new(d, rounds);
    let parity = |d: usize| ParityGossip::new(d, rounds);
    let seq = sim.run(gossip).expect("sequential run");
    let old = with_legacy.then(|| {
        let old = run_legacy(pg, legacy_gossip, 1 << 20).expect("legacy run");
        assert_identical(&seq, &old, "sequential vs legacy");
        old
    });
    for threads in THREAD_CURVE {
        let par = sim.run_parallel(gossip, threads).expect("parallel run");
        assert_identical(&seq, &par, &format!("sequential vs parallel({threads})"));
    }

    // The packed tier: bridge vs generic on the bool gossip (always
    // eligible: 2-bit lanes), kernel vs scalar twin on regular graphs.
    assert!(sim.packed_eligible::<bool>(), "bool gossip must pack");
    let parity_generic = sim.run(parity).expect("generic parity run");
    let parity_packed = sim.run_packed(parity).expect("packed parity run");
    assert_identical(&parity_generic, &parity_packed, "generic vs packed bridge");
    let parity_packed2 = sim
        .run_packed_parallel(parity, 2)
        .expect("packed parallel parity run");
    assert_identical(
        &parity_generic,
        &parity_packed2,
        "generic vs packed parallel(2)",
    );
    let kernel = OrGossipKernel { rounds };
    let kernel_ok = pg
        .regular_degree()
        .is_some_and(|d| d > 0 && d as u32 * kernel.lane_bits() <= 64);
    let kernel_run = kernel_ok.then(|| {
        let fast = sim.run_packed_kernel(&kernel).expect("kernel run");
        let slow = kernel_reference_run(&sim, &kernel).expect("kernel twin run");
        assert_identical(&fast, &slow, "word kernel vs scalar twin");
        fast
    });

    let t_seq = time_best(|| sim.run(gossip).unwrap());
    let t_old = old.map(|_| time_best(|| run_legacy(pg, legacy_gossip, 1 << 20).unwrap()));
    let mut parallel_rps = [0.0; THREAD_CURVE.len()];
    for (slot, threads) in parallel_rps.iter_mut().zip(THREAD_CURVE) {
        let t = time_best(|| sim.run_parallel(gossip, threads).unwrap());
        *slot = seq.rounds as f64 / t;
    }
    let t_bridge = time_best(|| sim.run_packed(parity).unwrap());
    let t_bridge_generic = time_best(|| sim.run(parity).unwrap());
    let kernel_mps = kernel_run.map(|run| {
        let t = time_best(|| sim.run_packed_kernel(&kernel).unwrap());
        run.messages as f64 / t
    });

    let rounds = seq.rounds;
    let sequential_rps = rounds as f64 / t_seq;
    let best_parallel = parallel_rps[1..] // threads >= 2: the pool proper
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    Row {
        name,
        nodes: pg.node_count(),
        ports: pg.port_count(),
        rounds,
        legacy_rps: t_old.map(|t| rounds as f64 / t),
        sequential_rps,
        parallel_rps,
        sequential_mps: seq.messages as f64 / t_seq,
        packed_bridge_rps: rounds as f64 / t_bridge,
        bridge_generic_rps: rounds as f64 / t_bridge_generic,
        kernel_mps,
        speedup_sequential_vs_legacy: t_old.map(|t| t / t_seq),
        speedup_parallel_best_vs_sequential: best_parallel / sequential_rps,
    }
}

fn render_json(rows: &[Row], host_threads: usize, rounds: usize) -> String {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"sim_throughput\",");
    let _ = writeln!(json, "  \"protocol_rounds\": {rounds},");
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    // On one core the parallel engine cannot beat sequential; its
    // fields then measure pool overhead, not concurrency.
    let _ = writeln!(
        json,
        "  \"parallel_fields_overhead_only\": {},",
        host_threads == 1
    );
    // `engines_bit_identical` covers exactly the engines this run
    // compared; under `--reduced` the legacy engine is skipped, which
    // `legacy_engine_compared` records.
    let legacy_compared = rows.iter().all(|r| r.legacy_rps.is_some());
    let _ = writeln!(json, "  \"legacy_engine_compared\": {legacy_compared},");
    let _ = writeln!(json, "  \"engines_bit_identical\": true,");
    let _ = writeln!(json, "  \"workloads\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(json, "      \"nodes\": {},", r.nodes);
        let _ = writeln!(json, "      \"ports\": {},", r.ports);
        let _ = writeln!(json, "      \"rounds\": {},", r.rounds);
        if let Some(legacy) = r.legacy_rps {
            let _ = writeln!(json, "      \"legacy_rounds_per_sec\": {legacy:.1},");
        }
        let _ = writeln!(
            json,
            "      \"sequential_rounds_per_sec\": {:.1},",
            r.sequential_rps
        );
        for (rate, threads) in r.parallel_rps.iter().zip(THREAD_CURVE) {
            let _ = writeln!(
                json,
                "      \"parallel{threads}_rounds_per_sec\": {rate:.1},"
            );
        }
        let _ = writeln!(
            json,
            "      \"sequential_messages_per_sec\": {:.1},",
            r.sequential_mps
        );
        let _ = writeln!(
            json,
            "      \"packed_bridge_rounds_per_sec\": {:.1},",
            r.packed_bridge_rps
        );
        let _ = writeln!(
            json,
            "      \"speedup_packed_bridge_vs_generic\": {:.2},",
            r.speedup_packed_bridge()
        );
        if let Some(mps) = r.kernel_mps {
            let _ = writeln!(json, "      \"packed_kernel_messages_per_sec\": {mps:.1},");
        }
        if let Some(speedup) = r.speedup_kernel_vs_sequential_mps() {
            let _ = writeln!(
                json,
                "      \"speedup_packed_kernel_vs_sequential\": {speedup:.2},"
            );
        }
        if let Some(speedup) = r.speedup_sequential_vs_legacy {
            let _ = writeln!(
                json,
                "      \"speedup_sequential_vs_legacy\": {speedup:.2},"
            );
        }
        let _ = writeln!(
            json,
            "      \"speedup_parallel_best_vs_sequential\": {:.2}",
            r.speedup_parallel_best_vs_sequential
        );
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    json
}

/// The lean `--streamed N` mode: one streamed cycle, word kernel only.
fn run_streamed(n: usize, rounds: usize, out: &str, host_threads: usize) -> ExitCode {
    eprintln!(
        "streamed kernel mode: {n}-node cycle, {rounds} rounds, host_threads = {host_threads}"
    );
    let pg = match generators::streamed_cycle(n, None) {
        Ok(pg) => pg,
        Err(e) => {
            eprintln!("streamed cycle generation failed: {e}");
            return ExitCode::from(1);
        }
    };
    let sim = Simulator::new(&pg);
    let kernel = OrGossipKernel { rounds };
    // The scalar twin moves one message at a time; past ~2M nodes it
    // would dominate the wall clock, and the packed-conformance suite
    // already proves identity at smaller sizes.
    let verified = n <= 2_000_000;
    let fast = sim.run_packed_kernel(&kernel).expect("kernel run");
    if verified {
        let slow = kernel_reference_run(&sim, &kernel).expect("kernel twin run");
        assert_identical(&fast, &slow, "word kernel vs scalar twin (streamed)");
    }
    let t = time_best(|| sim.run_packed_kernel(&kernel).unwrap());
    let mps = fast.messages as f64 / t;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"sim_streamed_kernel\",");
    let _ = writeln!(json, "  \"protocol_rounds\": {rounds},");
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"nodes\": {n},");
    let _ = writeln!(json, "  \"ports\": {},", pg.port_count());
    let _ = writeln!(json, "  \"messages\": {},", fast.messages);
    let _ = writeln!(json, "  \"kernel_verified_vs_scalar_twin\": {verified},");
    let _ = writeln!(json, "  \"packed_kernel_messages_per_sec\": {mps:.1}");
    let _ = writeln!(json, "}}");
    std::fs::write(out, &json).expect("write streamed benchmark report");
    print!("{json}");
    eprintln!(
        "streamed_cycle_{n}: kernel {:.3} B msgs/s ({} messages in {t:.3}s best)",
        mps / 1e9,
        fast.messages
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut reduced = false;
    let mut check_parallel = false;
    let mut rounds = DEFAULT_ROUNDS;
    let mut streamed: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reduced" => reduced = true,
            "--check-parallel" => check_parallel = true,
            "--rounds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => rounds = n,
                _ => {
                    eprintln!("--rounds requires a number >= 1");
                    return ExitCode::from(2);
                }
            },
            "--streamed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => streamed = Some(n),
                None => {
                    eprintln!("--streamed requires a node count");
                    return ExitCode::from(2);
                }
            },
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: sim_benchmark [--reduced] [--check-parallel] [--rounds N] \
                     [--streamed N] [--out PATH]"
                );
                return ExitCode::from(2);
            }
        }
    }

    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    if let Some(n) = streamed {
        let out = out.unwrap_or_else(|| "BENCH_sim_streamed.json".to_owned());
        return run_streamed(n, rounds, &out, host_threads);
    }
    let out = out.unwrap_or_else(|| "BENCH_sim.json".to_owned());
    let with_legacy = !reduced;
    let mut graphs: Vec<(&'static str, PortNumberedGraph)> = Vec::new();

    let cycle = ports::canonical_ports(&generators::cycle(100_000).unwrap()).unwrap();
    graphs.push(("cycle_100k", cycle));

    if !reduced {
        let reg = ports::shuffled_ports(&generators::random_regular(10_000, 3, 10_000).unwrap(), 7)
            .unwrap();
        graphs.push(("random_3_regular_10k", reg));

        let base = ports::shuffled_ports(&generators::petersen(), 3).unwrap();
        let (lift, _) = covering::cyclic_lift(&base, 1_000);
        graphs.push(("petersen_cover_10k", lift));
    }

    let rows: Vec<Row> = graphs
        .iter()
        .map(|(name, pg)| measure(name, pg, with_legacy, rounds))
        .collect();

    let json = render_json(&rows, host_threads, rounds);
    std::fs::write(&out, &json).expect("write benchmark report");
    print!("{json}");
    // The summary leads with the host's parallelism: it decides how to
    // read every parallel number below.
    if host_threads == 1 {
        eprintln!(
            "host_threads = 1: parallel fields measure worker-pool overhead only \
             (best-parallel/seq < 1 is expected, not a regression)"
        );
    } else {
        eprintln!("host_threads = {host_threads}");
    }
    for r in &rows {
        let legacy = r
            .legacy_rps
            .map_or("      (skipped)".to_owned(), |v| format!("{v:>10.0} r/s"));
        let kernel = r.kernel_mps.map_or("(n/a)".to_owned(), |v| {
            format!(
                "{:.2} B msgs/s ({:.1}x seq)",
                v / 1e9,
                r.speedup_kernel_vs_sequential_mps().unwrap_or(0.0)
            )
        });
        eprintln!(
            "[host_threads={host_threads}] {:<22} legacy {legacy}   sequential {:>10.0} r/s   parallel 1/2/4/8 {:>8.0}/{:>8.0}/{:>8.0}/{:>8.0} r/s   best-parallel/seq {:.2}x   bridge {:.2}x   kernel {kernel}",
            r.name,
            r.sequential_rps,
            r.parallel_rps[0],
            r.parallel_rps[1],
            r.parallel_rps[2],
            r.parallel_rps[3],
            r.speedup_parallel_best_vs_sequential,
            r.speedup_packed_bridge(),
        );
    }

    if check_parallel {
        if host_threads < 4 {
            // Below four cores the 4-thread pool competes with itself
            // for timeslices and break-even is not a meaningful floor —
            // on one core it is physically unreachable.
            eprintln!(
                "check-parallel: host has {host_threads} core(s); the 4-thread pool needs \
                 four cores for break-even to be a meaningful floor — check skipped"
            );
            return ExitCode::SUCCESS;
        }
        let mut ok = true;
        for (r, (name, pg)) in rows.iter().zip(&graphs).filter(|(r, _)| r.nodes >= 100_000) {
            let mut ratio = r.parallel_at(4) / r.sequential_rps;
            if ratio < BREAK_EVEN_TOLERANCE {
                // Shared CI runners are noisy; give a transient stall
                // one fresh measurement before declaring a regression.
                eprintln!(
                    "check-parallel: {name} at {ratio:.2}x on the first pass — remeasuring once"
                );
                let retry = measure(name, pg, false, rounds);
                ratio = ratio.max(retry.parallel_at(4) / retry.sequential_rps);
            }
            if ratio < BREAK_EVEN_TOLERANCE {
                eprintln!(
                    "check-parallel FAILED on {name}: parallel4 at {ratio:.2}x of sequential \
                     (floor {BREAK_EVEN_TOLERANCE:.2}x)"
                );
                ok = false;
            } else {
                eprintln!(
                    "check-parallel ok on {name}: parallel4 at {ratio:.2}x of sequential \
                     (floor {BREAK_EVEN_TOLERANCE:.2}x)"
                );
            }
        }
        if !ok {
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

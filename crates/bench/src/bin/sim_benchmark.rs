//! Emits `BENCH_sim.json`: the tracked round-engine throughput numbers.
//!
//! For each workload the binary runs the same gossip protocol through
//! three engines — the preserved pre-optimisation loop
//! ([`eds_bench::legacy_engine::run_legacy`]), the current sequential
//! engine ([`pn_runtime::Simulator::run`], `send_into`-based), and the
//! parallel driver — asserts their [`pn_runtime::Run`]s are
//! bit-identical, and records rounds/sec and messages/sec plus the
//! sequential-over-legacy speedup.
//!
//! Run with: `cargo run --release -p eds-bench --bin sim_benchmark`
//! (writes `BENCH_sim.json` into the current directory).

use std::fmt::Write as _;
use std::time::Instant;

use eds_bench::legacy_engine::run_legacy;
use pn_graph::{covering, generators, ports, PortNumberedGraph};
use pn_runtime::{collect_send, NodeAlgorithm, Run, Simulator, WrongCount};

/// Fixed number of rounds every node runs before halting.
const ROUNDS: usize = 16;

#[derive(Clone)]
struct Gossip {
    degree: usize,
    acc: u64,
    left: usize,
}

impl Gossip {
    fn new(degree: usize) -> Self {
        Gossip {
            degree,
            acc: degree as u64,
            left: ROUNDS,
        }
    }
}

impl NodeAlgorithm for Gossip {
    type Message = u64;
    type Output = u64;

    fn send(&mut self, round: usize) -> Vec<u64> {
        collect_send(self, round, self.degree)
    }

    fn send_into(&mut self, _round: usize, outbox: &mut [Option<u64>]) -> Result<(), WrongCount> {
        for (q, slot) in outbox.iter_mut().enumerate() {
            *slot = Some(self.acc.wrapping_add(q as u64));
        }
        Ok(())
    }

    fn receive(&mut self, _round: usize, inbox: &[Option<u64>]) -> Option<u64> {
        for m in inbox.iter().flatten() {
            self.acc = self.acc.rotate_left(5).wrapping_add(*m);
        }
        self.left -= 1;
        (self.left == 0).then_some(self.acc)
    }
}

/// The same protocol with the pre-PR allocating `send` and no
/// `send_into` override — the honest baseline for [`run_legacy`]: one
/// fresh `Vec` per node per round, exactly what algorithms did before
/// the migration (going through `collect_send` here would handicap the
/// baseline with an extra buffer and pass).
#[derive(Clone)]
struct LegacyGossip(Gossip);

impl LegacyGossip {
    fn new(degree: usize) -> Self {
        LegacyGossip(Gossip::new(degree))
    }
}

impl NodeAlgorithm for LegacyGossip {
    type Message = u64;
    type Output = u64;

    fn send(&mut self, _round: usize) -> Vec<u64> {
        (0..self.0.degree)
            .map(|q| self.0.acc.wrapping_add(q as u64))
            .collect()
    }

    fn receive(&mut self, round: usize, inbox: &[Option<u64>]) -> Option<u64> {
        self.0.receive(round, inbox)
    }
}

/// Times `f` adaptively: repeats until ~0.5 s of measurement, reports
/// the best (lowest) seconds per call.
fn time_best<R>(mut f: impl FnMut() -> R) -> f64 {
    // Warm-up and calibration.
    let start = Instant::now();
    let _ = f();
    let once = start.elapsed().as_secs_f64().max(1e-9);
    let reps = ((0.25 / once).ceil() as usize).clamp(1, 1000);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..reps {
            let _ = f();
        }
        best = best.min(start.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

fn assert_identical(a: &Run<u64>, b: &Run<u64>, what: &str) {
    assert!(
        a.outputs == b.outputs
            && a.halted_at == b.halted_at
            && a.rounds == b.rounds
            && a.messages == b.messages,
        "engines diverged: {what}"
    );
}

struct Row {
    name: &'static str,
    nodes: usize,
    ports: usize,
    rounds: usize,
    legacy_rps: f64,
    sequential_rps: f64,
    parallel4_rps: f64,
    sequential_mps: f64,
    speedup: f64,
}

fn measure(name: &'static str, pg: &PortNumberedGraph) -> Row {
    let sim = Simulator::new(pg);
    let seq = sim.run(Gossip::new).expect("sequential run");
    let old = run_legacy(pg, LegacyGossip::new, 1 << 20).expect("legacy run");
    let par = sim.run_parallel(Gossip::new, 4).expect("parallel run");
    assert_identical(&seq, &old, "sequential vs legacy");
    assert_identical(&seq, &par, "sequential vs parallel");

    let t_seq = time_best(|| sim.run(Gossip::new).unwrap());
    let t_old = time_best(|| run_legacy(pg, LegacyGossip::new, 1 << 20).unwrap());
    let t_par = time_best(|| sim.run_parallel(Gossip::new, 4).unwrap());

    let rounds = seq.rounds;
    let messages = seq.messages as f64;
    Row {
        name,
        nodes: pg.node_count(),
        ports: pg.port_count(),
        rounds,
        legacy_rps: rounds as f64 / t_old,
        sequential_rps: rounds as f64 / t_seq,
        parallel4_rps: rounds as f64 / t_par,
        sequential_mps: messages / t_seq,
        speedup: t_old / t_seq,
    }
}

fn main() {
    let mut rows = Vec::new();

    let cycle = ports::canonical_ports(&generators::cycle(100_000).unwrap()).unwrap();
    rows.push(measure("cycle_100k", &cycle));

    let reg =
        ports::shuffled_ports(&generators::random_regular(10_000, 3, 10_000).unwrap(), 7).unwrap();
    rows.push(measure("random_3_regular_10k", &reg));

    let base = ports::shuffled_ports(&generators::petersen(), 3).unwrap();
    let (lift, _) = covering::cyclic_lift(&base, 1_000);
    rows.push(measure("petersen_cover_10k", &lift));

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"sim_throughput\",");
    let _ = writeln!(json, "  \"protocol_rounds\": {ROUNDS},");
    let _ = writeln!(json, "  \"engines_bit_identical\": true,");
    let _ = writeln!(json, "  \"workloads\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(json, "      \"nodes\": {},", r.nodes);
        let _ = writeln!(json, "      \"ports\": {},", r.ports);
        let _ = writeln!(json, "      \"rounds\": {},", r.rounds);
        let _ = writeln!(
            json,
            "      \"legacy_rounds_per_sec\": {:.1},",
            r.legacy_rps
        );
        let _ = writeln!(
            json,
            "      \"sequential_rounds_per_sec\": {:.1},",
            r.sequential_rps
        );
        let _ = writeln!(
            json,
            "      \"parallel4_rounds_per_sec\": {:.1},",
            r.parallel4_rps
        );
        let _ = writeln!(
            json,
            "      \"sequential_messages_per_sec\": {:.1},",
            r.sequential_mps
        );
        let _ = writeln!(
            json,
            "      \"speedup_sequential_vs_legacy\": {:.2}",
            r.speedup
        );
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    print!("{json}");
    for r in &rows {
        eprintln!(
            "{:<22} legacy {:>10.0} r/s   sequential {:>10.0} r/s   parallel4 {:>10.0} r/s   speedup {:.2}x",
            r.name, r.legacy_rps, r.sequential_rps, r.parallel4_rps, r.speedup
        );
    }
}

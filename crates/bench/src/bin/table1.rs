//! Regenerates **Table 1** of the paper: the tight approximability of
//! edge dominating sets in the port-numbering model.
//!
//! For every row we *measure* the approximation ratio by running the
//! matching upper-bound algorithm on the matching lower-bound instance:
//!
//! * even `d`: the port-1 algorithm (Theorem 3) on the Theorem 1 graph —
//!   measured ratio must equal `4 - 2/d` **exactly**;
//! * odd `d`: the Theorem 4 protocol on the Theorem 2 graph — measured
//!   ratio must equal `4 - 6/(d+1)` exactly;
//! * maximum degree `Δ`: the `A(Δ)` protocol (Theorem 5) on the Theorem 1
//!   graph of degree `2⌊Δ/2⌋` — measured ratio must equal `4 - 1/k`
//!   exactly.
//!
//! The theory pins both sides: the lower bound forbids a smaller ratio on
//! these instances, the upper bound forbids a larger one. Any deviation
//! is a bug, and the binary exits non-zero.
//!
//! Run with: `cargo run -p eds-bench --bin table1 [max_d]`

use eds_bench::{run_distributed, Table};
use eds_core::distributed::{bounded_degree_distributed, regular_odd_distributed};
use eds_core::port_one::PortOneNode;
use eds_lower_bounds::bound::Ratio;
use eds_lower_bounds::{even, odd};

fn main() {
    let max_d: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    let mut ok = true;
    let mut table = Table::new(vec![
        "family", "param", "theory", "measured", "|D|", "|OPT|", "rounds", "status",
    ]);

    // --- d-regular, even d: Theorem 3 vs Theorem 1. ---
    for d in (2..=max_d).step_by(2) {
        let inst = even::build(d).expect("even construction");
        let (edges, rounds, _) = run_distributed(&inst.graph, PortOneNode::new);
        let measured = Ratio::of_sizes(edges.len(), inst.optimal_size());
        let theory = Ratio::from(inst.ratio());
        let status = if measured.eq_exact(theory) {
            "exact"
        } else {
            "MISMATCH"
        };
        ok &= measured.eq_exact(theory);
        table.row(vec![
            format!("d-regular (even)"),
            format!("d={d}"),
            format!("4-2/d = {:.4}", theory.as_f64()),
            format!("{:.4}", measured.as_f64()),
            edges.len().to_string(),
            inst.optimal_size().to_string(),
            rounds.to_string(),
            status.to_owned(),
        ]);
    }

    // --- d-regular, odd d: Theorem 4 vs Theorem 2. ---
    for d in (1..=max_d).step_by(2) {
        let inst = odd::build(d).expect("odd construction");
        let edges = regular_odd_distributed(&inst.graph).expect("protocol runs");
        let run = pn_runtime::Simulator::new(&inst.graph)
            .run(eds_core::distributed::RegularOddNode::new)
            .expect("protocol runs");
        let measured = Ratio::of_sizes(edges.len(), inst.optimal_size());
        let theory = Ratio::from(inst.ratio());
        let status = if measured.eq_exact(theory) {
            "exact"
        } else {
            "MISMATCH"
        };
        ok &= measured.eq_exact(theory);
        table.row(vec![
            format!("d-regular (odd)"),
            format!("d={d}"),
            format!("4-6/(d+1) = {:.4}", theory.as_f64()),
            format!("{:.4}", measured.as_f64()),
            edges.len().to_string(),
            inst.optimal_size().to_string(),
            run.rounds.to_string(),
            status.to_owned(),
        ]);
    }

    // --- Bounded degree Δ: Theorem 5 vs Corollary 1 (via Theorem 1 with
    //     d = 2⌊Δ/2⌋). Δ = 1 is trivial (ratio 1).
    table.row(vec![
        "max degree".to_owned(),
        "Δ=1".to_owned(),
        "1 = 1.0000".to_owned(),
        "1.0000".to_owned(),
        "-".to_owned(),
        "-".to_owned(),
        "0".to_owned(),
        "trivial".to_owned(),
    ]);
    for delta in 2..=max_d {
        let k = delta / 2;
        let d = 2 * k;
        let inst = even::build(d).expect("even construction");
        let edges = bounded_degree_distributed(&inst.graph, delta).expect("protocol runs");
        let run = pn_runtime::Simulator::new(&inst.graph)
            .run(|deg: usize| eds_core::distributed::BoundedDegreeNode::new(delta, deg))
            .expect("protocol runs");
        let measured = Ratio::of_sizes(edges.len(), inst.optimal_size());
        let theory = eds_lower_bounds::bound::corollary1_bound(delta);
        let label = if delta % 2 == 1 {
            format!("4-2/(Δ-1) = {:.4}", theory.as_f64())
        } else {
            format!("4-2/Δ = {:.4}", theory.as_f64())
        };
        let status = if measured.eq_exact(theory) {
            "exact"
        } else {
            "MISMATCH"
        };
        ok &= measured.eq_exact(theory);
        table.row(vec![
            format!(
                "max degree ({})",
                if delta % 2 == 1 { "odd" } else { "even" }
            ),
            format!("Δ={delta}"),
            label,
            format!("{:.4}", measured.as_f64()),
            edges.len().to_string(),
            inst.optimal_size().to_string(),
            run.rounds.to_string(),
            status.to_owned(),
        ]);
    }

    println!("Table 1 — approximability of edge dominating sets in the port-numbering model");
    println!("(measured by running each tight algorithm on its matching lower-bound instance)");
    println!();
    print!("{table}");
    println!();
    if ok {
        println!("all rows match the paper exactly");
    } else {
        println!("MISMATCH DETECTED — reproduction failure");
        std::process::exit(1);
    }
}

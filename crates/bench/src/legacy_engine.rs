//! The pre-optimisation round engine, preserved verbatim as a
//! benchmarking baseline.
//!
//! This is the simulator loop this repository shipped before the
//! zero-allocation engine landed in `pn-runtime`: dense `0..n` node scans
//! every round, a fresh `Vec` per node per round through
//! [`NodeAlgorithm::send`], full clears of both flat buffers, and
//! per-port `connection()` endpoint arithmetic in the route phase. The
//! `sim_benchmark` binary runs it side by side with the new engine so
//! `BENCH_sim.json` tracks the speedup from a fixed reference point —
//! do not "optimise" this module.

use pn_graph::{Endpoint, NodeId, PortNumberedGraph};
use pn_runtime::{AlgorithmFactory, NodeAlgorithm, Run, RuntimeError};

/// Runs `factory`'s algorithm on `g` with the pre-optimisation engine.
///
/// Semantically identical to [`pn_runtime::Simulator::run`] (the
/// benchmark binary asserts it, run by run); only the per-round cost
/// profile differs.
///
/// # Errors
///
/// Same conditions as [`pn_runtime::Simulator::run`].
pub fn run_legacy<F>(
    g: &PortNumberedGraph,
    factory: F,
    max_rounds: usize,
) -> Result<Run<<F::Algorithm as NodeAlgorithm>::Output>, RuntimeError>
where
    F: AlgorithmFactory,
{
    type Msg<F> = <<F as AlgorithmFactory>::Algorithm as NodeAlgorithm>::Message;
    let n = g.node_count();
    let mut states: Vec<Option<F::Algorithm>> = g
        .nodes()
        .map(|v| Some(factory.create(g.degree(v))))
        .collect();
    let mut outputs = (0..n).map(|_| None).collect::<Vec<_>>();
    let mut halted_at = vec![0usize; n];
    let mut running = n;
    let mut messages = 0usize;
    let mut rounds = 0usize;

    // Flattened per-port outboxes/inboxes, rebuilt offsets included —
    // this is the allocation- and scan-heavy shape being benchmarked.
    let total_ports = g.port_count();
    let mut outbox: Vec<Option<Msg<F>>> = (0..total_ports).map(|_| None).collect();
    let mut inbox: Vec<Option<Msg<F>>> = (0..total_ports).map(|_| None).collect();
    let mut offsets = Vec::with_capacity(n);
    let mut acc = 0usize;
    for v in g.nodes() {
        offsets.push(acc);
        acc += g.degree(v);
    }

    while running > 0 {
        if rounds >= max_rounds {
            return Err(RuntimeError::RoundLimitExceeded {
                limit: max_rounds,
                still_running: running,
            });
        }
        // Send phase: dense scan, one Vec per running node.
        for slot in outbox.iter_mut() {
            *slot = None;
        }
        for v in 0..n {
            if let Some(state) = states[v].as_mut() {
                let out = state.send(rounds);
                let d = g.degree(NodeId::new(v));
                if out.len() != d {
                    return Err(RuntimeError::WrongMessageCount {
                        node: NodeId::new(v),
                        got: out.len(),
                        expected: d,
                    });
                }
                for (i, m) in out.into_iter().enumerate() {
                    outbox[offsets[v] + i] = Some(m);
                }
            }
        }
        // Route phase: full clear plus per-port endpoint arithmetic.
        for slot in inbox.iter_mut() {
            *slot = None;
        }
        for v in g.nodes() {
            for i in g.ports(v) {
                let from = Endpoint::new(v, i);
                let from_slot = offsets[v.index()] + i.index();
                if outbox[from_slot].is_none() {
                    continue;
                }
                let to = g.connection(from);
                let to_slot = offsets[to.node.index()] + to.port.index();
                inbox[to_slot] = outbox[from_slot].take();
                messages += 1;
            }
        }
        // Receive phase: dense scan.
        for v in 0..n {
            if let Some(state) = states[v].as_mut() {
                let d = g.degree(NodeId::new(v));
                let window = &inbox[offsets[v]..offsets[v] + d];
                if let Some(out) = state.receive(rounds, window) {
                    outputs[v] = Some(out);
                    halted_at[v] = rounds + 1;
                    states[v] = None;
                    running -= 1;
                }
            }
        }
        rounds += 1;
    }

    Ok(Run {
        outputs: outputs
            .into_iter()
            .map(|o| o.expect("all nodes halted"))
            .collect(),
        rounds: halted_at.iter().copied().max().unwrap_or(0),
        halted_at,
        messages,
        trace: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pn_graph::{generators, ports};
    use pn_runtime::Simulator;

    #[derive(Clone)]
    struct Gossip {
        degree: usize,
        acc: u64,
        left: usize,
    }

    impl NodeAlgorithm for Gossip {
        type Message = u64;
        type Output = u64;
        fn send(&mut self, _r: usize) -> Vec<u64> {
            (0..self.degree)
                .map(|q| self.acc.wrapping_add(q as u64))
                .collect()
        }
        fn receive(&mut self, _r: usize, inbox: &[Option<u64>]) -> Option<u64> {
            for m in inbox.iter().flatten() {
                self.acc = self.acc.rotate_left(5).wrapping_add(*m);
            }
            self.left -= 1;
            (self.left == 0).then_some(self.acc)
        }
    }

    #[test]
    fn legacy_engine_matches_new_engine() {
        let g = generators::random_regular(30, 4, 9).unwrap();
        let pg = ports::shuffled_ports(&g, 10).unwrap();
        let factory = |d: usize| Gossip {
            degree: d,
            acc: d as u64,
            left: 7,
        };
        let old = run_legacy(&pg, factory, 1_000_000).unwrap();
        let new = Simulator::new(&pg).run(factory).unwrap();
        assert_eq!(old.outputs, new.outputs);
        assert_eq!(old.halted_at, new.halted_at);
        assert_eq!(old.rounds, new.rounds);
        assert_eq!(old.messages, new.messages);
    }
}

//! Benchmark harness and experiment drivers for the PODC 2010
//! reproduction.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper (see `DESIGN.md` for the experiment index); this library holds
//! the shared pieces: workload construction, exact-ratio measurement, and
//! plain-text table rendering.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod legacy_engine;
pub mod report;
pub mod workloads;

pub use report::Table;

use eds_lower_bounds::bound::Ratio;
use pn_graph::{EdgeId, PortNumberedGraph};

/// The outcome of running one algorithm on one instance with a known
/// optimum.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Solution size produced by the algorithm.
    pub found: usize,
    /// The optimal solution size.
    pub optimal: usize,
    /// Rounds used by the distributed execution (0 for centralised runs).
    pub rounds: usize,
    /// Messages delivered during the distributed execution.
    pub messages: usize,
}

impl Measurement {
    /// The empirical approximation ratio.
    pub fn ratio(&self) -> Ratio {
        Ratio::of_sizes(self.found, self.optimal)
    }
}

/// Runs a distributed `NodeAlgorithm` producing port sets and returns the
/// selected edges plus run statistics.
///
/// # Panics
///
/// Panics on simulator errors or inconsistent outputs — these indicate
/// bugs, not data-dependent failures.
pub fn run_distributed<F>(g: &PortNumberedGraph, factory: F) -> (Vec<EdgeId>, usize, usize)
where
    F: pn_runtime::AlgorithmFactory,
    F::Algorithm: pn_runtime::NodeAlgorithm<Output = pn_runtime::PortSet>,
{
    let run = pn_runtime::Simulator::new(g)
        .run(factory)
        .expect("simulation succeeds on valid inputs");
    let edges = pn_runtime::edge_set_from_outputs(g, &run.outputs)
        .expect("algorithm outputs are internally consistent");
    (edges, run.rounds, run.messages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_ratio() {
        let m = Measurement {
            found: 10,
            optimal: 4,
            rounds: 3,
            messages: 100,
        };
        assert!(m.ratio().eq_exact(Ratio::new(5, 2)));
    }

    #[test]
    fn run_distributed_port_one() {
        let g = pn_graph::ports::canonical_ports(&pn_graph::generators::cycle(6).unwrap()).unwrap();
        let (edges, rounds, messages) = run_distributed(&g, eds_core::port_one::PortOneNode::new);
        assert!(!edges.is_empty());
        assert_eq!(rounds, 1);
        assert_eq!(messages, 12);
    }
}

//! Plain-text table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple aligned text table, printed in the style of the paper's
/// Table 1.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["d", "ratio"]);
        t.row(vec!["2", "3.0000"]);
        t.row(vec!["10", "3.8000"]);
        let s = t.render();
        assert!(s.contains("d   ratio"));
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }
}

//! Workload construction shared by benches and experiment binaries.
//!
//! Since the scenario subsystem landed, this module is a thin adapter
//! over [`eds_scenarios`]: every instance is described by a
//! [`ScenarioSpec`] (family × seed × port policy) and materialised
//! through the same registry machinery the conformance tests and the
//! `scenario_sweep` binary use, so benches measure exactly the graphs
//! the quality harness validates.

use eds_scenarios::{Family, PortPolicy, ScenarioSpec};
use pn_graph::{GraphError, PortNumberedGraph, SimpleGraph};

/// A named instance: a port-numbered graph with a human-readable label.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Display name, e.g. `"random-regular n=64 d=4"`.
    pub name: String,
    /// The instance.
    pub graph: PortNumberedGraph,
}

fn build(name: String, spec: &ScenarioSpec) -> Result<Workload, GraphError> {
    Ok(Workload {
        name,
        graph: spec.build()?.graph,
    })
}

/// Random `d`-regular instances with shuffled ports, one per seed.
///
/// # Errors
///
/// Propagates generator errors for infeasible `(n, d)` combinations.
pub fn regular_suite(
    n: usize,
    d: usize,
    seeds: std::ops::Range<u64>,
) -> Result<Vec<Workload>, GraphError> {
    seeds
        .map(|seed| {
            build(
                format!("random-regular n={n} d={d} seed={seed}"),
                &ScenarioSpec::new(Family::RandomRegular { n, d }, seed, PortPolicy::Shuffled),
            )
        })
        .collect()
}

/// Random bounded-degree instances with shuffled ports, one per seed.
///
/// # Errors
///
/// Propagates generator errors.
pub fn bounded_suite(
    n: usize,
    delta: usize,
    density: f64,
    seeds: std::ops::Range<u64>,
) -> Result<Vec<Workload>, GraphError> {
    seeds
        .map(|seed| {
            build(
                format!("random-bounded n={n} Δ={delta} density={density} seed={seed}"),
                &ScenarioSpec::new(
                    Family::RandomBoundedDegree { n, delta, density },
                    seed,
                    PortPolicy::Shuffled,
                ),
            )
        })
        .collect()
}

/// The classic fixed topologies used across the benches.
///
/// # Errors
///
/// Never fails for the built-in parameter choices.
pub fn classic_suite() -> Result<Vec<Workload>, GraphError> {
    [
        Family::Petersen,
        Family::Hypercube(4),
        Family::Torus(6, 6),
        Family::Grid(8, 8),
        Family::Cycle(48),
        Family::Crown(6),
    ]
    .into_iter()
    .map(|family| {
        let spec = ScenarioSpec::new(family, 0, PortPolicy::Canonical);
        build(spec.family.label(), &spec)
    })
    .collect()
}

/// A geometric "sensor network" instance: random points in the unit
/// square, communication radius tuned so the expected degree is moderate,
/// then truncated to maximum degree `delta` by dropping excess edges.
///
/// # Errors
///
/// Propagates generator errors.
pub fn sensor_network(
    n: usize,
    delta: usize,
    seed: u64,
) -> Result<(SimpleGraph, PortNumberedGraph), GraphError> {
    let scenario = ScenarioSpec::new(
        Family::SensorNetwork { n, delta },
        seed,
        PortPolicy::Shuffled,
    )
    .build()?;
    Ok((scenario.simple, scenario.graph))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_build() {
        let r = regular_suite(12, 4, 0..3).unwrap();
        assert_eq!(r.len(), 3);
        for w in &r {
            assert_eq!(w.graph.regular_degree(), Some(4));
        }
        let b = bounded_suite(20, 5, 0.7, 0..2).unwrap();
        assert_eq!(b.len(), 2);
        for w in &b {
            assert!(w.graph.max_degree() <= 5);
        }
        let c = classic_suite().unwrap();
        assert!(c.len() >= 5);
    }

    #[test]
    fn sensor_network_respects_degree_bound() {
        let (g, pg) = sensor_network(60, 4, 9).unwrap();
        assert!(g.max_degree() <= 4);
        assert_eq!(g.edge_count(), pg.edge_count());
    }

    #[test]
    fn suites_agree_with_the_registry_specs() {
        // The adapter must produce the same graphs as building the spec
        // directly — benches and the quality sweep measure one substrate.
        let spec = ScenarioSpec::new(
            Family::RandomRegular { n: 12, d: 4 },
            1,
            PortPolicy::Shuffled,
        );
        let via_suite = &regular_suite(12, 4, 1..2).unwrap()[0];
        assert_eq!(via_suite.graph, spec.build().unwrap().graph);
    }
}

//! Workload construction shared by benches and experiment binaries.

use pn_graph::{generators, ports, GraphError, PortNumberedGraph, SimpleGraph};

/// A named instance: a port-numbered graph with a human-readable label.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Display name, e.g. `"random-regular n=64 d=4"`.
    pub name: String,
    /// The instance.
    pub graph: PortNumberedGraph,
}

/// Random `d`-regular instances with shuffled ports, one per seed.
///
/// # Errors
///
/// Propagates generator errors for infeasible `(n, d)` combinations.
pub fn regular_suite(
    n: usize,
    d: usize,
    seeds: std::ops::Range<u64>,
) -> Result<Vec<Workload>, GraphError> {
    seeds
        .map(|seed| {
            let g = generators::random_regular(n, d, seed)?;
            let graph = ports::shuffled_ports(&g, seed ^ 0x5eed)?;
            Ok(Workload {
                name: format!("random-regular n={n} d={d} seed={seed}"),
                graph,
            })
        })
        .collect()
}

/// Random bounded-degree instances with shuffled ports, one per seed.
///
/// # Errors
///
/// Propagates generator errors.
pub fn bounded_suite(
    n: usize,
    delta: usize,
    density: f64,
    seeds: std::ops::Range<u64>,
) -> Result<Vec<Workload>, GraphError> {
    seeds
        .map(|seed| {
            let g = generators::random_bounded_degree(n, delta, density, seed)?;
            let graph = ports::shuffled_ports(&g, seed ^ 0xb0bb)?;
            Ok(Workload {
                name: format!("random-bounded n={n} Δ={delta} density={density} seed={seed}"),
                graph,
            })
        })
        .collect()
}

/// The classic fixed topologies used across the benches.
///
/// # Errors
///
/// Never fails for the built-in parameter choices.
pub fn classic_suite() -> Result<Vec<Workload>, GraphError> {
    let named: Vec<(&str, SimpleGraph)> = vec![
        ("petersen", generators::petersen()),
        ("hypercube-4", generators::hypercube(4)?),
        ("torus-6x6", generators::torus(6, 6)?),
        ("grid-8x8", generators::grid(8, 8)?),
        ("cycle-48", generators::cycle(48)?),
        ("crown-6", generators::crown(6)?),
    ];
    named
        .into_iter()
        .map(|(name, g)| {
            Ok(Workload {
                name: name.to_owned(),
                graph: ports::canonical_ports(&g)?,
            })
        })
        .collect()
}

/// A geometric "sensor network" instance: random points in the unit
/// square, communication radius tuned so the expected degree is moderate,
/// then truncated to maximum degree `delta` by dropping excess edges.
///
/// # Errors
///
/// Propagates generator errors.
pub fn sensor_network(
    n: usize,
    delta: usize,
    seed: u64,
) -> Result<(SimpleGraph, PortNumberedGraph), GraphError> {
    let radius = (2.0 / (n as f64)).sqrt();
    let full = generators::random_geometric(n, radius, seed)?;
    // Truncate to the degree bound, keeping earlier edges.
    let mut g = SimpleGraph::new(n);
    for (_, u, v) in full.edges() {
        if g.degree(u) < delta && g.degree(v) < delta {
            g.add_edge(u, v)?;
        }
    }
    let pg = ports::shuffled_ports(&g, seed ^ 0x6e0)?;
    Ok((g, pg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_build() {
        let r = regular_suite(12, 4, 0..3).unwrap();
        assert_eq!(r.len(), 3);
        for w in &r {
            assert_eq!(w.graph.regular_degree(), Some(4));
        }
        let b = bounded_suite(20, 5, 0.7, 0..2).unwrap();
        assert_eq!(b.len(), 2);
        for w in &b {
            assert!(w.graph.max_degree() <= 5);
        }
        let c = classic_suite().unwrap();
        assert!(c.len() >= 5);
    }

    #[test]
    fn sensor_network_respects_degree_bound() {
        let (g, pg) = sensor_network(60, 4, 9).unwrap();
        assert!(g.max_degree() <= 4);
        assert_eq!(g.edge_count(), pg.edge_count());
    }
}

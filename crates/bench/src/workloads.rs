//! Workload construction shared by benches and experiment binaries.
//!
//! Since the scenario subsystem landed, this module is a thin adapter
//! over [`eds_scenarios`]: every suite is a [`Registry`] of
//! [`ScenarioSpec`]s materialised through the same machinery the
//! conformance tests and the `scenario_sweep` binary use, so benches
//! measure exactly the graphs the quality harness validates. The
//! [`sweep_suite`] helper pushes a whole suite through the
//! [`Session`] solver service when a bench wants quality records next
//! to its timings.

use eds_scenarios::{Family, PortPolicy, Registry, ScenarioSpec, Session, SweepError, SweepRecord};
use pn_graph::{GraphError, PortNumberedGraph, SimpleGraph};

/// A named instance: a port-numbered graph with a human-readable label.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Display name, e.g. `"random-regular n=64 d=4"`.
    pub name: String,
    /// The instance.
    pub graph: PortNumberedGraph,
}

/// Materialises every spec of a registry into a [`Workload`], naming
/// each by `label(spec)`.
///
/// # Errors
///
/// Propagates generator errors.
pub fn materialise(
    registry: &Registry,
    label: impl Fn(&ScenarioSpec) -> String,
) -> Result<Vec<Workload>, GraphError> {
    registry
        .iter()
        .map(|spec| {
            Ok(Workload {
                name: label(spec),
                graph: spec.build()?.graph,
            })
        })
        .collect()
}

/// Runs a whole suite through the [`Session`] solver service, returning
/// the quality records (sharded execution, deterministic order).
///
/// # Errors
///
/// Propagates build and execution errors.
pub fn sweep_suite(registry: Registry) -> Result<Vec<SweepRecord>, SweepError> {
    Session::over(registry).collect()
}

/// The registry behind [`regular_suite`].
pub fn regular_registry(n: usize, d: usize, seeds: std::ops::Range<u64>) -> Registry {
    Registry::new(
        seeds
            .map(|seed| {
                ScenarioSpec::new(Family::RandomRegular { n, d }, seed, PortPolicy::Shuffled)
            })
            .collect(),
    )
}

/// Random `d`-regular instances with shuffled ports, one per seed.
///
/// # Errors
///
/// Propagates generator errors for infeasible `(n, d)` combinations.
pub fn regular_suite(
    n: usize,
    d: usize,
    seeds: std::ops::Range<u64>,
) -> Result<Vec<Workload>, GraphError> {
    materialise(&regular_registry(n, d, seeds), |spec| {
        format!("random-regular n={n} d={d} seed={}", spec.seed)
    })
}

/// The registry behind [`bounded_suite`].
pub fn bounded_registry(
    n: usize,
    delta: usize,
    density: f64,
    seeds: std::ops::Range<u64>,
) -> Registry {
    Registry::new(
        seeds
            .map(|seed| {
                ScenarioSpec::new(
                    Family::RandomBoundedDegree { n, delta, density },
                    seed,
                    PortPolicy::Shuffled,
                )
            })
            .collect(),
    )
}

/// Random bounded-degree instances with shuffled ports, one per seed.
///
/// # Errors
///
/// Propagates generator errors.
pub fn bounded_suite(
    n: usize,
    delta: usize,
    density: f64,
    seeds: std::ops::Range<u64>,
) -> Result<Vec<Workload>, GraphError> {
    materialise(
        &bounded_registry(n, delta, density, seeds.clone()),
        |spec| {
            format!(
                "random-bounded n={n} Δ={delta} density={density} seed={}",
                spec.seed
            )
        },
    )
}

/// The registry behind [`power_law_suite`].
pub fn power_law_registry(n: usize, m: usize, seeds: std::ops::Range<u64>) -> Registry {
    Registry::new(
        seeds
            .map(|seed| ScenarioSpec::new(Family::PowerLaw { n, m }, seed, PortPolicy::Shuffled))
            .collect(),
    )
}

/// Heavy-tailed preferential-attachment instances, one per seed — the
/// workload whose hub degrees stress the `Δ`-parametrised protocols.
///
/// # Errors
///
/// Propagates generator errors.
pub fn power_law_suite(
    n: usize,
    m: usize,
    seeds: std::ops::Range<u64>,
) -> Result<Vec<Workload>, GraphError> {
    materialise(&power_law_registry(n, m, seeds), |spec| {
        format!("power-law n={n} m={m} seed={}", spec.seed)
    })
}

/// The registry behind [`classic_suite`].
pub fn classic_registry() -> Registry {
    Registry::new(
        [
            Family::Petersen,
            Family::Hypercube(4),
            Family::Torus(6, 6),
            Family::Grid(8, 8),
            Family::Cycle(48),
            Family::Crown(6),
        ]
        .into_iter()
        .map(|family| ScenarioSpec::new(family, 0, PortPolicy::Canonical))
        .collect(),
    )
}

/// The classic fixed topologies used across the benches.
///
/// # Errors
///
/// Never fails for the built-in parameter choices.
pub fn classic_suite() -> Result<Vec<Workload>, GraphError> {
    materialise(&classic_registry(), |spec| spec.family.label())
}

/// A geometric "sensor network" instance: random points in the unit
/// square, communication radius tuned so the expected degree is moderate,
/// then truncated to maximum degree `delta` by dropping excess edges.
///
/// # Errors
///
/// Propagates generator errors.
pub fn sensor_network(
    n: usize,
    delta: usize,
    seed: u64,
) -> Result<(SimpleGraph, PortNumberedGraph), GraphError> {
    let scenario = ScenarioSpec::new(
        Family::SensorNetwork { n, delta },
        seed,
        PortPolicy::Shuffled,
    )
    .build()?;
    Ok((scenario.simple, scenario.graph))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_build() {
        let r = regular_suite(12, 4, 0..3).unwrap();
        assert_eq!(r.len(), 3);
        for w in &r {
            assert_eq!(w.graph.regular_degree(), Some(4));
        }
        let b = bounded_suite(20, 5, 0.7, 0..2).unwrap();
        assert_eq!(b.len(), 2);
        for w in &b {
            assert!(w.graph.max_degree() <= 5);
        }
        let c = classic_suite().unwrap();
        assert!(c.len() >= 5);
        let p = power_law_suite(30, 2, 0..2).unwrap();
        assert_eq!(p.len(), 2);
        for w in &p {
            assert!(w.graph.max_degree() > 2, "{}: hubs expected", w.name);
        }
    }

    #[test]
    fn sensor_network_respects_degree_bound() {
        let (g, pg) = sensor_network(60, 4, 9).unwrap();
        assert!(g.max_degree() <= 4);
        assert_eq!(g.edge_count(), pg.edge_count());
    }

    #[test]
    fn suites_agree_with_the_registry_specs() {
        // The adapter must produce the same graphs as building the spec
        // directly — benches and the quality sweep measure one substrate.
        let spec = ScenarioSpec::new(
            Family::RandomRegular { n: 12, d: 4 },
            1,
            PortPolicy::Shuffled,
        );
        let via_suite = &regular_suite(12, 4, 1..2).unwrap()[0];
        assert_eq!(via_suite.graph, spec.build().unwrap().graph);
    }

    #[test]
    fn sweep_suite_scores_a_whole_registry() {
        let records = sweep_suite(power_law_registry(14, 2, 0..2)).unwrap();
        // Five edge protocols + vertex cover on each seed (power-law
        // graphs are never odd-regular, so Theorem 4 sits out).
        assert_eq!(records.len(), 2 * 5);
        assert!(records.iter().all(|r| r.is_clean()));
    }
}

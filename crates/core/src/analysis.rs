//! The Section 7 accounting: costs, weights, and the double-counting
//! argument behind Theorem 5's approximation bound.
//!
//! Given the algorithm's output `D = M ∪ P` and an arbitrary maximal
//! matching `D*` (e.g. a minimum one), the proof
//!
//! 1. classifies nodes as **internal** (covered by `D*`) or **external**;
//! 2. charges each `D`-edge to internal nodes: 1 to the internal endpoint
//!    of an internal–external edge, ½ to each endpoint of an
//!    internal–internal edge — so `Σ c(v) = |D|` and `|I| = 2 |D*|`;
//! 3. selects a set `C` of edges joining each odd-degree `P`-node to an
//!    `M`-node (possible by property b), sets `F = E ∖ (M ∪ P ∪ C)`, and
//!    assigns edge weights `w`:
//!    * `w(e) = 2` for `e ∈ F ∪ C` touching an external `P`-node,
//!    * `w(e) = 2 - d(u)` for `e ∈ P` with `u` its external `P`-node,
//!    * `w(e) = 0` otherwise;
//! 4. double counts: summed over external `P`-nodes the weight is
//!    non-negative, while an internal node of cost `c(v)` carries at most
//!    `-2, Δ-3, 2Δ-4, 2Δ-2` weight for `2c(v) = 4, 3, 2, ≤1`
//!    respectively — which forces enough low-cost internal nodes to bound
//!    the ratio by `4 - 1/k`.
//!
//! [`Section7Analysis::verify`] checks *every* inequality of the proof on
//! a concrete instance; the property tests run it on thousands of random
//! graphs.

use pn_graph::{EdgeId, NodeId, PortNumberedGraph};

use crate::bounded_degree::BoundedDegreeResult;

/// Classification of one edge for the weight assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeClass {
    /// In the matching `M` (phases I–II).
    InM,
    /// In the 2-matching `P` (phase III).
    InP,
    /// In the connector set `C` (joins an odd `P`-node to an `M`-node).
    InC,
    /// In the remainder `F = E ∖ (M ∪ P ∪ C)`.
    InF,
}

/// The full Section 7 accounting for one instance.
#[derive(Clone, Debug)]
pub struct Section7Analysis {
    /// Whether each node is internal (covered by `D*`).
    pub internal: Vec<bool>,
    /// Twice the cost `c(v)` of each node (0 for external nodes);
    /// always in `{0, 1, 2, 3, 4}`.
    pub cost2: Vec<u8>,
    /// `I_x` = number of internal nodes with `2 c(v) = x`.
    pub histogram: [usize; 5],
    /// Edge classification (`M`, `P`, `C`, `F`).
    pub classes: Vec<EdgeClass>,
    /// The weight `w(e)` of each edge.
    pub weights: Vec<i64>,
    /// Total weight `w(E)`.
    pub total_weight: i64,
    /// `|D|` and `|D*|` for the ratio check.
    pub d_size: usize,
    /// Size of the reference maximal matching.
    pub dstar_size: usize,
}

impl Section7Analysis {
    /// Builds the accounting from an algorithm result and a maximal
    /// matching `dstar`.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated precondition if `dstar` is
    /// not a maximal matching or the result is malformed.
    pub fn build(
        g: &PortNumberedGraph,
        result: &BoundedDegreeResult,
        dstar: &[EdgeId],
    ) -> Result<Self, String> {
        let n = g.node_count();

        // D* must be a maximal matching.
        let mut internal = vec![false; n];
        for &e in dstar {
            let (u, v) = g.edge(e).nodes();
            if internal[u.index()] || internal[v.index()] {
                return Err("D* is not a matching".to_owned());
            }
            internal[u.index()] = true;
            internal[v.index()] = true;
        }
        for (_, shape) in g.edges() {
            let (u, v) = shape.nodes();
            if !internal[u.index()] && !internal[v.index()] {
                return Err(format!("D* is not maximal: edge {u}-{v} uncovered"));
            }
        }

        // Node roles under D.
        let mut m_cover = vec![false; n];
        for &e in &result.matching {
            let (u, v) = g.edge(e).nodes();
            m_cover[u.index()] = true;
            m_cover[v.index()] = true;
        }
        let mut p_cover = vec![false; n];
        for &e in &result.two_matching {
            let (u, v) = g.edge(e).nodes();
            p_cover[u.index()] = true;
            p_cover[v.index()] = true;
        }

        // Costs.
        let mut cost2 = vec![0u8; n];
        let d_edges = &result.dominating_set;
        for &e in d_edges {
            let (u, v) = g.edge(e).nodes();
            match (internal[u.index()], internal[v.index()]) {
                (true, false) => cost2[u.index()] += 2,
                (false, true) => cost2[v.index()] += 2,
                (true, true) => {
                    cost2[u.index()] += 1;
                    cost2[v.index()] += 1;
                }
                (false, false) => {
                    return Err(format!(
                        "edge {u}-{v} has two external endpoints: D* not maximal"
                    ))
                }
            }
        }
        let mut histogram = [0usize; 5];
        for v in 0..n {
            if internal[v] {
                let x = cost2[v] as usize;
                if x > 4 {
                    return Err(format!("internal node n{v} has cost {x}/2 > 2"));
                }
                histogram[x] += 1;
            } else if cost2[v] != 0 {
                return Err(format!("external node n{v} was charged"));
            }
        }

        // Edge classes: M, P, then C, then F.
        let mut classes = vec![EdgeClass::InF; g.edge_count()];
        for &e in &result.matching {
            classes[e.index()] = EdgeClass::InM;
        }
        for &e in &result.two_matching {
            classes[e.index()] = EdgeClass::InP;
        }
        // C: one edge per odd-degree P-node to an M-covered neighbour.
        for v in g.nodes() {
            if !p_cover[v.index()] || g.degree(v).is_multiple_of(2) {
                continue;
            }
            let mut chosen = None;
            for p in g.ports(v) {
                let u = g.neighbor_through(v, p);
                if m_cover[u.index()] {
                    let e = g.edge_at(pn_graph::Endpoint::new(v, p));
                    if classes[e.index()] == EdgeClass::InF {
                        chosen = Some(e);
                        break;
                    }
                }
            }
            match chosen {
                Some(e) => classes[e.index()] = EdgeClass::InC,
                None => {
                    return Err(format!(
                        "odd P-node {v} has no spare edge to an M-node (property b violated)"
                    ))
                }
            }
        }

        // Weights.
        let external_p = |v: NodeId| p_cover[v.index()] && !internal[v.index()];
        let mut weights = vec![0i64; g.edge_count()];
        for (e, shape) in g.edges() {
            let (u, v) = shape.nodes();
            let w = match classes[e.index()] {
                EdgeClass::InF | EdgeClass::InC => {
                    if external_p(u) || external_p(v) {
                        2
                    } else {
                        0
                    }
                }
                EdgeClass::InP => {
                    if external_p(u) {
                        2 - g.degree(u) as i64
                    } else if external_p(v) {
                        2 - g.degree(v) as i64
                    } else {
                        0
                    }
                }
                EdgeClass::InM => 0,
            };
            weights[e.index()] = w;
        }
        let total_weight = weights.iter().sum();

        Ok(Section7Analysis {
            internal,
            cost2,
            histogram,
            classes,
            weights,
            total_weight,
            d_size: d_edges.len(),
            dstar_size: dstar.len(),
        })
    }

    /// The per-node total weight `w(v)` (sum over incident edges).
    pub fn node_weight(&self, g: &PortNumberedGraph, v: NodeId) -> i64 {
        g.ports(v)
            .map(|p| self.weights[g.edge_at(pn_graph::Endpoint::new(v, p)).index()])
            .sum()
    }

    /// Verifies every inequality of the Section 7 proof for maximum
    /// degree `delta`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated inequality.
    pub fn verify(&self, g: &PortNumberedGraph, delta: usize) -> Result<(), String> {
        let n = g.node_count();
        let internal_count: usize = self.internal.iter().filter(|&&b| b).count();

        // Identity checks: |I| = 2|D*| and Σ x I_x = 2|D|.
        if internal_count != 2 * self.dstar_size {
            return Err("2|D*| != |I|".to_owned());
        }
        let weighted: usize = self.histogram.iter().enumerate().map(|(x, &c)| x * c).sum();
        if weighted != 2 * self.d_size {
            return Err(format!(
                "Σ x I_x = {weighted} but 2|D| = {}",
                2 * self.d_size
            ));
        }

        // External P-nodes have non-negative weight.
        let mut p_cover = vec![false; n];
        for (e, shape) in g.edges() {
            if self.classes[e.index()] == EdgeClass::InP {
                let (u, v) = shape.nodes();
                p_cover[u.index()] = true;
                p_cover[v.index()] = true;
            }
        }
        let delta_i = delta as i64;
        let mut external_sum = 0i64;
        let mut internal_sum = 0i64;
        for v in g.nodes() {
            let wv = self.node_weight(g, v);
            if !self.internal[v.index()] {
                if p_cover[v.index()] {
                    if wv < 0 {
                        return Err(format!("external P-node {v} has weight {wv} < 0"));
                    }
                    external_sum += wv;
                } else if wv != 0 {
                    return Err(format!("external non-P node {v} has weight {wv} != 0"));
                }
            } else {
                internal_sum += wv;
                // Per-cost weight caps.
                let cap = match self.cost2[v.index()] {
                    4 => -2,
                    3 => delta_i - 3,
                    2 => 2 * delta_i - 4,
                    _ => 2 * delta_i - 2,
                };
                if wv > cap {
                    return Err(format!(
                        "internal node {v} with cost {}/2 has weight {wv} > cap {cap}",
                        self.cost2[v.index()]
                    ));
                }
            }
        }
        // Double counting: both sums equal the total weight.
        if external_sum != self.total_weight || internal_sum != self.total_weight {
            return Err(format!(
                "double counting broken: external {external_sum}, internal {internal_sum}, total {}",
                self.total_weight
            ));
        }
        if self.total_weight < 0 {
            return Err(format!("total weight {} < 0", self.total_weight));
        }

        // The aggregate bound W >= w(E) >= 0, hence
        // 2 I_4 <= (Δ-3) I_3 + (2Δ-4) I_2 + (2Δ-2) I_1 + (2Δ-2) I_0.
        let [i0, i1, i2, i3, i4] = self.histogram.map(|x| x as i64);
        let rhs = (delta_i - 3) * i3 + (2 * delta_i - 4) * i2 + (2 * delta_i - 2) * (i1 + i0);
        if 2 * i4 > rhs {
            return Err(format!(
                "aggregate bound violated: 2 I4 = {} > {rhs}",
                2 * i4
            ));
        }

        // The final ratio bound |D| <= (4 - 1/k) |D*| with k = ⌊Δ/2⌋
        // (vacuous for Δ <= 1).
        if delta >= 2 {
            let k = (delta / 2) as u64;
            let lhs = self.d_size as u64 * k;
            let rhs = (4 * k - 1) * self.dstar_size as u64;
            if lhs > rhs {
                return Err(format!(
                    "ratio bound violated: |D| = {}, |D*| = {}, k = {k}",
                    self.d_size, self.dstar_size
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded_degree::bounded_degree_reference;
    use pn_graph::matching::greedy_maximal_matching;
    use pn_graph::{generators, ports};

    fn analyse(g: &pn_graph::SimpleGraph, delta: usize, seed: u64) {
        let pg = ports::shuffled_ports(g, seed).unwrap();
        let result = bounded_degree_reference(&pg, delta).unwrap();
        // Edge ids of the port-numbered graph follow slot order, so the
        // maximal matching must be computed on its own simple view.
        let dstar = greedy_maximal_matching(&pg.to_simple().unwrap());
        let analysis = Section7Analysis::build(&pg, &result, &dstar).unwrap();
        analysis.verify(&pg, delta).unwrap();
    }

    #[test]
    fn grids() {
        analyse(&generators::grid(4, 4).unwrap(), 4, 1);
        analyse(&generators::grid(5, 3).unwrap(), 4, 2);
    }

    #[test]
    fn random_regular() {
        for d in [3usize, 4, 5] {
            for seed in 0..5 {
                let g = generators::random_regular(12, d, seed * 7 + d as u64).unwrap();
                analyse(&g, d, seed);
            }
        }
    }

    #[test]
    fn random_bounded() {
        for delta in [3usize, 5, 6] {
            for seed in 0..5 {
                let g = generators::random_bounded_degree(20, delta, 0.8, seed + 40).unwrap();
                if g.is_edgeless() {
                    continue;
                }
                analyse(&g, delta, seed);
            }
        }
    }

    #[test]
    fn rejects_non_maximal_dstar() {
        let g = generators::path(4).unwrap();
        let pg = ports::canonical_ports(&g).unwrap();
        let result = bounded_degree_reference(&pg, 2).unwrap();
        // Empty D* is not maximal for a non-empty graph.
        assert!(Section7Analysis::build(&pg, &result, &[]).is_err());
    }

    #[test]
    fn rejects_non_matching_dstar() {
        let g = generators::path(3).unwrap();
        let pg = ports::canonical_ports(&g).unwrap();
        let result = bounded_degree_reference(&pg, 2).unwrap();
        let both: Vec<pn_graph::EdgeId> = vec![pn_graph::EdgeId::new(0), pn_graph::EdgeId::new(1)];
        assert!(Section7Analysis::build(&pg, &result, &both).is_err());
    }

    #[test]
    fn histogram_identities() {
        let g = generators::petersen();
        let pg = ports::shuffled_ports(&g, 3).unwrap();
        let result = bounded_degree_reference(&pg, 3).unwrap();
        let dstar = greedy_maximal_matching(&pg.to_simple().unwrap());
        let a = Section7Analysis::build(&pg, &result, &dstar).unwrap();
        let internal_count = a.internal.iter().filter(|&&b| b).count();
        assert_eq!(internal_count, 2 * dstar.len());
        let weighted: usize = a.histogram.iter().enumerate().map(|(x, &c)| x * c).sum();
        assert_eq!(weighted, 2 * result.dominating_set.len());
    }
}

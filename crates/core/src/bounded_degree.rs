//! Theorem 5: the `O(Δ²)`-time family `A(Δ)` for graphs of maximum
//! degree `Δ`, achieving the tight ratios `4 - 2/(Δ-1)` (odd `Δ`) and
//! `4 - 2/Δ` (even `Δ`) — both equal to `4 - 1/k` for `Δ ∈ {2k, 2k+1}`.
//!
//! The algorithm constructs two node-disjoint edge sets (paper Section 7):
//!
//! * **Phase I** — a greedy matching `M` over the distinguishable
//!   matchings `M_G(i, j)`: edge `e ∈ M_G(i, j)` joins `M` if *neither*
//!   endpoint is covered yet. Afterwards every odd-degree node is covered
//!   by `M` or adjacent to an `M`-covered node (property b).
//! * **Phase II** — for each `i = 2, ..., Δ`: a proposal-based maximal
//!   matching `M_i` on the bipartite subgraph `B_i` of edges `{u, v}` with
//!   `d(u) < d(v) = i` and both endpoints `M`-uncovered; `M ← M ∪ M_i`.
//!   Afterwards any edge with both endpoints uncovered joins nodes of
//!   *equal* degree (property c).
//! * **Phase III** — a 2-matching `P` dominating the remaining subgraph
//!   `H` (edges with no `M`-covered endpoint), via the bipartite double
//!   cover proposal scheme.
//!
//! The output is `D = M ∪ P`. The weight/cost double-counting argument of
//! Sections 7.4–7.8 (implemented in [`crate::analysis`]) bounds
//! `|D| ≤ (4 - 1/k) |D*|`.

use pn_graph::{EdgeId, GraphError, PortNumberedGraph};

use crate::labels::Labels;
use crate::proposals::{black_white_proposal_matching, double_cover_two_matching};

/// Output of `A(Δ)` with the intermediate sets exposed for analysis.
#[derive(Clone, Debug)]
pub struct BoundedDegreeResult {
    /// The matching `M` (phases I and II).
    pub matching: Vec<EdgeId>,
    /// The 2-matching `P` (phase III), node-disjoint from `M`.
    pub two_matching: Vec<EdgeId>,
    /// `M` as it stood after Phase I only.
    pub phase1: Vec<EdgeId>,
    /// The matchings `M_i` added in Phase II, indexed by `i - 2`.
    pub phase2_added: Vec<Vec<EdgeId>>,
    /// The final edge dominating set `D = M ∪ P`.
    pub dominating_set: Vec<EdgeId>,
}

/// Runs the `A(Δ)` algorithm (centralised reference, synchronous
/// semantics).
///
/// `delta` is the degree bound the algorithm family is parametrised by;
/// the graph's maximum degree must not exceed it. For even `delta` the
/// paper sets `A(2k) = A(2k+1)`; the two give identical executions on a
/// graph of maximum degree `≤ 2k`, so no adjustment is needed here.
///
/// # Errors
///
/// * [`GraphError::NotSimple`] for multigraphs;
/// * [`GraphError::InvalidParameter`] if `max_degree(g) > delta`.
///
/// # Examples
///
/// ```
/// use pn_graph::{generators, ports};
/// use eds_core::bounded_degree::bounded_degree_reference;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = ports::canonical_ports(&generators::grid(4, 3)?)?;
/// let result = bounded_degree_reference(&g, 4)?;
/// assert!(!result.dominating_set.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn bounded_degree_reference(
    g: &PortNumberedGraph,
    delta: usize,
) -> Result<BoundedDegreeResult, GraphError> {
    if g.max_degree() > delta {
        return Err(GraphError::InvalidParameter {
            detail: format!(
                "graph has maximum degree {} exceeding the bound Δ = {delta}",
                g.max_degree()
            ),
        });
    }
    let labels = Labels::compute(g)?;
    let n = g.node_count();
    let mut in_m = vec![false; g.edge_count()];
    let mut covered = vec![false; n];

    // ----- Phase I: greedy matching on distinguishable edges. -----
    // Pairs (i, j) range over 1..=Δ in the paper; pairs beyond the actual
    // maximum degree have empty matchings, so iterating the computed
    // labels is equivalent.
    for (_, _, matching) in labels.pairs() {
        let additions: Vec<EdgeId> = matching
            .iter()
            .copied()
            .filter(|&e| {
                let (u, v) = g.edge(e).nodes();
                !covered[u.index()] && !covered[v.index()]
            })
            .collect();
        for e in additions {
            let (u, v) = g.edge(e).nodes();
            // M(i, j) is a matching, so simultaneous additions never
            // conflict; assert the invariant in debug builds.
            debug_assert!(!covered[u.index()] && !covered[v.index()]);
            in_m[e.index()] = true;
            covered[u.index()] = true;
            covered[v.index()] = true;
        }
    }
    let phase1: Vec<EdgeId> = (0..g.edge_count())
        .map(EdgeId::new)
        .filter(|e| in_m[e.index()])
        .collect();

    // ----- Phase II: degree-split bipartite maximal matchings. -----
    let mut phase2_added = Vec::new();
    for i in 2..=delta.min(g.max_degree()) {
        // B_i: edges {u, v} with d(u) < d(v) = i, both uncovered.
        let mut eligible = vec![false; g.edge_count()];
        let mut is_black = vec![false; n];
        let mut nonempty = false;
        for (e, shape) in g.edges() {
            let (u, v) = shape.nodes();
            let (du, dv) = (g.degree(u), g.degree(v));
            let (lo, hi, hi_node) = if du < dv { (du, dv, v) } else { (dv, du, u) };
            if lo < hi && hi == i && !covered[u.index()] && !covered[v.index()] {
                eligible[e.index()] = true;
                is_black[hi_node.index()] = true;
                nonempty = true;
            }
        }
        if !nonempty {
            phase2_added.push(Vec::new());
            continue;
        }
        let m_i = black_white_proposal_matching(g, &is_black, &eligible);
        for &e in &m_i {
            let (u, v) = g.edge(e).nodes();
            in_m[e.index()] = true;
            covered[u.index()] = true;
            covered[v.index()] = true;
        }
        phase2_added.push(m_i);
    }
    let matching: Vec<EdgeId> = (0..g.edge_count())
        .map(EdgeId::new)
        .filter(|e| in_m[e.index()])
        .collect();

    // ----- Phase III: 2-matching dominating the remainder. -----
    // H: edges not dominated by M (neither endpoint covered).
    let mut h_edges = vec![false; g.edge_count()];
    for (e, shape) in g.edges() {
        let (u, v) = shape.nodes();
        if !covered[u.index()] && !covered[v.index()] {
            h_edges[e.index()] = true;
        }
    }
    let two_matching = double_cover_two_matching(g, &h_edges);

    let mut dominating_set = matching.clone();
    dominating_set.extend(two_matching.iter().copied());
    dominating_set.sort_unstable();
    Ok(BoundedDegreeResult {
        matching,
        two_matching,
        phase1,
        phase2_added,
        dominating_set,
    })
}

/// The tight approximation ratio of `A(Δ)` as an exact fraction:
/// `1` for `Δ = 1`, and `4 - 1/k = (4k - 1)/k` for `Δ ∈ {2k, 2k + 1}`.
///
/// # Panics
///
/// Panics if `delta == 0`.
pub fn bounded_degree_ratio(delta: usize) -> (u64, u64) {
    assert!(delta >= 1, "ratio defined for Δ >= 1");
    if delta == 1 {
        return (1, 1);
    }
    let k = (delta / 2) as u64; // Δ = 2k or 2k + 1
    (4 * k - 1, k)
}

/// Checks the three structural properties of Section 7.3 for a result on
/// `g`; returns a human-readable violation if any fails. Used by tests
/// and the Figure 9 regenerator.
pub fn check_section7_properties(
    g: &PortNumberedGraph,
    result: &BoundedDegreeResult,
) -> Result<(), String> {
    let n = g.node_count();
    let mut m_deg = vec![0usize; n];
    for &e in &result.matching {
        let (u, v) = g.edge(e).nodes();
        m_deg[u.index()] += 1;
        m_deg[v.index()] += 1;
    }
    let mut p_deg = vec![0usize; n];
    for &e in &result.two_matching {
        let (u, v) = g.edge(e).nodes();
        p_deg[u.index()] += 1;
        p_deg[v.index()] += 1;
    }
    // (a) M is a matching, P a 2-matching, node-disjoint.
    for v in 0..n {
        if m_deg[v] > 1 {
            return Err(format!("property (a): node n{v} has M-degree {}", m_deg[v]));
        }
        if p_deg[v] > 2 {
            return Err(format!("property (a): node n{v} has P-degree {}", p_deg[v]));
        }
        if m_deg[v] > 0 && p_deg[v] > 0 {
            return Err(format!("property (a): node n{v} covered by both M and P"));
        }
    }
    // (b) every odd-degree node is covered by M or adjacent to one.
    for v in g.nodes() {
        if g.degree(v) % 2 == 1 && m_deg[v.index()] == 0 {
            let near = g
                .ports(v)
                .any(|p| m_deg[g.neighbor_through(v, p).index()] > 0);
            if !near {
                return Err(format!(
                    "property (b): odd node {v} has no M-covered neighbour"
                ));
            }
        }
    }
    // (c) P-edges join nodes of equal degree.
    for &e in &result.two_matching {
        let (u, v) = g.edge(e).nodes();
        if g.degree(u) != g.degree(v) {
            return Err(format!(
                "property (c): P-edge {u}-{v} joins degrees {} and {}",
                g.degree(u),
                g.degree(v)
            ));
        }
    }
    Ok(())
}

/// Checks feasibility: `D` dominates every edge of `g`.
pub fn dominates_all_edges(g: &PortNumberedGraph, d: &[EdgeId]) -> bool {
    let mut covered = vec![false; g.node_count()];
    for &e in d {
        let (u, v) = g.edge(e).nodes();
        covered[u.index()] = true;
        covered[v.index()] = true;
    }
    g.edges().all(|(_, shape)| {
        let (u, v) = shape.nodes();
        covered[u.index()] || covered[v.index()]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pn_graph::{generators, ports};

    fn run_and_check(g: &PortNumberedGraph, delta: usize) -> BoundedDegreeResult {
        let result = bounded_degree_reference(g, delta).unwrap();
        assert!(
            dominates_all_edges(g, &result.dominating_set),
            "feasibility"
        );
        check_section7_properties(g, &result).unwrap();
        result
    }

    #[test]
    fn grid_graphs() {
        for (w, h) in [(3, 3), (4, 5), (2, 7)] {
            for seed in 0..3 {
                let g = generators::grid(w, h).unwrap();
                let pg = ports::shuffled_ports(&g, seed).unwrap();
                run_and_check(&pg, 4);
            }
        }
    }

    #[test]
    fn random_bounded_graphs() {
        for delta in [2usize, 3, 4, 5, 6, 7] {
            for seed in 0..4 {
                let g = generators::random_bounded_degree(24, delta, 0.7, seed * 13 + delta as u64)
                    .unwrap();
                let pg = ports::shuffled_ports(&g, seed).unwrap();
                run_and_check(&pg, delta);
            }
        }
    }

    #[test]
    fn regular_graphs_also_work() {
        // A(Δ) on Δ-regular graphs: phase II is empty (no degree splits).
        let g = generators::random_regular(12, 5, 4).unwrap();
        let pg = ports::shuffled_ports(&g, 4).unwrap();
        let result = run_and_check(&pg, 5);
        for m_i in &result.phase2_added {
            assert!(m_i.is_empty(), "no B_i edges in a regular graph");
        }
    }

    #[test]
    fn star_graph_picks_one_edge() {
        // A star K_{1,Δ}: optimal EDS is any single edge.
        let g = generators::star(5).unwrap();
        let pg = ports::canonical_ports(&g).unwrap();
        let result = run_and_check(&pg, 5);
        assert_eq!(result.dominating_set.len(), 1);
    }

    #[test]
    fn degree_bound_enforced() {
        let g = ports::canonical_ports(&generators::star(5).unwrap()).unwrap();
        assert!(matches!(
            bounded_degree_reference(&g, 3),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn edgeless_graph() {
        let g = pn_graph::SimpleGraph::new(4);
        let pg = ports::canonical_ports(&g).unwrap();
        let result = bounded_degree_reference(&pg, 3).unwrap();
        assert!(result.dominating_set.is_empty());
    }

    #[test]
    fn ratio_values() {
        assert_eq!(bounded_degree_ratio(1), (1, 1));
        assert_eq!(bounded_degree_ratio(2), (3, 1)); // 4 - 2/2 = 3
        assert_eq!(bounded_degree_ratio(3), (3, 1)); // 4 - 2/(3-1) = 3
        assert_eq!(bounded_degree_ratio(4), (7, 2)); // 3.5
        assert_eq!(bounded_degree_ratio(5), (7, 2)); // 3.5
        assert_eq!(bounded_degree_ratio(7), (11, 3));
    }

    #[test]
    fn path_graphs_every_delta() {
        // Paths have degrees 1 and 2: B_2 is non-trivial, exercising
        // phase II.
        for n in [2usize, 3, 5, 9, 14] {
            let g = generators::path(n).unwrap();
            let pg = ports::canonical_ports(&g).unwrap();
            let result = run_and_check(&pg, 2);
            assert!(!result.dominating_set.is_empty());
        }
    }

    #[test]
    fn phase2_actually_fires_on_stars_with_tails() {
        // A "broom": star with a path attached gives degree variety.
        let mut g = generators::star(4).unwrap();
        let extra = g.add_nodes(2);
        g.add_edge(pn_graph::NodeId::new(1), extra[0]).unwrap();
        g.add_edge(extra[0], extra[1]).unwrap();
        let pg = ports::canonical_ports(&g).unwrap();
        let result = run_and_check(&pg, 4);
        let added: usize = result.phase2_added.iter().map(Vec::len).sum();
        let _ = added; // phase II may or may not fire depending on ports;
                       // the structural checks above are the real test.
    }
}

//! The distributed Theorem 5 protocol `A(Δ)`: ratio `4 - 1/k` for
//! `Δ ∈ {2k, 2k+1}` in `O(Δ²)` rounds on graphs of maximum degree `Δ`.
//!
//! Round schedule, a function of `Δ` alone (`B = 2Δ + 1` rounds per
//! Phase II block):
//!
//! | rounds | content |
//! |---|---|
//! | `0` | hello: own port number + own degree |
//! | `1` | distinguishable-neighbour claims |
//! | `2 .. 2+Δ²` | Phase I: pair `(i,j)` per round; greedy matching on `M(i,j)` |
//! | `2+Δ² + (i-2)·B ..` | Phase II block for `i = 2..Δ`: one cover-exchange round, then `Δ` propose/respond pairs building the maximal matching `M_i` on `B_i` |
//! | final `2 + 2Δ` | Phase III: one cover-exchange round, then `Δ` propose/respond pairs building the 2-matching `P` on the remainder `H` |
//!
//! The protocol is differentially tested against
//! [`crate::bounded_degree::bounded_degree_reference`]: identical outputs
//! on every input.

use pn_graph::{EdgeId, GraphError, Port, PortNumberedGraph};
use pn_runtime::{collect_send, NodeAlgorithm, PortSet, Simulator, WrongCount};

use super::common::dn_port_index;

/// Messages of the `A(Δ)` protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundedMsg {
    /// Round 0: own port number (1-based) and own degree.
    Hello {
        /// The sender's port this message leaves through.
        port: u32,
        /// The sender's degree.
        degree: u32,
    },
    /// Round 1: "you are my distinguishable neighbour".
    Claim(bool),
    /// Cover-exchange rounds: "I am covered by `M`".
    Cover(bool),
    /// A proposal (Phase II: black → white; Phase III: proposer role).
    Propose,
    /// Answer to a proposal received in the previous round.
    Response(bool),
    /// Filler for ports with nothing to say this round.
    Nothing,
}

impl pn_runtime::PackedMessage for BoundedMsg {
    fn lane_bits(max_degree: usize) -> Option<u32> {
        // Eight fixed codes plus a (port, degree) pair, both 1-based and
        // bounded by Δ: Δ² Hello codes.
        let d = max_degree as u64;
        pn_runtime::lane_width_for(8 + d * d)
    }

    fn encode(&self, max_degree: usize) -> u64 {
        match self {
            BoundedMsg::Claim(false) => 1,
            BoundedMsg::Claim(true) => 2,
            BoundedMsg::Cover(false) => 3,
            BoundedMsg::Cover(true) => 4,
            BoundedMsg::Propose => 5,
            BoundedMsg::Response(false) => 6,
            BoundedMsg::Response(true) => 7,
            BoundedMsg::Nothing => 8,
            BoundedMsg::Hello { port, degree } => {
                9 + u64::from(port - 1) + max_degree as u64 * u64::from(degree - 1)
            }
        }
    }

    fn decode(code: u64, max_degree: usize) -> Option<Self> {
        match code {
            0 => None,
            1 => Some(BoundedMsg::Claim(false)),
            2 => Some(BoundedMsg::Claim(true)),
            3 => Some(BoundedMsg::Cover(false)),
            4 => Some(BoundedMsg::Cover(true)),
            5 => Some(BoundedMsg::Propose),
            6 => Some(BoundedMsg::Response(false)),
            7 => Some(BoundedMsg::Response(true)),
            8 => Some(BoundedMsg::Nothing),
            c => {
                let rem = c - 9;
                let d = max_degree as u64;
                Some(BoundedMsg::Hello {
                    port: (rem % d) as u32 + 1,
                    degree: (rem / d) as u32 + 1,
                })
            }
        }
    }
}

/// What the schedule prescribes for a given round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Step {
    Hello,
    Claim,
    /// Phase I round `t` (pair `(t/Δ + 1, t%Δ + 1)`).
    Phase1(usize),
    /// First round of the Phase II block for degree `i`.
    Phase2Start(usize),
    /// Propose round of the Phase II block for degree `i`.
    Phase2Propose(usize),
    /// Respond round of the Phase II block for degree `i`.
    Phase2Respond(usize),
    /// The cover-exchange round opening Phase III.
    Phase3Start,
    /// Propose round of Phase III.
    Phase3Propose,
    /// Respond round `m` of Phase III (`m = Δ - 1` is the last).
    Phase3Respond(usize),
}

/// Total number of rounds of the `A(Δ)` protocol.
pub fn bounded_schedule_length(delta: usize) -> usize {
    let d = delta;
    let block = 1 + 2 * d;
    2 + d * d + d.saturating_sub(1) * block + 1 + 2 * d
}

fn step_at(delta: usize, round: usize) -> Step {
    let d = delta;
    if round == 0 {
        return Step::Hello;
    }
    if round == 1 {
        return Step::Claim;
    }
    let mut r = round - 2;
    if r < d * d {
        return Step::Phase1(r);
    }
    r -= d * d;
    let block = 1 + 2 * d;
    let blocks = d.saturating_sub(1);
    if r < blocks * block {
        let b = r / block;
        let within = r % block;
        let i = b + 2;
        if within == 0 {
            return Step::Phase2Start(i);
        }
        if (within - 1).is_multiple_of(2) {
            return Step::Phase2Propose(i);
        }
        return Step::Phase2Respond(i);
    }
    r -= blocks * block;
    if r == 0 {
        return Step::Phase3Start;
    }
    let m = (r - 1) / 2;
    if (r - 1).is_multiple_of(2) {
        Step::Phase3Propose
    } else {
        Step::Phase3Respond(m)
    }
}

/// Node state machine for the distributed `A(Δ)` protocol.
#[derive(Clone, Debug)]
pub struct BoundedDegreeNode {
    delta: usize,
    degree: usize,
    their_port: Vec<u32>,
    their_degree: Vec<u32>,
    my_claim: Vec<bool>,
    their_claim: Vec<bool>,
    /// Per port: edge selected into the matching `M`.
    in_m: Vec<bool>,
    /// Per port: edge selected into the 2-matching `P`.
    in_p: Vec<bool>,
    covered_m: bool,
    /// Eligible ports for the current proposal stage, ascending.
    eligible: Vec<usize>,
    cursor: usize,
    /// Port this node proposed through in the current propose round.
    pending: Option<usize>,
    /// Ports on which proposals arrived in the last propose round.
    incoming: Vec<usize>,
    /// Phase III: this node's offer has been accepted.
    proposer_done: bool,
    /// Phase III: this node has accepted an offer.
    acceptor_done: bool,
}

impl BoundedDegreeNode {
    /// Creates the state machine for the family parameter `delta` at a
    /// node of degree `degree`.
    ///
    /// # Panics
    ///
    /// Panics if `degree > delta` — the family `A(Δ)` is only defined on
    /// graphs of maximum degree `Δ`.
    pub fn new(delta: usize, degree: usize) -> Self {
        assert!(degree <= delta, "node degree exceeds Δ");
        BoundedDegreeNode {
            delta,
            degree,
            their_port: vec![0; degree],
            their_degree: vec![0; degree],
            my_claim: vec![false; degree],
            their_claim: vec![false; degree],
            in_m: vec![false; degree],
            in_p: vec![false; degree],
            covered_m: false,
            eligible: Vec::new(),
            cursor: 0,
            pending: None,
            incoming: Vec::new(),
            proposer_done: false,
            acceptor_done: false,
        }
    }

    fn edge_in_mij(&self, q: usize, i: u32, j: u32) -> bool {
        let own = (q + 1) as u32;
        let far = self.their_port[q];
        (self.my_claim[q] && own == i && far == j) || (self.their_claim[q] && far == i && own == j)
    }

    /// Writes the proposal messages for a propose round; the proposer is
    /// active while `active` holds and its cursor has not run off the
    /// eligible list.
    fn propose_into(&mut self, active: bool, out: &mut [Option<BoundedMsg>]) {
        out.fill(Some(BoundedMsg::Nothing));
        self.pending = None;
        if active && self.cursor < self.eligible.len() {
            let q = self.eligible[self.cursor];
            self.cursor += 1;
            self.pending = Some(q);
            out[q] = Some(BoundedMsg::Propose);
        }
    }

    /// Writes the response messages for a respond round. `may_accept`
    /// gates acceptance; on acceptance the chosen port is recorded via
    /// `mark(self, port)`.
    fn respond_into(
        &mut self,
        may_accept: bool,
        mark: impl FnOnce(&mut Self, usize),
        out: &mut [Option<BoundedMsg>],
    ) {
        out.fill(Some(BoundedMsg::Nothing));
        let incoming = std::mem::take(&mut self.incoming);
        if incoming.is_empty() {
            return;
        }
        for &q in &incoming {
            out[q] = Some(BoundedMsg::Response(false));
        }
        if may_accept {
            let best = *incoming.iter().min().expect("non-empty");
            out[best] = Some(BoundedMsg::Response(true));
            mark(self, best);
        }
    }

    fn record_incoming_proposals(&mut self, inbox: &[Option<BoundedMsg>]) {
        self.incoming.clear();
        for (q, m) in inbox.iter().enumerate() {
            if m == &Some(BoundedMsg::Propose) {
                self.incoming.push(q);
            }
        }
    }

    /// Checks whether this round's pending proposal got accepted; on
    /// acceptance records the edge via `mark`.
    fn collect_acceptance(
        &mut self,
        inbox: &[Option<BoundedMsg>],
        mark: impl FnOnce(&mut Self, usize),
    ) {
        if let Some(q) = self.pending.take() {
            if inbox[q] == Some(BoundedMsg::Response(true)) {
                mark(self, q);
            }
        }
    }

    fn cover_bits(&self, inbox: &[Option<BoundedMsg>]) -> Vec<bool> {
        inbox
            .iter()
            .map(|m| match m {
                Some(BoundedMsg::Cover(c)) => *c,
                other => unreachable!("expected Cover, got {other:?}"),
            })
            .collect()
    }

    fn output(&self) -> PortSet {
        (0..self.degree)
            .filter(|&q| self.in_m[q] || self.in_p[q])
            .map(Port::from_index)
            .collect()
    }
}

impl NodeAlgorithm for BoundedDegreeNode {
    type Message = BoundedMsg;
    type Output = PortSet;

    fn send(&mut self, round: usize) -> Vec<BoundedMsg> {
        collect_send(self, round, self.degree)
    }

    fn send_into(
        &mut self,
        round: usize,
        outbox: &mut [Option<BoundedMsg>],
    ) -> Result<(), WrongCount> {
        let d = self.degree;
        match step_at(self.delta, round) {
            Step::Hello => {
                for (q, slot) in outbox.iter_mut().enumerate() {
                    *slot = Some(BoundedMsg::Hello {
                        port: (q + 1) as u32,
                        degree: d as u32,
                    });
                }
            }
            Step::Claim => {
                for (q, slot) in outbox.iter_mut().enumerate() {
                    *slot = Some(BoundedMsg::Claim(self.my_claim[q]));
                }
            }
            Step::Phase1(_) | Step::Phase2Start(_) | Step::Phase3Start => {
                outbox.fill(Some(BoundedMsg::Cover(self.covered_m)));
            }
            Step::Phase2Propose(_) => {
                let active = !self.covered_m;
                self.propose_into(active, outbox);
            }
            Step::Phase2Respond(_) => {
                let may_accept = !self.covered_m;
                self.respond_into(
                    may_accept,
                    |s, q| {
                        s.in_m[q] = true;
                        s.covered_m = true;
                    },
                    outbox,
                );
            }
            Step::Phase3Propose => {
                let active = !self.proposer_done;
                self.propose_into(active, outbox);
            }
            Step::Phase3Respond(_) => {
                let may_accept = !self.acceptor_done;
                self.respond_into(
                    may_accept,
                    |s, q| {
                        s.in_p[q] = true;
                        s.acceptor_done = true;
                    },
                    outbox,
                );
            }
        }
        Ok(())
    }

    fn receive(&mut self, round: usize, inbox: &[Option<BoundedMsg>]) -> Option<PortSet> {
        if self.degree == 0 {
            return Some(PortSet::new());
        }
        let delta = self.delta;
        match step_at(delta, round) {
            Step::Hello => {
                for (q, m) in inbox.iter().enumerate() {
                    match m {
                        Some(BoundedMsg::Hello { port, degree }) => {
                            self.their_port[q] = *port;
                            self.their_degree[q] = *degree;
                        }
                        other => unreachable!("round 0 expects Hello, got {other:?}"),
                    }
                }
                if let Some(q) = dn_port_index(&self.their_port) {
                    self.my_claim[q] = true;
                }
                None
            }
            Step::Claim => {
                for (q, m) in inbox.iter().enumerate() {
                    match m {
                        Some(BoundedMsg::Claim(c)) => self.their_claim[q] = *c,
                        other => unreachable!("round 1 expects Claim, got {other:?}"),
                    }
                }
                None
            }
            Step::Phase1(t) => {
                let (i, j) = ((t / delta) as u32 + 1, (t % delta) as u32 + 1);
                let far_cov = self.cover_bits(inbox);
                let mut added = false;
                for (q, &far) in far_cov.iter().enumerate() {
                    if self.edge_in_mij(q, i, j) && !self.covered_m && !far {
                        self.in_m[q] = true;
                        added = true;
                    }
                }
                if added {
                    self.covered_m = true;
                }
                None
            }
            Step::Phase2Start(i) => {
                // Freeze the eligible port list for this block: edges
                // {u, v} with d(u) < d(v) = i and both ends uncovered.
                let far_cov = self.cover_bits(inbox);
                self.eligible.clear();
                self.cursor = 0;
                let black = self.degree == i && !self.covered_m;
                if black {
                    for (q, &far) in far_cov.iter().enumerate() {
                        let df = self.their_degree[q] as usize;
                        if df < i && !far {
                            self.eligible.push(q);
                        }
                    }
                }
                None
            }
            Step::Phase2Propose(_) | Step::Phase3Propose => {
                self.record_incoming_proposals(inbox);
                None
            }
            Step::Phase2Respond(_) => {
                self.collect_acceptance(inbox, |s, q| {
                    s.in_m[q] = true;
                    s.covered_m = true;
                });
                None
            }
            Step::Phase3Start => {
                // H: edges with both endpoints M-uncovered.
                let far_cov = self.cover_bits(inbox);
                self.eligible.clear();
                self.cursor = 0;
                if !self.covered_m {
                    for (q, &far) in far_cov.iter().enumerate() {
                        if !far {
                            self.eligible.push(q);
                        }
                    }
                }
                None
            }
            Step::Phase3Respond(m) => {
                self.collect_acceptance(inbox, |s, q| {
                    s.in_p[q] = true;
                    s.proposer_done = true;
                });
                if m + 1 == delta.max(1) {
                    Some(self.output())
                } else {
                    None
                }
            }
        }
    }

    fn corrupt(&mut self, entropy: u64) {
        // Garble every soft field within its safe range: learned labels
        // (`their_port`/`their_degree`) are only compared, claims and
        // membership bits are free flips, and every port reference
        // (`eligible`, `pending`, `incoming`) stays < degree so the
        // proposal machinery cannot index out of bounds. `delta` and
        // `degree` define the `A(Δ)` schedule and stay intact.
        if self.degree == 0 {
            return;
        }
        let mut next = pn_runtime::entropy_stream(entropy);
        for q in 0..self.degree {
            self.their_port[q] = (next() % (self.delta as u64 + 1)) as u32;
            self.their_degree[q] = (next() % (self.delta as u64 + 1)) as u32;
            self.my_claim[q] = next() & 1 == 0;
            self.their_claim[q] = next() & 1 == 0;
            self.in_m[q] = next() & 1 == 0;
            self.in_p[q] = next() & 1 == 0;
        }
        self.covered_m = next() & 1 == 0;
        self.eligible = (0..self.degree).filter(|_| next() & 1 == 0).collect();
        self.cursor = (next() % (self.degree as u64 + 1)) as usize;
        self.pending = (next() & 1 == 0).then(|| (next() % self.degree as u64) as usize);
        self.incoming = (0..self.degree).filter(|_| next() & 1 == 0).collect();
        self.proposer_done = next() & 1 == 0;
        self.acceptor_done = next() & 1 == 0;
    }

    fn reset(&mut self) {
        *self = BoundedDegreeNode::new(self.delta, self.degree);
    }
}

/// Runs the distributed `A(Δ)` protocol on `g` and returns the edge
/// dominating set, after checking output consistency.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if the graph's maximum degree
/// exceeds `delta`; simulator errors do not occur on valid inputs.
pub fn bounded_degree_distributed(
    g: &PortNumberedGraph,
    delta: usize,
) -> Result<Vec<EdgeId>, GraphError> {
    if g.max_degree() > delta {
        return Err(GraphError::InvalidParameter {
            detail: format!(
                "graph has maximum degree {} exceeding the bound Δ = {delta}",
                g.max_degree()
            ),
        });
    }
    let run = Simulator::new(g)
        .run(|d: usize| BoundedDegreeNode::new(delta, d))
        .map_err(|e| GraphError::InvalidParameter {
            detail: format!("simulation failed: {e}"),
        })?;
    pn_runtime::edge_set_from_outputs(g, &run.outputs).map_err(|e| GraphError::InvalidParameter {
        detail: format!("inconsistent output: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded_degree::bounded_degree_reference;
    use pn_graph::{generators, ports};

    fn check_match(g: &PortNumberedGraph, delta: usize, context: &str) {
        let reference = bounded_degree_reference(g, delta).unwrap().dominating_set;
        let distributed = bounded_degree_distributed(g, delta).unwrap();
        assert_eq!(reference, distributed, "{context}");
    }

    #[test]
    fn matches_reference_on_grids() {
        for seed in 0..6 {
            let g = generators::grid(4, 4).unwrap();
            let pg = ports::shuffled_ports(&g, seed).unwrap();
            check_match(&pg, 4, &format!("grid seed {seed}"));
        }
    }

    #[test]
    fn matches_reference_on_random_bounded() {
        for delta in [2usize, 3, 4, 5, 6] {
            for seed in 0..5 {
                let g =
                    generators::random_bounded_degree(18, delta, 0.75, seed * 11 + delta as u64)
                        .unwrap();
                let pg = ports::shuffled_ports(&g, seed).unwrap();
                check_match(&pg, delta, &format!("delta {delta} seed {seed}"));
            }
        }
    }

    #[test]
    fn matches_reference_on_regular() {
        for (n, d) in [(10usize, 3usize), (12, 4), (12, 5)] {
            for seed in 0..4 {
                let g = generators::random_regular(n, d, seed + 500).unwrap();
                let pg = ports::shuffled_ports(&g, seed).unwrap();
                check_match(&pg, d, &format!("regular n {n} d {d} seed {seed}"));
            }
        }
    }

    #[test]
    fn matches_reference_with_slack_delta() {
        // Running A(Δ) with Δ larger than the true maximum degree.
        let g = generators::petersen();
        let pg = ports::shuffled_ports(&g, 3).unwrap();
        for delta in 3..=6 {
            check_match(&pg, delta, &format!("slack delta {delta}"));
        }
    }

    #[test]
    fn schedule_length_is_respected() {
        let g = generators::grid(3, 3).unwrap();
        let pg = ports::shuffled_ports(&g, 2).unwrap();
        let delta = 4;
        let run = Simulator::new(&pg)
            .run(|d: usize| BoundedDegreeNode::new(delta, d))
            .unwrap();
        assert_eq!(run.rounds, bounded_schedule_length(delta));
    }

    #[test]
    fn rejects_degree_overflow() {
        let g = ports::canonical_ports(&generators::star(5).unwrap()).unwrap();
        assert!(bounded_degree_distributed(&g, 4).is_err());
    }

    #[test]
    fn paths_and_cycles() {
        for n in [2usize, 4, 7, 12] {
            let g = generators::path(n).unwrap();
            let pg = ports::canonical_ports(&g).unwrap();
            check_match(&pg, 2, &format!("path {n}"));
        }
        for n in [3usize, 5, 8] {
            let g = generators::cycle(n).unwrap();
            let pg = ports::shuffled_ports(&g, n as u64).unwrap();
            check_match(&pg, 2, &format!("cycle {n}"));
        }
    }

    #[test]
    fn step_schedule_covers_all_rounds() {
        for delta in 1..=6 {
            let len = bounded_schedule_length(delta);
            // Every round decodes to a step; the last is a Phase3Respond
            // with m = delta - 1.
            for r in 0..len {
                let _ = step_at(delta, r);
            }
            match step_at(delta, len - 1) {
                Step::Phase3Respond(m) => assert_eq!(m, delta - 1),
                other => panic!("last round is {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_then_reset_restores_the_initial_state() {
        let mut node = BoundedDegreeNode::new(5, 4);
        let fresh = format!("{node:?}");
        node.corrupt(0x5eed_1e55);
        assert_ne!(format!("{node:?}"), fresh, "corruption must change state");
        node.reset();
        assert_eq!(format!("{node:?}"), fresh, "reset must restore it");
    }

    #[test]
    fn corrupted_epochs_stay_well_defined() {
        use pn_runtime::{ChurnEvent, ChurnSimulator};
        let g = ports::shuffled_ports(&generators::petersen(), 9).unwrap();
        let mut sim = ChurnSimulator::new(&g, |_, d| BoundedDegreeNode::new(3, d)).unwrap();
        let burst: Vec<_> = (0..10)
            .map(|v| ChurnEvent::Corrupt {
                v: pn_graph::NodeId::new(v),
                entropy: v as u64 * 31 + 7,
            })
            .collect();
        sim.apply_burst(&burst).unwrap();
        let epoch = sim.stabilize().unwrap(); // must complete, never panic
        assert_eq!(epoch.corrupted, 10);
        // Once the corruption drains, the next epoch dominates again.
        let clean = sim.stabilize().unwrap();
        let edges = pn_runtime::edge_set_from_outputs(&g, &clean.outputs).unwrap();
        assert!(crate::bounded_degree::dominates_all_edges(&g, &edges));
    }
}

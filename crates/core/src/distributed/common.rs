//! Shared local computations for the distributed protocols.

/// Computes, from the counterpart port numbers learned in the first
/// communication round, which of a node's ports leads to its
/// distinguishable neighbour (Section 5).
///
/// `their_ports[i]` is the 1-based port number at the far end of this
/// node's 0-based port `i`. Returns the 0-based index of the port whose
/// label pair is unique and has the smallest own port number, or `None`
/// if every label pair repeats (possible only for even degree, Lemma 1).
///
/// This is the message-level twin of
/// [`crate::labels::distinguishable_neighbor`]; the two are tested to
/// agree on every graph.
pub fn dn_port_index(their_ports: &[u32]) -> Option<usize> {
    let d = their_ports.len();
    let pair = |i: usize| {
        let a = (i + 1) as u32;
        let b = their_ports[i];
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    };
    for i in 0..d {
        let mine = pair(i);
        let unique = (0..d).filter(|&j| pair(j) == mine).count() == 1;
        if unique {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::distinguishable_neighbor;
    use pn_graph::{generators, ports, Endpoint};

    #[test]
    fn unique_smallest_port_wins() {
        // Ports (1-based) 1,2,3 with counterparts 2,2,9:
        // pairs {1,2}, {2,2}, {3,9} — all unique; port 1 wins.
        assert_eq!(dn_port_index(&[2, 2, 9]), Some(0));
        // pairs {1,2}, {1,2}: none unique.
        assert_eq!(dn_port_index(&[2, 1]), None);
        // pairs {1,3}, {2,2}, {1,3}: only {2,2} unique.
        assert_eq!(dn_port_index(&[3, 2, 1]), Some(1));
        // Degree 1: always unique.
        assert_eq!(dn_port_index(&[7]), Some(0));
        // Degree 0: no ports.
        assert_eq!(dn_port_index(&[]), None);
    }

    #[test]
    fn agrees_with_graph_level_definition() {
        for seed in 0..6 {
            let g = generators::random_regular(10, 5, seed).unwrap();
            let pg = ports::shuffled_ports(&g, seed + 60).unwrap();
            for v in pg.nodes() {
                let their: Vec<u32> = pg
                    .ports(v)
                    .map(|p| pg.connection(Endpoint::new(v, p)).port.get())
                    .collect();
                let local = dn_port_index(&their);
                let global = distinguishable_neighbor(&pg, v);
                match (local, global) {
                    (None, None) => {}
                    (Some(i), Some((u, _))) => {
                        let through = pg.neighbor_through(v, pn_graph::Port::from_index(i));
                        assert_eq!(through, u);
                    }
                    other => panic!("disagreement at {v}: {other:?}"),
                }
            }
        }
    }
}

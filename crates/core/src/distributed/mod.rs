//! Message-passing implementations of the paper's algorithms on the
//! [`pn_runtime`] simulator.
//!
//! Every algorithm here is a genuine port-numbering-model protocol: node
//! state is initialised from the degree (plus the family parameter `Δ`
//! where applicable), all information travels through messages, and the
//! round schedule is a function of `d`/`Δ` only — never of `n`. The
//! implementations are *differentially tested* against the centralised
//! references in [`crate::port_one`], [`crate::regular_odd`] and
//! [`crate::bounded_degree`]: they must produce identical edge sets on
//! every input.
//!
//! | Protocol | Paper | Rounds |
//! |---|---|---|
//! | [`crate::port_one::PortOneNode`] | Theorem 3 | `1` |
//! | [`RegularOddNode`] | Theorem 4 | `2 + 2d²` |
//! | [`BoundedDegreeNode`] | Theorem 5 | `O(Δ²)` (see [`bounded_schedule_length`]) |

mod bounded_node;
mod common;
mod regular_odd_node;

pub use bounded_node::{
    bounded_degree_distributed, bounded_schedule_length, BoundedDegreeNode, BoundedMsg,
};
pub use common::dn_port_index;
pub use regular_odd_node::{
    regular_odd_distributed, regular_odd_rounds, RegOddMsg, RegularOddNode,
};

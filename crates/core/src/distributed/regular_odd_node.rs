//! The distributed Theorem 4 protocol: `4 - 6/(d+1)` in `2 + 2d²` rounds
//! on `d`-regular graphs with odd `d`.
//!
//! Round schedule (known to every node from its own degree `d`):
//!
//! | rounds | content |
//! |---|---|
//! | `0` | announce own port numbers (learn label pairs) |
//! | `1` | announce distinguishable-neighbour claims |
//! | `2 .. 2 + d²` | Phase I, one round per pair `(i, j)` in lexicographic order: exchange covered bits, add `e ∈ M(i,j)` unless both endpoints covered |
//! | `2 + d² .. 2 + 2d²` | Phase II, one round per pair: exchange "`D`-degree ≥ 2" bits, remove `e ∈ D ∩ M(i,j)` if both hold |
//!
//! Every node halts after round `2 + 2d²` and outputs its selected ports.

use pn_graph::{EdgeId, Port, PortNumberedGraph};
use pn_runtime::{collect_send, NodeAlgorithm, PortSet, RuntimeError, Simulator, WrongCount};

use super::common::dn_port_index;

/// Messages of the Theorem 4 protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegOddMsg {
    /// Round 0: "this message leaves through my port `i`".
    Port(u32),
    /// Round 1: "you are my distinguishable neighbour" (or not).
    Claim(bool),
    /// Phase I rounds: "I am covered by `D`".
    Cover(bool),
    /// Phase II rounds: "I have at least two incident `D`-edges".
    DegTwo(bool),
}

impl pn_runtime::PackedMessage for RegOddMsg {
    fn lane_bits(max_degree: usize) -> Option<u32> {
        // Six fixed codes plus one per port number (1-based, <= Δ).
        pn_runtime::lane_width_for(6 + max_degree as u64)
    }

    fn encode(&self, _max_degree: usize) -> u64 {
        match self {
            RegOddMsg::Claim(false) => 1,
            RegOddMsg::Claim(true) => 2,
            RegOddMsg::Cover(false) => 3,
            RegOddMsg::Cover(true) => 4,
            RegOddMsg::DegTwo(false) => 5,
            RegOddMsg::DegTwo(true) => 6,
            RegOddMsg::Port(p) => 6 + u64::from(*p),
        }
    }

    fn decode(code: u64, _max_degree: usize) -> Option<Self> {
        match code {
            0 => None,
            1 => Some(RegOddMsg::Claim(false)),
            2 => Some(RegOddMsg::Claim(true)),
            3 => Some(RegOddMsg::Cover(false)),
            4 => Some(RegOddMsg::Cover(true)),
            5 => Some(RegOddMsg::DegTwo(false)),
            6 => Some(RegOddMsg::DegTwo(true)),
            p => Some(RegOddMsg::Port((p - 6) as u32)),
        }
    }
}

/// Number of rounds the protocol takes on a `d`-regular graph.
pub fn regular_odd_rounds(d: usize) -> usize {
    if d == 0 {
        1
    } else {
        2 + 2 * d * d
    }
}

/// Node state machine for the distributed Theorem 4 algorithm.
#[derive(Clone, Debug)]
pub struct RegularOddNode {
    degree: usize,
    /// Counterpart port (1-based) per own port, learned in round 0.
    their_port: Vec<u32>,
    /// Whether this node claims the far end of port `q` as its
    /// distinguishable neighbour.
    my_claim: Vec<bool>,
    /// Whether the far end of port `q` claimed this node.
    their_claim: Vec<bool>,
    /// Whether the edge through port `q` is currently in `D`.
    in_d: Vec<bool>,
    covered: bool,
}

impl RegularOddNode {
    /// Creates the state machine for a node of degree `degree`.
    pub fn new(degree: usize) -> Self {
        RegularOddNode {
            degree,
            their_port: vec![0; degree],
            my_claim: vec![false; degree],
            their_claim: vec![false; degree],
            in_d: vec![false; degree],
            covered: false,
        }
    }

    /// The (i, j) pair processed at step `t` of a phase, in lexicographic
    /// order; ports are 1-based.
    fn pair_at(&self, t: usize) -> (u32, u32) {
        ((t / self.degree) as u32 + 1, (t % self.degree) as u32 + 1)
    }

    /// Whether the edge through own port `q` (0-based) belongs to
    /// `M_G(i, j)`.
    fn edge_in_mij(&self, q: usize, i: u32, j: u32) -> bool {
        let own = (q + 1) as u32;
        let far = self.their_port[q];
        (self.my_claim[q] && own == i && far == j) || (self.their_claim[q] && far == i && own == j)
    }

    fn d_degree(&self) -> usize {
        self.in_d.iter().filter(|&&b| b).count()
    }

    fn output(&self) -> PortSet {
        (0..self.degree)
            .filter(|&q| self.in_d[q])
            .map(Port::from_index)
            .collect()
    }
}

impl NodeAlgorithm for RegularOddNode {
    type Message = RegOddMsg;
    type Output = PortSet;

    fn send(&mut self, round: usize) -> Vec<RegOddMsg> {
        collect_send(self, round, self.degree)
    }

    fn send_into(
        &mut self,
        round: usize,
        outbox: &mut [Option<RegOddMsg>],
    ) -> Result<(), WrongCount> {
        let d = self.degree;
        if round == 0 {
            for (q, slot) in outbox.iter_mut().enumerate() {
                *slot = Some(RegOddMsg::Port((q + 1) as u32));
            }
            return Ok(());
        }
        if round == 1 {
            for (q, slot) in outbox.iter_mut().enumerate() {
                *slot = Some(RegOddMsg::Claim(self.my_claim[q]));
            }
            return Ok(());
        }
        let msg = if round - 2 < d * d {
            RegOddMsg::Cover(self.covered)
        } else {
            RegOddMsg::DegTwo(self.d_degree() >= 2)
        };
        outbox.fill(Some(msg));
        Ok(())
    }

    fn receive(&mut self, round: usize, inbox: &[Option<RegOddMsg>]) -> Option<PortSet> {
        let d = self.degree;
        if d == 0 {
            return Some(PortSet::new());
        }
        if round == 0 {
            for (q, m) in inbox.iter().enumerate() {
                match m {
                    Some(RegOddMsg::Port(p)) => self.their_port[q] = *p,
                    other => unreachable!("round 0 expects Port, got {other:?}"),
                }
            }
            if let Some(q) = dn_port_index(&self.their_port) {
                self.my_claim[q] = true;
            }
            return None;
        }
        if round == 1 {
            for (q, m) in inbox.iter().enumerate() {
                match m {
                    Some(RegOddMsg::Claim(c)) => self.their_claim[q] = *c,
                    other => unreachable!("round 1 expects Claim, got {other:?}"),
                }
            }
            return None;
        }
        let t = round - 2;
        if t < d * d {
            // Phase I step for pair (i, j).
            let (i, j) = self.pair_at(t);
            for (q, m) in inbox.iter().enumerate() {
                if !self.edge_in_mij(q, i, j) {
                    continue;
                }
                let far_covered = match m {
                    Some(RegOddMsg::Cover(c)) => *c,
                    other => unreachable!("phase I expects Cover, got {other:?}"),
                };
                if !(self.covered && far_covered) {
                    self.in_d[q] = true;
                }
            }
            // Coverage updates after the simultaneous decisions.
            if self.in_d.iter().any(|&b| b) {
                self.covered = true;
            }
            return None;
        }
        let t2 = t - d * d;
        // Phase II step for pair (i, j).
        let (i, j) = self.pair_at(t2);
        let my_deg2 = self.d_degree() >= 2;
        for (q, m) in inbox.iter().enumerate() {
            if !self.in_d[q] || !self.edge_in_mij(q, i, j) {
                continue;
            }
            let far_deg2 = match m {
                Some(RegOddMsg::DegTwo(c)) => *c,
                other => unreachable!("phase II expects DegTwo, got {other:?}"),
            };
            if my_deg2 && far_deg2 {
                self.in_d[q] = false;
            }
        }
        if t2 + 1 == d * d {
            return Some(self.output());
        }
        None
    }

    fn corrupt(&mut self, entropy: u64) {
        // All soft state is flippable: `their_port` values are only ever
        // compared in `edge_in_mij`, claims and `in_d` are plain bits,
        // and no receive path indexes by them. The schedule parameter
        // `degree` stays intact.
        let mut next = pn_runtime::entropy_stream(entropy);
        for p in &mut self.their_port {
            *p = (next() % (self.degree as u64 + 1)) as u32;
        }
        for q in 0..self.degree {
            self.my_claim[q] = next() & 1 == 0;
            self.their_claim[q] = next() & 1 == 0;
            self.in_d[q] = next() & 1 == 0;
        }
        self.covered = next() & 1 == 0;
    }

    fn reset(&mut self) {
        *self = RegularOddNode::new(self.degree);
    }
}

/// Runs the distributed Theorem 4 protocol on `g` and returns the edge
/// dominating set, after checking output consistency.
///
/// # Errors
///
/// Returns [`pn_graph::GraphError::NotRegular`] on an irregular graph:
/// the protocol's round schedule is a function of the (common) degree, so
/// nodes of different degrees would desynchronise. Simulator errors do
/// not occur on regular inputs.
pub fn regular_odd_distributed(g: &PortNumberedGraph) -> Result<Vec<EdgeId>, pn_graph::GraphError> {
    if g.regular_degree().is_none() {
        let dmax = g.max_degree();
        let bad = g
            .nodes()
            .find(|&v| g.degree(v) != dmax)
            .expect("irregular graph has a deviating node");
        return Err(pn_graph::GraphError::NotRegular {
            node: bad,
            found: g.degree(bad),
            expected: dmax,
        });
    }
    let run = Simulator::new(g)
        .run(RegularOddNode::new)
        .map_err(wrap_runtime)?;
    pn_runtime::edge_set_from_outputs(g, &run.outputs).map_err(wrap_runtime)
}

fn wrap_runtime(e: RuntimeError) -> pn_graph::GraphError {
    pn_graph::GraphError::InvalidParameter {
        detail: format!("simulation failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular_odd::regular_odd_reference;
    use pn_graph::{generators, ports};

    #[test]
    fn matches_reference_on_petersen() {
        for seed in 0..10 {
            let pg = ports::shuffled_ports(&generators::petersen(), seed).unwrap();
            let reference = regular_odd_reference(&pg).unwrap().dominating_set;
            let distributed = regular_odd_distributed(&pg).unwrap();
            assert_eq!(reference, distributed, "seed {seed}");
        }
    }

    #[test]
    fn matches_reference_on_random_regular() {
        for (n, d) in [(8usize, 3usize), (12, 5), (14, 7), (6, 1)] {
            for seed in 0..5 {
                let g = generators::random_regular(n, d, seed * 97 + d as u64).unwrap();
                let pg = ports::shuffled_ports(&g, seed).unwrap();
                let reference = regular_odd_reference(&pg).unwrap().dominating_set;
                let distributed = regular_odd_distributed(&pg).unwrap();
                assert_eq!(reference, distributed, "n {n} d {d} seed {seed}");
            }
        }
    }

    #[test]
    fn round_count_is_2_plus_2d_squared() {
        for d in [1usize, 3, 5] {
            let n = if d == 1 { 2 } else { 2 * d + 2 };
            let g = generators::random_regular(n, d, d as u64).unwrap();
            let pg = ports::shuffled_ports(&g, 1).unwrap();
            let run = Simulator::new(&pg).run(RegularOddNode::new).unwrap();
            assert_eq!(run.rounds, regular_odd_rounds(d));
        }
    }

    #[test]
    fn also_works_on_even_regular_inputs() {
        // The guarantee needs odd d, but the protocol must stay safe on
        // even-regular inputs (it may produce a larger dominating set or
        // an empty one if no distinguishable edges exist; feasibility is
        // only promised for odd d). Here we merely check it terminates
        // with a consistent output.
        let g = generators::cycle(8).unwrap();
        let pg = ports::canonical_ports(&g).unwrap();
        let edges = regular_odd_distributed(&pg).unwrap();
        let _ = edges;
    }

    #[test]
    fn irregular_graphs_rejected() {
        // Degrees 1 and 2 desynchronise the schedule; the entry point
        // must reject rather than run into malformed message exchanges.
        let g = ports::canonical_ports(&generators::path(4).unwrap()).unwrap();
        assert!(matches!(
            regular_odd_distributed(&g),
            Err(pn_graph::GraphError::NotRegular { .. })
        ));
    }

    #[test]
    fn isolated_nodes_halt_immediately() {
        let g = pn_graph::SimpleGraph::new(3);
        let pg = ports::canonical_ports(&g).unwrap();
        let run = Simulator::new(&pg).run(RegularOddNode::new).unwrap();
        assert_eq!(run.rounds, 1);
        assert!(run.outputs.iter().all(PortSet::is_empty));
    }

    #[test]
    fn corrupt_then_reset_restores_the_initial_state() {
        let mut node = RegularOddNode::new(3);
        let fresh = format!("{node:?}");
        node.corrupt(0xabad_1dea);
        assert_ne!(format!("{node:?}"), fresh, "corruption must change state");
        node.reset();
        assert_eq!(format!("{node:?}"), fresh, "reset must restore it");
    }

    #[test]
    fn corrupted_epochs_stay_well_defined() {
        use pn_runtime::{ChurnEvent, ChurnSimulator};
        let g = ports::shuffled_ports(&generators::petersen(), 5).unwrap();
        let mut sim = ChurnSimulator::new(&g, |_, d| RegularOddNode::new(d)).unwrap();
        let burst: Vec<_> = (0..10)
            .map(|v| ChurnEvent::Corrupt {
                v: pn_graph::NodeId::new(v),
                entropy: v as u64 * 53 + 29,
            })
            .collect();
        sim.apply_burst(&burst).unwrap();
        let epoch = sim.stabilize().unwrap(); // must complete, never panic
        assert_eq!(epoch.corrupted, 10);
    }
}

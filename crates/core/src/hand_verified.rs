//! Hand-verified executions: small instances worked out on paper,
//! asserted edge by edge.
//!
//! These tests pin the algorithms to manually derived ground truth —
//! if a refactor changes any decision the algorithms make, these fail
//! with a precise diff, unlike the property tests which only check
//! invariants.

#![cfg(test)]

use pn_graph::{Endpoint, NodeId, PnGraphBuilder, Port, PortNumberedGraph};

use crate::bounded_degree::bounded_degree_reference;
use crate::labels::Labels;
use crate::port_one::port_one_reference;
use crate::regular_odd::regular_odd_reference;

fn ep(v: usize, p: u32) -> Endpoint {
    Endpoint::new(NodeId::new(v), Port::new(p))
}

/// `K₄` with the "mirror" numbering: every edge has label pair `{i, i}`.
///
/// Wiring (checked to be an involution):
///   0-1 via (0,1)-(1,1);  0-2 via (0,2)-(2,2);  0-3 via (0,3)-(3,3);
///   2-3 via (2,1)-(3,1);  1-3 via (1,2)-(3,2);  1-2 via (1,3)-(2,3).
fn k4_mirror() -> PortNumberedGraph {
    let mut b = PnGraphBuilder::new();
    for _ in 0..4 {
        b.add_node(3);
    }
    b.connect(ep(0, 1), ep(1, 1)).unwrap();
    b.connect(ep(0, 2), ep(2, 2)).unwrap();
    b.connect(ep(0, 3), ep(3, 3)).unwrap();
    b.connect(ep(2, 1), ep(3, 1)).unwrap();
    b.connect(ep(1, 2), ep(3, 2)).unwrap();
    b.connect(ep(1, 3), ep(2, 3)).unwrap();
    b.finish().unwrap()
}

#[test]
fn k4_mirror_distinguishable_neighbours() {
    // Every node sees three distinct pairs {1,1}, {2,2}, {3,3}; the
    // minimum own-port edge is the {1,1} one.
    let g = k4_mirror();
    let labels = Labels::compute(&g).unwrap();
    let dn = |v: usize| labels.distinguishable_neighbor(NodeId::new(v)).unwrap().0;
    assert_eq!(dn(0), NodeId::new(1));
    assert_eq!(dn(1), NodeId::new(0));
    assert_eq!(dn(2), NodeId::new(3));
    assert_eq!(dn(3), NodeId::new(2));
}

#[test]
fn k4_mirror_matchings() {
    // M(1,1) = {0-1, 2-3}; every other M(i,j) is empty.
    let g = k4_mirror();
    let labels = Labels::compute(&g).unwrap();
    let m11 = labels.matching(Port::new(1), Port::new(1));
    let nodes: Vec<(NodeId, NodeId)> = m11.iter().map(|&e| g.edge(e).nodes()).collect();
    assert_eq!(
        nodes,
        vec![
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(2), NodeId::new(3)),
        ]
    );
    for (i, j, m) in labels.pairs() {
        if (i.get(), j.get()) != (1, 1) {
            assert!(m.is_empty(), "M({i},{j}) should be empty");
        }
    }
}

#[test]
fn k4_mirror_theorem4_output_is_perfect_matching() {
    // Phase I adds both M(1,1) edges; everyone is covered; phase II
    // removes nothing (D-degrees are 1). D = {0-1, 2-3}: ratio 1.
    let g = k4_mirror();
    let result = regular_odd_reference(&g).unwrap();
    let nodes: Vec<(NodeId, NodeId)> = result
        .dominating_set
        .iter()
        .map(|&e| g.edge(e).nodes())
        .collect();
    assert_eq!(
        nodes,
        vec![
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(2), NodeId::new(3)),
        ]
    );
    assert_eq!(result.phase1, result.dominating_set);
}

#[test]
fn k4_mirror_port_one_selects_three_edges() {
    // Edges touching a port 1: 0-1 (ports 1/1), 2-3 (ports 1/1)... and
    // nothing else has a port 1. D = {0-1, 2-3}: covers everything.
    let g = k4_mirror();
    let d = port_one_reference(&g);
    let nodes: Vec<(NodeId, NodeId)> = d.iter().map(|&e| g.edge(e).nodes()).collect();
    assert_eq!(
        nodes,
        vec![
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(2), NodeId::new(3)),
        ]
    );
}

/// The path `0 - 1 - 2 - 3` with canonical ports:
///   0: port 1 → 1;  1: port 1 → 0, port 2 → 2;
///   2: port 1 → 1, port 2 → 3;  3: port 1 → 2.
fn p4_canonical() -> PortNumberedGraph {
    let mut b = PnGraphBuilder::new();
    b.add_node(1);
    b.add_node(2);
    b.add_node(2);
    b.add_node(1);
    b.connect(ep(0, 1), ep(1, 1)).unwrap();
    b.connect(ep(1, 2), ep(2, 1)).unwrap();
    b.connect(ep(2, 2), ep(3, 1)).unwrap();
    b.finish().unwrap()
}

#[test]
fn p4_distinguishable_neighbours() {
    // Label pairs: 0-1 is {1,1}; 1-2 is {2,1}; 2-3 is {2,1}.
    // Node 2 sees {1,2} twice: no DN. Others have one.
    let g = p4_canonical();
    let labels = Labels::compute(&g).unwrap();
    assert_eq!(
        labels.distinguishable_neighbor(NodeId::new(0)).unwrap().0,
        NodeId::new(1)
    );
    assert_eq!(
        labels.distinguishable_neighbor(NodeId::new(1)).unwrap().0,
        NodeId::new(0)
    );
    assert_eq!(labels.distinguishable_neighbor(NodeId::new(2)), None);
    assert_eq!(
        labels.distinguishable_neighbor(NodeId::new(3)).unwrap().0,
        NodeId::new(2)
    );
}

#[test]
fn p4_bounded_degree_walkthrough() {
    // Phase I: M(1,1) = {0-1} added; M(1,2) = {2-3} (node 3's DN edge,
    // p(3,1) = (2,2)) added. Everyone covered; phases II and III idle.
    // D = {0-1, 2-3}; OPT = 1 (the middle edge); ratio 2 <= 3 = bound.
    let g = p4_canonical();
    let result = bounded_degree_reference(&g, 2).unwrap();
    let nodes: Vec<(NodeId, NodeId)> = result
        .dominating_set
        .iter()
        .map(|&e| g.edge(e).nodes())
        .collect();
    assert_eq!(
        nodes,
        vec![
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(2), NodeId::new(3)),
        ]
    );
    assert!(result.two_matching.is_empty());
    assert!(result.phase2_added.iter().all(Vec::is_empty));
}

/// A graph engineered so every phase of `A(Δ)` contributes an edge.
///
/// Two symmetric 4-cycles (nodes 0–3 and 4–7, ports `1 → 2` around each)
/// plus two bridge edges from node 0: `(0,3)-(4,3)` and `(0,4)-(5,3)`.
/// Degrees: node 0 has 4; nodes 4 and 5 have 3; the rest have 2.
///
/// Hand-derived execution (Δ = 4):
///
/// * label pairs inside the cycles all repeat (`{1,2}` twice), so cycle
///   nodes have no distinguishable neighbour; node 4 has the unique pair
///   `{3,3}` (bridge to 0), node 5 the unique `{3,4}`; node 0 sees
///   `{3,3}` and `{3,4}` — unique, min own-port 3 → DN(0) = 4;
/// * **Phase I**: pair (3,3) adds bridge `{0,4}`; pair (3,4) skips
///   `{0,5}` because 0 is now covered. `M = {{0,4}}`;
/// * **Phase II**: `B₃ = {{5,6}}` (degrees 3 > 2, both uncovered; black
///   node 5 proposes, white 6 accepts): `M += {{5,6}}`. `B₂` and `B₄`
///   are empty;
/// * **Phase III**: `H = {{1,2}, {2,3}}`. First proposal round: 1 → 2,
///   2 → 3, 3 → 2; node 2 accepts its min-port offer (from 3), node 3
///   accepts the offer from 2 — both acceptances select the same edge
///   `{2,3}`. `P = {{2,3}}`.
///
/// Output `D = {{0,4}, {5,6}, {2,3}}`, which equals the optimum (3).
fn three_phase_instance() -> PortNumberedGraph {
    let mut b = PnGraphBuilder::new();
    b.add_node(4); // 0
    for _ in 1..4 {
        b.add_node(2);
    }
    b.add_node(3); // 4
    b.add_node(3); // 5
    b.add_node(2); // 6
    b.add_node(2); // 7
    for v in 0..4 {
        b.connect(ep(v, 1), ep((v + 1) % 4, 2)).unwrap();
    }
    for i in 0..4 {
        b.connect(ep(4 + i, 1), ep(4 + (i + 1) % 4, 2)).unwrap();
    }
    b.connect(ep(0, 3), ep(4, 3)).unwrap();
    b.connect(ep(0, 4), ep(5, 3)).unwrap();
    b.finish().unwrap()
}

#[test]
fn three_phase_walkthrough() {
    let g = three_phase_instance();
    let labels = Labels::compute(&g).unwrap();
    // Distinguishable neighbours as derived above.
    assert_eq!(
        labels.distinguishable_neighbor(NodeId::new(0)).unwrap().0,
        NodeId::new(4)
    );
    assert_eq!(
        labels.distinguishable_neighbor(NodeId::new(4)).unwrap().0,
        NodeId::new(0)
    );
    assert_eq!(
        labels.distinguishable_neighbor(NodeId::new(5)).unwrap().0,
        NodeId::new(0)
    );
    for v in [1usize, 2, 3, 6, 7] {
        assert_eq!(
            labels.distinguishable_neighbor(NodeId::new(v)),
            None,
            "cycle node {v}"
        );
    }

    let result = bounded_degree_reference(&g, 4).unwrap();
    let edge_nodes = |edges: &[pn_graph::EdgeId]| -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = edges
            .iter()
            .map(|&e| {
                let (a, b) = g.edge(e).nodes();
                (a.index().min(b.index()), a.index().max(b.index()))
            })
            .collect();
        v.sort_unstable();
        v
    };
    // Phase I: exactly the bridge {0,4}.
    assert_eq!(edge_nodes(&result.phase1), vec![(0, 4)]);
    // Phase II: B3 contributes {5,6}; B2 and B4 are empty.
    assert_eq!(result.phase2_added.len(), 3);
    assert!(result.phase2_added[0].is_empty(), "B2 empty");
    assert_eq!(edge_nodes(&result.phase2_added[1]), vec![(5, 6)]);
    assert!(result.phase2_added[2].is_empty(), "B4 empty");
    // Phase III: the single 2-matching edge {2,3}.
    assert_eq!(edge_nodes(&result.two_matching), vec![(2, 3)]);
    // Output D and its optimality.
    assert_eq!(
        edge_nodes(&result.dominating_set),
        vec![(0, 4), (2, 3), (5, 6)]
    );
    // The distributed protocol agrees, as always.
    let distributed = crate::distributed::bounded_degree_distributed(&g, 4).unwrap();
    assert_eq!(result.dominating_set, distributed);
}

/// `C₄` with the symmetric (2-factorised) numbering: port 1 → port 2
/// around the cycle. No node has a distinguishable neighbour; Phase I
/// does nothing; Phase III must dominate everything.
fn c4_symmetric() -> PortNumberedGraph {
    let mut b = PnGraphBuilder::new();
    for _ in 0..4 {
        b.add_node(2);
    }
    for v in 0..4 {
        b.connect(ep(v, 1), ep((v + 1) % 4, 2)).unwrap();
    }
    b.finish().unwrap()
}

#[test]
fn c4_symmetric_phase3_takes_over() {
    let g = c4_symmetric();
    let labels = Labels::compute(&g).unwrap();
    for v in g.nodes() {
        assert_eq!(labels.distinguishable_neighbor(v), None);
    }
    let result = bounded_degree_reference(&g, 2).unwrap();
    assert!(result.matching.is_empty(), "phases I-II find nothing");
    assert!(!result.two_matching.is_empty(), "phase III must act");
    // Walkthrough of phase III on the symmetric C4: in the first
    // proposal round every node proposes through port 1 (to its
    // successor); every node receives exactly one offer on port 2 and
    // accepts it. P = all four edges — the 2-matching is the whole
    // cycle, exactly the symmetry the lower bound exploits.
    assert_eq!(result.two_matching.len(), 4);
    // Feasible: everything dominated (OPT = 2, ratio 2 <= 3).
    assert!(crate::bounded_degree::dominates_all_edges(
        &g,
        &result.dominating_set
    ));
}

//! Distinguishable neighbours and the matchings `M_G(i, j)`
//! (paper Section 5).
//!
//! In a simple port-numbered graph every edge `{v, u}` has a *label pair*
//! `ℓ{v, u} = {ℓ(v, u), ℓ(u, v)}` — the two port numbers at its endpoints.
//! An edge incident to `v` is **uniquely labelled** (at `v`) if no other
//! edge at `v` has the same label pair. The **distinguishable neighbour**
//! of `v` is the other endpoint of the uniquely labelled edge minimising
//! `ℓ(v, ·)`.
//!
//! * Lemma 1: every node of odd degree has a distinguishable neighbour.
//! * Lemma 2: the set `M_G(i, j)` of edges `{v, u}` with `p(v, i) = (u, j)`
//!   and `u` the distinguishable neighbour of `v` is a matching.
//!
//! The positive results of the paper (Theorems 4 and 5) are built entirely
//! on these matchings: they give anonymous networks a symmetry-breaking
//! toehold that exists *without* identifiers.

use pn_graph::{EdgeId, Endpoint, GraphError, NodeId, Port, PortNumberedGraph};

/// An unordered pair of port numbers: the label of an edge.
///
/// # Examples
///
/// ```
/// use eds_core::labels::LabelPair;
/// use pn_graph::Port;
/// let a = LabelPair::new(Port::new(3), Port::new(1));
/// let b = LabelPair::new(Port::new(1), Port::new(3));
/// assert_eq!(a, b); // unordered
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelPair {
    lo: Port,
    hi: Port,
}

impl LabelPair {
    /// Creates the unordered pair `{a, b}`.
    pub fn new(a: Port, b: Port) -> Self {
        if a <= b {
            LabelPair { lo: a, hi: b }
        } else {
            LabelPair { lo: b, hi: a }
        }
    }

    /// The smaller port of the pair.
    pub fn lo(self) -> Port {
        self.lo
    }

    /// The larger port of the pair.
    pub fn hi(self) -> Port {
        self.hi
    }
}

/// Precomputed label structure of a simple port-numbered graph: label
/// pairs, distinguishable neighbours, and the matchings `M_G(i, j)`.
#[derive(Clone, Debug)]
pub struct Labels {
    /// Maximum degree of the graph (bounds the port numbers).
    delta: usize,
    /// For each edge, its two endpoints `(a, b)` with ports.
    endpoints: Vec<(Endpoint, Endpoint)>,
    /// For each node, the distinguishable neighbour (and connecting edge),
    /// if one exists.
    distinguishable: Vec<Option<(NodeId, EdgeId)>>,
    /// `matchings[(i-1) * delta + (j-1)]` = the edge list of `M_G(i, j)`.
    matchings: Vec<Vec<EdgeId>>,
}

impl Labels {
    /// Computes the label structure of a **simple** port-numbered graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotSimple`] if the graph has loops or
    /// parallel edges (label pairs are defined for simple graphs).
    pub fn compute(g: &PortNumberedGraph) -> Result<Self, GraphError> {
        if !g.is_simple() {
            return Err(GraphError::NotSimple {
                detail: "label pairs are defined on simple port-numbered graphs".to_owned(),
            });
        }
        let delta = g.max_degree();
        let endpoints: Vec<(Endpoint, Endpoint)> =
            g.edges().map(|(e, _)| g.edge_endpoints(e)).collect();

        let mut distinguishable = Vec::with_capacity(g.node_count());
        for v in g.nodes() {
            distinguishable.push(distinguishable_neighbor(g, v));
        }

        let mut matchings = vec![Vec::new(); delta * delta];
        for v in g.nodes() {
            if let Some((u, e)) = distinguishable[v.index()] {
                let i = g
                    .port_toward(v, u)
                    .expect("distinguishable neighbour is adjacent");
                let j = g.port_toward(u, v).expect("adjacency is symmetric");
                let slot = (i.index()) * delta + j.index();
                // Avoid duplicates when i == j and both endpoints name each
                // other as distinguishable neighbours.
                if !matchings[slot].contains(&e) {
                    matchings[slot].push(e);
                }
            }
        }
        Ok(Labels {
            delta,
            endpoints,
            distinguishable,
            matchings,
        })
    }

    /// The maximum degree the matchings are indexed by.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The distinguishable neighbour of `v` (Section 5), with the
    /// connecting edge, if `v` has any uniquely labelled edge.
    pub fn distinguishable_neighbor(&self, v: NodeId) -> Option<(NodeId, EdgeId)> {
        self.distinguishable[v.index()]
    }

    /// The matching `M_G(i, j)`: edges `{v, u}` such that `p(v, i) = (u, j)`
    /// and `u` is the distinguishable neighbour of `v`.
    ///
    /// # Panics
    ///
    /// Panics if either port exceeds the maximum degree.
    pub fn matching(&self, i: Port, j: Port) -> &[EdgeId] {
        assert!(i.index() < self.delta && j.index() < self.delta);
        &self.matchings[i.index() * self.delta + j.index()]
    }

    /// Iterates over all pairs `(i, j)` in the fixed lexicographic
    /// processing order used by the algorithms, with the matching of each.
    pub fn pairs(&self) -> impl Iterator<Item = (Port, Port, &[EdgeId])> + '_ {
        (0..self.delta).flat_map(move |i| {
            (0..self.delta).map(move |j| {
                (
                    Port::from_index(i),
                    Port::from_index(j),
                    self.matchings[i * self.delta + j].as_slice(),
                )
            })
        })
    }

    /// The two endpoints (with ports) of edge `e`.
    pub fn edge_endpoints(&self, e: EdgeId) -> (Endpoint, Endpoint) {
        self.endpoints[e.index()]
    }

    /// The union of all matchings `M_G(i, j)`, deduplicated.
    pub fn all_distinguishable_edges(&self) -> Vec<EdgeId> {
        let mut mask = std::collections::BTreeSet::new();
        for m in &self.matchings {
            mask.extend(m.iter().copied());
        }
        mask.into_iter().collect()
    }
}

/// The uniquely labelled edges of `v` (Section 5): incident edges whose
/// label pair differs from the label pair of every other edge at `v`,
/// returned in increasing own-port order.
pub fn uniquely_labelled_edges(g: &PortNumberedGraph, v: NodeId) -> Vec<EdgeId> {
    let pairs: Vec<LabelPair> = g
        .ports(v)
        .map(|i| LabelPair::new(i, g.connection(Endpoint::new(v, i)).port))
        .collect();
    g.ports(v)
        .filter(|i| {
            let mine = pairs[i.index()];
            pairs.iter().filter(|&&p| p == mine).count() == 1
        })
        .map(|i| g.edge_at(Endpoint::new(v, i)))
        .collect()
}

/// Computes the distinguishable neighbour of a single node directly from
/// the graph: the other endpoint of the uniquely labelled edge minimising
/// `ℓ(v, ·)`.
///
/// Returns `None` when every incident edge shares its label pair with
/// another incident edge — by Lemma 1 this can only happen when
/// `deg(v)` is even.
pub fn distinguishable_neighbor(g: &PortNumberedGraph, v: NodeId) -> Option<(NodeId, EdgeId)> {
    let d = g.degree(v);
    // Label pair of each incident edge, indexed by port.
    let mut pairs: Vec<LabelPair> = Vec::with_capacity(d);
    for i in g.ports(v) {
        let there = g.connection(Endpoint::new(v, i));
        pairs.push(LabelPair::new(i, there.port));
    }
    // Uniquely labelled = label pair occurs exactly once among incident
    // edges; pick the edge with the minimum own-port among those.
    for i in g.ports(v) {
        let mine = pairs[i.index()];
        let count = pairs.iter().filter(|&&p| p == mine).count();
        if count == 1 {
            let there = g.connection(Endpoint::new(v, i));
            let e = g.edge_at(Endpoint::new(v, i));
            return Some((there.node, e));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pn_graph::{generators, ports, PnGraphBuilder};

    /// A four-node graph in the spirit of paper Figure 2: one node (`a`)
    /// whose incident label pairs all repeat — so it has *no*
    /// distinguishable neighbour despite its neighbours having one.
    ///
    /// Edges and ports:
    ///   a-b: (a,1)-(b,2);  a-c: (a,2)-(c,1);   both labelled {1,2}
    ///   b-c: (b,1)-(c,3);  b-d: (b,3)-(d,1);   both labelled {1,3}
    ///   c-d: (c,2)-(d,2);                      labelled {2,2}
    fn figure2_like() -> PortNumberedGraph {
        let mut bld = PnGraphBuilder::new();
        let a = bld.add_node(2);
        let b = bld.add_node(3);
        let c = bld.add_node(3);
        let d = bld.add_node(2);
        let ep = Endpoint::new;
        bld.connect(ep(a, Port::new(1)), ep(b, Port::new(2)))
            .unwrap();
        bld.connect(ep(a, Port::new(2)), ep(c, Port::new(1)))
            .unwrap();
        bld.connect(ep(b, Port::new(1)), ep(c, Port::new(3)))
            .unwrap();
        bld.connect(ep(b, Port::new(3)), ep(d, Port::new(1)))
            .unwrap();
        bld.connect(ep(c, Port::new(2)), ep(d, Port::new(2)))
            .unwrap();
        bld.finish().unwrap()
    }

    #[test]
    fn figure2_like_distinguishable_neighbors() {
        let h = figure2_like();
        let (a, b, c, d) = (
            NodeId::new(0),
            NodeId::new(1),
            NodeId::new(2),
            NodeId::new(3),
        );
        let labels = Labels::compute(&h).unwrap();
        // a sees {1,2} twice: no uniquely labelled edge, no DN — the
        // even-degree exception the paper highlights.
        assert_eq!(labels.distinguishable_neighbor(a), None);
        // b: {1,2} unique (edge to a), {1,3} repeats: DN is a.
        assert_eq!(labels.distinguishable_neighbor(b).map(|x| x.0), Some(a));
        // c: all three pairs unique ({1,2}, {1,3}, {2,2}); min own-port is
        // ℓ(c, a) = 1: DN is a.
        assert_eq!(labels.distinguishable_neighbor(c).map(|x| x.0), Some(a));
        // d: both pairs unique ({1,3}, {2,2}); min own-port ℓ(d, b) = 1:
        // DN is b.
        assert_eq!(labels.distinguishable_neighbor(d).map(|x| x.0), Some(b));
    }

    #[test]
    fn lemma1_odd_degree_has_dn() {
        // Exhaustively over all port numberings of K4 (3-regular: all
        // degrees odd): every node has a distinguishable neighbour.
        let g = generators::complete(4).unwrap();
        for orders in pn_graph::ports::all_port_orders(&g).into_iter().step_by(7) {
            let pg = pn_graph::ports::ports_from_orders(&g, &orders).unwrap();
            for v in pg.nodes() {
                assert!(
                    distinguishable_neighbor(&pg, v).is_some(),
                    "odd-degree node lacks distinguishable neighbour"
                );
            }
        }
    }

    #[test]
    fn lemma2_mij_is_matching() {
        let g = generators::petersen();
        for seed in 0..10 {
            let pg = ports::shuffled_ports(&g, seed).unwrap();
            let labels = Labels::compute(&pg).unwrap();
            let simple = pg.to_simple().unwrap();
            for (_, _, m) in labels.pairs() {
                assert!(
                    pn_graph::matching::is_matching(&simple, m),
                    "M(i,j) must be a matching (Lemma 2)"
                );
            }
        }
    }

    #[test]
    fn matchings_cover_odd_degree_nodes() {
        // The union of M(i,j) covers all odd-degree nodes.
        let g = generators::random_regular(12, 5, 3).unwrap();
        let pg = ports::shuffled_ports(&g, 11).unwrap();
        let labels = Labels::compute(&pg).unwrap();
        let simple = pg.to_simple().unwrap();
        let all = labels.all_distinguishable_edges();
        let covered = pn_graph::matching::covered_nodes(&simple, &all);
        for v in simple.nodes() {
            if simple.degree(v) % 2 == 1 {
                assert!(covered[v.index()], "odd node {v} uncovered");
            }
        }
    }

    #[test]
    fn even_cycle_with_symmetric_ports_has_no_dn() {
        // C4 with the 2-factorised numbering: every node sees label pairs
        // {1,2} and {1,2} (port 1 -> port 2 both ways): no uniquely
        // labelled edges anywhere.
        let g = generators::cycle(4).unwrap();
        let pg = pn_graph::ports::two_factor_ports(&g).unwrap();
        let labels = Labels::compute(&pg).unwrap();
        for v in pg.nodes() {
            assert_eq!(labels.distinguishable_neighbor(v), None);
        }
        assert!(labels.all_distinguishable_edges().is_empty());
    }

    #[test]
    fn uniquely_labelled_edges_consistency() {
        // The distinguishable neighbour is always the far end of the
        // first uniquely labelled edge.
        let g = generators::random_regular(10, 5, 21).unwrap();
        let pg = ports::shuffled_ports(&g, 22).unwrap();
        for v in pg.nodes() {
            let unique = uniquely_labelled_edges(&pg, v);
            match distinguishable_neighbor(&pg, v) {
                Some((_, e)) => assert_eq!(unique.first(), Some(&e)),
                None => assert!(unique.is_empty()),
            }
        }
        // In the figure2-like graph, node a has none, node c has all 3.
        let h = figure2_like();
        assert!(uniquely_labelled_edges(&h, NodeId::new(0)).is_empty());
        assert_eq!(uniquely_labelled_edges(&h, NodeId::new(2)).len(), 3);
        assert_eq!(uniquely_labelled_edges(&h, NodeId::new(1)).len(), 1);
    }

    #[test]
    fn rejects_multigraphs() {
        let mut b = PnGraphBuilder::new();
        let x = b.add_node(2);
        b.connect(
            Endpoint::new(x, Port::new(1)),
            Endpoint::new(x, Port::new(2)),
        )
        .unwrap();
        let g = b.finish().unwrap();
        assert!(Labels::compute(&g).is_err());
    }

    #[test]
    fn label_pair_accessors() {
        let p = LabelPair::new(Port::new(5), Port::new(2));
        assert_eq!(p.lo(), Port::new(2));
        assert_eq!(p.hi(), Port::new(5));
    }

    #[test]
    fn pairs_iterate_in_lex_order() {
        let g = generators::cycle(5).unwrap();
        let pg = ports::canonical_ports(&g).unwrap();
        let labels = Labels::compute(&pg).unwrap();
        let order: Vec<(u32, u32)> = labels.pairs().map(|(i, j, _)| (i.get(), j.get())).collect();
        assert_eq!(order, vec![(1, 1), (1, 2), (2, 1), (2, 2)]);
    }
}

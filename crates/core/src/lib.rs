//! Distributed approximation algorithms for minimum edge dominating sets
//! in anonymous port-numbered networks.
//!
//! This crate is the core of a full reproduction of
//!
//! > Jukka Suomela. *Distributed Algorithms for Edge Dominating Sets.*
//! > PODC 2010.
//!
//! It implements the paper's three tight algorithms, each both as a
//! centralised reference and as a message-passing
//! [`pn_runtime::NodeAlgorithm`]:
//!
//! | Where | Ratio | Time | Module |
//! |---|---|---|---|
//! | `d`-regular, even `d` | `4 - 2/d` | `O(1)` | [`port_one`] (Thm 3) |
//! | `d`-regular, odd `d` | `4 - 6/(d+1)` | `O(d²)` | [`regular_odd`] (Thm 4) |
//! | max degree `Δ` | `4 - 1/k`, `Δ ∈ {2k, 2k+1}` | `O(Δ²)` | [`bounded_degree`] (Thm 5) |
//!
//! Supporting machinery:
//!
//! * [`labels`] — label pairs, distinguishable neighbours and the
//!   matchings `M_G(i, j)` (Section 5, Lemmas 1–2);
//! * [`proposals`] — the deterministic proposal subroutines of Theorem 5
//!   (bipartite maximal matching; double-cover 2-matching);
//! * [`distributed`] — the full message-passing implementations;
//! * [`analysis`] — the Section 7 cost/weight double-counting argument,
//!   executable on concrete instances;
//! * [`vertex_cover`] — the Polishchuk–Suomela local 3-approximation for
//!   vertex cover (reference \[21\]), whose 2-matching machinery Phase III
//!   reuses;
//! * [`repair`] — incremental witness repair under churn: local rules that
//!   restore maximal matchings, edge dominating sets and vertex covers
//!   after dynamic-graph events, with round/message accounting.
//!
//! # Quick start
//!
//! ```
//! use pn_graph::{generators, ports};
//! use eds_core::bounded_degree::bounded_degree_reference;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A wireless-style topology with maximum degree 4.
//! let g = generators::grid(6, 4)?;
//! let pg = ports::canonical_ports(&g)?;
//! let result = bounded_degree_reference(&pg, 4)?;
//! // The output dominates every edge using a matching and a 2-matching.
//! assert!(eds_core::bounded_degree::dominates_all_edges(&pg, &result.dominating_set));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod bounded_degree;
pub mod distributed;
#[cfg(test)]
mod hand_verified;
pub mod labels;
pub mod port_one;
pub mod proposals;
pub mod regular_odd;
pub mod repair;
pub mod vertex_cover;

//! Theorem 3: the `O(1)`-time factor `4 - 2/d` algorithm for `d`-regular
//! graphs.
//!
//! *"The algorithm outputs all edges that are connected to a port with
//! port number 1."*
//!
//! Analysis (paper Section 6): the output `D` covers every node (each node
//! contributes its port-1 edge), hence dominates every edge; `|D| ≤ |V|`;
//! and any edge dominates at most `2d - 1` edges, so
//! `|E| ≤ (2d-1) |D*|`. With `d |V| = 2 |E|` the ratio is
//! `|D| / |D*| ≤ 4 - 2/d`, which Theorem 1 shows is optimal for even `d`.

use pn_graph::{EdgeId, Endpoint, NodeId, Port, PortNumberedGraph};
use pn_runtime::{collect_send, NodeAlgorithm, PortSet, WrongCount};

/// Centralised reference implementation: all edges touching a port 1.
///
/// Works on any port-numbered graph (the approximation guarantee is for
/// `d`-regular graphs, but the output is a feasible edge dominating set
/// whenever every node has degree at least 1).
///
/// # Examples
///
/// ```
/// use pn_graph::{generators, ports};
/// use eds_core::port_one::port_one_reference;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = ports::canonical_ports(&generators::cycle(6)?)?;
/// let d = port_one_reference(&g);
/// assert!(!d.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn port_one_reference(g: &PortNumberedGraph) -> Vec<EdgeId> {
    let mut selected = vec![false; g.edge_count()];
    for v in g.nodes() {
        if g.degree(v) >= 1 {
            let e = g.edge_at(Endpoint::new(v, Port::new(1)));
            selected[e.index()] = true;
        }
    }
    (0..g.edge_count())
        .map(EdgeId::new)
        .filter(|e| selected[e.index()])
        .collect()
}

/// Message of the distributed port-one algorithm: "my end of this link is
/// port number 1".
pub type PortOneMessage = bool;

/// Distributed implementation of Theorem 3 as a [`NodeAlgorithm`].
///
/// One communication round: every node announces on each port whether that
/// port is its port 1; a node selects its own port 1 plus every port on
/// which the neighbour announced a port 1. Output consistency is immediate.
#[derive(Clone, Debug)]
pub struct PortOneNode {
    degree: usize,
}

impl PortOneNode {
    /// Creates the node state machine for a node of degree `degree`.
    pub fn new(degree: usize) -> Self {
        PortOneNode { degree }
    }
}

impl NodeAlgorithm for PortOneNode {
    type Message = PortOneMessage;
    type Output = PortSet;

    fn send(&mut self, round: usize) -> Vec<Self::Message> {
        collect_send(self, round, self.degree)
    }

    fn send_into(
        &mut self,
        _round: usize,
        outbox: &mut [Option<Self::Message>],
    ) -> Result<(), WrongCount> {
        for (i, slot) in outbox.iter_mut().enumerate() {
            *slot = Some(i == 0);
        }
        Ok(())
    }

    // `corrupt`/`reset` keep the trait's no-op defaults: the node's only
    // field is its degree, which is structural — a stateless one-round
    // protocol is trivially self-stabilizing.

    fn receive(&mut self, _round: usize, inbox: &[Option<Self::Message>]) -> Option<Self::Output> {
        let mut x = PortSet::new();
        if self.degree >= 1 {
            x.insert(Port::new(1));
        }
        for (i, m) in inbox.iter().enumerate() {
            if m == &Some(true) {
                x.insert(Port::from_index(i));
            }
        }
        Some(x)
    }
}

/// The worst-case approximation ratio of Theorem 3 on `d`-regular graphs,
/// as an exact fraction `(numerator, denominator)`: `4 - 2/d = (4d-2)/d`.
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn port_one_ratio(d: usize) -> (u64, u64) {
    assert!(d >= 1, "ratio defined for d >= 1");
    (4 * d as u64 - 2, d as u64)
}

/// Counts how many nodes are covered by the edge set (sanity helper for
/// the Theorem 3 analysis: the output always covers all nodes).
pub fn covers_all_nodes(g: &PortNumberedGraph, edges: &[EdgeId]) -> bool {
    let mut covered = vec![false; g.node_count()];
    for &e in edges {
        let (u, v) = g.edge(e).nodes();
        covered[u.index()] = true;
        covered[v.index()] = true;
    }
    g.nodes().all(|v| covered[v.index()] || g.degree(v) == 0)
}

/// Runs the distributed algorithm on `g` and returns the selected edges,
/// checking output consistency.
///
/// # Errors
///
/// Propagates simulator and consistency errors; neither occurs on valid
/// inputs.
pub fn port_one_distributed(
    g: &PortNumberedGraph,
) -> Result<Vec<EdgeId>, pn_runtime::RuntimeError> {
    let run = pn_runtime::Simulator::new(g).run(PortOneNode::new)?;
    pn_runtime::edge_set_from_outputs(g, &run.outputs)
}

/// The node that owns the cheapest port of an edge — used in tests to
/// predict the output of the reference algorithm.
pub fn min_port_endpoint(g: &PortNumberedGraph, e: EdgeId) -> NodeId {
    let (a, b) = g.edge_endpoints(e);
    if a.port <= b.port {
        a.node
    } else {
        b.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pn_graph::{generators, ports};

    #[test]
    fn reference_and_distributed_agree() {
        for seed in 0..5 {
            let g = generators::random_regular(10, 4, seed).unwrap();
            let pg = ports::shuffled_ports(&g, seed).unwrap();
            let reference = port_one_reference(&pg);
            let distributed = port_one_distributed(&pg).unwrap();
            assert_eq!(reference, distributed);
        }
    }

    #[test]
    fn output_covers_all_nodes() {
        for seed in 0..5 {
            let g = generators::random_regular(12, 3, seed).unwrap();
            let pg = ports::shuffled_ports(&g, seed + 100).unwrap();
            let d = port_one_reference(&pg);
            assert!(covers_all_nodes(&pg, &d));
        }
    }

    #[test]
    fn one_round_only() {
        let g = ports::canonical_ports(&generators::torus(4, 4).unwrap()).unwrap();
        let run = pn_runtime::Simulator::new(&g)
            .run(PortOneNode::new)
            .unwrap();
        assert_eq!(run.rounds, 1);
    }

    #[test]
    fn size_at_most_node_count() {
        let g = ports::shuffled_ports(&generators::complete(7).unwrap(), 5).unwrap();
        let d = port_one_reference(&g);
        assert!(d.len() <= g.node_count());
    }

    #[test]
    fn ratio_values() {
        assert_eq!(port_one_ratio(2), (6, 2)); // 3
        assert_eq!(port_one_ratio(4), (14, 4)); // 3.5
        assert_eq!(port_one_ratio(6), (22, 6)); // 11/3
    }

    #[test]
    fn perfect_matching_graph_gets_all_edges() {
        // d = 1: every node's port 1 is its only edge; D = all edges,
        // which is optimal (ratio 4 - 2/1 = 2 is pessimistic here).
        let g = generators::disjoint_union(&[
            generators::path(2).unwrap(),
            generators::path(2).unwrap(),
        ]);
        let pg = ports::canonical_ports(&g).unwrap();
        let d = port_one_reference(&pg);
        assert_eq!(d.len(), 2);
    }
}

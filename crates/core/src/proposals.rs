//! Proposal-based matching subroutines for the Theorem 5 algorithm.
//!
//! Two deterministic, port-order driven primitives:
//!
//! * [`black_white_proposal_matching`] — the Hańćkowiak–Karoński–Panconesi
//!   style maximal matching in a 2-coloured bipartite subgraph, used in
//!   Phase II: black nodes propose to white neighbours in increasing port
//!   order; a white node accepts the first proposal it receives, breaking
//!   simultaneous ties by its own port numbers.
//! * [`double_cover_two_matching`] — the Polishchuk–Suomela 2-matching via
//!   the bipartite double cover, used in Phase III: *every* node plays
//!   both a proposer and an acceptor role (its two copies in the double
//!   cover), so each node ends up with at most two incident result edges —
//!   a 2-matching that dominates every eligible edge.
//!
//! Both functions are centralised but execute the exact synchronous
//! round semantics, so the distributed implementations in
//! [`crate::distributed`] produce identical outputs.

use pn_graph::{EdgeId, Endpoint, PortNumberedGraph};

/// Maximal matching by proposals in a black/white bipartite subgraph.
///
/// Only edges with `eligible[e] == true` participate; the caller
/// guarantees that every eligible edge joins a black node
/// (`is_black[v] == true`) and a white node. Black nodes propose along
/// their eligible ports in increasing port order, one proposal per round;
/// an unmatched white node accepts, among the proposals arriving in the
/// same round, the one on its smallest port.
///
/// Returns the matched edges. The result is a maximal matching of the
/// eligible subgraph: every eligible edge has a matched endpoint.
///
/// # Panics
///
/// Panics (in debug builds) if an eligible edge joins two black or two
/// white nodes.
pub fn black_white_proposal_matching(
    g: &PortNumberedGraph,
    is_black: &[bool],
    eligible: &[bool],
) -> Vec<EdgeId> {
    let n = g.node_count();
    let mut matched = vec![false; n];
    let mut result = Vec::new();

    // Proposal cursor per black node: position in its eligible port list.
    let mut cursors = vec![0usize; n];
    let eligible_ports: Vec<Vec<Endpoint>> = g
        .nodes()
        .map(|v| {
            if !is_black[v.index()] {
                return Vec::new();
            }
            g.ports(v)
                .map(|p| Endpoint::new(v, p))
                .filter(|&ep| eligible[g.edge_at(ep).index()])
                .collect()
        })
        .collect();

    loop {
        // Send proposals for this round.
        let mut proposals: Vec<Vec<Endpoint>> = vec![Vec::new(); n]; // at white: sender endpoints (the *white-side* endpoint)
        let mut any = false;
        for v in g.nodes() {
            if !is_black[v.index()] || matched[v.index()] {
                continue;
            }
            let ports = &eligible_ports[v.index()];
            if cursors[v.index()] >= ports.len() {
                continue;
            }
            let from = ports[cursors[v.index()]];
            cursors[v.index()] += 1;
            let to = g.connection(from);
            debug_assert!(
                !is_black[to.node.index()],
                "eligible edge joins two black nodes"
            );
            proposals[to.node.index()].push(to);
            any = true;
        }
        if !any {
            break;
        }
        // Accept phase: each unmatched white node takes its smallest-port
        // proposal; the corresponding black node becomes matched.
        for u in g.nodes() {
            if matched[u.index()] || proposals[u.index()].is_empty() {
                continue;
            }
            let best = proposals[u.index()]
                .iter()
                .min_by_key(|ep| ep.port)
                .copied()
                .expect("non-empty proposal list");
            let proposer = g.connection(best);
            matched[u.index()] = true;
            matched[proposer.node.index()] = true;
            result.push(g.edge_at(best));
        }
    }
    result
}

/// A 2-matching dominating all eligible edges, via the bipartite double
/// cover proposal scheme.
///
/// All nodes incident to an eligible edge participate in two independent
/// roles: as **proposers** (white copy) they offer along eligible ports in
/// increasing port order until some offer is accepted or the list is
/// exhausted; as **acceptors** (black copy) they accept the first incoming
/// offer, breaking same-round ties by their own port numbers. Each
/// accepted offer adds the corresponding edge to the result.
///
/// Every node gains at most two incident result edges (one per role), so
/// the result is a 2-matching; and every eligible edge ends up dominated
/// (paper Section 7.2).
pub fn double_cover_two_matching(g: &PortNumberedGraph, eligible: &[bool]) -> Vec<EdgeId> {
    let n = g.node_count();
    let mut proposer_done = vec![false; n]; // proposal accepted
    let mut acceptor_done = vec![false; n]; // accepted someone
    let mut cursors = vec![0usize; n];
    let eligible_ports: Vec<Vec<Endpoint>> = g
        .nodes()
        .map(|v| {
            g.ports(v)
                .map(|p| Endpoint::new(v, p))
                .filter(|&ep| eligible[g.edge_at(ep).index()])
                .collect()
        })
        .collect();
    let mut in_result = vec![false; g.edge_count()];

    loop {
        let mut offers: Vec<Vec<Endpoint>> = vec![Vec::new(); n]; // at acceptor: receiving endpoints
        let mut any = false;
        for v in g.nodes() {
            if proposer_done[v.index()] {
                continue;
            }
            let ports = &eligible_ports[v.index()];
            if cursors[v.index()] >= ports.len() {
                continue;
            }
            let from = ports[cursors[v.index()]];
            cursors[v.index()] += 1;
            let to = g.connection(from);
            offers[to.node.index()].push(to);
            any = true;
        }
        if !any {
            break;
        }
        for u in g.nodes() {
            if acceptor_done[u.index()] || offers[u.index()].is_empty() {
                continue;
            }
            let best = offers[u.index()]
                .iter()
                .min_by_key(|ep| ep.port)
                .copied()
                .expect("non-empty offer list");
            let proposer = g.connection(best);
            acceptor_done[u.index()] = true;
            proposer_done[proposer.node.index()] = true;
            in_result[g.edge_at(best).index()] = true;
        }
    }

    (0..g.edge_count())
        .map(EdgeId::new)
        .filter(|e| in_result[e.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pn_graph::matching::is_matching;
    use pn_graph::{generators, ports};

    #[test]
    fn black_white_matching_is_maximal() {
        // K_{3,4}: left (0..3) black, right (3..7) white.
        let g = generators::complete_bipartite(3, 4).unwrap();
        let pg = ports::shuffled_ports(&g, 9).unwrap();
        let is_black: Vec<bool> = (0..7).map(|v| v < 3).collect();
        let eligible = vec![true; pg.edge_count()];
        let m = black_white_proposal_matching(&pg, &is_black, &eligible);
        let simple = pg.to_simple().unwrap();
        assert!(is_matching(&simple, &m));
        assert_eq!(m.len(), 3, "all black nodes must be matched in K_{{3,4}}");
    }

    #[test]
    fn black_white_respects_eligibility() {
        let g = generators::complete_bipartite(2, 2).unwrap();
        let pg = ports::canonical_ports(&g).unwrap();
        let is_black = vec![true, true, false, false];
        let mut eligible = vec![false; pg.edge_count()];
        eligible[0] = true; // only one edge participates
        let m = black_white_proposal_matching(&pg, &is_black, &eligible);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].index(), 0);
    }

    #[test]
    fn black_white_empty_when_nothing_eligible() {
        let g = generators::complete_bipartite(2, 2).unwrap();
        let pg = ports::canonical_ports(&g).unwrap();
        let is_black = vec![true, true, false, false];
        let eligible = vec![false; pg.edge_count()];
        assert!(black_white_proposal_matching(&pg, &is_black, &eligible).is_empty());
    }

    #[test]
    fn two_matching_degree_bound_and_domination() {
        for seed in 0..6 {
            let g = generators::random_regular(10, 4, 50 + seed).unwrap();
            let pg = ports::shuffled_ports(&g, seed).unwrap();
            let eligible = vec![true; pg.edge_count()];
            let p = double_cover_two_matching(&pg, &eligible);
            // Degree bound: at most 2 result edges per node.
            let mut deg = vec![0usize; pg.node_count()];
            for &e in &p {
                let (u, v) = pg.edge(e).nodes();
                deg[u.index()] += 1;
                deg[v.index()] += 1;
            }
            assert!(deg.iter().all(|&x| x <= 2), "2-matching degree bound");
            // Domination: every eligible edge has a P-covered endpoint.
            let covered: Vec<bool> = deg.iter().map(|&x| x > 0).collect();
            for (e, shape) in pg.edges() {
                let _ = e;
                let (u, v) = shape.nodes();
                assert!(
                    covered[u.index()] || covered[v.index()],
                    "edge {u}-{v} not dominated"
                );
            }
        }
    }

    #[test]
    fn two_matching_on_path_takes_everything_needed() {
        let g = generators::path(4).unwrap();
        let pg = ports::canonical_ports(&g).unwrap();
        let eligible = vec![true; pg.edge_count()];
        let p = double_cover_two_matching(&pg, &eligible);
        // P dominates all three edges of the path.
        let mut covered = [false; 4];
        for &e in &p {
            let (u, v) = pg.edge(e).nodes();
            covered[u.index()] = true;
            covered[v.index()] = true;
        }
        for (_, u, v) in pg.to_simple().unwrap().edges() {
            assert!(covered[u.index()] || covered[v.index()]);
        }
    }

    #[test]
    fn two_matching_restricted_to_subgraph() {
        let g = generators::cycle(6).unwrap();
        let pg = ports::canonical_ports(&g).unwrap();
        // Only edges 0, 1, 2 eligible.
        let mut eligible = vec![false; pg.edge_count()];
        eligible[..3].fill(true);
        let p = double_cover_two_matching(&pg, &eligible);
        for &e in &p {
            assert!(eligible[e.index()], "result must stay within H");
        }
    }
}

//! Theorem 4: the `O(d²)`-time factor `4 - 6/(d+1)` algorithm for
//! `d`-regular graphs with odd `d`.
//!
//! The algorithm runs in two phases over the distinguishable matchings
//! `M_G(i, j)` of Section 5 (see [`crate::labels`]):
//!
//! * **Phase I** considers each port pair `(i, j)` sequentially and each
//!   edge `e ∈ M_G(i, j)` in parallel: `e` joins `D` unless both its
//!   endpoints are already covered. The result is a spanning forest that
//!   is also an edge cover (all degrees are odd, so Lemma 1 covers every
//!   node).
//! * **Phase II** considers the pairs again and removes `e ∈ D ∩ M_G(i,j)`
//!   whenever both endpoints remain covered by `D \ {e}`. The result is a
//!   forest of node-disjoint **stars**: no path of three edges survives.
//!
//! Each star has at most `d` edges and covers its size + 1 nodes, so
//! `|D| ≤ d |V| / (d+1) = 2|E| / (d+1) ≤ (4 - 6/(d+1)) |D*|`.

use pn_graph::{EdgeId, GraphError, PortNumberedGraph};

use crate::labels::Labels;

/// The output of the Theorem 4 reference algorithm, with per-phase
/// snapshots for inspection and testing.
#[derive(Clone, Debug)]
pub struct RegularOddResult {
    /// The edge set after Phase I: a spanning-forest edge cover.
    pub phase1: Vec<EdgeId>,
    /// The final edge dominating set (a star-forest edge cover).
    pub dominating_set: Vec<EdgeId>,
}

/// Runs the Theorem 4 algorithm (centralised reference, faithful to the
/// round structure: edges within one matching `M(i, j)` are decided
/// against the same snapshot, pairs are processed in lexicographic
/// order).
///
/// The graph must be simple; the approximation guarantee additionally
/// requires it to be `d`-regular for odd `d`, but the algorithm itself
/// produces a feasible dominating set whenever every node has odd degree.
///
/// # Errors
///
/// Returns [`GraphError::NotSimple`] for multigraphs.
///
/// # Examples
///
/// ```
/// use pn_graph::{generators, ports};
/// use eds_core::regular_odd::regular_odd_reference;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = ports::canonical_ports(&generators::petersen())?; // 3-regular
/// let result = regular_odd_reference(&g)?;
/// assert!(!result.dominating_set.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn regular_odd_reference(g: &PortNumberedGraph) -> Result<RegularOddResult, GraphError> {
    let labels = Labels::compute(g)?;
    regular_odd_with_labels(g, &labels)
}

/// Same as [`regular_odd_reference`] with precomputed labels.
pub fn regular_odd_with_labels(
    g: &PortNumberedGraph,
    labels: &Labels,
) -> Result<RegularOddResult, GraphError> {
    let n = g.node_count();
    let mut in_d = vec![false; g.edge_count()];
    let mut covered = vec![false; n];

    // Phase I: greedy edge cover over the distinguishable matchings.
    for (_, _, matching) in labels.pairs() {
        // Parallel semantics: all edges of the matching observe the same
        // coverage snapshot. Because M(i, j) is a matching (Lemma 2) the
        // snapshot equals the live state, but we snapshot anyway to mirror
        // the distributed execution exactly.
        let decisions: Vec<EdgeId> = matching
            .iter()
            .copied()
            .filter(|&e| {
                let (u, v) = g.edge(e).nodes();
                !(covered[u.index()] && covered[v.index()])
            })
            .collect();
        for e in decisions {
            let (u, v) = g.edge(e).nodes();
            in_d[e.index()] = true;
            covered[u.index()] = true;
            covered[v.index()] = true;
        }
    }
    let phase1: Vec<EdgeId> = (0..g.edge_count())
        .map(EdgeId::new)
        .filter(|e| in_d[e.index()])
        .collect();

    // Phase II: remove redundant edges; an endpoint is covered by
    // D \ {e} iff it has at least two incident D-edges.
    let mut d_degree = vec![0usize; n];
    for &e in &phase1 {
        let (u, v) = g.edge(e).nodes();
        d_degree[u.index()] += 1;
        d_degree[v.index()] += 1;
    }
    for (_, _, matching) in labels.pairs() {
        let removals: Vec<EdgeId> = matching
            .iter()
            .copied()
            .filter(|&e| {
                if !in_d[e.index()] {
                    return false;
                }
                let (u, v) = g.edge(e).nodes();
                d_degree[u.index()] >= 2 && d_degree[v.index()] >= 2
            })
            .collect();
        for e in removals {
            let (u, v) = g.edge(e).nodes();
            in_d[e.index()] = false;
            d_degree[u.index()] -= 1;
            d_degree[v.index()] -= 1;
        }
    }

    let dominating_set: Vec<EdgeId> = (0..g.edge_count())
        .map(EdgeId::new)
        .filter(|e| in_d[e.index()])
        .collect();
    Ok(RegularOddResult {
        phase1,
        dominating_set,
    })
}

/// The worst-case approximation ratio of Theorem 4 on `d`-regular graphs
/// with odd `d`, as an exact fraction: `4 - 6/(d+1) = (4d - 2)/(d + 1)`.
///
/// # Panics
///
/// Panics if `d` is even or zero.
pub fn regular_odd_ratio(d: usize) -> (u64, u64) {
    assert!(d % 2 == 1, "ratio defined for odd d");
    (4 * d as u64 - 2, d as u64 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pn_graph::analysis::is_forest;
    use pn_graph::transform::edge_subgraph;
    use pn_graph::{generators, ports};

    fn check_star_forest(simple: &pn_graph::SimpleGraph, edges: &[EdgeId]) {
        let (sub, _) = edge_subgraph(simple, edges);
        assert!(is_forest(&sub), "output must be a forest");
        // No path of three edges: every edge must have an endpoint of
        // degree 1 in the subgraph... stronger: each component is a star,
        // i.e. every edge has at most one endpoint of degree >= 2.
        for (_, u, v) in sub.edges() {
            assert!(
                sub.degree(u) == 1 || sub.degree(v) == 1,
                "edge {u}-{v} has two branching endpoints: not a star forest"
            );
        }
    }

    fn check_edge_cover(g: &PortNumberedGraph, edges: &[EdgeId]) {
        let mut covered = vec![false; g.node_count()];
        for &e in edges {
            let (u, v) = g.edge(e).nodes();
            covered[u.index()] = true;
            covered[v.index()] = true;
        }
        for v in g.nodes() {
            assert!(covered[v.index()], "node {v} uncovered");
        }
    }

    #[test]
    fn petersen_output_is_star_forest_cover() {
        for seed in 0..8 {
            let pg = ports::shuffled_ports(&generators::petersen(), seed).unwrap();
            let result = regular_odd_reference(&pg).unwrap();
            let simple = pg.to_simple().unwrap();
            check_edge_cover(&pg, &result.phase1);
            assert!(is_forest(&edge_subgraph(&simple, &result.phase1).0));
            check_edge_cover(&pg, &result.dominating_set);
            check_star_forest(&simple, &result.dominating_set);
            // Size bound |D| <= d|V|/(d+1).
            let d = 3;
            assert!(result.dominating_set.len() * (d + 1) <= d * pg.node_count());
        }
    }

    #[test]
    fn random_regular_odd_degrees() {
        for (n, d) in [(8, 3), (12, 5), (16, 7), (10, 1)] {
            for seed in 0..4 {
                let g = generators::random_regular(n, d, seed * 31 + d as u64).unwrap();
                let pg = ports::shuffled_ports(&g, seed).unwrap();
                let result = regular_odd_reference(&pg).unwrap();
                check_edge_cover(&pg, &result.dominating_set);
                check_star_forest(&pg.to_simple().unwrap(), &result.dominating_set);
                assert!(result.dominating_set.len() * (d + 1) <= d * n);
            }
        }
    }

    #[test]
    fn d1_matching_graph_selects_everything() {
        // In a perfect-matching graph every edge is its own M(1,1) entry:
        // phase I adds all, phase II removes none.
        let g = generators::disjoint_union(&[
            generators::path(2).unwrap(),
            generators::path(2).unwrap(),
            generators::path(2).unwrap(),
        ]);
        let pg = ports::canonical_ports(&g).unwrap();
        let result = regular_odd_reference(&pg).unwrap();
        assert_eq!(result.dominating_set.len(), 3);
    }

    #[test]
    fn phase2_shrinks_or_keeps() {
        let g = generators::random_regular(14, 5, 77).unwrap();
        let pg = ports::shuffled_ports(&g, 78).unwrap();
        let result = regular_odd_reference(&pg).unwrap();
        assert!(result.dominating_set.len() <= result.phase1.len());
        for e in &result.dominating_set {
            assert!(result.phase1.contains(e));
        }
    }

    #[test]
    fn ratio_values() {
        assert_eq!(regular_odd_ratio(1), (2, 2)); // 1
        assert_eq!(regular_odd_ratio(3), (10, 4)); // 2.5
        assert_eq!(regular_odd_ratio(5), (18, 6)); // 3
        assert_eq!(regular_odd_ratio(7), (26, 8)); // 3.25
    }

    #[test]
    fn rejects_multigraph() {
        let mut b = pn_graph::PnGraphBuilder::new();
        let x = b.add_node(2);
        b.connect(
            pn_graph::Endpoint::new(x, pn_graph::Port::new(1)),
            pn_graph::Endpoint::new(x, pn_graph::Port::new(2)),
        )
        .unwrap();
        let g = b.finish().unwrap();
        assert!(regular_odd_reference(&g).is_err());
    }
}

//! Incremental repair of solution witnesses under churn.
//!
//! When the topology changes (edge insert/delete, crash, join) or a node's
//! stored output is corrupted, re-running a protocol from scratch costs its
//! full round schedule. The paper's structures are *local*, though: a
//! maximal matching, an edge dominating set, or a vertex cover damaged at a
//! few nodes can be repaired by rules that only inspect the neighbourhoods
//! of the damaged region. This module implements those rules on
//! *witnesses* — topology-independent descriptions of a solution — so the
//! churn harness can measure recovery cost separately from protocol cost.
//!
//! Witnesses use node identities rather than [`pn_graph::EdgeId`]s because
//! edge identifiers are not stable across mutations: an edge set is a
//! `BTreeSet<(usize, usize)>` of normalised endpoint pairs, a node set a
//! `BTreeSet<usize>`. All rules are deterministic (processing in ascending
//! node order), so repaired witnesses are reproducible bit-for-bit.
//!
//! The rules are generic over [`AdjacencyView`] — any structure that can
//! enumerate a node's neighbours. That is what makes repair *streaming*:
//! at the million-node tier the view is a delta overlay over a flat
//! involution table, and a repair pass touches only the damaged
//! neighbourhoods, never a second full copy of the graph.
//!
//! Accounting mirrors the message-passing model: each *round* is one
//! synchronous pass of a local rule over the damaged frontier, and each
//! scan of a node's neighbourhood costs `deg(v)` *messages*. For a single
//! edge event the frontier has constant size, so repair takes `O(1)` rounds
//! — the bound the `churn_sweep` smoke gate asserts.
//!
//! The escalation policy — when repair alone is trusted, when the protocol
//! re-runs on a k-hop ball around the frontier ([`khop_ball`] +
//! [`splice_edge_witness`]), and when a full re-stabilisation is the last
//! resort — is captured by [`RecoveryPolicy`] and consumed by the churn
//! runner in `eds-scenarios`.

use std::collections::BTreeSet;
use std::collections::{BTreeMap, VecDeque};

use pn_graph::dynamic::StreamedDynamicTopology;
use pn_graph::{DynamicTopology, NodeId, SimpleGraph};

/// An edge witness: normalised `(min, max)` endpoint pairs.
pub type EdgeWitness = BTreeSet<(usize, usize)>;

/// A node witness (e.g. a vertex cover).
pub type NodeWitness = BTreeSet<usize>;

/// Normalises an endpoint pair for storage in an [`EdgeWitness`].
#[must_use]
pub fn edge_key(u: usize, v: usize) -> (usize, usize) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Read-only adjacency access, the only capability the repair rules and
/// witness checkers need. Implemented for [`SimpleGraph`] (the static
/// path), [`DynamicTopology`] (the dense churn path), and
/// [`StreamedDynamicTopology`] (the million-node overlay path), so a
/// repair pass never forces a full graph materialisation.
pub trait AdjacencyView {
    /// Number of nodes (including isolated ones).
    fn node_count(&self) -> usize;

    /// Current degree of `v`.
    fn degree_of(&self, v: usize) -> usize;

    /// Calls `f` once per neighbour of `v`, in the view's storage order.
    fn for_each_neighbor(&self, v: usize, f: &mut dyn FnMut(usize));

    /// Whether `{u, v}` is currently an edge. Out-of-range endpoints are
    /// simply not edges.
    fn has_edge_between(&self, u: usize, v: usize) -> bool {
        if u >= self.node_count() || v >= self.node_count() {
            return false;
        }
        let mut found = false;
        self.for_each_neighbor(u, &mut |w| {
            if w == v {
                found = true;
            }
        });
        found
    }
}

impl AdjacencyView for SimpleGraph {
    fn node_count(&self) -> usize {
        SimpleGraph::node_count(self)
    }

    fn degree_of(&self, v: usize) -> usize {
        self.neighbors(NodeId::new(v)).len()
    }

    fn for_each_neighbor(&self, v: usize, f: &mut dyn FnMut(usize)) {
        for &(u, _) in self.neighbors(NodeId::new(v)) {
            f(u.index());
        }
    }

    fn has_edge_between(&self, u: usize, v: usize) -> bool {
        u < SimpleGraph::node_count(self)
            && v < SimpleGraph::node_count(self)
            && self.has_edge(NodeId::new(u), NodeId::new(v))
    }
}

impl AdjacencyView for DynamicTopology {
    fn node_count(&self) -> usize {
        DynamicTopology::node_count(self)
    }

    fn degree_of(&self, v: usize) -> usize {
        self.degree(NodeId::new(v))
    }

    fn for_each_neighbor(&self, v: usize, f: &mut dyn FnMut(usize)) {
        for u in self.neighbors(NodeId::new(v)) {
            f(u.index());
        }
    }

    fn has_edge_between(&self, u: usize, v: usize) -> bool {
        u < DynamicTopology::node_count(self) && self.has_edge(NodeId::new(u), NodeId::new(v))
    }
}

impl AdjacencyView for StreamedDynamicTopology<'_> {
    fn node_count(&self) -> usize {
        StreamedDynamicTopology::node_count(self)
    }

    fn degree_of(&self, v: usize) -> usize {
        self.degree(NodeId::new(v))
    }

    fn for_each_neighbor(&self, v: usize, f: &mut dyn FnMut(usize)) {
        self.visit_neighbors(NodeId::new(v), &mut |u| f(u.index()));
    }

    fn has_edge_between(&self, u: usize, v: usize) -> bool {
        u < StreamedDynamicTopology::node_count(self)
            && self.has_edge(NodeId::new(u), NodeId::new(v))
    }
}

/// Runs `pred` over every edge `{v, u}` (`v < u`) of the view; returns
/// whether every edge satisfied it.
fn all_edges<V: AdjacencyView + ?Sized>(g: &V, mut pred: impl FnMut(usize, usize) -> bool) -> bool {
    for v in 0..g.node_count() {
        let mut ok = true;
        g.for_each_neighbor(v, &mut |u| {
            if v < u && !pred(v, u) {
                ok = false;
            }
        });
        if !ok {
            return false;
        }
    }
    true
}

/// Cost and damage accounting for one repair invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Synchronous local-rule passes until the witness was feasible again.
    pub rounds: usize,
    /// Neighbourhood scans, charged `deg(v)` per scanned node per pass.
    pub messages: usize,
    /// Violations present at the quiescence point *before* repair:
    /// ghost/conflicting witness entries plus uncovered edges discovered
    /// while patching.
    pub transient_violations: usize,
}

/// The rungs of the churn-recovery escalation ladder, cheapest first.
/// Ordered: a later rung strictly dominates an earlier one in cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryTier {
    /// No recovery ran (an empty schedule).
    #[default]
    None,
    /// Local witness repair only — no protocol epoch.
    Repair,
    /// Protocol re-run confined to the k-hop ball around the frontier,
    /// outputs spliced back into the witness.
    BallRerun,
    /// Full re-stabilisation on the whole topology (the last resort).
    Full,
}

impl RecoveryTier {
    /// The rung as a small integer for records (`0` = none … `3` = full).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            RecoveryTier::None => 0,
            RecoveryTier::Repair => 1,
            RecoveryTier::BallRerun => 2,
            RecoveryTier::Full => 3,
        }
    }
}

/// Knobs of the repair-first recovery ladder.
///
/// Rung 1 (repair-only) applies while the damage frontier stays below
/// `repair_frontier_fraction` of the node count; rung 2 re-runs the
/// protocol on the `ball_radius`-hop ball around the frontier when repair
/// reports residual infeasibility; rung 3 is a full re-stabilisation with
/// up to `max_reset_retries` clean retry epochs when corruption garbles
/// the quiescent output. A seeded fraction `audit_fraction` of epochs
/// additionally runs the full re-stabilisation as a trust-but-verify
/// audit of the repaired witness.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryPolicy {
    /// Largest damage frontier (as a fraction of the node count) that
    /// rung 1 — repair without any protocol epoch — is trusted with.
    pub repair_frontier_fraction: f64,
    /// Radius of the ball re-run rung, in hops from the frontier.
    pub ball_radius: usize,
    /// Clean retry epochs the full-re-stabilisation rung may spend when
    /// a corrupted epoch yields a garbled quiescent output.
    pub max_reset_retries: usize,
    /// Fraction of epochs audited against a full re-stabilisation
    /// (seeded, deterministic). `0.0` disables audits; `1.0` audits
    /// every epoch.
    pub audit_fraction: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            repair_frontier_fraction: 0.25,
            ball_radius: 2,
            max_reset_retries: 1,
            audit_fraction: 0.25,
        }
    }
}

impl RecoveryPolicy {
    /// The policy of the scale gate: repair handles every frontier and
    /// every epoch is audited against a full re-stabilisation.
    #[must_use]
    pub fn repair_first() -> Self {
        RecoveryPolicy {
            repair_frontier_fraction: 1.0,
            audit_fraction: 1.0,
            ..RecoveryPolicy::default()
        }
    }

    /// Returns `self` with the audit fraction replaced.
    #[must_use]
    pub fn with_audit_fraction(mut self, fraction: f64) -> Self {
        self.audit_fraction = fraction;
        self
    }

    /// Whether rung 1 is trusted with a frontier of `frontier_nodes` on a
    /// topology of `total_nodes`.
    #[must_use]
    pub fn repair_applies(&self, frontier_nodes: usize, total_nodes: usize) -> bool {
        total_nodes > 0
            && frontier_nodes as f64 <= self.repair_frontier_fraction * total_nodes as f64
    }

    /// Whether an epoch whose audit stream drew `draw` is audited. The
    /// top 53 bits are a uniform fraction in `[0, 1)`, so a fraction of
    /// `f` audits (in expectation) an `f`-share of epochs.
    #[must_use]
    pub fn audits_epoch(&self, draw: u64) -> bool {
        ((draw >> 11) as f64) < self.audit_fraction * (1u64 << 53) as f64
    }
}

/// A k-hop ball around a damage frontier, extracted by [`khop_ball`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Ball {
    /// Every node within `radius` hops of the frontier, ascending.
    pub nodes: Vec<usize>,
    /// The nodes at exactly `radius` hops — the frozen boundary: they
    /// participate in a ball re-run as virtual inputs, but their outputs
    /// are never spliced back.
    pub boundary: NodeWitness,
}

impl Ball {
    /// The interior (ball minus boundary) — the nodes whose re-run
    /// outputs replace the witness entries.
    #[must_use]
    pub fn interior(&self) -> NodeWitness {
        self.nodes
            .iter()
            .copied()
            .filter(|v| !self.boundary.contains(v))
            .collect()
    }
}

/// Extracts the `radius`-hop ball around `frontier` by sparse BFS: only
/// the visited neighbourhoods are touched, so the cost is proportional to
/// the ball, not the graph. Frontier entries beyond the view's node range
/// are ignored.
pub fn khop_ball<V: AdjacencyView + ?Sized>(g: &V, frontier: &NodeWitness, radius: usize) -> Ball {
    let n = g.node_count();
    let mut dist: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &v in frontier {
        if v < n {
            dist.insert(v, 0);
            queue.push_back(v);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        if d == radius {
            continue;
        }
        let mut fresh = Vec::new();
        g.for_each_neighbor(v, &mut |u| {
            if !dist.contains_key(&u) && !fresh.contains(&u) {
                fresh.push(u);
            }
        });
        for u in fresh {
            dist.insert(u, d + 1);
            queue.push_back(u);
        }
    }
    let nodes: Vec<usize> = dist.keys().copied().collect();
    let boundary = dist
        .iter()
        .filter(|&(_, &d)| d == radius)
        .map(|(&v, _)| v)
        .collect();
    Ball { nodes, boundary }
}

/// Splices a ball re-run's edge output back into a witness: every entry
/// with *both* endpoints in `interior` is replaced by the `replacement`
/// entries that lie fully inside the interior. Boundary-crossing entries
/// of both sets are left alone — the seam is re-legalised by a follow-up
/// repair pass over the ball. Returns `(removed, added)` entry counts.
pub fn splice_edge_witness(
    witness: &mut EdgeWitness,
    interior: &NodeWitness,
    replacement: &EdgeWitness,
) -> (usize, usize) {
    let before = witness.len();
    witness.retain(|&(u, v)| !(interior.contains(&u) && interior.contains(&v)));
    let removed = before - witness.len();
    let mut added = 0;
    for &(u, v) in replacement {
        if interior.contains(&u) && interior.contains(&v) && witness.insert(edge_key(u, v)) {
            added += 1;
        }
    }
    (removed, added)
}

/// The node-witness sibling of [`splice_edge_witness`]: interior cover
/// membership is replaced wholesale by the replacement's interior part.
/// Returns `(removed, added)` entry counts.
pub fn splice_node_witness(
    cover: &mut NodeWitness,
    interior: &NodeWitness,
    replacement: &NodeWitness,
) -> (usize, usize) {
    let before = cover.len();
    cover.retain(|v| !interior.contains(v));
    let removed = before - cover.len();
    let mut added = 0;
    for &v in replacement {
        if interior.contains(&v) && cover.insert(v) {
            added += 1;
        }
    }
    (removed, added)
}

/// Repairs `witness` into a maximal matching of `g`.
///
/// Drops entries that are no longer edges of `g` (ghosts) or that share an
/// endpoint with an earlier entry (conflicts, e.g. after corruption), then
/// greedily re-matches the freed and `touched` nodes against their
/// lowest-indexed free neighbours. If the witness was a maximal matching
/// before the damage and `touched` contains every endpoint of inserted or
/// deleted edges plus *both* endpoints of any pair removed externally
/// (e.g. both ends of a pair wiped by corruption — the freed partner must
/// be rescanned too), the result is again a maximal matching of `g`.
pub fn repair_maximal_matching<V: AdjacencyView + ?Sized>(
    g: &V,
    witness: &mut EdgeWitness,
    touched: &NodeWitness,
) -> RepairOutcome {
    let n = g.node_count();
    let mut outcome = RepairOutcome::default();
    let mut mate: BTreeMap<usize, usize> = BTreeMap::new();
    let mut drops: Vec<(usize, usize)> = Vec::new();
    for &(u, v) in witness.iter() {
        let ghost = u >= n || v >= n || !g.has_edge_between(u, v);
        if ghost || mate.contains_key(&u) || mate.contains_key(&v) {
            drops.push((u, v));
        } else {
            mate.insert(u, v);
            mate.insert(v, u);
        }
    }
    let mut frontier: BTreeSet<usize> = touched.iter().copied().filter(|&v| v < n).collect();
    outcome.transient_violations += drops.len();
    for (u, v) in drops {
        witness.remove(&(u, v));
        if u < n {
            frontier.insert(u);
        }
        if v < n {
            frontier.insert(v);
        }
    }
    if frontier.is_empty() {
        return outcome;
    }
    // One synchronous pass over the frontier restores maximality: matchings
    // only grow, so a node left free after its scan has no free neighbour.
    outcome.rounds = 1;
    let mut matched_any = false;
    for &u in &frontier {
        if mate.contains_key(&u) {
            continue;
        }
        outcome.messages += g.degree_of(u);
        let mut candidate: Option<usize> = None;
        g.for_each_neighbor(u, &mut |v| {
            if !mate.contains_key(&v) && candidate.is_none_or(|c| v < c) {
                candidate = Some(v);
            }
        });
        if let Some(v) = candidate {
            mate.insert(u, v);
            mate.insert(v, u);
            witness.insert(edge_key(u, v));
            outcome.transient_violations += 1; // the edge {u, v} was uncovered
            matched_any = true;
        }
    }
    if matched_any {
        // A verification pass that observes quiescence.
        outcome.rounds += 1;
    }
    outcome
}

/// Repairs `witness` into an edge dominating set of `g`.
///
/// Drops ghost entries, then scans the `touched` nodes and the endpoints of
/// dropped entries: every incident edge with neither endpoint covered by a
/// witness edge is added to the witness. Locality is sound because an edge
/// can only lose domination when a witness edge at one of its endpoints is
/// dropped, or when the edge itself is newly inserted — both put an
/// endpoint on the scanned frontier.
pub fn repair_edge_dominating<V: AdjacencyView + ?Sized>(
    g: &V,
    witness: &mut EdgeWitness,
    touched: &NodeWitness,
) -> RepairOutcome {
    let n = g.node_count();
    let mut outcome = RepairOutcome::default();
    let mut drops: Vec<(usize, usize)> = Vec::new();
    for &(u, v) in witness.iter() {
        if u >= n || v >= n || !g.has_edge_between(u, v) {
            drops.push((u, v));
        }
    }
    let mut frontier: BTreeSet<usize> = touched.iter().copied().filter(|&v| v < n).collect();
    outcome.transient_violations += drops.len();
    for (u, v) in drops {
        witness.remove(&(u, v));
        if u < n {
            frontier.insert(u);
        }
        if v < n {
            frontier.insert(v);
        }
    }
    if frontier.is_empty() {
        return outcome;
    }
    // Sparse cover map: only witness endpoints, never a full-n buffer, so
    // the pass stays proportional to the witness and the frontier.
    let mut covered: BTreeSet<usize> = BTreeSet::new();
    for &(u, v) in witness.iter() {
        covered.insert(u);
        covered.insert(v);
    }
    outcome.rounds = 1;
    let mut added_any = false;
    for &u in &frontier {
        outcome.messages += g.degree_of(u);
        let mut additions: Vec<usize> = Vec::new();
        g.for_each_neighbor(u, &mut |v| {
            if !covered.contains(&u) && !covered.contains(&v) {
                covered.insert(u);
                covered.insert(v);
                additions.push(v);
            }
        });
        for v in additions {
            witness.insert(edge_key(u, v));
            outcome.transient_violations += 1; // {u, v} was undominated
            added_any = true;
        }
    }
    if added_any {
        outcome.rounds += 1;
    }
    outcome
}

/// Repairs `cover` into a vertex cover of `g`.
///
/// Drops out-of-range entries, then scans the `touched` nodes: for every
/// incident edge with neither endpoint in the cover, *both* endpoints are
/// added (the classic 2-approximate patching rule, which keeps the
/// maintained cover within a constant factor).
pub fn repair_vertex_cover<V: AdjacencyView + ?Sized>(
    g: &V,
    cover: &mut NodeWitness,
    touched: &NodeWitness,
) -> RepairOutcome {
    let n = g.node_count();
    let mut outcome = RepairOutcome::default();
    let ghosts: Vec<usize> = cover.iter().copied().filter(|&v| v >= n).collect();
    outcome.transient_violations += ghosts.len();
    for v in ghosts {
        cover.remove(&v);
    }
    let frontier: BTreeSet<usize> = touched.iter().copied().filter(|&v| v < n).collect();
    if frontier.is_empty() {
        return outcome;
    }
    outcome.rounds = 1;
    let mut added_any = false;
    for &u in &frontier {
        if g.degree_of(u) == 0 {
            // An isolated (e.g. crashed) node covers nothing: pruning it
            // keeps the maintained cover from bloating past the paper
            // bound under long crash-heavy schedules. Not a violation —
            // feasibility is unaffected.
            cover.remove(&u);
            continue;
        }
        outcome.messages += g.degree_of(u);
        let mut additions: Vec<usize> = Vec::new();
        g.for_each_neighbor(u, &mut |v| {
            if !cover.contains(&u) && !cover.contains(&v) && !additions.contains(&v) {
                additions.push(v);
            }
        });
        for v in additions {
            if !cover.contains(&u) && !cover.contains(&v) {
                cover.insert(u);
                cover.insert(v);
                outcome.transient_violations += 1; // {u, v} was uncovered
                added_any = true;
            }
        }
    }
    if added_any {
        outcome.rounds += 1;
    }
    outcome
}

/// Checks that `witness` is a matching of `g` (pairwise disjoint edges).
#[must_use]
pub fn is_matching_witness<V: AdjacencyView + ?Sized>(g: &V, witness: &EdgeWitness) -> bool {
    let n = g.node_count();
    let mut used: BTreeSet<usize> = BTreeSet::new();
    for &(u, v) in witness.iter() {
        if u >= n || v >= n || !g.has_edge_between(u, v) {
            return false;
        }
        if used.contains(&u) || used.contains(&v) {
            return false;
        }
        used.insert(u);
        used.insert(v);
    }
    true
}

/// Checks that `witness` is maximal: no edge of `g` has both endpoints free.
#[must_use]
pub fn is_maximal_witness<V: AdjacencyView + ?Sized>(g: &V, witness: &EdgeWitness) -> bool {
    let n = g.node_count();
    let mut used: BTreeSet<usize> = BTreeSet::new();
    for &(u, v) in witness.iter() {
        if u < n {
            used.insert(u);
        }
        if v < n {
            used.insert(v);
        }
    }
    all_edges(g, |u, v| used.contains(&u) || used.contains(&v))
}

/// Checks that `witness` dominates every edge of `g` and consists of edges
/// of `g`.
#[must_use]
pub fn is_dominating_witness<V: AdjacencyView + ?Sized>(g: &V, witness: &EdgeWitness) -> bool {
    let n = g.node_count();
    let mut covered: BTreeSet<usize> = BTreeSet::new();
    for &(u, v) in witness.iter() {
        if u >= n || v >= n || !g.has_edge_between(u, v) {
            return false;
        }
        covered.insert(u);
        covered.insert(v);
    }
    all_edges(g, |u, v| covered.contains(&u) || covered.contains(&v))
}

/// Checks that `cover` is a vertex cover of `g`.
#[must_use]
pub fn is_cover_witness<V: AdjacencyView + ?Sized>(g: &V, cover: &NodeWitness) -> bool {
    all_edges(g, |u, v| cover.contains(&u) || cover.contains(&v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pn_graph::generators;

    fn matching_witness(g: &SimpleGraph) -> EdgeWitness {
        // Greedy maximal matching, ascending edge order.
        let mut used = vec![false; SimpleGraph::node_count(g)];
        let mut w = EdgeWitness::new();
        for (_, u, v) in g.edges() {
            if !used[u.index()] && !used[v.index()] {
                used[u.index()] = true;
                used[v.index()] = true;
                w.insert(edge_key(u.index(), v.index()));
            }
        }
        w
    }

    #[test]
    fn static_graph_needs_no_repair() {
        let g = generators::petersen();
        let mut w = matching_witness(&g);
        let before = w.clone();
        let outcome = repair_maximal_matching(&g, &mut w, &NodeWitness::new());
        assert_eq!(outcome, RepairOutcome::default());
        assert_eq!(w, before);
    }

    #[test]
    fn edge_insertion_is_repaired_locally() {
        let mut g = generators::cycle(8).unwrap();
        let mut w = matching_witness(&g);
        assert!(is_maximal_witness(&g, &w));
        // A chord between two matched nodes needs no new matching edge; a
        // chord between the two free nodes does.
        let free: Vec<usize> = (0..8)
            .filter(|&v| !w.iter().any(|&(a, b)| a == v || b == v))
            .collect();
        if free.len() >= 2 {
            g.add_edge_ids(free[0], free[1]).unwrap();
            let touched: NodeWitness = [free[0], free[1]].into_iter().collect();
            let outcome = repair_maximal_matching(&g, &mut w, &touched);
            assert!(outcome.rounds <= 2);
            assert!(outcome.transient_violations >= 1);
        }
        assert!(is_matching_witness(&g, &w));
        assert!(is_maximal_witness(&g, &w));
    }

    #[test]
    fn ghost_entries_are_dropped_and_endpoints_rematched() {
        let g = generators::cycle(6).unwrap();
        let mut w = matching_witness(&g);
        // Simulate a deleted edge by injecting a pair that is not in g.
        w.insert(edge_key(0, 3));
        let outcome = repair_maximal_matching(&g, &mut w, &NodeWitness::new());
        assert!(outcome.transient_violations >= 1);
        assert!(is_matching_witness(&g, &w));
        assert!(is_maximal_witness(&g, &w));
    }

    #[test]
    fn corruption_scramble_recovers_matching() {
        let g = generators::random_bounded_degree(20, 4, 0.7, 11).unwrap();
        let mut w = matching_witness(&g);
        // Corruption at node 0..5: their stored pairs vanish. The contract
        // requires `touched` to include every endpoint of an externally
        // dropped pair — the freed partners, not just the corrupted nodes.
        let corrupted: NodeWitness = (0..5).collect();
        let mut touched = corrupted.clone();
        w.retain(|&(u, v)| {
            let keep = !corrupted.contains(&u) && !corrupted.contains(&v);
            if !keep {
                touched.insert(u);
                touched.insert(v);
            }
            keep
        });
        let outcome = repair_maximal_matching(&g, &mut w, &touched);
        assert!(outcome.rounds <= 2, "local repair is O(1) rounds");
        assert!(is_matching_witness(&g, &w));
        assert!(is_maximal_witness(&g, &w));
        assert!(outcome.messages > 0);
    }

    #[test]
    fn dominating_witness_repair_covers_new_edges() {
        let mut g = generators::grid(4, 4).unwrap();
        let mut w = matching_witness(&g); // maximal matching dominates
        assert!(is_dominating_witness(&g, &w));
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(NodeId::new(0), a).unwrap();
        let touched: NodeWitness = [0, a.index(), b.index()].into_iter().collect();
        let outcome = repair_edge_dominating(&g, &mut w, &touched);
        assert!(outcome.transient_violations >= 1);
        assert!(outcome.rounds <= 2);
        assert!(is_dominating_witness(&g, &w));
    }

    #[test]
    fn dominating_witness_repair_after_deletion() {
        let g = generators::cycle(9).unwrap();
        let mut w = EdgeWitness::new();
        w.insert(edge_key(0, 1));
        w.insert(edge_key(3, 4));
        w.insert(edge_key(6, 7));
        assert!(is_dominating_witness(&g, &w));
        // Pretend {3,4} was deleted from an earlier graph: ghost entry.
        w.remove(&edge_key(3, 4));
        w.insert(edge_key(3, 5)); // not an edge of the cycle → ghost
        let touched: NodeWitness = [3, 5].into_iter().collect();
        let outcome = repair_edge_dominating(&g, &mut w, &touched);
        assert!(outcome.transient_violations >= 1);
        assert!(is_dominating_witness(&g, &w));
    }

    #[test]
    fn vertex_cover_repair_patches_uncovered_edges() {
        let mut g = generators::star(5).unwrap();
        let mut c: NodeWitness = [0].into_iter().collect(); // hub covers all
        assert!(is_cover_witness(&g, &c));
        let v = g.add_node();
        g.add_edge_ids(1, v.index()).unwrap();
        let touched: NodeWitness = [1, v.index()].into_iter().collect();
        let outcome = repair_vertex_cover(&g, &mut c, &touched);
        assert_eq!(outcome.transient_violations, 1);
        assert!(is_cover_witness(&g, &c));
        // The patch adds both endpoints (2-approximate rule).
        assert!(c.contains(&1) && c.contains(&v.index()));
    }

    #[test]
    fn vertex_cover_repair_after_corruption() {
        let g = generators::random_bounded_degree(16, 4, 0.8, 3).unwrap();
        let mut c: NodeWitness = (0..16).collect(); // trivially a cover
                                                    // Corruption wipes membership at half the nodes.
        for v in 0..8 {
            c.remove(&v);
        }
        let touched: NodeWitness = (0..8).collect();
        let outcome = repair_vertex_cover(&g, &mut c, &touched);
        assert!(outcome.rounds <= 2);
        assert!(is_cover_witness(&g, &c));
    }

    #[test]
    fn repair_is_deterministic() {
        let g = generators::random_bounded_degree(24, 5, 0.6, 7).unwrap();
        let make = || {
            let mut w = matching_witness(&g);
            let corrupted: NodeWitness = [2, 9, 17].into_iter().collect();
            let mut touched = corrupted.clone();
            w.retain(|&(u, v)| {
                let keep = !corrupted.contains(&u) && !corrupted.contains(&v);
                if !keep {
                    touched.insert(u);
                    touched.insert(v);
                }
                keep
            });
            let outcome = repair_maximal_matching(&g, &mut w, &touched);
            (w, outcome)
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn khop_ball_is_sparse_and_bounded() {
        let g = generators::cycle(64).unwrap();
        let frontier: NodeWitness = [0].into_iter().collect();
        let ball = khop_ball(&g, &frontier, 2);
        // On a cycle, the 2-ball around one node is five nodes.
        assert_eq!(ball.nodes, vec![0, 1, 2, 62, 63]);
        assert_eq!(ball.boundary, [2, 62].into_iter().collect::<NodeWitness>());
        assert_eq!(
            ball.interior(),
            [0, 1, 63].into_iter().collect::<NodeWitness>()
        );
        // Radius 0 is all boundary, no interior.
        let degenerate = khop_ball(&g, &frontier, 0);
        assert_eq!(degenerate.nodes, vec![0]);
        assert!(degenerate.interior().is_empty());
    }

    #[test]
    fn splice_replaces_interior_entries_only() {
        let mut w: EdgeWitness = [(0, 1), (2, 3), (4, 5)].into_iter().collect();
        let interior: NodeWitness = [0, 1, 2].into_iter().collect();
        // (0,1) is fully interior → replaced; (2,3) crosses the seam →
        // kept; the replacement's seam-crossing (2,9) is not spliced in.
        let replacement: EdgeWitness = [(0, 2), (2, 9)].into_iter().collect();
        let (removed, added) = splice_edge_witness(&mut w, &interior, &replacement);
        assert_eq!((removed, added), (1, 1));
        assert_eq!(w, [(0, 2), (2, 3), (4, 5)].into_iter().collect());

        let mut c: NodeWitness = [0, 1, 5].into_iter().collect();
        let (removed, added) =
            splice_node_witness(&mut c, &interior, &[2, 7].into_iter().collect());
        assert_eq!((removed, added), (2, 1));
        assert_eq!(c, [2, 5].into_iter().collect());
    }

    #[test]
    fn recovery_policy_gates_are_deterministic() {
        let policy = RecoveryPolicy::default();
        assert!(policy.repair_applies(2, 10));
        assert!(!policy.repair_applies(5, 10));
        assert!(RecoveryPolicy::repair_first().repair_applies(10, 10));
        // Fraction 1.0 audits every draw, 0.0 none.
        let always = RecoveryPolicy::default().with_audit_fraction(1.0);
        let never = RecoveryPolicy::default().with_audit_fraction(0.0);
        for draw in [0u64, 1, u64::MAX / 2, u64::MAX] {
            assert!(always.audits_epoch(draw));
            assert!(!never.audits_epoch(draw));
        }
        assert!(RecoveryTier::Repair < RecoveryTier::Full);
        assert_eq!(RecoveryTier::BallRerun.index(), 2);
    }
}

//! Incremental repair of solution witnesses under churn.
//!
//! When the topology changes (edge insert/delete, crash, join) or a node's
//! stored output is corrupted, re-running a protocol from scratch costs its
//! full round schedule. The paper's structures are *local*, though: a
//! maximal matching, an edge dominating set, or a vertex cover damaged at a
//! few nodes can be repaired by rules that only inspect the neighbourhoods
//! of the damaged region. This module implements those rules on
//! *witnesses* — topology-independent descriptions of a solution — so the
//! churn harness can measure recovery cost separately from protocol cost.
//!
//! Witnesses use node identities rather than [`pn_graph::EdgeId`]s because
//! edge identifiers are not stable across mutations: an edge set is a
//! `BTreeSet<(usize, usize)>` of normalised endpoint pairs, a node set a
//! `BTreeSet<usize>`. All rules are deterministic (processing in ascending
//! node order), so repaired witnesses are reproducible bit-for-bit.
//!
//! Accounting mirrors the message-passing model: each *round* is one
//! synchronous pass of a local rule over the damaged frontier, and each
//! scan of a node's neighbourhood costs `deg(v)` *messages*. For a single
//! edge event the frontier has constant size, so repair takes `O(1)` rounds
//! — the bound the `churn_sweep` smoke gate asserts.

use std::collections::BTreeSet;

use pn_graph::{NodeId, SimpleGraph};

/// An edge witness: normalised `(min, max)` endpoint pairs.
pub type EdgeWitness = BTreeSet<(usize, usize)>;

/// A node witness (e.g. a vertex cover).
pub type NodeWitness = BTreeSet<usize>;

/// Normalises an endpoint pair for storage in an [`EdgeWitness`].
#[must_use]
pub fn edge_key(u: usize, v: usize) -> (usize, usize) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Cost and damage accounting for one repair invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Synchronous local-rule passes until the witness was feasible again.
    pub rounds: usize,
    /// Neighbourhood scans, charged `deg(v)` per scanned node per pass.
    pub messages: usize,
    /// Violations present at the quiescence point *before* repair:
    /// ghost/conflicting witness entries plus uncovered edges discovered
    /// while patching.
    pub transient_violations: usize,
}

/// Repairs `witness` into a maximal matching of `g`.
///
/// Drops entries that are no longer edges of `g` (ghosts) or that share an
/// endpoint with an earlier entry (conflicts, e.g. after corruption), then
/// greedily re-matches the freed and `touched` nodes against their
/// lowest-indexed free neighbours. If the witness was a maximal matching
/// before the damage and `touched` contains every endpoint of inserted or
/// deleted edges plus *both* endpoints of any pair removed externally
/// (e.g. both ends of a pair wiped by corruption — the freed partner must
/// be rescanned too), the result is again a maximal matching of `g`.
pub fn repair_maximal_matching(
    g: &SimpleGraph,
    witness: &mut EdgeWitness,
    touched: &NodeWitness,
) -> RepairOutcome {
    let n = g.node_count();
    let mut outcome = RepairOutcome::default();
    let mut mate: Vec<Option<usize>> = vec![None; n];
    let mut drops: Vec<(usize, usize)> = Vec::new();
    for &(u, v) in witness.iter() {
        let ghost = u >= n || v >= n || !g.has_edge(NodeId::new(u), NodeId::new(v));
        if ghost || mate[u].is_some() || mate[v].is_some() {
            drops.push((u, v));
        } else {
            mate[u] = Some(v);
            mate[v] = Some(u);
        }
    }
    let mut frontier: BTreeSet<usize> = touched.iter().copied().filter(|&v| v < n).collect();
    outcome.transient_violations += drops.len();
    for (u, v) in drops {
        witness.remove(&(u, v));
        if u < n {
            frontier.insert(u);
        }
        if v < n {
            frontier.insert(v);
        }
    }
    if frontier.is_empty() {
        return outcome;
    }
    // One synchronous pass over the frontier restores maximality: matchings
    // only grow, so a node left free after its scan has no free neighbour.
    outcome.rounds = 1;
    let mut matched_any = false;
    for &u in &frontier {
        if mate[u].is_some() {
            continue;
        }
        let neighbours = g.neighbors(NodeId::new(u));
        outcome.messages += neighbours.len();
        let candidate = neighbours
            .iter()
            .map(|&(v, _)| v.index())
            .filter(|&v| mate[v].is_none())
            .min();
        if let Some(v) = candidate {
            mate[u] = Some(v);
            mate[v] = Some(u);
            witness.insert(edge_key(u, v));
            outcome.transient_violations += 1; // the edge {u, v} was uncovered
            matched_any = true;
        }
    }
    if matched_any {
        // A verification pass that observes quiescence.
        outcome.rounds += 1;
    }
    outcome
}

/// Repairs `witness` into an edge dominating set of `g`.
///
/// Drops ghost entries, then scans the `touched` nodes and the endpoints of
/// dropped entries: every incident edge with neither endpoint covered by a
/// witness edge is added to the witness. Locality is sound because an edge
/// can only lose domination when a witness edge at one of its endpoints is
/// dropped, or when the edge itself is newly inserted — both put an
/// endpoint on the scanned frontier.
pub fn repair_edge_dominating(
    g: &SimpleGraph,
    witness: &mut EdgeWitness,
    touched: &NodeWitness,
) -> RepairOutcome {
    let n = g.node_count();
    let mut outcome = RepairOutcome::default();
    let mut drops: Vec<(usize, usize)> = Vec::new();
    for &(u, v) in witness.iter() {
        if u >= n || v >= n || !g.has_edge(NodeId::new(u), NodeId::new(v)) {
            drops.push((u, v));
        }
    }
    let mut frontier: BTreeSet<usize> = touched.iter().copied().filter(|&v| v < n).collect();
    outcome.transient_violations += drops.len();
    for (u, v) in drops {
        witness.remove(&(u, v));
        if u < n {
            frontier.insert(u);
        }
        if v < n {
            frontier.insert(v);
        }
    }
    if frontier.is_empty() {
        return outcome;
    }
    let mut covered = vec![false; n];
    for &(u, v) in witness.iter() {
        covered[u] = true;
        covered[v] = true;
    }
    outcome.rounds = 1;
    let mut added_any = false;
    for &u in &frontier {
        let neighbours = g.neighbors(NodeId::new(u));
        outcome.messages += neighbours.len();
        for &(v, _) in neighbours {
            let v = v.index();
            if !covered[u] && !covered[v] {
                witness.insert(edge_key(u, v));
                covered[u] = true;
                covered[v] = true;
                outcome.transient_violations += 1; // {u, v} was undominated
                added_any = true;
            }
        }
    }
    if added_any {
        outcome.rounds += 1;
    }
    outcome
}

/// Repairs `cover` into a vertex cover of `g`.
///
/// Drops out-of-range entries, then scans the `touched` nodes: for every
/// incident edge with neither endpoint in the cover, *both* endpoints are
/// added (the classic 2-approximate patching rule, which keeps the
/// maintained cover within a constant factor).
pub fn repair_vertex_cover(
    g: &SimpleGraph,
    cover: &mut NodeWitness,
    touched: &NodeWitness,
) -> RepairOutcome {
    let n = g.node_count();
    let mut outcome = RepairOutcome::default();
    let ghosts: Vec<usize> = cover.iter().copied().filter(|&v| v >= n).collect();
    outcome.transient_violations += ghosts.len();
    for v in ghosts {
        cover.remove(&v);
    }
    let frontier: BTreeSet<usize> = touched.iter().copied().filter(|&v| v < n).collect();
    if frontier.is_empty() {
        return outcome;
    }
    outcome.rounds = 1;
    let mut added_any = false;
    for &u in &frontier {
        let neighbours = g.neighbors(NodeId::new(u));
        outcome.messages += neighbours.len();
        for &(v, _) in neighbours {
            let v = v.index();
            if !cover.contains(&u) && !cover.contains(&v) {
                cover.insert(u);
                cover.insert(v);
                outcome.transient_violations += 1; // {u, v} was uncovered
                added_any = true;
            }
        }
    }
    if added_any {
        outcome.rounds += 1;
    }
    outcome
}

/// Checks that `witness` is a matching of `g` (pairwise disjoint edges).
#[must_use]
pub fn is_matching_witness(g: &SimpleGraph, witness: &EdgeWitness) -> bool {
    let n = g.node_count();
    let mut used = vec![false; n];
    for &(u, v) in witness.iter() {
        if u >= n || v >= n || !g.has_edge(NodeId::new(u), NodeId::new(v)) {
            return false;
        }
        if used[u] || used[v] {
            return false;
        }
        used[u] = true;
        used[v] = true;
    }
    true
}

/// Checks that `witness` is maximal: no edge of `g` has both endpoints free.
#[must_use]
pub fn is_maximal_witness(g: &SimpleGraph, witness: &EdgeWitness) -> bool {
    let n = g.node_count();
    let mut used = vec![false; n];
    for &(u, v) in witness.iter() {
        if u < n {
            used[u] = true;
        }
        if v < n {
            used[v] = true;
        }
    }
    g.edges()
        .all(|(_, u, v)| used[u.index()] || used[v.index()])
}

/// Checks that `witness` dominates every edge of `g` and consists of edges
/// of `g`.
#[must_use]
pub fn is_dominating_witness(g: &SimpleGraph, witness: &EdgeWitness) -> bool {
    let n = g.node_count();
    let mut covered = vec![false; n];
    for &(u, v) in witness.iter() {
        if u >= n || v >= n || !g.has_edge(NodeId::new(u), NodeId::new(v)) {
            return false;
        }
        covered[u] = true;
        covered[v] = true;
    }
    g.edges()
        .all(|(_, u, v)| covered[u.index()] || covered[v.index()])
}

/// Checks that `cover` is a vertex cover of `g`.
#[must_use]
pub fn is_cover_witness(g: &SimpleGraph, cover: &NodeWitness) -> bool {
    g.edges()
        .all(|(_, u, v)| cover.contains(&u.index()) || cover.contains(&v.index()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pn_graph::generators;

    fn matching_witness(g: &SimpleGraph) -> EdgeWitness {
        // Greedy maximal matching, ascending edge order.
        let mut used = vec![false; g.node_count()];
        let mut w = EdgeWitness::new();
        for (_, u, v) in g.edges() {
            if !used[u.index()] && !used[v.index()] {
                used[u.index()] = true;
                used[v.index()] = true;
                w.insert(edge_key(u.index(), v.index()));
            }
        }
        w
    }

    #[test]
    fn static_graph_needs_no_repair() {
        let g = generators::petersen();
        let mut w = matching_witness(&g);
        let before = w.clone();
        let outcome = repair_maximal_matching(&g, &mut w, &NodeWitness::new());
        assert_eq!(outcome, RepairOutcome::default());
        assert_eq!(w, before);
    }

    #[test]
    fn edge_insertion_is_repaired_locally() {
        let mut g = generators::cycle(8).unwrap();
        let mut w = matching_witness(&g);
        assert!(is_maximal_witness(&g, &w));
        // A chord between two matched nodes needs no new matching edge; a
        // chord between the two free nodes does.
        let free: Vec<usize> = (0..8)
            .filter(|&v| !w.iter().any(|&(a, b)| a == v || b == v))
            .collect();
        if free.len() >= 2 {
            g.add_edge_ids(free[0], free[1]).unwrap();
            let touched: NodeWitness = [free[0], free[1]].into_iter().collect();
            let outcome = repair_maximal_matching(&g, &mut w, &touched);
            assert!(outcome.rounds <= 2);
            assert!(outcome.transient_violations >= 1);
        }
        assert!(is_matching_witness(&g, &w));
        assert!(is_maximal_witness(&g, &w));
    }

    #[test]
    fn ghost_entries_are_dropped_and_endpoints_rematched() {
        let g = generators::cycle(6).unwrap();
        let mut w = matching_witness(&g);
        // Simulate a deleted edge by injecting a pair that is not in g.
        w.insert(edge_key(0, 3));
        let outcome = repair_maximal_matching(&g, &mut w, &NodeWitness::new());
        assert!(outcome.transient_violations >= 1);
        assert!(is_matching_witness(&g, &w));
        assert!(is_maximal_witness(&g, &w));
    }

    #[test]
    fn corruption_scramble_recovers_matching() {
        let g = generators::random_bounded_degree(20, 4, 0.7, 11).unwrap();
        let mut w = matching_witness(&g);
        // Corruption at node 0..5: their stored pairs vanish. The contract
        // requires `touched` to include every endpoint of an externally
        // dropped pair — the freed partners, not just the corrupted nodes.
        let corrupted: NodeWitness = (0..5).collect();
        let mut touched = corrupted.clone();
        w.retain(|&(u, v)| {
            let keep = !corrupted.contains(&u) && !corrupted.contains(&v);
            if !keep {
                touched.insert(u);
                touched.insert(v);
            }
            keep
        });
        let outcome = repair_maximal_matching(&g, &mut w, &touched);
        assert!(outcome.rounds <= 2, "local repair is O(1) rounds");
        assert!(is_matching_witness(&g, &w));
        assert!(is_maximal_witness(&g, &w));
        assert!(outcome.messages > 0);
    }

    #[test]
    fn dominating_witness_repair_covers_new_edges() {
        let mut g = generators::grid(4, 4).unwrap();
        let mut w = matching_witness(&g); // maximal matching dominates
        assert!(is_dominating_witness(&g, &w));
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b).unwrap();
        g.add_edge(NodeId::new(0), a).unwrap();
        let touched: NodeWitness = [0, a.index(), b.index()].into_iter().collect();
        let outcome = repair_edge_dominating(&g, &mut w, &touched);
        assert!(outcome.transient_violations >= 1);
        assert!(outcome.rounds <= 2);
        assert!(is_dominating_witness(&g, &w));
    }

    #[test]
    fn dominating_witness_repair_after_deletion() {
        let g = generators::cycle(9).unwrap();
        let mut w = EdgeWitness::new();
        w.insert(edge_key(0, 1));
        w.insert(edge_key(3, 4));
        w.insert(edge_key(6, 7));
        assert!(is_dominating_witness(&g, &w));
        // Pretend {3,4} was deleted from an earlier graph: ghost entry.
        w.remove(&edge_key(3, 4));
        w.insert(edge_key(3, 5)); // not an edge of the cycle → ghost
        let touched: NodeWitness = [3, 5].into_iter().collect();
        let outcome = repair_edge_dominating(&g, &mut w, &touched);
        assert!(outcome.transient_violations >= 1);
        assert!(is_dominating_witness(&g, &w));
    }

    #[test]
    fn vertex_cover_repair_patches_uncovered_edges() {
        let mut g = generators::star(5).unwrap();
        let mut c: NodeWitness = [0].into_iter().collect(); // hub covers all
        assert!(is_cover_witness(&g, &c));
        let v = g.add_node();
        g.add_edge_ids(1, v.index()).unwrap();
        let touched: NodeWitness = [1, v.index()].into_iter().collect();
        let outcome = repair_vertex_cover(&g, &mut c, &touched);
        assert_eq!(outcome.transient_violations, 1);
        assert!(is_cover_witness(&g, &c));
        // The patch adds both endpoints (2-approximate rule).
        assert!(c.contains(&1) && c.contains(&v.index()));
    }

    #[test]
    fn vertex_cover_repair_after_corruption() {
        let g = generators::random_bounded_degree(16, 4, 0.8, 3).unwrap();
        let mut c: NodeWitness = (0..16).collect(); // trivially a cover
                                                    // Corruption wipes membership at half the nodes.
        for v in 0..8 {
            c.remove(&v);
        }
        let touched: NodeWitness = (0..8).collect();
        let outcome = repair_vertex_cover(&g, &mut c, &touched);
        assert!(outcome.rounds <= 2);
        assert!(is_cover_witness(&g, &c));
    }

    #[test]
    fn repair_is_deterministic() {
        let g = generators::random_bounded_degree(24, 5, 0.6, 7).unwrap();
        let make = || {
            let mut w = matching_witness(&g);
            let corrupted: NodeWitness = [2, 9, 17].into_iter().collect();
            let mut touched = corrupted.clone();
            w.retain(|&(u, v)| {
                let keep = !corrupted.contains(&u) && !corrupted.contains(&v);
                if !keep {
                    touched.insert(u);
                    touched.insert(v);
                }
                keep
            });
            let outcome = repair_maximal_matching(&g, &mut w, &touched);
            (w, outcome)
        };
        assert_eq!(make(), make());
    }
}

//! The Polishchuk–Suomela local 3-approximation for **vertex cover**
//! (paper reference \[21\]) — the algorithm whose 2-matching machinery
//! Phase III of Theorem 5 reuses.
//!
//! The algorithm computes a 2-matching `P` that dominates every edge
//! (via the bipartite-double-cover proposal scheme,
//! [`crate::proposals::double_cover_two_matching`]) and outputs the set
//! of `P`-covered nodes. Since `P` dominates all edges, the covered
//! nodes form a vertex cover; since the subgraph induced by a 2-matching
//! consists of paths and cycles, each matched optimal-cover node
//! accounts for at most 3 output nodes, giving a factor 3.
//!
//! Included because the paper leans on it twice: as the Phase III
//! subroutine and as the prototype of "node-based covering problems in
//! the port-numbering model" that Section 1.4 contrasts with the
//! edge-based problem.

use pn_graph::{NodeId, PortNumberedGraph};
use pn_runtime::{collect_send, NodeAlgorithm, RuntimeError, Simulator, WrongCount};

use crate::proposals::double_cover_two_matching;

/// Centralised reference: the 3-approximate vertex cover from the
/// edge-dominating 2-matching.
///
/// # Examples
///
/// ```
/// use pn_graph::{generators, ports};
/// use eds_core::vertex_cover::vertex_cover_reference;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = ports::canonical_ports(&generators::star(5)?)?;
/// let cover = vertex_cover_reference(&g);
/// assert!(!cover.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn vertex_cover_reference(g: &PortNumberedGraph) -> Vec<NodeId> {
    let eligible = vec![true; g.edge_count()];
    let p = double_cover_two_matching(g, &eligible);
    let mut covered = vec![false; g.node_count()];
    for &e in &p {
        let (u, v) = g.edge(e).nodes();
        covered[u.index()] = true;
        covered[v.index()] = true;
    }
    g.nodes().filter(|v| covered[v.index()]).collect()
}

/// Messages of the distributed 2-matching / vertex cover protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VcMsg {
    /// An offer along an edge (proposer role).
    Propose,
    /// Accept/reject answer to an offer received in the previous round.
    Response(bool),
    /// Filler for silent ports.
    Nothing,
}

impl pn_runtime::PackedMessage for VcMsg {
    fn lane_bits(_max_degree: usize) -> Option<u32> {
        pn_runtime::lane_width_for(4)
    }

    fn encode(&self, _max_degree: usize) -> u64 {
        match self {
            VcMsg::Propose => 1,
            VcMsg::Response(false) => 2,
            VcMsg::Response(true) => 3,
            VcMsg::Nothing => 4,
        }
    }

    fn decode(code: u64, _max_degree: usize) -> Option<Self> {
        match code {
            1 => Some(VcMsg::Propose),
            2 => Some(VcMsg::Response(false)),
            3 => Some(VcMsg::Response(true)),
            4 => Some(VcMsg::Nothing),
            _ => None,
        }
    }
}

/// Distributed implementation: the standalone double-cover proposal
/// protocol. Each node plays a proposer and an acceptor role; after
/// `2·Δ` rounds it outputs whether it is covered by the 2-matching.
///
/// The family is parametrised by `Δ` (an upper bound on the degrees)
/// because anonymous nodes cannot otherwise know when all proposals have
/// settled.
#[derive(Clone, Debug)]
pub struct VertexCoverNode {
    delta: usize,
    degree: usize,
    cursor: usize,
    pending: Option<usize>,
    incoming: Vec<usize>,
    proposer_done: bool,
    acceptor_done: bool,
    in_p: Vec<bool>,
}

impl VertexCoverNode {
    /// Creates the state machine for degree bound `delta` at a node of
    /// degree `degree`.
    ///
    /// # Panics
    ///
    /// Panics if `degree > delta`.
    pub fn new(delta: usize, degree: usize) -> Self {
        assert!(degree <= delta, "node degree exceeds Δ");
        VertexCoverNode {
            delta,
            degree,
            cursor: 0,
            pending: None,
            incoming: Vec::new(),
            proposer_done: false,
            acceptor_done: false,
            in_p: vec![false; degree],
        }
    }
}

impl NodeAlgorithm for VertexCoverNode {
    type Message = VcMsg;
    /// `true` iff the node belongs to the vertex cover.
    type Output = bool;

    fn send(&mut self, round: usize) -> Vec<VcMsg> {
        collect_send(self, round, self.degree)
    }

    fn send_into(&mut self, round: usize, outbox: &mut [Option<VcMsg>]) -> Result<(), WrongCount> {
        outbox.fill(Some(VcMsg::Nothing));
        if round.is_multiple_of(2) {
            // Propose round.
            self.pending = None;
            if !self.proposer_done && self.cursor < self.degree {
                let q = self.cursor;
                self.cursor += 1;
                self.pending = Some(q);
                outbox[q] = Some(VcMsg::Propose);
            }
        } else {
            // Respond round.
            let incoming = std::mem::take(&mut self.incoming);
            for &q in &incoming {
                outbox[q] = Some(VcMsg::Response(false));
            }
            if !self.acceptor_done {
                if let Some(&best) = incoming.iter().min() {
                    outbox[best] = Some(VcMsg::Response(true));
                    self.acceptor_done = true;
                    self.in_p[best] = true;
                }
            }
        }
        Ok(())
    }

    fn receive(&mut self, round: usize, inbox: &[Option<VcMsg>]) -> Option<bool> {
        if self.degree == 0 {
            return Some(false);
        }
        if round.is_multiple_of(2) {
            self.incoming.clear();
            for (q, m) in inbox.iter().enumerate() {
                if m == &Some(VcMsg::Propose) {
                    self.incoming.push(q);
                }
            }
            None
        } else {
            if let Some(q) = self.pending.take() {
                if inbox[q] == Some(VcMsg::Response(true)) {
                    self.proposer_done = true;
                    self.in_p[q] = true;
                }
            }
            if round + 1 >= 2 * self.delta.max(1) {
                Some(self.in_p.iter().any(|&b| b))
            } else {
                None
            }
        }
    }

    fn corrupt(&mut self, entropy: u64) {
        // Garble every soft field within its safe range (port references
        // stay < degree — see the trait contract); `delta`/`degree`
        // define the round schedule and stay intact.
        if self.degree == 0 {
            return;
        }
        let mut next = pn_runtime::entropy_stream(entropy);
        self.cursor = (next() % (self.degree as u64 + 1)) as usize;
        self.pending = (next() & 1 == 0).then(|| (next() % self.degree as u64) as usize);
        self.incoming = (0..self.degree).filter(|_| next() & 1 == 0).collect();
        self.proposer_done = next() & 1 == 0;
        self.acceptor_done = next() & 1 == 0;
        for b in &mut self.in_p {
            *b = next() & 1 == 0;
        }
    }

    fn reset(&mut self) {
        *self = VertexCoverNode::new(self.delta, self.degree);
    }
}

/// Runs the distributed protocol and returns the cover.
///
/// # Errors
///
/// Propagates simulator errors (none occur for `max_degree(g) <= delta`).
pub fn vertex_cover_distributed(
    g: &PortNumberedGraph,
    delta: usize,
) -> Result<Vec<NodeId>, RuntimeError> {
    let run = Simulator::new(g).run(|d: usize| VertexCoverNode::new(delta, d))?;
    Ok(g.nodes().filter(|v| run.outputs[v.index()]).collect())
}

/// Checks that `cover` is a vertex cover of the underlying graph.
pub fn is_vertex_cover(g: &PortNumberedGraph, cover: &[NodeId]) -> bool {
    let mut in_cover = vec![false; g.node_count()];
    for &v in cover {
        in_cover[v.index()] = true;
    }
    g.edges().all(|(_, shape)| {
        let (u, v) = shape.nodes();
        in_cover[u.index()] || in_cover[v.index()]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pn_graph::{generators, ports};

    /// Exact minimum vertex cover by brute force (small graphs).
    fn minimum_vc_size(g: &PortNumberedGraph) -> usize {
        let simple = g.to_simple().unwrap();
        let n = simple.node_count();
        assert!(n <= 20, "brute force only");
        (0u32..(1 << n))
            .filter(|mask| {
                simple
                    .edges()
                    .all(|(_, u, v)| mask & (1 << u.index()) != 0 || mask & (1 << v.index()) != 0)
            })
            .map(u32::count_ones)
            .min()
            .unwrap_or(0) as usize
    }

    #[test]
    fn cover_is_feasible_and_within_factor_3() {
        for seed in 0..8 {
            let g = generators::gnp(10, 0.4, seed).unwrap();
            if g.is_edgeless() {
                continue;
            }
            let pg = ports::shuffled_ports(&g, seed).unwrap();
            let cover = vertex_cover_reference(&pg);
            assert!(is_vertex_cover(&pg, &cover), "seed {seed}");
            let opt = minimum_vc_size(&pg);
            assert!(
                cover.len() <= 3 * opt,
                "seed {seed}: {} > 3 * {opt}",
                cover.len()
            );
        }
    }

    #[test]
    fn distributed_matches_reference() {
        for seed in 0..6 {
            let g = generators::random_bounded_degree(16, 4, 0.8, seed).unwrap();
            let pg = ports::shuffled_ports(&g, seed + 9).unwrap();
            let reference = vertex_cover_reference(&pg);
            let distributed = vertex_cover_distributed(&pg, 4).unwrap();
            assert_eq!(reference, distributed, "seed {seed}");
        }
    }

    #[test]
    fn round_count_is_2_delta() {
        let g = generators::random_regular(12, 4, 3).unwrap();
        let pg = ports::shuffled_ports(&g, 3).unwrap();
        let run = Simulator::new(&pg)
            .run(|d: usize| VertexCoverNode::new(4, d))
            .unwrap();
        assert_eq!(run.rounds, 8);
    }

    #[test]
    fn star_cover_is_small() {
        // On a star the cover is the hub plus one leaf (the accepted
        // proposal pair): within factor 3 of OPT = 1.
        let g = ports::canonical_ports(&generators::star(6).unwrap()).unwrap();
        let cover = vertex_cover_reference(&g);
        assert!(is_vertex_cover(&g, &cover));
        assert!(cover.len() <= 3);
    }

    #[test]
    fn edgeless_graph_empty_cover() {
        let g = ports::canonical_ports(&pn_graph::SimpleGraph::new(4)).unwrap();
        assert!(vertex_cover_reference(&g).is_empty());
        assert!(vertex_cover_distributed(&g, 3).unwrap().is_empty());
    }

    #[test]
    fn corrupt_then_reset_restores_the_initial_state() {
        let mut node = VertexCoverNode::new(4, 3);
        let fresh = format!("{node:?}");
        node.corrupt(0xbad_c0de);
        assert_ne!(format!("{node:?}"), fresh, "corruption must change state");
        node.reset();
        assert_eq!(format!("{node:?}"), fresh, "reset must restore it");
    }

    #[test]
    fn corrupted_epochs_stay_well_defined() {
        use pn_runtime::{ChurnEvent, ChurnSimulator};
        let g = ports::shuffled_ports(&generators::petersen(), 7).unwrap();
        let mut sim = ChurnSimulator::new(&g, |_, d| VertexCoverNode::new(3, d)).unwrap();
        let burst: Vec<_> = (0..10)
            .map(|v| ChurnEvent::Corrupt {
                v: NodeId::new(v),
                entropy: v as u64 * 101 + 13,
            })
            .collect();
        sim.apply_burst(&burst).unwrap();
        let epoch = sim.stabilize().unwrap(); // must complete, never panic
        assert_eq!(epoch.corrupted, 10);
        // Once the corruption drains, the next epoch is a valid cover.
        let clean = sim.stabilize().unwrap();
        let cover: Vec<NodeId> = g.nodes().filter(|v| clean.outputs[v.index()]).collect();
        assert!(is_vertex_cover(&g, &cover));
    }
}

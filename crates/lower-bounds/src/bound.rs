//! Empirical lower-bound checking and the Corollary 1 bounds.
//!
//! A lower-bound instance comes with a provably optimal solution; running
//! *any* algorithm on it and dividing sizes gives an empirical ratio that
//! the theory says cannot be smaller than the bound. The regenerators in
//! `eds-bench` use [`empirical_ratio`] to produce the Table 1 rows.

use pn_graph::EdgeId;

/// An exact rational `p / q` with a few conveniences for comparing
/// approximation ratios without floating-point error.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ratio {
    /// Numerator.
    pub num: u64,
    /// Denominator (non-zero).
    pub den: u64,
}

impl Ratio {
    /// Creates `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den != 0, "denominator must be non-zero");
        Ratio { num, den }
    }

    /// The ratio of two set sizes.
    pub fn of_sizes(found: usize, optimal: usize) -> Self {
        Ratio::new(found as u64, optimal as u64)
    }

    /// Floating-point value (for display only).
    pub fn as_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Exact comparison `self >= other` by cross multiplication.
    pub fn ge(self, other: Ratio) -> bool {
        (self.num as u128) * (other.den as u128) >= (other.num as u128) * (self.den as u128)
    }

    /// Exact comparison `self <= other`.
    pub fn le(self, other: Ratio) -> bool {
        other.ge(self)
    }

    /// Exact equality by cross multiplication (tolerates different
    /// normalisations).
    pub fn eq_exact(self, other: Ratio) -> bool {
        (self.num as u128) * (other.den as u128) == (other.num as u128) * (self.den as u128)
    }
}

impl From<(u64, u64)> for Ratio {
    fn from((num, den): (u64, u64)) -> Self {
        Ratio::new(num, den)
    }
}

impl std::fmt::Display for Ratio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{} ({:.4})", self.num, self.den, self.as_f64())
    }
}

/// The empirical approximation ratio of an algorithm output against a
/// known optimum.
///
/// # Panics
///
/// Panics if `optimal` is empty while `found` is not (division by zero —
/// an empty optimum only happens on edgeless graphs).
pub fn empirical_ratio(found: &[EdgeId], optimal: &[EdgeId]) -> Ratio {
    assert!(
        !optimal.is_empty() || found.is_empty(),
        "non-empty output against empty optimum"
    );
    if optimal.is_empty() {
        return Ratio::new(1, 1);
    }
    Ratio::of_sizes(found.len(), optimal.len())
}

/// Corollary 1: any algorithm family for bounded-degree graphs has
/// `α(1) ≥ 1` and `α(2k+1) ≥ α(2k) ≥ 4 - 1/k`; returns the bound as an
/// exact fraction.
///
/// # Panics
///
/// Panics if `delta == 0`.
pub fn corollary1_bound(delta: usize) -> Ratio {
    assert!(delta >= 1);
    if delta == 1 {
        return Ratio::new(1, 1);
    }
    let k = (delta / 2) as u64;
    Ratio::new(4 * k - 1, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_comparisons_are_exact() {
        let a = Ratio::new(10, 4); // 2.5
        let b = Ratio::new(5, 2); // 2.5
        assert!(a.eq_exact(b));
        assert!(a.ge(b) && a.le(b));
        let c = Ratio::new(7, 2); // 3.5
        assert!(c.ge(a));
        assert!(!a.ge(c));
    }

    #[test]
    fn display_contains_decimal() {
        let r = Ratio::new(7, 2);
        let s = r.to_string();
        assert!(s.contains("7/2") && s.contains("3.5"));
    }

    #[test]
    fn corollary1_values() {
        assert!(corollary1_bound(1).eq_exact(Ratio::new(1, 1)));
        assert!(corollary1_bound(2).eq_exact(Ratio::new(3, 1)));
        assert!(corollary1_bound(3).eq_exact(Ratio::new(3, 1)));
        assert!(corollary1_bound(4).eq_exact(Ratio::new(7, 2)));
        assert!(corollary1_bound(5).eq_exact(Ratio::new(7, 2)));
        assert!(corollary1_bound(6).eq_exact(Ratio::new(11, 3)));
    }

    #[test]
    fn empirical_ratio_basics() {
        let found = vec![EdgeId::new(0), EdgeId::new(1), EdgeId::new(2)];
        let opt = vec![EdgeId::new(3)];
        assert!(empirical_ratio(&found, &opt).eq_exact(Ratio::new(3, 1)));
        assert!(empirical_ratio(&[], &[]).eq_exact(Ratio::new(1, 1)));
    }

    #[test]
    #[should_panic(expected = "empty optimum")]
    fn empirical_ratio_rejects_empty_optimum() {
        let _ = empirical_ratio(&[EdgeId::new(0)], &[]);
    }
}

//! The Theorem 1 construction: for every even `d` there is a `d`-regular
//! port-numbered graph on which **no** deterministic algorithm beats
//! `4 - 2/d`.
//!
//! The graph (paper Section 3, Figure 4):
//!
//! * nodes `A = {a_1, ..., a_d}` and `B = {b_1, ..., b_{d-1}}`;
//! * edges `S = {a_1 a_2, a_3 a_4, ...}` (a matching) and
//!   `T = A × B` (complete bipartite `K_{d,d-1}`);
//! * the port numbering threads ports `2i-1 → 2i` along an oriented
//!   2-factorisation (Petersen's theorem guarantees one exists).
//!
//! `S` is an optimal edge dominating set (`|E| = (2d-1)|S|`, and one edge
//! dominates at most `2d-1` edges). The constant covering map onto the
//! one-node multigraph `M` (all ports `2i-1 ↔ 2i` looped) forces every
//! node to produce the *same* output, so any algorithm selects an entire
//! 2-factor — `|V| = 2d - 1` edges against `|S| = d/2`.

use pn_graph::ports::two_factor_ports;
use pn_graph::{
    CoveringMap, EdgeId, Endpoint, GraphError, NodeId, PnGraphBuilder, Port, PortNumberedGraph,
    SimpleGraph,
};

/// The complete Theorem 1 instance for one even degree `d`.
#[derive(Clone, Debug)]
pub struct EvenLowerBound {
    /// The `d`-regular port-numbered graph `G`.
    pub graph: PortNumberedGraph,
    /// The optimal edge dominating set `S` (edge ids of `graph`).
    pub optimal: Vec<EdgeId>,
    /// The one-node target multigraph `M`.
    pub target: PortNumberedGraph,
    /// The constant covering map `G → M`.
    pub covering: CoveringMap,
    /// The degree parameter.
    pub d: usize,
}

impl EvenLowerBound {
    /// The lower-bound ratio `4 - 2/d` as an exact fraction.
    pub fn ratio(&self) -> (u64, u64) {
        ratio(self.d)
    }

    /// `|S| = d / 2`.
    pub fn optimal_size(&self) -> usize {
        self.optimal.len()
    }
}

/// The Theorem 1 lower-bound ratio `4 - 2/d = (4d - 2)/d` for even `d`.
///
/// # Panics
///
/// Panics if `d` is odd or zero.
pub fn ratio(d: usize) -> (u64, u64) {
    assert!(d >= 2 && d.is_multiple_of(2), "Theorem 1 needs even d >= 2");
    (4 * d as u64 - 2, d as u64)
}

/// Builds the Theorem 1 instance for even `d ≥ 2`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for odd or zero `d`; internal
/// construction errors cannot occur.
///
/// # Examples
///
/// ```
/// use eds_lower_bounds::even::build;
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// let instance = build(6)?;
/// assert_eq!(instance.graph.node_count(), 11); // 2d - 1
/// assert_eq!(instance.optimal_size(), 3);      // d / 2
/// instance.covering.verify(&instance.graph, &instance.target)?;
/// # Ok(())
/// # }
/// ```
pub fn build(d: usize) -> Result<EvenLowerBound, GraphError> {
    if d < 2 || !d.is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            detail: format!("Theorem 1 construction needs even d >= 2, got {d}"),
        });
    }
    // Nodes: a_1..a_d are 0..d-1; b_1..b_{d-1} are d..2d-2.
    let mut simple = SimpleGraph::new(2 * d - 1);
    // S: the matching on A.
    let mut s_pairs = Vec::with_capacity(d / 2);
    for t in 0..d / 2 {
        simple.add_edge_ids(2 * t, 2 * t + 1)?;
        s_pairs.push((2 * t, 2 * t + 1));
    }
    // T: complete bipartite A x B.
    for a in 0..d {
        for b in 0..d - 1 {
            simple.add_edge_ids(a, d + b)?;
        }
    }
    debug_assert_eq!(simple.regular_degree(), Some(d));

    // The adversarial port numbering via 2-factorisation.
    let graph = two_factor_ports(&simple)?;

    // Locate S in the port-numbered graph's edge ids.
    let view = graph.to_simple()?;
    let optimal: Vec<EdgeId> = s_pairs
        .iter()
        .map(|&(u, v)| {
            view.find_edge(NodeId::new(u), NodeId::new(v))
                .expect("S edges exist in G")
        })
        .collect();

    // The one-node multigraph M: ports 2i-1 <-> 2i.
    let mut b = PnGraphBuilder::new();
    let x = b.add_node(d);
    for i in 0..d / 2 {
        b.connect(
            Endpoint::new(x, Port::new(2 * i as u32 + 1)),
            Endpoint::new(x, Port::new(2 * i as u32 + 2)),
        )?;
    }
    let target = b.finish()?;
    let covering = CoveringMap::constant(graph.node_count(), x);
    covering.verify(&graph, &target)?;

    Ok(EvenLowerBound {
        graph,
        optimal,
        target,
        covering,
        d,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_paper() {
        for d in [2usize, 4, 6, 8, 10] {
            let inst = build(d).unwrap();
            assert_eq!(inst.graph.node_count(), 2 * d - 1);
            assert_eq!(inst.graph.regular_degree(), Some(d));
            // |E| = d/2 + d(d-1) = (2d-1) d/2 = (2d-1)|S|.
            assert_eq!(inst.graph.edge_count(), (2 * d - 1) * d / 2);
            assert_eq!(inst.optimal_size(), d / 2);
        }
    }

    #[test]
    fn s_is_an_edge_dominating_set() {
        let inst = build(6).unwrap();
        let view = inst.graph.to_simple().unwrap();
        let mut covered = vec![false; view.node_count()];
        for &e in &inst.optimal {
            let (u, v) = view.endpoints(e);
            covered[u.index()] = true;
            covered[v.index()] = true;
        }
        for (_, u, v) in view.edges() {
            assert!(covered[u.index()] || covered[v.index()]);
        }
    }

    #[test]
    fn s_is_optimal_by_counting() {
        // Each edge dominates at most 2d-1 edges, so any EDS has at least
        // |E| / (2d-1) = |S| edges.
        for d in [2usize, 4, 6] {
            let inst = build(d).unwrap();
            assert_eq!(inst.graph.edge_count(), (2 * d - 1) * inst.optimal_size());
        }
    }

    #[test]
    fn covering_map_verified() {
        for d in [2usize, 4, 8] {
            let inst = build(d).unwrap();
            inst.covering.verify(&inst.graph, &inst.target).unwrap();
            assert_eq!(inst.target.node_count(), 1);
        }
    }

    #[test]
    fn port_pattern_is_uniform() {
        // Every node's port 2i-1 connects to some port 2i: the wiring all
        // nodes see is identical (that is what the covering map encodes).
        let inst = build(8).unwrap();
        for v in inst.graph.nodes() {
            for i in 0..4u32 {
                let out = inst
                    .graph
                    .connection(Endpoint::new(v, Port::new(2 * i + 1)));
                assert_eq!(out.port, Port::new(2 * i + 2));
            }
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(build(0).is_err());
        assert!(build(3).is_err());
        assert!(build(7).is_err());
    }

    #[test]
    fn ratio_fraction() {
        assert_eq!(ratio(2), (6, 2));
        assert_eq!(ratio(10), (38, 10));
    }
}

//! Tight lower-bound constructions for edge dominating sets in the
//! port-numbering model (Theorems 1 and 2 of Suomela, PODC 2010).
//!
//! * [`even`] — the Theorem 1 instance for even `d`: no deterministic
//!   algorithm beats `4 - 2/d` on `d`-regular graphs;
//! * [`odd`] — the Theorem 2 instance for odd `d`: no deterministic
//!   algorithm beats `4 - 6/(d+1)`;
//! * [`bound`] — exact rational ratios, the Corollary 1 bounds for
//!   bounded-degree families, and empirical-ratio helpers.
//!
//! Each instance bundles the port-numbered graph, its provably optimal
//! edge dominating set, the target multigraph, and the verified covering
//! map — so tests and benchmarks can *measure* the indistinguishability
//! argument rather than assume it.
//!
//! # Example
//!
//! ```
//! use eds_lower_bounds::{even, bound::Ratio};
//! # fn main() -> Result<(), pn_graph::GraphError> {
//! let inst = even::build(4)?;
//! // The paper's bound for d = 4 is 4 - 2/4 = 3.5.
//! assert!(Ratio::from(inst.ratio()).eq_exact(Ratio::new(7, 2)));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bound;
pub mod even;
pub mod odd;

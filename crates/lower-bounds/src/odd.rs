//! The Theorem 2 construction: for every odd `d` there is a `d`-regular
//! port-numbered graph on which **no** deterministic algorithm beats
//! `4 - 6/(d+1)`.
//!
//! With `k = (d-1)/2`, the graph (paper Section 4, Figures 5–6) consists
//! of `d` components `H(ℓ)` plus hub nodes `P ∪ Q`:
//!
//! * `H(ℓ)` has nodes `A(ℓ) = {a_{ℓ,1..2k}}`, `B(ℓ) = {b_{ℓ,1..2k}}`,
//!   `C(ℓ) = {c_ℓ}` and edges `R(ℓ)` (star at `c_ℓ`), `S(ℓ)` (matching on
//!   `A(ℓ)`), `T(ℓ)` (crown between `A(ℓ)` and `B(ℓ)`); it is
//!   `2k`-regular on `4k + 1 = 2d - 1` nodes and gets the 2-factorised
//!   port numbering on ports `1..2k`;
//! * `P = {p_1..p_d}`, `Q = {q_1..q_{2k}}`; every edge between `P ∪ Q` and
//!   `H(ℓ)` joins port `ℓ` of the hub node to port `d` of the component
//!   node.
//!
//! **Erratum.** The paper states the rule `(p_d, ℓ) ↔ (b_{ℓ,ℓ}, d)` for
//! `ℓ = 1..d`, but `b_{d,d}` does not exist (`B(ℓ)` has only `2k = d-1`
//! members); the degree count forces `ℓ = 1..d-1`, which is what we build.
//!
//! The optimal solution is `D* = Y ∪ ⋃_ℓ S(ℓ)` with
//! `Y = {{p_ℓ, c_ℓ}}`, `|D*| = (k+1) d`. The covering map onto the
//! `(d+1)`-node multigraph `M` makes all of `H(ℓ)` answer identically, so
//! any algorithm pays `2d - 1` edges per component: `(2d-1) d` in total.

use pn_graph::factorization::two_factorize_simple;
use pn_graph::{
    CoveringMap, EdgeId, Endpoint, GraphError, NodeId, PnGraphBuilder, Port, PortNumberedGraph,
    SimpleGraph,
};

/// The complete Theorem 2 instance for one odd degree `d`.
#[derive(Clone, Debug)]
pub struct OddLowerBound {
    /// The `d`-regular port-numbered graph `G`.
    pub graph: PortNumberedGraph,
    /// The optimal edge dominating set `D* = Y ∪ ⋃ S(ℓ)`.
    pub optimal: Vec<EdgeId>,
    /// The `(d+1)`-node target multigraph `M`.
    pub target: PortNumberedGraph,
    /// The covering map `G → M` (component `H(ℓ)` to `x_ℓ`, hubs to `y`).
    pub covering: CoveringMap,
    /// The degree parameter.
    pub d: usize,
}

impl OddLowerBound {
    /// The lower-bound ratio `4 - 6/(d+1)` as an exact fraction.
    pub fn ratio(&self) -> (u64, u64) {
        ratio(self.d)
    }

    /// `|D*| = (k+1) d`.
    pub fn optimal_size(&self) -> usize {
        self.optimal.len()
    }
}

/// The Theorem 2 lower-bound ratio `4 - 6/(d+1) = (4d-2)/(d+1)` for odd
/// `d`.
///
/// # Panics
///
/// Panics if `d` is even or zero.
pub fn ratio(d: usize) -> (u64, u64) {
    assert!(d % 2 == 1, "Theorem 2 needs odd d");
    (4 * d as u64 - 2, d as u64 + 1)
}

/// Node-id layout of the construction.
#[derive(Clone, Copy, Debug)]
pub struct Layout {
    /// `k = (d - 1) / 2`.
    pub k: usize,
    /// The degree `d = 2k + 1`.
    pub d: usize,
}

impl Layout {
    /// Creates the layout for odd `d`.
    pub fn new(d: usize) -> Self {
        Layout { k: (d - 1) / 2, d }
    }

    /// Size of one component `H(ℓ)`: `4k + 1`.
    pub fn component_size(&self) -> usize {
        4 * self.k + 1
    }

    /// Node `a_{ℓ,i}` (`ℓ`, `i` both 1-based).
    pub fn a(&self, l: usize, i: usize) -> NodeId {
        NodeId::new((l - 1) * self.component_size() + (i - 1))
    }

    /// Node `b_{ℓ,i}` (`ℓ`, `i` both 1-based).
    pub fn b(&self, l: usize, i: usize) -> NodeId {
        NodeId::new((l - 1) * self.component_size() + 2 * self.k + (i - 1))
    }

    /// Node `c_ℓ`.
    pub fn c(&self, l: usize) -> NodeId {
        NodeId::new((l - 1) * self.component_size() + 4 * self.k)
    }

    /// Node `p_ℓ` (1-based).
    pub fn p(&self, l: usize) -> NodeId {
        NodeId::new(self.d * self.component_size() + (l - 1))
    }

    /// Node `q_i` (1-based).
    pub fn q(&self, i: usize) -> NodeId {
        NodeId::new(self.d * self.component_size() + self.d + (i - 1))
    }

    /// Total number of nodes: `(d+1)(2d-1)`.
    pub fn node_count(&self) -> usize {
        self.d * self.component_size() + self.d + 2 * self.k
    }

    /// Which component (1-based) a node belongs to, or `None` for hubs.
    pub fn component_of(&self, v: NodeId) -> Option<usize> {
        let idx = v.index();
        if idx < self.d * self.component_size() {
            Some(idx / self.component_size() + 1)
        } else {
            None
        }
    }
}

/// Builds the Theorem 2 instance for odd `d ≥ 1`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for even or zero `d`.
///
/// # Examples
///
/// ```
/// use eds_lower_bounds::odd::build;
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// let instance = build(5)?;
/// assert_eq!(instance.graph.node_count(), 54); // (d+1)(2d-1)
/// assert_eq!(instance.optimal_size(), 15);     // (k+1) d
/// instance.covering.verify(&instance.graph, &instance.target)?;
/// # Ok(())
/// # }
/// ```
pub fn build(d: usize) -> Result<OddLowerBound, GraphError> {
    if d == 0 || d.is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            detail: format!("Theorem 2 construction needs odd d >= 1, got {d}"),
        });
    }
    let layout = Layout::new(d);
    let k = layout.k;

    let mut builder = PnGraphBuilder::new();
    for _ in 0..layout.node_count() {
        builder.add_node(d);
    }

    // Internal wiring of each component H(ℓ): 2-factorise and thread
    // ports 2f+1 -> 2f+2 along the oriented factors.
    for l in 1..=d {
        if k == 0 {
            break; // d = 1: components are single nodes without edges.
        }
        // Local simple graph of H(ℓ): a_1..a_2k = 0..2k-1,
        // b_1..b_2k = 2k..4k-1, c = 4k.
        let mut h = SimpleGraph::new(layout.component_size());
        // R(ℓ): star c - b_i.
        for i in 0..2 * k {
            h.add_edge_ids(4 * k, 2 * k + i)?;
        }
        // S(ℓ): matching a_{2t-1} a_{2t}.
        for t in 0..k {
            h.add_edge_ids(2 * t, 2 * t + 1)?;
        }
        // T(ℓ): crown a_i - b_j for i != j.
        for i in 0..2 * k {
            for j in 0..2 * k {
                if i != j {
                    h.add_edge_ids(i, 2 * k + j)?;
                }
            }
        }
        debug_assert_eq!(h.regular_degree(), Some(2 * k));
        let factors = two_factorize_simple(&h)?;
        let base = (l - 1) * layout.component_size();
        for (f, factor) in factors.iter().enumerate() {
            let out_port = Port::new(2 * f as u32 + 1);
            let in_port = Port::new(2 * f as u32 + 2);
            for (u, v, _) in factor.arcs() {
                builder.connect(
                    Endpoint::new(NodeId::new(base + u.index()), out_port),
                    Endpoint::new(NodeId::new(base + v.index()), in_port),
                )?;
            }
        }
    }

    // Hub wiring; every hub-to-component edge joins hub port ℓ to
    // component port d.
    let pd = Port::new(d as u32);
    for l in 1..=d {
        let pl = Port::new(l as u32);
        // (p_ℓ, ℓ) <-> (c_ℓ, d).
        builder.connect(
            Endpoint::new(layout.p(l), pl),
            Endpoint::new(layout.c(l), pd),
        )?;
        for i in 1..=2 * k {
            // (q_i, ℓ) <-> (a_{ℓ,i}, d).
            builder.connect(
                Endpoint::new(layout.q(i), pl),
                Endpoint::new(layout.a(l, i), pd),
            )?;
            // (p_i, ℓ) <-> (b_{ℓ,i}, d) for i != ℓ.
            if i != l {
                builder.connect(
                    Endpoint::new(layout.p(i), pl),
                    Endpoint::new(layout.b(l, i), pd),
                )?;
            }
        }
        // (p_d, ℓ) <-> (b_{ℓ,ℓ}, d) — erratum: only for ℓ <= 2k = d-1.
        if l <= 2 * k {
            builder.connect(
                Endpoint::new(layout.p(d), pl),
                Endpoint::new(layout.b(l, l), pd),
            )?;
        }
    }
    let graph = builder.finish()?;
    debug_assert_eq!(graph.regular_degree(), Some(d));

    // Optimal solution D* = Y ∪ ⋃ S(ℓ).
    let view = graph.to_simple()?;
    let mut optimal = Vec::with_capacity((k + 1) * d);
    for l in 1..=d {
        optimal.push(
            view.find_edge(layout.p(l), layout.c(l))
                .expect("Y edges exist"),
        );
        for t in 1..=k {
            optimal.push(
                view.find_edge(layout.a(l, 2 * t - 1), layout.a(l, 2 * t))
                    .expect("S(ℓ) edges exist"),
            );
        }
    }

    // Target multigraph M: nodes x_1..x_d (ids 0..d-1) and y (id d).
    let mut tb = PnGraphBuilder::new();
    for _ in 0..=d {
        tb.add_node(d);
    }
    let y = NodeId::new(d);
    for l in 1..=d {
        let xl = NodeId::new(l - 1);
        for i in 0..k {
            tb.connect(
                Endpoint::new(xl, Port::new(2 * i as u32 + 1)),
                Endpoint::new(xl, Port::new(2 * i as u32 + 2)),
            )?;
        }
        tb.connect(Endpoint::new(y, Port::new(l as u32)), Endpoint::new(xl, pd))?;
    }
    let target = tb.finish()?;

    // Covering map: component ℓ -> x_ℓ, hubs -> y.
    let map: Vec<NodeId> = (0..layout.node_count())
        .map(|idx| match layout.component_of(NodeId::new(idx)) {
            Some(l) => NodeId::new(l - 1),
            None => y,
        })
        .collect();
    let covering = CoveringMap::new(map);
    covering.verify(&graph, &target)?;

    Ok(OddLowerBound {
        graph,
        optimal,
        target,
        covering,
        d,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_paper() {
        for d in [1usize, 3, 5, 7] {
            let k = (d - 1) / 2;
            let inst = build(d).unwrap();
            assert_eq!(inst.graph.node_count(), (d + 1) * (2 * d - 1));
            assert_eq!(inst.graph.regular_degree(), Some(d), "d = {d}");
            assert_eq!(inst.optimal_size(), (k + 1) * d);
            assert_eq!(inst.target.node_count(), d + 1);
        }
    }

    #[test]
    fn dstar_is_edge_dominating() {
        for d in [1usize, 3, 5] {
            let inst = build(d).unwrap();
            let view = inst.graph.to_simple().unwrap();
            let mut covered = vec![false; view.node_count()];
            for &e in &inst.optimal {
                let (u, v) = view.endpoints(e);
                covered[u.index()] = true;
                covered[v.index()] = true;
            }
            for (_, u, v) in view.edges() {
                assert!(
                    covered[u.index()] || covered[v.index()],
                    "edge {u}-{v} undominated for d = {d}"
                );
            }
        }
    }

    #[test]
    fn every_non_dstar_edge_dominated_exactly_once() {
        // Paper: "each edge e ∉ D* is adjacent to exactly one edge in D*."
        let inst = build(5).unwrap();
        let view = inst.graph.to_simple().unwrap();
        let in_dstar: std::collections::HashSet<_> = inst.optimal.iter().copied().collect();
        for (e, u, v) in view.edges() {
            if in_dstar.contains(&e) {
                continue;
            }
            let mut adjacent = 0;
            for &f in &inst.optimal {
                let (x, y) = view.endpoints(f);
                if x == u || x == v || y == u || y == v {
                    adjacent += 1;
                }
            }
            assert_eq!(adjacent, 1, "edge {u}-{v}");
        }
    }

    #[test]
    fn dstar_is_a_matching() {
        let inst = build(7).unwrap();
        let view = inst.graph.to_simple().unwrap();
        assert!(pn_graph::matching::is_matching(&view, &inst.optimal));
    }

    #[test]
    fn covering_map_verified() {
        for d in [1usize, 3, 5, 7] {
            let inst = build(d).unwrap();
            inst.covering.verify(&inst.graph, &inst.target).unwrap();
            // Fibres have uniform size 2d - 1.
            for fiber in inst.covering.fibers(inst.target.node_count()) {
                assert_eq!(fiber.len(), 2 * d - 1);
            }
        }
    }

    #[test]
    fn hub_edges_use_port_d() {
        let d = 5;
        let inst = build(d).unwrap();
        let layout = Layout::new(d);
        // Every edge between a hub and a component joins hub port ℓ to
        // component port d.
        for (_, shape) in inst.graph.edges() {
            if let pn_graph::EdgeShape::Link { a, b } = shape {
                let ca = layout.component_of(a.node);
                let cb = layout.component_of(b.node);
                match (ca, cb) {
                    (Some(l), None) => {
                        assert_eq!(a.port.get() as usize, d);
                        assert_eq!(b.port.get() as usize, l);
                    }
                    (None, Some(l)) => {
                        assert_eq!(b.port.get() as usize, d);
                        assert_eq!(a.port.get() as usize, l);
                    }
                    (Some(la), Some(lb)) => assert_eq!(la, lb, "no cross-component edges"),
                    (None, None) => panic!("no hub-hub edges exist"),
                }
            }
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(build(0).is_err());
        assert!(build(2).is_err());
        assert!(build(6).is_err());
    }

    #[test]
    fn ratio_fraction() {
        assert_eq!(ratio(1), (2, 2)); // 1
        assert_eq!(ratio(3), (10, 4)); // 2.5
        assert_eq!(ratio(5), (18, 6)); // 3
    }
}

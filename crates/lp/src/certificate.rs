//! Dual certificates: self-contained, independently checkable proofs
//! that a lower bound is genuine.
//!
//! A [`DualCertificate`] carries one rational weight per edge. By weak
//! LP duality, any **feasible** dual solution's objective value is a
//! lower bound on the fractional primal optimum, hence on the integral
//! optimum — so trusting a bound only requires checking feasibility,
//! not re-running (or trusting) the solver. [`DualCertificate::verify`]
//! is that check, and it is deliberately *not* built on the solver's
//! constraint rows: it accumulates per-node incident weight sums and
//! derives each constraint from them, so a bug in the row construction
//! and a bug in the checker would have to conspire across two different
//! formulations to let a wrong bound through.
//!
//! The two objectives:
//!
//! * [`DualObjective::EdgeDomination`] — a fractional packing where
//!   every **closed edge neighbourhood** carries weight ≤ 1 (the dual
//!   of the EDS covering LP). In a simple graph the neighbourhood sum
//!   of `e = {u, v}` equals `load(u) + load(v) − y_e`, where `load(w)`
//!   is the incident weight sum at `w` — the identity the checker uses.
//! * [`DualObjective::VertexCover`] — a fractional matching: every
//!   node carries incident weight ≤ 1 (the dual of the VC covering
//!   LP).

use std::fmt;

use pn_graph::{EdgeId, SimpleGraph};

use crate::rational::{checked_sum, Rational};

/// Which primal optimum the certificate bounds from below.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DualObjective {
    /// Minimum edge dominating set: weights form a fractional packing of
    /// closed edge neighbourhoods.
    EdgeDomination,
    /// Minimum vertex cover: weights form a fractional matching.
    VertexCover,
}

impl DualObjective {
    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DualObjective::EdgeDomination => "eds",
            DualObjective::VertexCover => "vc",
        }
    }
}

/// How the certificate was produced (diagnostics only — verification
/// never consults this).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertificateSource {
    /// The exact simplex solve ran to optimality.
    Simplex,
    /// The maximal-matching seed (the solve was skipped or abandoned:
    /// over budget, or exact arithmetic overflowed).
    MatchingSeed,
}

/// A feasible dual solution packaged as a checkable lower-bound proof.
#[derive(Clone, Debug)]
pub struct DualCertificate {
    /// The objective this bounds.
    pub objective: DualObjective,
    /// How it was produced.
    pub source: CertificateSource,
    /// One weight per edge, indexed by [`EdgeId`].
    pub weights: Vec<Rational>,
    /// The dual objective `Σ_e weights[e]`.
    pub value: Rational,
    /// `⌈value⌉`: the certified integral lower bound.
    pub bound: usize,
}

/// Why a certificate failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertificateError {
    /// The weight vector does not match the graph's edge count.
    WrongLength {
        /// Weights supplied.
        weights: usize,
        /// Edges in the graph.
        edges: usize,
    },
    /// A weight is negative.
    NegativeWeight {
        /// The offending edge.
        edge: EdgeId,
    },
    /// A dual constraint is violated.
    ConstraintViolated {
        /// Human-readable witness.
        detail: String,
    },
    /// The claimed objective value is not the sum of the weights.
    ValueMismatch,
    /// The claimed integral bound is not `⌈value⌉`.
    BoundMismatch,
    /// Exact arithmetic overflowed while checking (the certificate is
    /// not trustworthy in that case either).
    Overflow,
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::WrongLength { weights, edges } => {
                write!(f, "{weights} weights for {edges} edges")
            }
            CertificateError::NegativeWeight { edge } => {
                write!(f, "negative weight on edge {edge}")
            }
            CertificateError::ConstraintViolated { detail } => {
                write!(f, "dual constraint violated: {detail}")
            }
            CertificateError::ValueMismatch => {
                write!(f, "claimed value is not the weight sum")
            }
            CertificateError::BoundMismatch => {
                write!(f, "claimed bound is not the value's ceiling")
            }
            CertificateError::Overflow => write!(f, "exact arithmetic overflowed during checking"),
        }
    }
}

impl std::error::Error for CertificateError {}

impl DualCertificate {
    /// Verifies the certificate against `g` from scratch: weight shape
    /// and sign, every dual constraint, the claimed objective value,
    /// and the claimed integral bound. A certificate that passes proves
    /// `bound ≤ OPT` for its objective on `g` by weak duality —
    /// independently of how it was produced.
    ///
    /// # Errors
    ///
    /// The first [`CertificateError`] encountered.
    pub fn verify(&self, g: &SimpleGraph) -> Result<(), CertificateError> {
        if self.weights.len() != g.edge_count() {
            return Err(CertificateError::WrongLength {
                weights: self.weights.len(),
                edges: g.edge_count(),
            });
        }
        for (i, w) in self.weights.iter().enumerate() {
            if w.is_negative() {
                return Err(CertificateError::NegativeWeight {
                    edge: EdgeId::new(i),
                });
            }
        }

        // Per-node incident weight sums — the common substrate of both
        // constraint families.
        let mut load = vec![Rational::ZERO; g.node_count()];
        for (e, u, v) in g.edges() {
            let w = self.weights[e.index()];
            for node in [u, v] {
                load[node.index()] = load[node.index()]
                    .checked_add(w)
                    .ok_or(CertificateError::Overflow)?;
            }
        }

        match self.objective {
            DualObjective::EdgeDomination => {
                // Σ_{f ∈ N[e]} y_f = load(u) + load(v) − y_e for a
                // simple graph (e is the only edge on both endpoints).
                for (e, u, v) in g.edges() {
                    let total = load[u.index()]
                        .checked_add(load[v.index()])
                        .and_then(|s| s.checked_sub(self.weights[e.index()]))
                        .ok_or(CertificateError::Overflow)?;
                    if total > Rational::ONE {
                        return Err(CertificateError::ConstraintViolated {
                            detail: format!(
                                "closed neighbourhood of edge {e} = {{{u}, {v}}} carries {total}"
                            ),
                        });
                    }
                }
            }
            DualObjective::VertexCover => {
                for v in g.nodes() {
                    if load[v.index()] > Rational::ONE {
                        return Err(CertificateError::ConstraintViolated {
                            detail: format!("node {v} carries {}", load[v.index()]),
                        });
                    }
                }
            }
        }

        let total = checked_sum(&self.weights).ok_or(CertificateError::Overflow)?;
        if total != self.value {
            return Err(CertificateError::ValueMismatch);
        }
        if self.value.ceil_to_usize() != Some(self.bound) {
            return Err(CertificateError::BoundMismatch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pn_graph::generators;

    fn uniform_certificate(
        g: &SimpleGraph,
        objective: DualObjective,
        weight: Rational,
    ) -> DualCertificate {
        let weights = vec![weight; g.edge_count()];
        let value = checked_sum(&weights).unwrap();
        DualCertificate {
            objective,
            source: CertificateSource::MatchingSeed,
            weights,
            value,
            bound: value.ceil_to_usize().unwrap(),
        }
    }

    #[test]
    fn uniform_packing_on_a_cycle_verifies() {
        // C6: every closed edge neighbourhood has 3 edges; y = 1/3 is
        // tight-feasible with value 2.
        let g = generators::cycle(6).unwrap();
        let c = uniform_certificate(&g, DualObjective::EdgeDomination, Rational::new(1, 3));
        assert_eq!(c.bound, 2);
        c.verify(&g).unwrap();
        // y = 1/2 oversubscribes each neighbourhood (3/2 > 1).
        let bad = uniform_certificate(&g, DualObjective::EdgeDomination, Rational::new(1, 2));
        assert!(matches!(
            bad.verify(&g),
            Err(CertificateError::ConstraintViolated { .. })
        ));
    }

    #[test]
    fn fractional_matching_constraints_are_per_node() {
        let g = generators::cycle(5).unwrap();
        let c = uniform_certificate(&g, DualObjective::VertexCover, Rational::new(1, 2));
        assert_eq!(c.value, Rational::new(5, 2));
        assert_eq!(c.bound, 3);
        c.verify(&g).unwrap();
        // A star cannot carry 1/2 on every edge: the hub overflows.
        let star = generators::star(3).unwrap();
        let bad = uniform_certificate(&star, DualObjective::VertexCover, Rational::new(1, 2));
        assert!(matches!(
            bad.verify(&star),
            Err(CertificateError::ConstraintViolated { .. })
        ));
    }

    #[test]
    fn shape_value_and_bound_mismatches_are_caught() {
        let g = generators::cycle(6).unwrap();
        let good = uniform_certificate(&g, DualObjective::EdgeDomination, Rational::new(1, 3));

        let mut short = good.clone();
        short.weights.pop();
        assert!(matches!(
            short.verify(&g),
            Err(CertificateError::WrongLength { .. })
        ));

        let mut negative = good.clone();
        negative.weights[0] = Rational::new(-1, 3);
        assert!(matches!(
            negative.verify(&g),
            Err(CertificateError::NegativeWeight { .. })
        ));

        let mut inflated = good.clone();
        inflated.value = Rational::integer(3);
        inflated.bound = 3;
        assert_eq!(inflated.verify(&g), Err(CertificateError::ValueMismatch));

        let mut rounded_up = good.clone();
        rounded_up.bound = 3;
        assert_eq!(rounded_up.verify(&g), Err(CertificateError::BoundMismatch));
    }

    #[test]
    fn edgeless_graph_certifies_zero() {
        let g = SimpleGraph::new(4);
        let c = uniform_certificate(&g, DualObjective::EdgeDomination, Rational::ONE);
        assert_eq!(c.bound, 0);
        c.verify(&g).unwrap();
    }
}

//! Certified LP lower bounds for edge dominating sets and vertex
//! covers.
//!
//! The folklore certified lower bounds — `⌈|MM|/2⌉` for EDS, `|MM|` for
//! VC, from any maximal matching `MM` — can be off by a factor of two.
//! This crate replaces them with the exact optima of the corresponding
//! LP relaxation duals, computed in exact rational arithmetic and
//! packaged as independently checkable [`DualCertificate`]s:
//!
//! * **EDS**: the covering LP `min Σ x_e : Σ_{f ∈ N[e]} x_f ≥ 1` has as
//!   dual a fractional packing where every *closed edge neighbourhood*
//!   carries total weight ≤ 1. Any feasible packing's value lower-bounds
//!   the EDS optimum (weak duality), and the matching seed
//!   `y_e = 1/2 · [e ∈ MM]` is always feasible — so the LP bound never
//!   loses to the folklore bound.
//! * **VC**: the covering LP's dual is the *fractional matching*
//!   polytope (every node carries incident weight ≤ 1); the seed
//!   `y_e = [e ∈ MM]` is feasible with value `|MM|`.
//!
//! The pipeline ([`eds_dual_certificate`] / [`vc_dual_certificate`]):
//! seed from [`pn_graph::matching::greedy_maximal_matching`], improve
//! to the LP optimum with the exact-rational seeded simplex of
//! [`simplex`], and emit a [`DualCertificate`] whose integral `bound`
//! is `⌈value⌉`. Instances beyond the [`LpBudget`] (or the rare solve
//! abort) fall back to the seed certificate — the bound degrades
//! gracefully to exactly the folklore bound, never below it, and
//! **every** bound still carries a certificate.
//!
//! Certificates are verified by [`DualCertificate::verify`], a checker
//! that shares no constraint-construction code with the solver; a
//! consumer that re-checks each certificate needs to trust only the
//! checker (≈ 40 lines of rational comparisons), not the simplex.
//!
//! ```
//! use eds_lp::{eds_dual_certificate, LpBudget};
//! use pn_graph::generators;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::cycle(9)?;
//! let cert = eds_dual_certificate(&g, &LpBudget::default());
//! cert.verify(&g)?;              // independent feasibility check
//! assert_eq!(cert.bound, 3);     // = OPT; the folklore bound is 2
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod certificate;
pub mod rational;
pub mod simplex;

pub use certificate::{CertificateError, CertificateSource, DualCertificate, DualObjective};
pub use rational::Rational;
pub use simplex::{maximise, PackingLp, PackingOptimum, SolveAbort};

use pn_graph::matching::greedy_maximal_matching;
use pn_graph::{EdgeId, SimpleGraph};

/// Size budget for the exact simplex solve. The tableau is dense
/// (`m × 2m` rationals for `m` edges), so the solve is gated on the
/// edge count; instances beyond it get the matching-seed certificate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LpBudget {
    /// Run the simplex only on graphs with at most this many edges.
    pub max_edges: usize,
}

impl Default for LpBudget {
    fn default() -> Self {
        // Covers every non-streamed registry instance (≤ ~120 edges)
        // with two orders of magnitude of headroom below a noticeable
        // solve time; million-edge instances fall back to the seed.
        LpBudget { max_edges: 200 }
    }
}

impl LpBudget {
    /// A budget admitting graphs with at most `max_edges` edges.
    pub fn new(max_edges: usize) -> Self {
        LpBudget { max_edges }
    }

    /// A zero budget: every instance falls back to the matching seed.
    pub fn disabled() -> Self {
        LpBudget { max_edges: 0 }
    }
}

/// The matching-seed dual certificate for `objective` on `g`, built
/// from an explicit matching (weights `1/2` per matched edge for EDS,
/// `1` for VC). Feasible for **any** matching; its value equals the
/// folklore bound when `matching` is maximal. Exposed so callers can
/// reuse an already-computed matching.
pub fn matching_certificate(
    g: &SimpleGraph,
    objective: DualObjective,
    matching: &[EdgeId],
) -> DualCertificate {
    let per_edge = match objective {
        DualObjective::EdgeDomination => Rational::new(1, 2),
        DualObjective::VertexCover => Rational::ONE,
    };
    let mut weights = vec![Rational::ZERO; g.edge_count()];
    for &e in matching {
        weights[e.index()] = per_edge;
    }
    let value = rational::checked_sum(&weights).expect("matching weights cannot overflow");
    let bound = value.ceil_to_usize().expect("non-negative value");
    DualCertificate {
        objective,
        source: CertificateSource::MatchingSeed,
        weights,
        value,
        bound,
    }
}

/// The constraint rows of the dual LP for `objective` on `g`.
fn dual_rows(g: &SimpleGraph, objective: DualObjective) -> Vec<Vec<usize>> {
    match objective {
        // One row per edge: its closed neighbourhood.
        DualObjective::EdgeDomination => g
            .edges()
            .map(|(e, _, _)| {
                g.closed_edge_neighborhood(e)
                    .into_iter()
                    .map(|f| f.index())
                    .collect()
            })
            .collect(),
        // One row per non-isolated node: its incident edges.
        DualObjective::VertexCover => g
            .nodes()
            .filter(|&v| g.degree(v) > 0)
            .map(|v| g.incident_edges(v).map(|e| e.index()).collect())
            .collect(),
    }
}

/// The best dual certificate for `objective` on `g` within `budget`:
/// the exact LP optimum when the solve fits, the matching seed
/// otherwise. The result's `bound` is always ≥ the folklore
/// matching bound, and the certificate is feasible by construction —
/// but callers that must not trust this crate should still run
/// [`DualCertificate::verify`].
pub fn dual_certificate(
    g: &SimpleGraph,
    objective: DualObjective,
    budget: &LpBudget,
) -> DualCertificate {
    let matching = greedy_maximal_matching(g);
    let seed = matching_certificate(g, objective, &matching);
    if g.edge_count() == 0 || g.edge_count() > budget.max_edges {
        return seed;
    }
    let lp = PackingLp {
        variables: g.edge_count(),
        rows: dual_rows(g, objective),
    };
    let seed_vars: Vec<usize> = matching.iter().map(|e| e.index()).collect();
    match maximise(&lp, &seed_vars) {
        Ok(opt) if opt.value >= seed.value => {
            let bound = opt
                .value
                .ceil_to_usize()
                .expect("packing optimum is non-negative");
            DualCertificate {
                objective,
                source: CertificateSource::Simplex,
                weights: opt.values,
                value: opt.value,
                bound,
            }
        }
        // An aborted solve (overflow, budget) — or, impossibly, one
        // below the seed — degrades to the seed certificate.
        _ => seed,
    }
}

/// [`dual_certificate`] for the edge-domination objective: the bound is
/// a certified lower bound on the minimum EDS size.
pub fn eds_dual_certificate(g: &SimpleGraph, budget: &LpBudget) -> DualCertificate {
    dual_certificate(g, DualObjective::EdgeDomination, budget)
}

/// [`dual_certificate`] for the vertex-cover objective: the bound is a
/// certified lower bound on the minimum VC size.
pub fn vc_dual_certificate(g: &SimpleGraph, budget: &LpBudget) -> DualCertificate {
    dual_certificate(g, DualObjective::VertexCover, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pn_graph::generators;

    fn folklore(g: &SimpleGraph, objective: DualObjective) -> usize {
        let mm = greedy_maximal_matching(g).len();
        match objective {
            DualObjective::EdgeDomination => mm.div_ceil(2),
            DualObjective::VertexCover => mm,
        }
    }

    #[test]
    fn cycle_nine_beats_the_folklore_bound() {
        let g = generators::cycle(9).unwrap();
        let eds = eds_dual_certificate(&g, &LpBudget::default());
        eds.verify(&g).unwrap();
        assert_eq!(eds.source, CertificateSource::Simplex);
        assert_eq!(eds.value, Rational::integer(3)); // y ≡ 1/3
        assert_eq!(eds.bound, 3);
        assert!(eds.bound > folklore(&g, DualObjective::EdgeDomination));

        let vc = vc_dual_certificate(&g, &LpBudget::default());
        vc.verify(&g).unwrap();
        assert_eq!(vc.value, Rational::new(9, 2)); // odd cycle: n/2
        assert_eq!(vc.bound, 5); // = VC optimum of C9
    }

    #[test]
    fn star_matches_the_folklore_bound() {
        // All edges share the hub: both LPs cap at 1, exactly the seed.
        let g = generators::star(6).unwrap();
        for objective in [DualObjective::EdgeDomination, DualObjective::VertexCover] {
            let c = dual_certificate(&g, objective, &LpBudget::default());
            c.verify(&g).unwrap();
            assert_eq!(c.value, Rational::ONE);
            assert_eq!(c.bound, 1);
            assert_eq!(c.bound, folklore(&g, objective));
        }
    }

    #[test]
    fn budget_falls_back_to_the_seed_certificate() {
        let g = generators::petersen();
        let c = eds_dual_certificate(&g, &LpBudget::disabled());
        assert_eq!(c.source, CertificateSource::MatchingSeed);
        c.verify(&g).unwrap();
        assert_eq!(c.bound, folklore(&g, DualObjective::EdgeDomination));
        // The unbudgeted solve is at least as tight.
        let full = eds_dual_certificate(&g, &LpBudget::default());
        full.verify(&g).unwrap();
        assert!(full.bound >= c.bound);
    }

    #[test]
    fn seed_certificate_reuses_an_explicit_matching() {
        let g = generators::cycle(8).unwrap();
        let matching = greedy_maximal_matching(&g);
        let c = matching_certificate(&g, DualObjective::VertexCover, &matching);
        c.verify(&g).unwrap();
        assert_eq!(c.value, Rational::integer(matching.len() as i64));
    }

    #[test]
    fn edgeless_graphs_certify_zero() {
        let g = SimpleGraph::new(5);
        for objective in [DualObjective::EdgeDomination, DualObjective::VertexCover] {
            let c = dual_certificate(&g, objective, &LpBudget::default());
            c.verify(&g).unwrap();
            assert_eq!(c.bound, 0);
        }
    }

    #[test]
    fn lp_bound_never_exceeds_the_optimum_on_classics() {
        // Spot-check the sandwich on a few families with known optima.
        for (g, opt) in [
            (generators::petersen(), 3usize),
            (generators::cycle(9).unwrap(), 3),
            (generators::complete(5).unwrap(), 2),
            (generators::star(6).unwrap(), 1),
        ] {
            let c = eds_dual_certificate(&g, &LpBudget::default());
            c.verify(&g).unwrap();
            assert!(
                c.bound >= folklore(&g, DualObjective::EdgeDomination) && c.bound <= opt,
                "bound {} vs folklore {} and opt {opt}",
                c.bound,
                folklore(&g, DualObjective::EdgeDomination)
            );
        }
    }
}

//! Exact rational arithmetic on `i128` numerators and denominators.
//!
//! The LP machinery must never round: a dual bound certified by a
//! floating-point solve is no certificate at all. [`Rational`] keeps
//! every value as a normalised fraction (gcd-reduced, denominator
//! positive) and every operation is **checked** — on `i128` overflow the
//! operation returns `None` and the caller abandons the solve instead of
//! emitting a wrong bound. The container is offline, so this is a
//! self-contained implementation rather than a `num-rational`
//! dependency; the coefficient universe of the covering LPs (0/1
//! constraint matrices, unit right-hand sides) keeps the fractions far
//! from the `i128` range in practice.

use std::cmp::Ordering;
use std::fmt;

/// A normalised exact fraction: `num / den` with `den > 0` and
/// `gcd(|num|, den) = 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Greatest common divisor of two non-negative numbers.
fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// The fraction `num / den`, normalised.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Rational {
        assert!(den != 0, "zero denominator");
        Rational::normalised(num as i128, den as i128).expect("i64 inputs cannot overflow i128")
    }

    /// An integer as a rational.
    pub fn integer(n: i64) -> Rational {
        Rational {
            num: n as i128,
            den: 1,
        }
    }

    /// Normalises `num / den` (reduce by the gcd, make `den` positive).
    /// `None` when `den == 0` or negation overflows.
    fn normalised(num: i128, den: i128) -> Option<Rational> {
        if den == 0 {
            return None;
        }
        if num == 0 {
            return Some(Rational::ZERO);
        }
        if num == i128::MIN || den == i128::MIN {
            // |i128::MIN| is not representable; treat as overflow.
            return None;
        }
        let g = gcd(num.unsigned_abs() as i128, den.unsigned_abs() as i128);
        let (mut num, mut den) = (num / g, den / g);
        if den < 0 {
            num = num.checked_neg()?;
            den = den.checked_neg()?;
        }
        Some(Rational { num, den })
    }

    /// The numerator (sign carrier).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Checked addition.
    #[must_use]
    pub fn checked_add(self, rhs: Rational) -> Option<Rational> {
        // a/b + c/d = (a·(l/b) + c·(l/d)) / l with l = lcm(b, d): keeps
        // intermediates as small as the result allows.
        let g = gcd(self.den, rhs.den);
        let l = self.den.checked_mul(rhs.den / g)?;
        let left = self.num.checked_mul(l / self.den)?;
        let right = rhs.num.checked_mul(l / rhs.den)?;
        Rational::normalised(left.checked_add(right)?, l)
    }

    /// Checked subtraction.
    #[must_use]
    pub fn checked_sub(self, rhs: Rational) -> Option<Rational> {
        self.checked_add(rhs.checked_neg()?)
    }

    /// Checked multiplication.
    #[must_use]
    pub fn checked_mul(self, rhs: Rational) -> Option<Rational> {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd(self.num.unsigned_abs() as i128, rhs.den);
        let g2 = gcd(rhs.num.unsigned_abs() as i128, self.den);
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Rational::normalised(num, den)
    }

    /// Checked division. `None` when `rhs` is zero or on overflow.
    #[must_use]
    pub fn checked_div(self, rhs: Rational) -> Option<Rational> {
        if rhs.num == 0 {
            return None;
        }
        self.checked_mul(Rational {
            num: rhs.den,
            den: rhs.num,
        })
    }

    /// Checked negation.
    #[must_use]
    pub fn checked_neg(self) -> Option<Rational> {
        Some(Rational {
            num: self.num.checked_neg()?,
            den: self.den,
        })
    }

    /// `true` when the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// `true` when the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// `true` when the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// The ceiling as a non-negative integer, for turning a dual
    /// objective value into an integral lower bound. `None` when the
    /// value is negative or the ceiling exceeds `usize`.
    pub fn ceil_to_usize(&self) -> Option<usize> {
        if self.num < 0 {
            return None;
        }
        let q = self.num / self.den;
        let ceil = if self.num % self.den == 0 { q } else { q + 1 };
        usize::try_from(ceil).ok()
    }

    /// The value as an `f64`, for display only — never for decisions.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // Sign classes first: they decide most comparisons without any
        // multiplication.
        match (self.num.signum(), other.num.signum()) {
            (a, b) if a != b => return a.cmp(&b),
            (0, 0) => return Ordering::Equal,
            _ => {}
        }
        // Compare a/b vs c/d via a·(d/g) vs c·(b/g), exactly: the fast
        // path uses checked products; if either overflows i128, fall
        // back to the continued-fraction comparison, which is exact for
        // arbitrary components. `cmp` is total and never lies — the
        // simplex ratio test rides on it.
        let g = gcd(self.den, other.den);
        match (
            self.num.checked_mul(other.den / g),
            other.num.checked_mul(self.den / g),
        ) {
            (Some(left), Some(right)) => left.cmp(&right),
            _ if self.num > 0 => cmp_positive(self.num, self.den, other.num, other.den),
            // Both negative: |a| vs |c| reversed. Components exclude
            // i128::MIN (normalisation rejects it), so negation is safe.
            _ => cmp_positive(-other.num, other.den, -self.num, self.den),
        }
    }
}

/// Exact comparison of two positive fractions by continued-fraction
/// descent (Stein/Euclid style): compare integer parts; on a tie,
/// compare the fractional parts by comparing their reciprocals with the
/// order flipped. Terminates like the Euclidean algorithm and performs
/// no multiplications, so it cannot overflow.
fn cmp_positive(mut an: i128, mut ad: i128, mut bn: i128, mut bd: i128) -> Ordering {
    debug_assert!(an > 0 && ad > 0 && bn > 0 && bd > 0);
    let mut flipped = false;
    loop {
        let (qa, ra) = (an / ad, an % ad);
        let (qb, rb) = (bn / bd, bn % bd);
        if qa != qb {
            let ord = qa.cmp(&qb);
            return if flipped { ord.reverse() } else { ord };
        }
        match (ra == 0, rb == 0) {
            (true, true) => return Ordering::Equal,
            // a has no fractional part left: a < b (before flipping).
            (true, false) => {
                return if flipped {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, true) => {
                return if flipped {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, false) => {}
        }
        // a = q + ra/ad, b = q + rb/bd: compare ra/ad vs rb/bd, i.e.
        // ad/ra vs bd/rb with the order reversed.
        (an, ad, bn, bd) = (ad, ra, bd, rb);
        flipped = !flipped;
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Sums a slice of rationals with checked arithmetic.
pub fn checked_sum<'a, I: IntoIterator<Item = &'a Rational>>(values: I) -> Option<Rational> {
    values
        .into_iter()
        .try_fold(Rational::ZERO, |acc, &v| acc.checked_add(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_and_display() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, -7), Rational::ZERO);
        assert_eq!(Rational::new(1, 2).to_string(), "1/2");
        assert_eq!(Rational::integer(-3).to_string(), "-3");
    }

    #[test]
    fn arithmetic() {
        let half = Rational::new(1, 2);
        let third = Rational::new(1, 3);
        assert_eq!(half.checked_add(third), Some(Rational::new(5, 6)));
        assert_eq!(half.checked_sub(third), Some(Rational::new(1, 6)));
        assert_eq!(half.checked_mul(third), Some(Rational::new(1, 6)));
        assert_eq!(half.checked_div(third), Some(Rational::new(3, 2)));
        assert_eq!(half.checked_div(Rational::ZERO), None);
        assert_eq!(half.checked_neg(), Some(Rational::new(-1, 2)));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert_eq!(
            Rational::new(2, 6).cmp(&Rational::new(1, 3)),
            Ordering::Equal
        );
    }

    #[test]
    fn ordering_survives_cross_product_overflow() {
        // Components near 2^100: the cross products exceed i128, so cmp
        // must take the continued-fraction path — and still be exact.
        let p = 1i128 << 100;
        let r = |n, d| Rational::normalised(n, d).unwrap();
        // 1 + 2^-100  >  1 + 1/(2^100 + 2)
        assert_eq!(r(p + 1, p).cmp(&r(p + 3, p + 2)), Ordering::Greater);
        assert_eq!(r(p + 3, p + 2).cmp(&r(p + 1, p)), Ordering::Less);
        // Negative mirror: ordering reverses.
        assert_eq!(r(-(p + 1), p).cmp(&r(-(p + 3), p + 2)), Ordering::Less);
        // Equal values with huge coprime-free components normalise, so
        // build an equality through distinct representations instead:
        // (2p)/(2p+2) == p/(p+1).
        assert_eq!(r(2 * p, 2 * p + 2).cmp(&r(p, p + 1)), Ordering::Equal);
        // Deep continued-fraction descent (Fibonacci-adjacent ratios
        // are the worst case for Euclid) stays exact.
        assert!(r(p + 1, p) > r(p, p + 1));
        // Mixed signs decide without any multiplication.
        assert!(r(-(p + 1), p) < r(p + 1, p + 2));
    }

    #[test]
    fn ceiling() {
        assert_eq!(Rational::ZERO.ceil_to_usize(), Some(0));
        assert_eq!(Rational::new(5, 2).ceil_to_usize(), Some(3));
        assert_eq!(Rational::new(6, 2).ceil_to_usize(), Some(3));
        assert_eq!(Rational::new(-1, 2).ceil_to_usize(), None);
    }

    #[test]
    fn overflow_is_reported_not_wrapped() {
        let huge = Rational::normalised(i128::MAX, 1).unwrap();
        assert_eq!(huge.checked_add(Rational::ONE), None);
        assert_eq!(huge.checked_mul(Rational::integer(2)), None);
    }

    #[test]
    fn sum_helper() {
        let v = [
            Rational::new(1, 2),
            Rational::new(1, 3),
            Rational::new(1, 6),
        ];
        assert_eq!(checked_sum(&v), Some(Rational::ONE));
    }
}

//! An exact-rational primal simplex for **packing LPs**:
//!
//! ```text
//!     maximise   Σ_j y_j
//!     subject to Σ_{j ∈ row_i} y_j ≤ 1   for every constraint row i
//!                y ≥ 0
//! ```
//!
//! This is the shape of both duals this crate certifies: the EDS
//! covering LP's dual (one row per edge, listing its closed edge
//! neighbourhood) and the vertex cover LP's dual, the fractional
//! matching polytope (one row per node, listing its incident edges).
//! Constraint rows arrive **sparse** (column index lists); the solver
//! expands them into a dense tableau — at the budgeted sizes
//! (≲ 200 variables) the dense pivots are far below a millisecond.
//!
//! The slack basis (`y = 0`) is trivially feasible, so no phase-1 is
//! needed. Pivoting runs in two stages:
//!
//! 1. **Seed stage** — the caller may supply a preference list of
//!    variables (the edges of a maximal matching); these are pivoted
//!    into the basis first, reproducing the classical matching-based
//!    dual solution before any general pivoting happens.
//! 2. **Bland stage** — lowest-index entering/leaving rule, which
//!    terminates on every input (no cycling), run to optimality.
//!
//! All arithmetic is checked [`Rational`] work: an `i128` overflow or an
//! exhausted pivot budget abandons the solve (`None`) — the caller falls
//! back to the seed certificate rather than trusting a partial tableau.

use crate::rational::Rational;

/// A packing LP instance: `rows[i]` lists the variables of constraint
/// `i` (all coefficients are 1, every right-hand side is 1, the
/// objective is the all-ones vector).
#[derive(Clone, Debug)]
pub struct PackingLp {
    /// Number of variables.
    pub variables: usize,
    /// Sparse 0/1 constraint rows (variable index lists, each ≤ 1).
    pub rows: Vec<Vec<usize>>,
}

/// Why a solve was abandoned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveAbort {
    /// An intermediate value left the `i128` fraction range.
    Overflow,
    /// The pivot budget was exhausted.
    PivotBudget,
    /// An entering column had no bounding row (the LP is unbounded —
    /// impossible for the graph duals, where every variable appears in
    /// at least one constraint).
    Unbounded,
}

/// The optimum of a packing LP: the variable values and the objective.
#[derive(Clone, Debug)]
pub struct PackingOptimum {
    /// One value per variable, all in `[0, 1]`.
    pub values: Vec<Rational>,
    /// `Σ_j values[j]`.
    pub value: Rational,
}

/// Maximises the packing LP exactly.
///
/// `seed` is a list of variable indices to pivot into the basis first
/// (deduplicated, out-of-range entries ignored): seeding with the edges
/// of a maximal matching starts the solve at the classical
/// matching-based dual point, and the Bland stage can only improve on
/// it.
///
/// # Errors
///
/// [`SolveAbort::Overflow`] when exact arithmetic leaves the `i128`
/// range; [`SolveAbort::PivotBudget`] when the pivot cap (linear in the
/// tableau size) is exhausted; [`SolveAbort::Unbounded`] when a
/// variable appears in no constraint. None occur on the graph LPs this
/// crate builds at budgeted sizes.
pub fn maximise(lp: &PackingLp, seed: &[usize]) -> Result<PackingOptimum, SolveAbort> {
    let n = lp.variables;
    let m = lp.rows.len();
    if n == 0 {
        return Ok(PackingOptimum {
            values: Vec::new(),
            value: Rational::ZERO,
        });
    }
    // Dense tableau: m constraint rows × (n structural + m slack + rhs),
    // plus the objective row. Slack basis start.
    let cols = n + m + 1;
    let rhs = n + m;
    let mut t = vec![vec![Rational::ZERO; cols]; m + 1];
    for (i, row) in lp.rows.iter().enumerate() {
        for &j in row {
            if j < n {
                t[i][j] = Rational::ONE;
            }
        }
        t[i][n + i] = Rational::ONE;
        t[i][rhs] = Rational::ONE;
    }
    // Objective row: reduced costs, starting at -1 per structural
    // variable; t[m][rhs] accumulates the objective value.
    for cost in t[m].iter_mut().take(n) {
        *cost = Rational::integer(-1);
    }
    let mut basis: Vec<usize> = (n..n + m).collect();

    let budget = 64 * (m + n).max(16);
    let mut pivots = 0usize;

    // Seed stage: bring the preferred variables in, one pivot each.
    let mut seen = vec![false; n];
    for &j in seed {
        if j >= n || seen[j] {
            continue;
        }
        seen[j] = true;
        if !t[m][j].is_negative() {
            continue; // already at its reduced-cost optimum
        }
        pivot_column(&mut t, &mut basis, j, rhs, m)?;
        pivots += 1;
    }

    // Bland stage: lowest-index entering column with negative reduced
    // cost, lowest-basis-index leaving row — terminates without cycling.
    while let Some(enter) = (0..n + m).find(|&j| t[m][j].is_negative()) {
        if pivots >= budget {
            return Err(SolveAbort::PivotBudget);
        }
        pivot_column(&mut t, &mut basis, enter, rhs, m)?;
        pivots += 1;
    }

    // Read the structural values off the basis.
    let mut values = vec![Rational::ZERO; n];
    for (i, &b) in basis.iter().enumerate() {
        if b < n {
            values[b] = t[i][rhs];
        }
    }
    let value = crate::rational::checked_sum(&values).ok_or(SolveAbort::Overflow)?;
    Ok(PackingOptimum { values, value })
}

/// One pivot on column `enter`: Bland ratio test (lowest basis index on
/// ties), then row elimination. Errors on overflow or when no row bounds
/// the entering column (unbounded — impossible for the graph duals,
/// where every variable appears in some constraint).
fn pivot_column(
    t: &mut [Vec<Rational>],
    basis: &mut [usize],
    enter: usize,
    rhs: usize,
    m: usize,
) -> Result<(), SolveAbort> {
    let mut leave: Option<(usize, Rational)> = None;
    for i in 0..m {
        if !t[i][enter].is_positive() {
            continue;
        }
        let ratio = t[i][rhs]
            .checked_div(t[i][enter])
            .ok_or(SolveAbort::Overflow)?;
        let better = match &leave {
            None => true,
            Some((r, best)) => ratio < *best || (ratio == *best && basis[i] < basis[*r]),
        };
        if better {
            leave = Some((i, ratio));
        }
    }
    let Some((row, _)) = leave else {
        return Err(SolveAbort::Unbounded);
    };

    // Normalise the pivot row.
    let pivot = t[row][enter];
    for x in t[row].iter_mut() {
        *x = x.checked_div(pivot).ok_or(SolveAbort::Overflow)?;
    }
    // Eliminate the entering column from every other row.
    for i in 0..t.len() {
        if i == row || t[i][enter].is_zero() {
            continue;
        }
        let factor = t[i][enter];
        for j in 0..t[i].len() {
            let delta = t[row][j].checked_mul(factor).ok_or(SolveAbort::Overflow)?;
            t[i][j] = t[i][j].checked_sub(delta).ok_or(SolveAbort::Overflow)?;
        }
    }
    basis[row] = enter;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(rows: Vec<Vec<usize>>, n: usize) -> PackingOptimum {
        maximise(&PackingLp { variables: n, rows }, &[]).unwrap()
    }

    #[test]
    fn empty_lp() {
        let opt = solve(Vec::new(), 0);
        assert_eq!(opt.value, Rational::ZERO);
    }

    #[test]
    fn single_variable() {
        // max y0 s.t. y0 ≤ 1.
        let opt = solve(vec![vec![0]], 1);
        assert_eq!(opt.value, Rational::ONE);
        assert_eq!(opt.values, vec![Rational::ONE]);
    }

    #[test]
    fn fractional_matching_on_a_triangle() {
        // Nodes {a,b,c}, edges 0=ab, 1=bc, 2=ca; rows are node stars.
        // Optimum: y = 1/2 everywhere, value 3/2.
        let opt = solve(vec![vec![0, 2], vec![0, 1], vec![1, 2]], 3);
        assert_eq!(opt.value, Rational::new(3, 2));
        for v in &opt.values {
            assert_eq!(*v, Rational::new(1, 2));
        }
    }

    #[test]
    fn shared_constraint_caps_the_sum() {
        // Two variables sharing one row: value 1.
        let opt = solve(vec![vec![0, 1]], 2);
        assert_eq!(opt.value, Rational::ONE);
    }

    #[test]
    fn seeding_reaches_the_same_optimum() {
        let lp = PackingLp {
            variables: 3,
            rows: vec![vec![0, 2], vec![0, 1], vec![1, 2]],
        };
        for seed in [vec![], vec![0], vec![2, 2, 99], vec![1, 0, 2]] {
            let opt = maximise(&lp, &seed).unwrap();
            assert_eq!(opt.value, Rational::new(3, 2), "seed {seed:?}");
        }
    }

    #[test]
    fn disjoint_constraints_are_independent() {
        // max y0 + y1, y0 ≤ 1, y1 ≤ 1.
        let opt = solve(vec![vec![0], vec![1]], 2);
        assert_eq!(opt.value, Rational::integer(2));
    }
}

//! Property tests for the LP bound pipeline on random instances:
//! every certificate the pipeline emits — simplex-solved or
//! matching-seeded — must pass the independent feasibility checker,
//! dominate the folklore matching bound, and (checked against the exact
//! branch-and-bound solver on the EDS side) never exceed the true
//! optimum. Gnp, random-regular and power-law (preferential attachment)
//! models cover sparse, regular and heavy-tailed degree profiles.

use eds_lp::{
    eds_dual_certificate, vc_dual_certificate, CertificateSource, DualObjective, LpBudget,
};
use pn_graph::matching::greedy_maximal_matching;
use pn_graph::{generators, SimpleGraph};
use proptest::prelude::*;

fn folklore(g: &SimpleGraph, objective: DualObjective) -> usize {
    let mm = greedy_maximal_matching(g).len();
    match objective {
        DualObjective::EdgeDomination => mm.div_ceil(2),
        DualObjective::VertexCover => mm,
    }
}

/// The shared assertion battery: verification, the folklore sandwich
/// floor, and (for EDS, where the exact solver is affordable) the
/// optimum ceiling.
fn assert_certified(g: &SimpleGraph, label: &str) {
    let budget = LpBudget::default();
    let eds = eds_dual_certificate(g, &budget);
    eds.verify(g)
        .unwrap_or_else(|e| panic!("{label}: infeasible EDS certificate: {e}"));
    assert!(
        eds.bound >= folklore(g, DualObjective::EdgeDomination),
        "{label}: EDS bound {} below folklore {}",
        eds.bound,
        folklore(g, DualObjective::EdgeDomination)
    );
    if g.edge_count() > 0 && g.edge_count() <= budget.max_edges {
        assert_eq!(eds.source, CertificateSource::Simplex, "{label}");
    }
    let opt = eds_baselines::exact::minimum_eds_size(g);
    assert!(
        eds.bound <= opt,
        "{label}: EDS bound {} exceeds optimum {opt}",
        eds.bound
    );

    let vc = vc_dual_certificate(g, &budget);
    vc.verify(g)
        .unwrap_or_else(|e| panic!("{label}: infeasible VC certificate: {e}"));
    assert!(
        vc.bound >= folklore(g, DualObjective::VertexCover),
        "{label}: VC bound {} below folklore {}",
        vc.bound,
        folklore(g, DualObjective::VertexCover)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gnp_certificates_are_feasible_and_sandwiched(
        n in 2usize..=12,
        tenths in 1u32..=8,
        seed in 0u64..10_000,
    ) {
        let g = generators::gnp(n, f64::from(tenths) / 10.0, seed).expect("gnp builds");
        assert_certified(&g, &format!("gnp({n}, 0.{tenths}, {seed})"));
    }

    #[test]
    fn regular_certificates_are_feasible_and_sandwiched(
        half in 2usize..=6,
        d in 2usize..=4,
        seed in 0u64..10_000,
    ) {
        // n even and > d so the pairing model can build d-regular.
        let n = 2 * half;
        prop_assume!(n > d);
        let g = generators::random_regular(n, d, seed).expect("regular builds");
        assert_certified(&g, &format!("regular({n}, {d}, {seed})"));
    }

    #[test]
    fn power_law_certificates_are_feasible_and_sandwiched(
        n in 5usize..=14,
        m in 1usize..=3,
        seed in 0u64..10_000,
    ) {
        prop_assume!(m < n);
        let g = generators::preferential_attachment(n, m, seed).expect("power law builds");
        assert_certified(&g, &format!("power-law({n}, {m}, {seed})"));
    }

    #[test]
    fn seed_certificates_remain_feasible_beyond_budget(
        n in 2usize..=12,
        tenths in 1u32..=8,
        seed in 0u64..10_000,
    ) {
        // A zero budget forces the matching-seed path: still a valid,
        // checkable certificate, exactly the folklore bound.
        let g = generators::gnp(n, f64::from(tenths) / 10.0, seed).expect("gnp builds");
        let c = eds_dual_certificate(&g, &LpBudget::disabled());
        c.verify(&g).expect("seed certificate is feasible");
        prop_assert_eq!(c.source, CertificateSource::MatchingSeed);
        prop_assert_eq!(c.bound, folklore(&g, DualObjective::EdgeDomination));
    }
}

//! Structural analysis helpers: connectivity, bipartiteness, degree
//! statistics.

use crate::{NodeId, SimpleGraph};

/// The connected components of a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// `component[v]` is the 0-based component index of node `v`.
    pub component: Vec<usize>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// The nodes of each component.
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut groups = vec![Vec::new(); self.count];
        for (v, &c) in self.component.iter().enumerate() {
            groups[c].push(NodeId::new(v));
        }
        groups
    }

    /// Returns `true` if `u` and `v` are in the same component.
    pub fn connected(&self, u: NodeId, v: NodeId) -> bool {
        self.component[u.index()] == self.component[v.index()]
    }
}

/// Computes connected components with a BFS sweep.
pub fn connected_components(g: &SimpleGraph) -> Components {
    let n = g.node_count();
    let mut component = vec![usize::MAX; n];
    let mut count = 0;
    let mut queue = Vec::new();
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        component[start] = count;
        queue.clear();
        queue.push(NodeId::new(start));
        while let Some(v) = queue.pop() {
            for &(u, _) in g.neighbors(v) {
                if component[u.index()] == usize::MAX {
                    component[u.index()] = count;
                    queue.push(u);
                }
            }
        }
        count += 1;
    }
    Components { component, count }
}

/// Returns `true` if the graph is connected (the empty graph counts as
/// connected).
pub fn is_connected(g: &SimpleGraph) -> bool {
    connected_components(g).count <= 1
}

/// 2-colours the graph if it is bipartite; returns the colour of each node
/// or `None` if an odd cycle exists.
pub fn bipartition(g: &SimpleGraph) -> Option<Vec<bool>> {
    let n = g.node_count();
    let mut color: Vec<Option<bool>> = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if color[start].is_some() {
            continue;
        }
        color[start] = Some(false);
        queue.push_back(NodeId::new(start));
        while let Some(v) = queue.pop_front() {
            let cv = color[v.index()].expect("coloured before enqueue");
            for &(u, _) in g.neighbors(v) {
                match color[u.index()] {
                    None => {
                        color[u.index()] = Some(!cv);
                        queue.push_back(u);
                    }
                    Some(cu) if cu == cv => return None,
                    Some(_) => {}
                }
            }
        }
    }
    Some(
        color
            .into_iter()
            .map(|c| c.expect("all coloured"))
            .collect(),
    )
}

/// Returns `true` if the graph has no odd cycle.
pub fn is_bipartite(g: &SimpleGraph) -> bool {
    bipartition(g).is_some()
}

/// Returns `true` if the graph is a forest (acyclic).
pub fn is_forest(g: &SimpleGraph) -> bool {
    // A graph is a forest iff |E| = |V| - #components.
    let comps = connected_components(g);
    g.edge_count() + comps.count == g.node_count()
}

/// Histogram of node degrees: entry `d` counts the nodes of degree `d`.
pub fn degree_histogram(g: &SimpleGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// BFS distances from `source`; unreachable nodes get `usize::MAX`.
pub fn bfs_distances(g: &SimpleGraph, source: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for &(u, _) in g.neighbors(v) {
            if dist[u.index()] == usize::MAX {
                dist[u.index()] = dist[v.index()] + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// The diameter (longest shortest path); `None` for disconnected or
/// empty graphs.
///
/// Runs a BFS from every node: `O(n (n + m))`. The paper's locality
/// claims are relative to this quantity — the algorithms' horizons are
/// `O(Δ²)` regardless of the diameter.
pub fn diameter(g: &SimpleGraph) -> Option<usize> {
    if g.node_count() == 0 {
        return None;
    }
    let mut best = 0;
    for v in g.nodes() {
        let dist = bfs_distances(g, v);
        for &d in &dist {
            if d == usize::MAX {
                return None;
            }
            best = best.max(d);
        }
    }
    Some(best)
}

/// The girth (length of a shortest cycle); `None` for forests.
///
/// BFS from every node, detecting the first non-tree edge closing a
/// cycle: `O(n (n + m))`.
pub fn girth(g: &SimpleGraph) -> Option<usize> {
    let mut best: Option<usize> = None;
    for start in g.nodes() {
        let mut dist = vec![usize::MAX; g.node_count()];
        let mut parent_edge = vec![usize::MAX; g.node_count()];
        let mut queue = std::collections::VecDeque::new();
        dist[start.index()] = 0;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &(u, e) in g.neighbors(v) {
                if e.index() == parent_edge[v.index()] {
                    continue;
                }
                if dist[u.index()] == usize::MAX {
                    dist[u.index()] = dist[v.index()] + 1;
                    parent_edge[u.index()] = e.index();
                    queue.push_back(u);
                } else {
                    // Cycle through `start` (or shorter elsewhere; still
                    // an upper bound that some start node makes tight).
                    let len = dist[v.index()] + dist[u.index()] + 1;
                    best = Some(best.map_or(len, |b| b.min(len)));
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn components_of_union() {
        let u = generators::disjoint_union(&[
            generators::cycle(3).unwrap(),
            generators::path(4).unwrap(),
            generators::star(2).unwrap(),
        ]);
        let c = connected_components(&u);
        assert_eq!(c.count, 3);
        assert!(c.connected(NodeId::new(0), NodeId::new(2)));
        assert!(!c.connected(NodeId::new(0), NodeId::new(3)));
        let groups = c.groups();
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), 10);
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&generators::petersen()));
        assert!(is_connected(&SimpleGraph::empty()));
        assert!(!is_connected(&SimpleGraph::new(2)));
    }

    #[test]
    fn bipartite_detection() {
        assert!(is_bipartite(&generators::cycle(4).unwrap()));
        assert!(!is_bipartite(&generators::cycle(5).unwrap()));
        assert!(is_bipartite(&generators::complete_bipartite(3, 3).unwrap()));
        assert!(!is_bipartite(&generators::petersen()));
        let part = bipartition(&generators::path(5).unwrap()).unwrap();
        assert_eq!(part, vec![false, true, false, true, false]);
    }

    #[test]
    fn forest_detection() {
        assert!(is_forest(&generators::path(6).unwrap()));
        assert!(is_forest(&generators::star(5).unwrap()));
        assert!(!is_forest(&generators::cycle(4).unwrap()));
        assert!(is_forest(&SimpleGraph::new(3)));
    }

    #[test]
    fn histogram() {
        let s = generators::star(3).unwrap();
        let h = degree_histogram(&s);
        assert_eq!(h, vec![0, 3, 0, 1]);
    }

    #[test]
    fn bfs_and_diameter() {
        let p = generators::path(5).unwrap();
        let d = bfs_distances(&p, NodeId::new(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        assert_eq!(diameter(&p), Some(4));
        assert_eq!(diameter(&generators::cycle(8).unwrap()), Some(4));
        assert_eq!(diameter(&generators::petersen()), Some(2));
        assert_eq!(diameter(&generators::complete(5).unwrap()), Some(1));
        // Disconnected.
        assert_eq!(diameter(&SimpleGraph::new(2)), None);
        let u = generators::disjoint_union(&[
            generators::path(2).unwrap(),
            generators::path(2).unwrap(),
        ]);
        assert_eq!(diameter(&u), None);
        let unreachable = bfs_distances(&u, NodeId::new(0));
        assert_eq!(unreachable[2], usize::MAX);
    }

    #[test]
    fn girth_values() {
        assert_eq!(girth(&generators::cycle(5).unwrap()), Some(5));
        assert_eq!(girth(&generators::cycle(9).unwrap()), Some(9));
        assert_eq!(girth(&generators::complete(4).unwrap()), Some(3));
        assert_eq!(girth(&generators::petersen()), Some(5));
        assert_eq!(
            girth(&generators::complete_bipartite(3, 3).unwrap()),
            Some(4)
        );
        assert_eq!(girth(&generators::hypercube(3).unwrap()), Some(4));
        assert_eq!(girth(&generators::path(6).unwrap()), None);
        assert_eq!(girth(&generators::star(4).unwrap()), None);
    }
}

//! Covering maps between port-numbered graphs (paper Section 2.3).
//!
//! A surjection `f : V_H → V_G` is a *covering map* if it preserves degrees
//! and connections: `p_H(v, i) = (u, j)` implies
//! `p_G(f(v), i) = (f(u), j)`. The fundamental lemma — proved in Section
//! 2.3 of the paper and checked empirically by `pn-runtime` tests — is that
//! a deterministic distributed algorithm cannot distinguish `v` from
//! `f(v)`: both produce identical outputs. All lower bounds in the paper
//! rest on this.

use crate::{Endpoint, GraphError, NodeId, PortNumberedGraph};

/// A candidate covering map `f : V_H → V_G`, stored as a node table.
///
/// # Examples
///
/// Two nodes wired to each other cover the one-node multigraph with a
/// single directed loop... no: a *link loop* needs two ports. The smallest
/// honest example is the 2-cycle covering the one-node graph whose two
/// ports are wired together:
///
/// ```
/// use pn_graph::{PnGraphBuilder, CoveringMap, Endpoint, NodeId, Port};
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// // H: two nodes, port 1 of each wired to port 2 of the other.
/// let mut bh = PnGraphBuilder::new();
/// let a = bh.add_node(2);
/// let b = bh.add_node(2);
/// bh.connect(Endpoint::new(a, Port::new(1)), Endpoint::new(b, Port::new(2)))?;
/// bh.connect(Endpoint::new(b, Port::new(1)), Endpoint::new(a, Port::new(2)))?;
/// let h = bh.finish()?;
///
/// // G: one node, port 1 wired to port 2.
/// let mut bg = PnGraphBuilder::new();
/// let x = bg.add_node(2);
/// bg.connect(Endpoint::new(x, Port::new(1)), Endpoint::new(x, Port::new(2)))?;
/// let g = bg.finish()?;
///
/// let f = CoveringMap::constant(2, x);
/// f.verify(&h, &g)?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoveringMap {
    map: Vec<NodeId>,
}

impl CoveringMap {
    /// Creates a covering map from an explicit table: `map[v]` is `f(v)`.
    pub fn new(map: Vec<NodeId>) -> Self {
        CoveringMap { map }
    }

    /// The constant map sending all `h_nodes` nodes to `target`.
    pub fn constant(h_nodes: usize, target: NodeId) -> Self {
        CoveringMap {
            map: vec![target; h_nodes],
        }
    }

    /// Applies the map to a node of the covering graph.
    pub fn apply(&self, v: NodeId) -> NodeId {
        self.map[v.index()]
    }

    /// Number of nodes in the domain.
    pub fn domain_size(&self) -> usize {
        self.map.len()
    }

    /// The fibre `f⁻¹(x)` of each node of `G`, indexed by `x`.
    pub fn fibers(&self, g_nodes: usize) -> Vec<Vec<NodeId>> {
        let mut fibers = vec![Vec::new(); g_nodes];
        for (v, &x) in self.map.iter().enumerate() {
            fibers[x.index()].push(NodeId::new(v));
        }
        fibers
    }

    /// Verifies that this is a covering map from `h` onto `g`:
    /// surjectivity, degree preservation, and connection preservation.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotACoveringMap`] describing the first
    /// violation found.
    pub fn verify(&self, h: &PortNumberedGraph, g: &PortNumberedGraph) -> Result<(), GraphError> {
        if self.map.len() != h.node_count() {
            return Err(GraphError::NotACoveringMap {
                detail: format!(
                    "map has {} entries but H has {} nodes",
                    self.map.len(),
                    h.node_count()
                ),
            });
        }
        // Codomain range + surjectivity.
        let mut hit = vec![false; g.node_count()];
        for (v, &x) in self.map.iter().enumerate() {
            if x.index() >= g.node_count() {
                return Err(GraphError::NotACoveringMap {
                    detail: format!("f(n{v}) = {x} is not a node of G"),
                });
            }
            hit[x.index()] = true;
        }
        if let Some(x) = hit.iter().position(|&b| !b) {
            return Err(GraphError::NotACoveringMap {
                detail: format!("f is not surjective: node n{x} of G is not covered"),
            });
        }
        // Degree preservation.
        for v in h.nodes() {
            let x = self.apply(v);
            if h.degree(v) != g.degree(x) {
                return Err(GraphError::NotACoveringMap {
                    detail: format!(
                        "degree mismatch: d_H({v}) = {} but d_G({x}) = {}",
                        h.degree(v),
                        g.degree(x)
                    ),
                });
            }
        }
        // Connection preservation.
        for v in h.nodes() {
            for i in h.ports(v) {
                let there = h.connection(Endpoint::new(v, i));
                let expect = g.connection(Endpoint::new(self.apply(v), i));
                let got = Endpoint::new(self.apply(there.node), there.port);
                if got != expect {
                    return Err(GraphError::NotACoveringMap {
                        detail: format!(
                            "connection mismatch at ({v}, {i}): \
                             p_H maps to {there}, giving {got} under f, \
                             but p_G(f({v}), {i}) = {expect}"
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Returns `true` if [`CoveringMap::verify`] succeeds.
    pub fn is_covering_map(&self, h: &PortNumberedGraph, g: &PortNumberedGraph) -> bool {
        self.verify(h, g).is_ok()
    }
}

/// Builds the identity covering map (every graph covers itself).
pub fn identity_map(g: &PortNumberedGraph) -> CoveringMap {
    CoveringMap::new(g.nodes().collect())
}

/// Constructs the canonical `c`-fold *cyclic lift* of a port-numbered graph
/// `g`: nodes `(v, layer)` for `layer ∈ 0..c`, where the connection
/// `p(v,i) = (u,j)` lifts to layer-preserving links when `v ≠ u` and to a
/// cyclic shift between layers for loops. The result covers `g` via
/// "forget the layer".
///
/// This is a generic machine for manufacturing finite covering graphs in
/// tests: lifting a multigraph yields (for large enough `c`) a simple
/// graph.
pub fn cyclic_lift(g: &PortNumberedGraph, c: usize) -> (PortNumberedGraph, CoveringMap) {
    assert!(c >= 1, "lift must have at least one layer");
    use crate::PnGraphBuilder;
    let n = g.node_count();
    let mut b = PnGraphBuilder::new();
    for layer in 0..c {
        let _ = layer;
        for v in g.nodes() {
            b.add_node(g.degree(v));
        }
    }
    let node_at = |v: NodeId, layer: usize| NodeId::new(layer * n + v.index());
    for v in g.nodes() {
        for i in g.ports(v) {
            let here = Endpoint::new(v, i);
            let t = g.connection(here);
            if t == here {
                // Fixed point (directed loop). Pair layers 0-1, 2-3, ...;
                // for odd c, the last layer keeps a fixed point.
                let mut layer = 0;
                while layer + 1 < c {
                    let a = Endpoint::new(node_at(v, layer), i);
                    let bb = Endpoint::new(node_at(v, layer + 1), i);
                    b.connect(a, bb).expect("lift wiring is conflict-free");
                    layer += 2;
                }
                if c % 2 == 1 {
                    b.fix_point(Endpoint::new(node_at(v, c - 1), i))
                        .expect("lift wiring is conflict-free");
                }
                continue;
            }
            // Wire each port pair once: skip the mirror side.
            if t < here {
                continue;
            }
            for layer in 0..c {
                let (from_layer, to_layer) = if t.node == v {
                    // Link loop: shift one layer so the lift is loop-free
                    // when c > 1.
                    (layer, (layer + 1) % c)
                } else {
                    (layer, layer)
                };
                let a = Endpoint::new(node_at(v, from_layer), i);
                let bb = Endpoint::new(node_at(t.node, to_layer), t.port);
                b.connect(a, bb).expect("lift wiring is conflict-free");
            }
        }
    }
    let lifted = b.finish().expect("lift connects every port");
    let map = CoveringMap::new((0..c * n).map(|idx| NodeId::new(idx % n)).collect());
    (lifted, map)
}

/// Constructs a `layers`-fold **simple** covering graph of an arbitrary
/// port-numbered multigraph, in the style of the paper's Figure 3: each
/// edge class is lifted with its own layer shift, chosen so that parallel
/// edges land on different layers and loops never close on themselves.
///
/// Requirements, checked at runtime:
///
/// * `layers` must exceed the largest parallel-edge multiplicity (plus
///   one if the pair also needs to dodge shift 0 for loops);
/// * if the graph has fixed-point loops (the paper's *directed loops*),
///   `layers` must be even (a fixed point lifts to a pairing of layers
///   at distance `layers / 2`).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `layers` is too small or
/// has the wrong parity for the input.
///
/// # Examples
///
/// ```
/// use pn_graph::{PnGraphBuilder, covering::simple_lift, Endpoint, Port};
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// // The Figure 2 multigraph: parallel links, a directed loop, a link loop.
/// let mut b = PnGraphBuilder::new();
/// let s = b.add_node(3);
/// let t = b.add_node(4);
/// b.connect(Endpoint::new(s, Port::new(1)), Endpoint::new(t, Port::new(2)))?;
/// b.connect(Endpoint::new(s, Port::new(2)), Endpoint::new(t, Port::new(1)))?;
/// b.fix_point(Endpoint::new(s, Port::new(3)))?;
/// b.connect(Endpoint::new(t, Port::new(3)), Endpoint::new(t, Port::new(4)))?;
/// let m = b.finish()?;
///
/// // A 4-fold simple cover, as in the paper's Figure 3.
/// let (c, f) = simple_lift(&m, 4)?;
/// assert!(c.is_simple());
/// f.verify(&c, &m)?;
/// # Ok(())
/// # }
/// ```
pub fn simple_lift(
    g: &PortNumberedGraph,
    layers: usize,
) -> Result<(PortNumberedGraph, CoveringMap), GraphError> {
    use crate::{EdgeShape, PnGraphBuilder};
    use std::collections::HashMap;

    if layers < 2 {
        return Err(GraphError::InvalidParameter {
            detail: "a simple lift needs at least two layers".to_owned(),
        });
    }
    let has_half_loop = g
        .edges()
        .any(|(_, s)| matches!(s, EdgeShape::HalfLoop { .. }));
    if has_half_loop && !layers.is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            detail: "directed loops require an even number of layers".to_owned(),
        });
    }

    // Assign a distinct shift per edge within each unordered node pair.
    // Loops (u == v) are subtler: a loop with shift `s` produces the layer
    // pairs `{ℓ, ℓ+s}`, which coincide with those of shift `layers - s`
    // (and self-coincide at `s = layers/2`), so loop shifts are drawn from
    // `1 .. ⌈layers/2⌉` only. A directed (fixed-point) loop occupies the
    // `layers/2` pairing; at most one is representable per node.
    let mut next_shift: HashMap<(usize, usize), usize> = HashMap::new();
    let mut half_loops_at: HashMap<usize, usize> = HashMap::new();
    let mut shift_of = vec![0usize; g.edge_count()];
    for (e, shape) in g.edges() {
        match shape {
            EdgeShape::HalfLoop { at } => {
                let count = half_loops_at.entry(at.node.index()).or_insert(0);
                *count += 1;
                if *count > 1 {
                    return Err(GraphError::InvalidParameter {
                        detail: format!(
                            "node {} has multiple directed loops; only one per node is supported",
                            at.node
                        ),
                    });
                }
                shift_of[e.index()] = layers / 2;
            }
            EdgeShape::Link { a, b } => {
                let (u, v) = (
                    a.node.index().min(b.node.index()),
                    a.node.index().max(b.node.index()),
                );
                let entry = next_shift
                    .entry((u, v))
                    .or_insert(if u == v { 1 } else { 0 });
                let s = *entry;
                let exhausted = if u == v {
                    // Strictly below layers/2 (also keeps clear of the
                    // directed-loop pairing).
                    2 * s >= layers
                } else {
                    s >= layers
                };
                if exhausted {
                    return Err(GraphError::InvalidParameter {
                        detail: format!(
                            "{layers} layers cannot separate the parallel edges between n{u} and n{v}"
                        ),
                    });
                }
                shift_of[e.index()] = s;
                *entry += 1;
            }
        }
    }

    let n = g.node_count();
    let mut builder = PnGraphBuilder::new();
    for layer in 0..layers {
        let _ = layer;
        for v in g.nodes() {
            builder.add_node(g.degree(v));
        }
    }
    let node_at = |v: NodeId, layer: usize| NodeId::new(layer * n + v.index());
    for (e, shape) in g.edges() {
        let s = shift_of[e.index()];
        match shape {
            EdgeShape::Link { a, b } => {
                for layer in 0..layers {
                    builder.connect(
                        Endpoint::new(node_at(a.node, layer), a.port),
                        Endpoint::new(node_at(b.node, (layer + s) % layers), b.port),
                    )?;
                }
            }
            EdgeShape::HalfLoop { at } => {
                // Pair layer ℓ with ℓ + layers/2; wire each pair once.
                for layer in 0..layers / 2 {
                    builder.connect(
                        Endpoint::new(node_at(at.node, layer), at.port),
                        Endpoint::new(node_at(at.node, layer + layers / 2), at.port),
                    )?;
                }
            }
        }
    }
    let lifted = builder.finish()?;
    let map = CoveringMap::new((0..layers * n).map(|i| NodeId::new(i % n)).collect());
    debug_assert!(map.verify(&lifted, g).is_ok());
    Ok((lifted, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ports::canonical_ports;
    use crate::{generators, PnGraphBuilder, Port};

    /// Figure 3 of the paper: the 8-cycle-like simple graph C covering the
    /// two-node multigraph M. We reconstruct the spirit of the example: a
    /// multigraph M with two nodes (grey, white) of degree 4 joined by
    /// four parallel edges, covered by an 8-node simple graph.
    #[test]
    fn figure3_style_cover() {
        // M: grey g, white w, 4 parallel edges with ports:
        // (g,1)-(w,2), (g,2)-(w,1), (g,3)-(w,4), (g,4)-(w,3).
        let mut bm = PnGraphBuilder::new();
        let gg = bm.add_node(4);
        let ww = bm.add_node(4);
        for (pg_, pw) in [(1u32, 2u32), (2, 1), (3, 4), (4, 3)] {
            bm.connect(
                Endpoint::new(gg, Port::new(pg_)),
                Endpoint::new(ww, Port::new(pw)),
            )
            .unwrap();
        }
        let m = bm.finish().unwrap();
        assert!(!m.is_simple());

        let (c, f) = cyclic_lift(&m, 2);
        f.verify(&c, &m).unwrap();
        assert_eq!(c.node_count(), 4);
    }

    #[test]
    fn identity_is_covering() {
        let g = canonical_ports(&generators::cycle(5).unwrap()).unwrap();
        identity_map(&g).verify(&g, &g).unwrap();
    }

    #[test]
    fn cyclic_lift_of_simple_graph() {
        let g = canonical_ports(&generators::complete(4).unwrap()).unwrap();
        let (h, f) = cyclic_lift(&g, 3);
        assert_eq!(h.node_count(), 12);
        f.verify(&h, &g).unwrap();
        assert!(h.is_simple());
    }

    #[test]
    fn lift_of_loop_multigraph_is_simple() {
        // One node, ports 1<->2 (a loop). The 3-fold lift is a 3-cycle.
        let mut b = PnGraphBuilder::new();
        let x = b.add_node(2);
        b.connect(
            Endpoint::new(x, Port::new(1)),
            Endpoint::new(x, Port::new(2)),
        )
        .unwrap();
        let g = b.finish().unwrap();
        let (h, f) = cyclic_lift(&g, 3);
        f.verify(&h, &g).unwrap();
        assert!(h.is_simple());
        assert_eq!(h.node_count(), 3);
        assert_eq!(h.edge_count(), 3);
    }

    #[test]
    fn detects_degree_mismatch() {
        let g = canonical_ports(&generators::cycle(4).unwrap()).unwrap();
        let h = canonical_ports(&generators::path(4).unwrap()).unwrap();
        let f = CoveringMap::new(h.nodes().collect());
        assert!(matches!(
            f.verify(&h, &g),
            Err(GraphError::NotACoveringMap { .. })
        ));
    }

    #[test]
    fn detects_non_surjective() {
        let g = canonical_ports(&generators::cycle(4).unwrap()).unwrap();
        let f = CoveringMap::constant(4, NodeId::new(0));
        let err = f.verify(&g, &g).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("surjective"), "{msg}");
    }

    #[test]
    fn detects_connection_mismatch() {
        // Two disjoint 2-cycles with *different* port patterns cannot cover
        // each other with a swap map.
        let mut b1 = PnGraphBuilder::new();
        let a = b1.add_node(2);
        let bb = b1.add_node(2);
        b1.connect(
            Endpoint::new(a, Port::new(1)),
            Endpoint::new(bb, Port::new(1)),
        )
        .unwrap();
        b1.connect(
            Endpoint::new(a, Port::new(2)),
            Endpoint::new(bb, Port::new(2)),
        )
        .unwrap();
        let h = b1.finish().unwrap();

        let mut b2 = PnGraphBuilder::new();
        let x = b2.add_node(2);
        let y = b2.add_node(2);
        b2.connect(
            Endpoint::new(x, Port::new(1)),
            Endpoint::new(y, Port::new(2)),
        )
        .unwrap();
        b2.connect(
            Endpoint::new(x, Port::new(2)),
            Endpoint::new(y, Port::new(1)),
        )
        .unwrap();
        let g = b2.finish().unwrap();

        let f = CoveringMap::new(vec![NodeId::new(0), NodeId::new(1)]);
        assert!(matches!(
            f.verify(&h, &g),
            Err(GraphError::NotACoveringMap { .. })
        ));
    }

    #[test]
    fn simple_lift_of_figure2_multigraph() {
        // The Figure 2 multigraph (parallel links + directed loop + link
        // loop) has a simple 4-fold cover, like the paper's Figure 3.
        let mut bm = PnGraphBuilder::new();
        let s = bm.add_node(3);
        let t = bm.add_node(4);
        bm.connect(
            Endpoint::new(s, Port::new(1)),
            Endpoint::new(t, Port::new(2)),
        )
        .unwrap();
        bm.connect(
            Endpoint::new(s, Port::new(2)),
            Endpoint::new(t, Port::new(1)),
        )
        .unwrap();
        bm.fix_point(Endpoint::new(s, Port::new(3))).unwrap();
        bm.connect(
            Endpoint::new(t, Port::new(3)),
            Endpoint::new(t, Port::new(4)),
        )
        .unwrap();
        let m = bm.finish().unwrap();
        let (c, f) = simple_lift(&m, 4).unwrap();
        assert!(c.is_simple(), "the 4-fold shifted lift must be simple");
        assert_eq!(c.node_count(), 8);
        f.verify(&c, &m).unwrap();
        // Odd layer counts are rejected because of the directed loop.
        assert!(simple_lift(&m, 3).is_err());
        // One layer can never be simple for a multigraph.
        assert!(simple_lift(&m, 1).is_err());
    }

    #[test]
    fn simple_lift_of_heavy_parallel_edges() {
        // Five parallel edges need at least five layers.
        let mut b = PnGraphBuilder::new();
        let u = b.add_node(5);
        let v = b.add_node(5);
        for i in 1..=5u32 {
            b.connect(
                Endpoint::new(u, Port::new(i)),
                Endpoint::new(v, Port::new(i)),
            )
            .unwrap();
        }
        let m = b.finish().unwrap();
        assert!(simple_lift(&m, 4).is_err());
        let (c, f) = simple_lift(&m, 5).unwrap();
        assert!(c.is_simple());
        f.verify(&c, &m).unwrap();
        assert_eq!(c.edge_count(), 25);
    }

    #[test]
    fn simple_lift_rejects_colliding_loops() {
        // Two link loops at one node: shifts 1 and 2 would collide at
        // layers = 4 (pairs {ℓ, ℓ+2} self-coincide); 6 layers work.
        let mut b = PnGraphBuilder::new();
        let v = b.add_node(4);
        b.connect(
            Endpoint::new(v, Port::new(1)),
            Endpoint::new(v, Port::new(2)),
        )
        .unwrap();
        b.connect(
            Endpoint::new(v, Port::new(3)),
            Endpoint::new(v, Port::new(4)),
        )
        .unwrap();
        let m = b.finish().unwrap();
        assert!(simple_lift(&m, 4).is_err());
        let (c, f) = simple_lift(&m, 6).unwrap();
        assert!(c.is_simple(), "shifts 1 and 2 over 6 layers are disjoint");
        f.verify(&c, &m).unwrap();

        // Two directed loops at one node are not representable.
        let mut b2 = PnGraphBuilder::new();
        let w = b2.add_node(2);
        b2.fix_point(Endpoint::new(w, Port::new(1))).unwrap();
        b2.fix_point(Endpoint::new(w, Port::new(2))).unwrap();
        let m2 = b2.finish().unwrap();
        assert!(simple_lift(&m2, 4).is_err());
    }

    #[test]
    fn simple_lift_of_simple_graph_is_layered_copy() {
        let g = canonical_ports(&generators::petersen()).unwrap();
        let (h, f) = simple_lift(&g, 2).unwrap();
        assert!(h.is_simple());
        f.verify(&h, &g).unwrap();
        assert_eq!(h.node_count(), 20);
    }

    #[test]
    fn fibers_partition_domain() {
        let g = canonical_ports(&generators::cycle(3).unwrap()).unwrap();
        let (h, f) = cyclic_lift(&g, 4);
        let fibers = f.fibers(g.node_count());
        assert_eq!(fibers.len(), 3);
        let total: usize = fibers.iter().map(Vec::len).sum();
        assert_eq!(total, h.node_count());
        for fiber in fibers {
            assert_eq!(fiber.len(), 4);
        }
    }
}

//! Graphviz DOT export for graphs and port-numbered graphs.
//!
//! The paper's figures are drawings of small graphs with highlighted edge
//! sets (optimal solutions, matchings, factors). This module renders the
//! same artefacts: plain graphs, port-numbered graphs with port labels on
//! the edge ends, and any number of highlighted edge classes.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{EdgeId, EdgeShape, PortNumberedGraph, SimpleGraph};

/// A named, styled class of edges to highlight in a DOT rendering.
#[derive(Clone, Debug)]
pub struct EdgeClassStyle {
    /// Class name (used in the legend comment).
    pub name: String,
    /// Graphviz colour, e.g. `"red"` or `"#1f77b4"`.
    pub color: String,
    /// Pen width multiplier; the default edge width is 1.
    pub penwidth: f64,
    /// The edges of the class.
    pub edges: Vec<EdgeId>,
}

impl EdgeClassStyle {
    /// Creates a class with the given name, colour and edges, at pen
    /// width 2.
    pub fn new<S: Into<String>>(name: S, color: S, edges: Vec<EdgeId>) -> Self {
        EdgeClassStyle {
            name: name.into(),
            color: color.into(),
            penwidth: 2.0,
            edges,
        }
    }
}

/// Renders a simple graph as Graphviz DOT, highlighting the given edge
/// classes (later classes win on conflicts).
///
/// # Examples
///
/// ```
/// use pn_graph::{generators, dot::{to_dot, EdgeClassStyle}};
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// let g = generators::cycle(4)?;
/// let dot = to_dot(&g, "c4", &[EdgeClassStyle::new("solution", "red", vec![])]);
/// assert!(dot.starts_with("graph c4 {"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(g: &SimpleGraph, name: &str, classes: &[EdgeClassStyle]) -> String {
    let styles = class_lookup(classes);
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  node [shape=circle fontsize=10];");
    for c in classes {
        let _ = writeln!(out, "  // class {:?}: colour {}", c.name, c.color);
    }
    for v in g.nodes() {
        let _ = writeln!(out, "  n{};", v.index());
    }
    for (e, u, v) in g.edges() {
        let style = styles.get(&e);
        let _ = writeln!(
            out,
            "  n{} -- n{}{};",
            u.index(),
            v.index(),
            style_attr(style)
        );
    }
    out.push_str("}\n");
    out
}

/// Renders a port-numbered graph as DOT with port numbers as head/tail
/// labels (the paper's Figure 2(b) style), highlighting edge classes.
pub fn pn_to_dot(g: &PortNumberedGraph, name: &str, classes: &[EdgeClassStyle]) -> String {
    let styles = class_lookup(classes);
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  node [shape=circle fontsize=10];");
    let _ = writeln!(out, "  edge [fontsize=8 labeldistance=1.5];");
    for v in g.nodes() {
        let _ = writeln!(out, "  n{};", v.index());
    }
    for (e, shape) in g.edges() {
        let style = styles.get(&e);
        match shape {
            EdgeShape::Link { a, b } => {
                let _ = writeln!(
                    out,
                    "  n{} -- n{} [taillabel=\"{}\" headlabel=\"{}\"{}];",
                    a.node.index(),
                    b.node.index(),
                    a.port,
                    b.port,
                    style_suffix(style)
                );
            }
            EdgeShape::HalfLoop { at } => {
                let _ = writeln!(
                    out,
                    "  n{} -- n{} [taillabel=\"{}\" style=dashed{}];",
                    at.node.index(),
                    at.node.index(),
                    at.port,
                    style_suffix(style)
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

fn class_lookup(classes: &[EdgeClassStyle]) -> HashMap<EdgeId, (&str, f64)> {
    let mut map = HashMap::new();
    for c in classes {
        for &e in &c.edges {
            map.insert(e, (c.color.as_str(), c.penwidth));
        }
    }
    map
}

fn style_attr(style: Option<&(&str, f64)>) -> String {
    match style {
        Some((color, w)) => format!(" [color=\"{color}\" penwidth={w}]"),
        None => String::new(),
    }
}

fn style_suffix(style: Option<&(&str, f64)>) -> String {
    match style {
        Some((color, w)) => format!(" color=\"{color}\" penwidth={w}"),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, ports, Endpoint, PnGraphBuilder, Port};

    #[test]
    fn simple_graph_dot() {
        let g = generators::path(3).unwrap();
        let dot = to_dot(&g, "p3", &[]);
        assert!(dot.contains("graph p3 {"));
        assert!(dot.contains("n0 -- n1"));
        assert!(dot.contains("n1 -- n2"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn highlighted_classes_render() {
        let g = generators::cycle(4).unwrap();
        let sol: Vec<EdgeId> = vec![EdgeId::new(0), EdgeId::new(2)];
        let dot = to_dot(&g, "c4", &[EdgeClassStyle::new("matching", "red", sol)]);
        assert_eq!(dot.matches("color=\"red\"").count(), 2);
        assert!(dot.contains("// class \"matching\""));
    }

    #[test]
    fn pn_graph_dot_with_ports_and_loops() {
        let mut b = PnGraphBuilder::new();
        let s = b.add_node(3);
        let t = b.add_node(4);
        b.connect(
            Endpoint::new(s, Port::new(1)),
            Endpoint::new(t, Port::new(2)),
        )
        .unwrap();
        b.connect(
            Endpoint::new(s, Port::new(2)),
            Endpoint::new(t, Port::new(1)),
        )
        .unwrap();
        b.fix_point(Endpoint::new(s, Port::new(3))).unwrap();
        b.connect(
            Endpoint::new(t, Port::new(3)),
            Endpoint::new(t, Port::new(4)),
        )
        .unwrap();
        let g = b.finish().unwrap();
        let dot = pn_to_dot(&g, "m", &[]);
        assert!(dot.contains("taillabel=\"1\" headlabel=\"2\""));
        assert!(dot.contains("style=dashed")); // the half-loop
        assert!(dot.contains("n1 -- n1")); // the link loop
    }

    #[test]
    fn pn_dot_highlights() {
        let g = ports::canonical_ports(&generators::cycle(3).unwrap()).unwrap();
        let dot = pn_to_dot(
            &g,
            "c3",
            &[EdgeClassStyle::new("eds", "blue", vec![EdgeId::new(1)])],
        );
        assert_eq!(dot.matches("color=\"blue\"").count(), 1);
    }
}

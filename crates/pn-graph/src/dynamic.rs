//! A mutable port-numbered topology for dynamic-graph (churn) runs.
//!
//! [`crate::PortNumberedGraph`] is deliberately immutable: its flat slot
//! arena, routing table, and derived edge list are what make the
//! simulator's round loop allocation-free, and none of them survive an
//! edge mutation cheaply. [`DynamicTopology`] is the mutable counterpart
//! the fault-injection harness edits between protocol epochs: a plain
//! adjacency-with-ports structure supporting edge insertion/deletion,
//! node joins, and crash isolation, which [`DynamicTopology::freeze`]s
//! back into a fully validated `PortNumberedGraph` whenever a protocol
//! needs to run.
//!
//! # Port semantics under mutation
//!
//! Ports are assigned **densely in arrival order**: inserting an edge
//! appends a new highest-numbered port at both endpoints; deleting one
//! moves each endpoint's highest port into the vacated slot (a
//! swap-remove) so degrees stay equal to port counts with no holes. Port
//! numbers are therefore *not* stable across deletions — which is the
//! honest model: the paper's algorithms may depend on port numbers
//! arbitrarily, and a topology change is exactly an adversarial
//! renumbering of the affected nodes. Protocols restarted after a churn
//! event must re-converge from the new numbering; nothing in this module
//! tries to preserve the old one.
//!
//! The structure maintains **simple** topologies only: self-loops and
//! parallel edges are rejected with the same structured errors as
//! [`crate::SimpleGraph`]. (The multigraph covers of the lower-bound
//! machinery never churn.)

use crate::{Endpoint, GraphError, NodeId, Port, PortNumberedGraph};

/// A mutable simple topology with dense per-node port assignments.
///
/// See the [module docs](self) for the mutation semantics.
///
/// # Examples
///
/// ```
/// use pn_graph::{DynamicTopology, NodeId};
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// let mut t = DynamicTopology::new(3);
/// t.insert_edge(NodeId::new(0), NodeId::new(1))?;
/// t.insert_edge(NodeId::new(1), NodeId::new(2))?;
/// t.delete_edge(NodeId::new(0), NodeId::new(1))?;
/// let g = t.freeze()?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DynamicTopology {
    /// `ports[v][i]` is the peer endpoint wired to port `i + 1` of `v`.
    ports: Vec<Vec<Endpoint>>,
}

impl DynamicTopology {
    /// An edgeless topology on `n` nodes.
    pub fn new(n: usize) -> Self {
        DynamicTopology {
            ports: vec![Vec::new(); n],
        }
    }

    /// Copies the wiring of an existing port-numbered graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotSimple`] if `g` has loops of either kind
    /// — the dynamic layer maintains simple topologies only.
    pub fn from_graph(g: &PortNumberedGraph) -> Result<Self, GraphError> {
        let mut ports = Vec::with_capacity(g.node_count());
        for v in g.nodes() {
            let mut row = Vec::with_capacity(g.degree(v));
            for i in 0..g.degree(v) {
                let peer = g.connection(Endpoint::new(v, Port::from_index(i)));
                if peer.node == v {
                    return Err(GraphError::NotSimple {
                        detail: format!("loop at node {v}"),
                    });
                }
                row.push(peer);
            }
            ports.push(row);
        }
        Ok(DynamicTopology { ports })
    }

    /// Number of nodes (including isolated ones).
    pub fn node_count(&self) -> usize {
        self.ports.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.ports.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Current degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        self.ports[v.index()].len()
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        self.ports.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether `{u, v}` is currently an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u.index() < self.ports.len() && self.ports[u.index()].iter().any(|peer| peer.node == v)
    }

    /// Appends a fresh isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.ports.push(Vec::new());
        NodeId::new(self.ports.len() - 1)
    }

    fn check_node(&self, v: NodeId) -> Result<(), GraphError> {
        if v.index() >= self.ports.len() {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                nodes: self.ports.len(),
            });
        }
        Ok(())
    }

    /// Inserts the edge `{u, v}`, appending a new highest port at each
    /// endpoint.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] for an unknown node,
    /// [`GraphError::LoopNotAllowed`] if `u == v`, and
    /// [`GraphError::ParallelEdge`] if the edge already exists.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::LoopNotAllowed { node: u });
        }
        if self.has_edge(u, v) {
            return Err(GraphError::ParallelEdge { u, v });
        }
        let pu = Port::from_index(self.ports[u.index()].len());
        let pv = Port::from_index(self.ports[v.index()].len());
        self.ports[u.index()].push(Endpoint::new(v, pv));
        self.ports[v.index()].push(Endpoint::new(u, pu));
        Ok(())
    }

    /// Unwires port `i` of `v` by swap-remove: the node's highest port
    /// moves into slot `i` and its peer is re-pointed at the new number.
    /// The peer of the *removed* port is left untouched (the caller
    /// removes it separately).
    fn remove_port(&mut self, v: NodeId, i: usize) {
        let row = &mut self.ports[v.index()];
        let last = row.len() - 1;
        row.swap_remove(i);
        if i < last {
            // The moved port kept its peer; tell the peer the new number.
            let moved_peer = self.ports[v.index()][i];
            self.ports[moved_peer.node.index()][moved_peer.port.index()] =
                Endpoint::new(v, Port::from_index(i));
        }
    }

    /// Deletes the edge `{u, v}`. Each endpoint's highest-numbered port
    /// is swap-removed into the vacated slot, so the surviving ports of
    /// `u` and `v` are renumbered (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] for an unknown node, or
    /// [`GraphError::InvalidParameter`] if the edge does not exist.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        let Some(i) = self.ports[u.index()].iter().position(|peer| peer.node == v) else {
            return Err(GraphError::InvalidParameter {
                detail: format!("edge {{{u}, {v}}} does not exist"),
            });
        };
        let j = self.ports[u.index()][i].port.index();
        // Removing (u, i) can move u's highest port down and re-point its
        // peer entry — never (v, j): (v, j)'s peer is (u, i), and the
        // moved port is u's old highest, distinct from i.
        self.remove_port(u, i);
        self.remove_port(v, j);
        Ok(())
    }

    /// Crashes `v`: deletes every incident edge, leaving the node in
    /// place with degree 0. Returns the former neighbours (the nodes a
    /// repair pass must revisit), in the port order they occupied.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] for an unknown node.
    pub fn isolate(&mut self, v: NodeId) -> Result<Vec<NodeId>, GraphError> {
        self.check_node(v)?;
        let neighbors: Vec<NodeId> = self.ports[v.index()].iter().map(|p| p.node).collect();
        for &u in &neighbors {
            self.delete_edge(v, u)?;
        }
        Ok(neighbors)
    }

    /// The current neighbours of `v`, in port order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.ports[v.index()].iter().map(|p| p.node)
    }

    /// Snapshots the current topology into a validated
    /// [`PortNumberedGraph`] — the form a protocol epoch runs on. The
    /// flat involution is rebuilt from the port lists and passes through
    /// [`PortNumberedGraph::from_involution`], so a wiring bug in the
    /// mutable layer surfaces as a structured error here, never as a
    /// misrouted message inside the simulator.
    ///
    /// # Errors
    ///
    /// The validation errors of [`PortNumberedGraph::from_involution`]
    /// (unreachable while the mutation invariants hold).
    pub fn freeze(&self) -> Result<PortNumberedGraph, GraphError> {
        let degrees: Vec<u32> = self.ports.iter().map(|row| row.len() as u32).collect();
        let involution: Vec<Endpoint> = self.ports.iter().flatten().copied().collect();
        let g = PortNumberedGraph::from_involution(degrees, involution)?;
        g.validate()?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, ports};

    fn petersen_topology() -> DynamicTopology {
        let g = ports::canonical_ports(&generators::petersen()).unwrap();
        DynamicTopology::from_graph(&g).unwrap()
    }

    #[test]
    fn round_trips_a_static_graph() {
        let g = ports::shuffled_ports(&generators::petersen(), 3).unwrap();
        let t = DynamicTopology::from_graph(&g).unwrap();
        let frozen = t.freeze().unwrap();
        assert_eq!(frozen, g);
    }

    #[test]
    fn insert_then_delete_is_identity_on_the_edge_set() {
        let mut t = petersen_topology();
        let before = t.freeze().unwrap().to_simple().unwrap();
        let (u, v) = (NodeId::new(0), NodeId::new(7));
        assert!(!t.has_edge(u, v));
        t.insert_edge(u, v).unwrap();
        assert!(t.has_edge(u, v) && t.has_edge(v, u));
        t.delete_edge(v, u).unwrap();
        let after = t.freeze().unwrap().to_simple().unwrap();
        for a in before.nodes() {
            for b in before.nodes() {
                assert_eq!(before.has_edge(a, b), after.has_edge(a, b));
            }
        }
    }

    #[test]
    fn delete_renumbers_densely_and_freeze_validates() {
        // Star: deleting the centre's port 1 moves its highest port down.
        let mut t = DynamicTopology::new(5);
        for leaf in 1..5 {
            t.insert_edge(NodeId::new(0), NodeId::new(leaf)).unwrap();
        }
        t.delete_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(t.degree(NodeId::new(0)), 3);
        assert_eq!(t.degree(NodeId::new(1)), 0);
        let g = t.freeze().unwrap();
        assert!(g.validate().is_ok());
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn isolate_reports_the_neighbors() {
        let mut t = petersen_topology();
        let hit = t.isolate(NodeId::new(0)).unwrap();
        assert_eq!(hit.len(), 3);
        assert_eq!(t.degree(NodeId::new(0)), 0);
        for u in hit {
            assert_eq!(t.degree(u), 2);
        }
        assert_eq!(t.freeze().unwrap().edge_count(), 12);
    }

    #[test]
    fn join_attaches_fresh_nodes() {
        let mut t = petersen_topology();
        let v = t.add_node();
        assert_eq!(v.index(), 10);
        t.insert_edge(v, NodeId::new(2)).unwrap();
        let g = t.freeze().unwrap();
        assert_eq!(g.node_count(), 11);
        assert_eq!(g.degree(v), 1);
    }

    #[test]
    fn structured_errors_for_bad_mutations() {
        let mut t = DynamicTopology::new(2);
        assert!(matches!(
            t.insert_edge(NodeId::new(0), NodeId::new(0)),
            Err(GraphError::LoopNotAllowed { .. })
        ));
        t.insert_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        assert!(matches!(
            t.insert_edge(NodeId::new(1), NodeId::new(0)),
            Err(GraphError::ParallelEdge { .. })
        ));
        assert!(matches!(
            t.insert_edge(NodeId::new(0), NodeId::new(9)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            DynamicTopology::new(3).delete_edge(NodeId::new(0), NodeId::new(1)),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn heavy_churn_preserves_the_involution_invariant() {
        // Deterministic mutation storm; freeze() validates after each.
        let mut t = DynamicTopology::new(12);
        let mut x = 0x243f_6a88_85a3_08d3u64;
        let mut step = || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for _ in 0..400 {
            let u = NodeId::new((step() % 12) as usize);
            let v = NodeId::new((step() % 12) as usize);
            if u == v {
                continue;
            }
            if t.has_edge(u, v) {
                t.delete_edge(u, v).unwrap();
            } else {
                t.insert_edge(u, v).unwrap();
            }
            let g = t.freeze().unwrap();
            assert_eq!(g.edge_count(), t.edge_count());
        }
    }
}

//! A mutable port-numbered topology for dynamic-graph (churn) runs.
//!
//! [`crate::PortNumberedGraph`] is deliberately immutable: its flat slot
//! arena, routing table, and derived edge list are what make the
//! simulator's round loop allocation-free, and none of them survive an
//! edge mutation cheaply. [`DynamicTopology`] is the mutable counterpart
//! the fault-injection harness edits between protocol epochs: a plain
//! adjacency-with-ports structure supporting edge insertion/deletion,
//! node joins, and crash isolation, which [`DynamicTopology::freeze`]s
//! back into a fully validated `PortNumberedGraph` whenever a protocol
//! needs to run.
//!
//! # Port semantics under mutation
//!
//! Ports are assigned **densely in arrival order**: inserting an edge
//! appends a new highest-numbered port at both endpoints; deleting one
//! moves each endpoint's highest port into the vacated slot (a
//! swap-remove) so degrees stay equal to port counts with no holes. Port
//! numbers are therefore *not* stable across deletions — which is the
//! honest model: the paper's algorithms may depend on port numbers
//! arbitrarily, and a topology change is exactly an adversarial
//! renumbering of the affected nodes. Protocols restarted after a churn
//! event must re-converge from the new numbering; nothing in this module
//! tries to preserve the old one.
//!
//! The structure maintains **simple** topologies only: self-loops and
//! parallel edges are rejected with the same structured errors as
//! [`crate::SimpleGraph`]. (The multigraph covers of the lower-bound
//! machinery never churn.)

use std::collections::BTreeMap;

use crate::{Endpoint, GraphError, NodeId, Port, PortNumberedGraph};

/// The mutation capability a churn engine needs, abstracted over storage.
///
/// [`DynamicTopology`] implements it with a dense per-node port table —
/// right for the bench-tier graphs that are mutated heavily and frozen
/// every epoch. [`StreamedDynamicTopology`] implements it as a sparse
/// delta overlay over a borrowed immutable base, so churn over a
/// million-node streamed graph never materialises a second full copy:
/// only the port rows an event actually touches are ever allocated.
///
/// Both implementations share the dense-port mutation semantics described
/// in the [module docs](self) — insertion appends highest ports, deletion
/// swap-removes — so a schedule materialised on one replays identically
/// on the other.
pub trait DynTopology {
    /// Number of nodes (including isolated ones).
    fn node_count(&self) -> usize;

    /// Number of edges.
    fn edge_count(&self) -> usize;

    /// Current degree of `v`.
    fn degree(&self, v: NodeId) -> usize;

    /// Maximum degree over all nodes.
    fn max_degree(&self) -> usize;

    /// Whether `{u, v}` is currently an edge. Out-of-range nodes are
    /// simply not endpoints.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool;

    /// The peer on port `i` (0-based) of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `i >= degree(v)`.
    fn nth_neighbor(&self, v: NodeId, i: usize) -> NodeId;

    /// Calls `f` once per neighbour of `v`, in port order.
    fn visit_neighbors(&self, v: NodeId, f: &mut dyn FnMut(NodeId));

    /// Appends a fresh isolated node and returns its id.
    fn add_node(&mut self) -> NodeId;

    /// Inserts the edge `{u, v}` (see [`DynamicTopology::insert_edge`]).
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`], [`GraphError::LoopNotAllowed`], or
    /// [`GraphError::ParallelEdge`], as for the dense implementation.
    fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError>;

    /// Deletes the edge `{u, v}` (see [`DynamicTopology::delete_edge`]).
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] or [`GraphError::InvalidParameter`]
    /// if the edge does not exist.
    fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError>;

    /// Crashes `v`: deletes every incident edge and returns the former
    /// neighbours in port order (see [`DynamicTopology::isolate`]).
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] for an unknown node.
    fn isolate(&mut self, v: NodeId) -> Result<Vec<NodeId>, GraphError>;

    /// Snapshots the current topology into a validated
    /// [`PortNumberedGraph`] (see [`DynamicTopology::freeze`]).
    ///
    /// # Errors
    ///
    /// The validation errors of [`PortNumberedGraph::from_involution`].
    fn freeze(&self) -> Result<PortNumberedGraph, GraphError>;
}

/// A mutable simple topology with dense per-node port assignments.
///
/// See the [module docs](self) for the mutation semantics.
///
/// # Examples
///
/// ```
/// use pn_graph::{DynamicTopology, NodeId};
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// let mut t = DynamicTopology::new(3);
/// t.insert_edge(NodeId::new(0), NodeId::new(1))?;
/// t.insert_edge(NodeId::new(1), NodeId::new(2))?;
/// t.delete_edge(NodeId::new(0), NodeId::new(1))?;
/// let g = t.freeze()?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DynamicTopology {
    /// `ports[v][i]` is the peer endpoint wired to port `i + 1` of `v`.
    ports: Vec<Vec<Endpoint>>,
}

impl DynamicTopology {
    /// An edgeless topology on `n` nodes.
    pub fn new(n: usize) -> Self {
        DynamicTopology {
            ports: vec![Vec::new(); n],
        }
    }

    /// Copies the wiring of an existing port-numbered graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotSimple`] if `g` has loops of either kind
    /// — the dynamic layer maintains simple topologies only.
    pub fn from_graph(g: &PortNumberedGraph) -> Result<Self, GraphError> {
        let mut ports = Vec::with_capacity(g.node_count());
        for v in g.nodes() {
            let mut row = Vec::with_capacity(g.degree(v));
            for i in 0..g.degree(v) {
                let peer = g.connection(Endpoint::new(v, Port::from_index(i)));
                if peer.node == v {
                    return Err(GraphError::NotSimple {
                        detail: format!("loop at node {v}"),
                    });
                }
                row.push(peer);
            }
            ports.push(row);
        }
        Ok(DynamicTopology { ports })
    }

    /// Number of nodes (including isolated ones).
    pub fn node_count(&self) -> usize {
        self.ports.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.ports.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Current degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        self.ports[v.index()].len()
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        self.ports.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether `{u, v}` is currently an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u.index() < self.ports.len() && self.ports[u.index()].iter().any(|peer| peer.node == v)
    }

    /// Appends a fresh isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.ports.push(Vec::new());
        NodeId::new(self.ports.len() - 1)
    }

    fn check_node(&self, v: NodeId) -> Result<(), GraphError> {
        if v.index() >= self.ports.len() {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                nodes: self.ports.len(),
            });
        }
        Ok(())
    }

    /// Inserts the edge `{u, v}`, appending a new highest port at each
    /// endpoint.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] for an unknown node,
    /// [`GraphError::LoopNotAllowed`] if `u == v`, and
    /// [`GraphError::ParallelEdge`] if the edge already exists.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::LoopNotAllowed { node: u });
        }
        if self.has_edge(u, v) {
            return Err(GraphError::ParallelEdge { u, v });
        }
        let pu = Port::from_index(self.ports[u.index()].len());
        let pv = Port::from_index(self.ports[v.index()].len());
        self.ports[u.index()].push(Endpoint::new(v, pv));
        self.ports[v.index()].push(Endpoint::new(u, pu));
        Ok(())
    }

    /// Unwires port `i` of `v` by swap-remove: the node's highest port
    /// moves into slot `i` and its peer is re-pointed at the new number.
    /// The peer of the *removed* port is left untouched (the caller
    /// removes it separately).
    fn remove_port(&mut self, v: NodeId, i: usize) {
        let row = &mut self.ports[v.index()];
        let last = row.len() - 1;
        row.swap_remove(i);
        if i < last {
            // The moved port kept its peer; tell the peer the new number.
            let moved_peer = self.ports[v.index()][i];
            self.ports[moved_peer.node.index()][moved_peer.port.index()] =
                Endpoint::new(v, Port::from_index(i));
        }
    }

    /// Deletes the edge `{u, v}`. Each endpoint's highest-numbered port
    /// is swap-removed into the vacated slot, so the surviving ports of
    /// `u` and `v` are renumbered (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] for an unknown node, or
    /// [`GraphError::InvalidParameter`] if the edge does not exist.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        let Some(i) = self.ports[u.index()].iter().position(|peer| peer.node == v) else {
            return Err(GraphError::InvalidParameter {
                detail: format!("edge {{{u}, {v}}} does not exist"),
            });
        };
        let j = self.ports[u.index()][i].port.index();
        // Removing (u, i) can move u's highest port down and re-point its
        // peer entry — never (v, j): (v, j)'s peer is (u, i), and the
        // moved port is u's old highest, distinct from i.
        self.remove_port(u, i);
        self.remove_port(v, j);
        Ok(())
    }

    /// Crashes `v`: deletes every incident edge, leaving the node in
    /// place with degree 0. Returns the former neighbours (the nodes a
    /// repair pass must revisit), in the port order they occupied.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] for an unknown node.
    pub fn isolate(&mut self, v: NodeId) -> Result<Vec<NodeId>, GraphError> {
        self.check_node(v)?;
        let neighbors: Vec<NodeId> = self.ports[v.index()].iter().map(|p| p.node).collect();
        for &u in &neighbors {
            self.delete_edge(v, u)?;
        }
        Ok(neighbors)
    }

    /// The current neighbours of `v`, in port order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.ports[v.index()].iter().map(|p| p.node)
    }

    /// Snapshots the current topology into a validated
    /// [`PortNumberedGraph`] — the form a protocol epoch runs on. The
    /// flat involution is rebuilt from the port lists and passes through
    /// [`PortNumberedGraph::from_involution`], so a wiring bug in the
    /// mutable layer surfaces as a structured error here, never as a
    /// misrouted message inside the simulator.
    ///
    /// # Errors
    ///
    /// The validation errors of [`PortNumberedGraph::from_involution`]
    /// (unreachable while the mutation invariants hold).
    pub fn freeze(&self) -> Result<PortNumberedGraph, GraphError> {
        let degrees: Vec<u32> = self.ports.iter().map(|row| row.len() as u32).collect();
        let involution: Vec<Endpoint> = self.ports.iter().flatten().copied().collect();
        let g = PortNumberedGraph::from_involution(degrees, involution)?;
        g.validate()?;
        Ok(g)
    }
}

impl DynTopology for DynamicTopology {
    fn node_count(&self) -> usize {
        DynamicTopology::node_count(self)
    }

    fn edge_count(&self) -> usize {
        DynamicTopology::edge_count(self)
    }

    fn degree(&self, v: NodeId) -> usize {
        DynamicTopology::degree(self, v)
    }

    fn max_degree(&self) -> usize {
        DynamicTopology::max_degree(self)
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        DynamicTopology::has_edge(self, u, v)
    }

    fn nth_neighbor(&self, v: NodeId, i: usize) -> NodeId {
        self.ports[v.index()][i].node
    }

    fn visit_neighbors(&self, v: NodeId, f: &mut dyn FnMut(NodeId)) {
        for p in &self.ports[v.index()] {
            f(p.node);
        }
    }

    fn add_node(&mut self) -> NodeId {
        DynamicTopology::add_node(self)
    }

    fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        DynamicTopology::insert_edge(self, u, v)
    }

    fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        DynamicTopology::delete_edge(self, u, v)
    }

    fn isolate(&mut self, v: NodeId) -> Result<Vec<NodeId>, GraphError> {
        DynamicTopology::isolate(self, v)
    }

    fn freeze(&self) -> Result<PortNumberedGraph, GraphError> {
        DynamicTopology::freeze(self)
    }
}

/// A churn overlay over a borrowed, immutable [`PortNumberedGraph`].
///
/// The base graph is never copied: a node's port row lives in the sparse
/// `overlay` map only once a mutation touches it (directly, or indirectly
/// when a swap-removed port at a neighbour re-points a peer entry), and
/// joined nodes live in a short `appended` tail. Reads fall through to
/// the base for untouched rows, so memory stays proportional to the
/// damage, not the graph — the property that makes million-node churn
/// affordable. [`StreamedDynamicTopology::freeze`] streams the base plus
/// overlay into one fresh involution without intermediate copies.
///
/// Mutation semantics (dense ports, swap-remove deletion) are identical
/// to [`DynamicTopology`]; see the [module docs](self).
#[derive(Clone, Debug)]
pub struct StreamedDynamicTopology<'g> {
    base: &'g PortNumberedGraph,
    /// Materialised port rows for base nodes a mutation has touched.
    overlay: BTreeMap<usize, Vec<Endpoint>>,
    /// Port rows for nodes joined after construction; node id is
    /// `base.node_count() + index`.
    appended: Vec<Vec<Endpoint>>,
    edges: usize,
}

impl<'g> StreamedDynamicTopology<'g> {
    /// Wraps `base` with an empty overlay. Infallible: the base is
    /// already a validated simple port-numbered graph.
    pub fn new(base: &'g PortNumberedGraph) -> Self {
        StreamedDynamicTopology {
            base,
            overlay: BTreeMap::new(),
            appended: Vec::new(),
            edges: base.edge_count(),
        }
    }

    /// Number of base-node port rows the overlay has materialised — the
    /// memory footprint the streaming contract bounds.
    pub fn overlay_rows(&self) -> usize {
        self.overlay.len()
    }

    /// Number of nodes (including isolated and joined ones).
    pub fn node_count(&self) -> usize {
        self.base.node_count() + self.appended.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Current degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        let base_n = self.base.node_count();
        if v.index() >= base_n {
            self.appended[v.index() - base_n].len()
        } else if let Some(row) = self.overlay.get(&v.index()) {
            row.len()
        } else {
            self.base.degree(v)
        }
    }

    /// The peer endpoint wired to port `i` of `v`.
    fn port_entry(&self, v: usize, i: usize) -> Endpoint {
        let base_n = self.base.node_count();
        if v >= base_n {
            self.appended[v - base_n][i]
        } else if let Some(row) = self.overlay.get(&v) {
            row[i]
        } else {
            self.base
                .connection(Endpoint::new(NodeId::new(v), Port::from_index(i)))
        }
    }

    /// The mutable row of `v`, materialising it from the base on first
    /// touch.
    fn row_mut(&mut self, v: usize) -> &mut Vec<Endpoint> {
        let base_n = self.base.node_count();
        if v >= base_n {
            &mut self.appended[v - base_n]
        } else {
            let base = self.base;
            self.overlay.entry(v).or_insert_with(|| {
                (0..base.degree(NodeId::new(v)))
                    .map(|i| base.connection(Endpoint::new(NodeId::new(v), Port::from_index(i))))
                    .collect()
            })
        }
    }

    /// Whether `{u, v}` is currently an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u.index() >= self.node_count() || v.index() >= self.node_count() {
            return false;
        }
        (0..self.degree(u)).any(|i| self.port_entry(u.index(), i).node == v)
    }

    /// The current neighbours of `v`, in port order.
    pub fn visit_neighbors(&self, v: NodeId, f: &mut dyn FnMut(NodeId)) {
        for i in 0..self.degree(v) {
            f(self.port_entry(v.index(), i).node);
        }
    }

    fn check_node(&self, v: NodeId) -> Result<(), GraphError> {
        if v.index() >= self.node_count() {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                nodes: self.node_count(),
            });
        }
        Ok(())
    }

    /// Unwires port `i` of `v` by swap-remove, mirroring
    /// [`DynamicTopology`]'s renumbering exactly. Re-pointing the moved
    /// port's peer may materialise that peer's row — overlay growth stays
    /// proportional to the damage neighbourhood.
    fn remove_port(&mut self, v: NodeId, i: usize) {
        let row = self.row_mut(v.index());
        let last = row.len() - 1;
        row.swap_remove(i);
        if i < last {
            let moved_peer = self.row_mut(v.index())[i];
            self.row_mut(moved_peer.node.index())[moved_peer.port.index()] =
                Endpoint::new(v, Port::from_index(i));
        }
    }
}

impl DynTopology for StreamedDynamicTopology<'_> {
    fn node_count(&self) -> usize {
        StreamedDynamicTopology::node_count(self)
    }

    fn edge_count(&self) -> usize {
        StreamedDynamicTopology::edge_count(self)
    }

    fn degree(&self, v: NodeId) -> usize {
        StreamedDynamicTopology::degree(self, v)
    }

    /// Exact, in `O(node_count + overlay)`: untouched rows read the base
    /// degree in constant time.
    fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|v| self.degree(NodeId::new(v)))
            .max()
            .unwrap_or(0)
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        StreamedDynamicTopology::has_edge(self, u, v)
    }

    fn nth_neighbor(&self, v: NodeId, i: usize) -> NodeId {
        self.port_entry(v.index(), i).node
    }

    fn visit_neighbors(&self, v: NodeId, f: &mut dyn FnMut(NodeId)) {
        StreamedDynamicTopology::visit_neighbors(self, v, f)
    }

    fn add_node(&mut self) -> NodeId {
        self.appended.push(Vec::new());
        NodeId::new(self.base.node_count() + self.appended.len() - 1)
    }

    fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::LoopNotAllowed { node: u });
        }
        if self.has_edge(u, v) {
            return Err(GraphError::ParallelEdge { u, v });
        }
        let pu = Port::from_index(self.degree(u));
        let pv = Port::from_index(self.degree(v));
        self.row_mut(u.index()).push(Endpoint::new(v, pv));
        self.row_mut(v.index()).push(Endpoint::new(u, pu));
        self.edges += 1;
        Ok(())
    }

    fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        let Some(i) = (0..self.degree(u)).find(|&i| self.port_entry(u.index(), i).node == v) else {
            return Err(GraphError::InvalidParameter {
                detail: format!("edge {{{u}, {v}}} does not exist"),
            });
        };
        let j = self.port_entry(u.index(), i).port.index();
        // As in the dense implementation: removing (u, i) can re-point
        // the peer of u's old highest port, never (v, j) itself.
        self.remove_port(u, i);
        self.remove_port(v, j);
        self.edges -= 1;
        Ok(())
    }

    fn isolate(&mut self, v: NodeId) -> Result<Vec<NodeId>, GraphError> {
        self.check_node(v)?;
        let neighbors: Vec<NodeId> = (0..self.degree(v))
            .map(|i| self.port_entry(v.index(), i).node)
            .collect();
        for &u in &neighbors {
            self.delete_edge(v, u)?;
        }
        Ok(neighbors)
    }

    /// Streams base + overlay into one fresh involution — the single
    /// full-size allocation of the streamed path, paid only when a
    /// protocol epoch actually needs a frozen graph.
    fn freeze(&self) -> Result<PortNumberedGraph, GraphError> {
        let n = self.node_count();
        let mut degrees: Vec<u32> = Vec::with_capacity(n);
        let mut involution: Vec<Endpoint> = Vec::new();
        for v in 0..n {
            let d = self.degree(NodeId::new(v));
            degrees.push(d as u32);
            for i in 0..d {
                involution.push(self.port_entry(v, i));
            }
        }
        let g = PortNumberedGraph::from_involution(degrees, involution)?;
        g.validate()?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, ports};

    fn petersen_topology() -> DynamicTopology {
        let g = ports::canonical_ports(&generators::petersen()).unwrap();
        DynamicTopology::from_graph(&g).unwrap()
    }

    #[test]
    fn round_trips_a_static_graph() {
        let g = ports::shuffled_ports(&generators::petersen(), 3).unwrap();
        let t = DynamicTopology::from_graph(&g).unwrap();
        let frozen = t.freeze().unwrap();
        assert_eq!(frozen, g);
    }

    #[test]
    fn insert_then_delete_is_identity_on_the_edge_set() {
        let mut t = petersen_topology();
        let before = t.freeze().unwrap().to_simple().unwrap();
        let (u, v) = (NodeId::new(0), NodeId::new(7));
        assert!(!t.has_edge(u, v));
        t.insert_edge(u, v).unwrap();
        assert!(t.has_edge(u, v) && t.has_edge(v, u));
        t.delete_edge(v, u).unwrap();
        let after = t.freeze().unwrap().to_simple().unwrap();
        for a in before.nodes() {
            for b in before.nodes() {
                assert_eq!(before.has_edge(a, b), after.has_edge(a, b));
            }
        }
    }

    #[test]
    fn delete_renumbers_densely_and_freeze_validates() {
        // Star: deleting the centre's port 1 moves its highest port down.
        let mut t = DynamicTopology::new(5);
        for leaf in 1..5 {
            t.insert_edge(NodeId::new(0), NodeId::new(leaf)).unwrap();
        }
        t.delete_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(t.degree(NodeId::new(0)), 3);
        assert_eq!(t.degree(NodeId::new(1)), 0);
        let g = t.freeze().unwrap();
        assert!(g.validate().is_ok());
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn isolate_reports_the_neighbors() {
        let mut t = petersen_topology();
        let hit = t.isolate(NodeId::new(0)).unwrap();
        assert_eq!(hit.len(), 3);
        assert_eq!(t.degree(NodeId::new(0)), 0);
        for u in hit {
            assert_eq!(t.degree(u), 2);
        }
        assert_eq!(t.freeze().unwrap().edge_count(), 12);
    }

    #[test]
    fn join_attaches_fresh_nodes() {
        let mut t = petersen_topology();
        let v = t.add_node();
        assert_eq!(v.index(), 10);
        t.insert_edge(v, NodeId::new(2)).unwrap();
        let g = t.freeze().unwrap();
        assert_eq!(g.node_count(), 11);
        assert_eq!(g.degree(v), 1);
    }

    #[test]
    fn structured_errors_for_bad_mutations() {
        let mut t = DynamicTopology::new(2);
        assert!(matches!(
            t.insert_edge(NodeId::new(0), NodeId::new(0)),
            Err(GraphError::LoopNotAllowed { .. })
        ));
        t.insert_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        assert!(matches!(
            t.insert_edge(NodeId::new(1), NodeId::new(0)),
            Err(GraphError::ParallelEdge { .. })
        ));
        assert!(matches!(
            t.insert_edge(NodeId::new(0), NodeId::new(9)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            DynamicTopology::new(3).delete_edge(NodeId::new(0), NodeId::new(1)),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn streamed_overlay_matches_dense_under_mutation() {
        // Replay the same mutation sequence on the dense and streamed
        // implementations; the frozen graphs must be identical, because
        // both use the same dense-port swap-remove semantics.
        let base = ports::shuffled_ports(
            &generators::random_bounded_degree(64, 5, 0.6, 9).unwrap(),
            4,
        )
        .unwrap();
        let mut dense = DynamicTopology::from_graph(&base).unwrap();
        let mut streamed = StreamedDynamicTopology::new(&base);
        assert_eq!(streamed.edge_count(), dense.edge_count());
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut step = || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for round in 0..200 {
            let u = NodeId::new((step() % 64) as usize);
            let v = NodeId::new((step() % 64) as usize);
            if u == v {
                continue;
            }
            assert_eq!(dense.has_edge(u, v), streamed.has_edge(u, v));
            if dense.has_edge(u, v) {
                dense.delete_edge(u, v).unwrap();
                DynTopology::delete_edge(&mut streamed, u, v).unwrap();
            } else {
                dense.insert_edge(u, v).unwrap();
                DynTopology::insert_edge(&mut streamed, u, v).unwrap();
            }
            if round % 40 == 17 {
                let w = NodeId::new((step() % 64) as usize);
                assert_eq!(
                    dense.isolate(w).unwrap(),
                    DynTopology::isolate(&mut streamed, w).unwrap()
                );
            }
            assert_eq!(dense.edge_count(), streamed.edge_count());
        }
        let j = DynTopology::add_node(&mut streamed);
        assert_eq!(dense.add_node(), j);
        dense.insert_edge(j, NodeId::new(3)).unwrap();
        DynTopology::insert_edge(&mut streamed, j, NodeId::new(3)).unwrap();
        assert_eq!(
            DynTopology::max_degree(&streamed),
            dense.max_degree(),
            "exact max degree over base + overlay"
        );
        assert_eq!(
            DynTopology::freeze(&streamed).unwrap(),
            dense.freeze().unwrap()
        );
    }

    #[test]
    fn streamed_overlay_stays_sparse() {
        // One edge deletion on a 4096-node cycle touches the two
        // endpoints plus at most the re-pointed peers — never O(n) rows.
        let base = ports::canonical_ports(&generators::cycle(4096).unwrap()).unwrap();
        let mut t = StreamedDynamicTopology::new(&base);
        assert_eq!(t.overlay_rows(), 0);
        DynTopology::delete_edge(&mut t, NodeId::new(100), NodeId::new(101)).unwrap();
        assert!(
            t.overlay_rows() <= 4,
            "overlay materialised {} rows for one deletion",
            t.overlay_rows()
        );
        assert_eq!(t.edge_count(), 4095);
        assert_eq!(t.degree(NodeId::new(100)), 1);
        let g = DynTopology::freeze(&t).unwrap();
        assert_eq!(g.edge_count(), 4095);
        assert!(!g
            .to_simple()
            .unwrap()
            .has_edge(NodeId::new(100), NodeId::new(101)));
    }

    #[test]
    fn heavy_churn_preserves_the_involution_invariant() {
        // Deterministic mutation storm; freeze() validates after each.
        let mut t = DynamicTopology::new(12);
        let mut x = 0x243f_6a88_85a3_08d3u64;
        let mut step = || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for _ in 0..400 {
            let u = NodeId::new((step() % 12) as usize);
            let v = NodeId::new((step() % 12) as usize);
            if u == v {
                continue;
            }
            if t.has_edge(u, v) {
                t.delete_edge(u, v).unwrap();
            } else {
                t.insert_edge(u, v).unwrap();
            }
            let g = t.freeze().unwrap();
            assert_eq!(g.edge_count(), t.edge_count());
        }
    }
}

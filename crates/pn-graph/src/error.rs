//! Error types for graph construction and validation.

use std::error::Error;
use std::fmt;

use crate::{Endpoint, NodeId};

/// Errors produced while building or validating graphs.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node identifier was out of range for the graph.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// A port number exceeded the degree of its node.
    PortOutOfRange {
        /// The offending endpoint.
        endpoint: Endpoint,
        /// Degree of the node.
        degree: usize,
    },
    /// A self-loop was inserted into a graph that does not allow them.
    LoopNotAllowed {
        /// The node at which the loop was attempted.
        node: NodeId,
    },
    /// A parallel edge was inserted into a graph that does not allow them.
    ParallelEdge {
        /// First endpoint of the duplicated edge.
        u: NodeId,
        /// Second endpoint of the duplicated edge.
        v: NodeId,
    },
    /// A port was connected twice while building a port-numbered graph.
    PortAlreadyConnected {
        /// The endpoint that already had a connection.
        endpoint: Endpoint,
    },
    /// After building, some port was never connected (the involution must be
    /// total over `P_G`).
    PortUnconnected {
        /// The endpoint left dangling.
        endpoint: Endpoint,
    },
    /// The supplied port map is not an involution (`p(p(x)) != x`).
    NotAnInvolution {
        /// Endpoint at which the property fails.
        endpoint: Endpoint,
    },
    /// An operation required a regular graph but degrees differ.
    NotRegular {
        /// A node with a deviating degree.
        node: NodeId,
        /// The degree found at `node`.
        found: usize,
        /// The degree expected everywhere.
        expected: usize,
    },
    /// An operation required all degrees to be even (e.g. Euler circuits,
    /// 2-factorisation).
    OddDegree {
        /// A node of odd degree.
        node: NodeId,
        /// Its degree.
        degree: usize,
    },
    /// An operation required a simple graph but the graph has loops or
    /// parallel edges.
    NotSimple {
        /// Human-readable detail of the violation.
        detail: String,
    },
    /// A covering-map check failed.
    NotACoveringMap {
        /// Human-readable detail of the violation.
        detail: String,
    },
    /// A requested construction does not exist for the given parameters.
    InvalidParameter {
        /// Human-readable description of the parameter problem.
        detail: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for graph with {nodes} nodes")
            }
            GraphError::PortOutOfRange { endpoint, degree } => {
                write!(
                    f,
                    "port {} exceeds degree {degree} of node {}",
                    endpoint.port, endpoint.node
                )
            }
            GraphError::LoopNotAllowed { node } => {
                write!(f, "self-loop at node {node} not allowed in a simple graph")
            }
            GraphError::ParallelEdge { u, v } => {
                write!(
                    f,
                    "parallel edge {{{u}, {v}}} not allowed in a simple graph"
                )
            }
            GraphError::PortAlreadyConnected { endpoint } => {
                write!(f, "port {endpoint} is already connected")
            }
            GraphError::PortUnconnected { endpoint } => {
                write!(f, "port {endpoint} was never connected")
            }
            GraphError::NotAnInvolution { endpoint } => {
                write!(f, "port map is not an involution at {endpoint}")
            }
            GraphError::NotRegular {
                node,
                found,
                expected,
            } => {
                write!(
                    f,
                    "graph is not regular: node {node} has degree {found}, expected {expected}"
                )
            }
            GraphError::OddDegree { node, degree } => {
                write!(f, "node {node} has odd degree {degree}")
            }
            GraphError::NotSimple { detail } => write!(f, "graph is not simple: {detail}"),
            GraphError::NotACoveringMap { detail } => {
                write!(f, "not a covering map: {detail}")
            }
            GraphError::InvalidParameter { detail } => {
                write!(f, "invalid parameter: {detail}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Port;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errors = vec![
            GraphError::NodeOutOfRange {
                node: NodeId::new(7),
                nodes: 3,
            },
            GraphError::LoopNotAllowed {
                node: NodeId::new(0),
            },
            GraphError::ParallelEdge {
                u: NodeId::new(0),
                v: NodeId::new(1),
            },
            GraphError::PortAlreadyConnected {
                endpoint: Endpoint::new(NodeId::new(0), Port::new(1)),
            },
            GraphError::NotSimple {
                detail: "loop at node 0".to_owned(),
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("graph"));
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(GraphError::InvalidParameter {
            detail: "d must be even".to_owned(),
        });
        assert!(e.to_string().contains("d must be even"));
    }
}

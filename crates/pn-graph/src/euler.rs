//! Euler circuits of multigraphs with all-even degrees.
//!
//! Euler circuits are the engine behind Petersen's 2-factorisation theorem
//! ([`crate::factorization`]): orienting a `2k`-regular graph along Euler
//! circuits gives every node out-degree and in-degree exactly `k`.

use crate::{EdgeId, GraphError, MultiGraph, NodeId};

/// One closed walk that uses a set of edges exactly once each.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EulerCircuit {
    /// The walk as a sequence of directed steps `from --edge--> to`;
    /// consecutive steps share a node and the walk is closed
    /// (`steps.last().to == steps.first().from`).
    pub steps: Vec<EulerStep>,
}

/// One directed step of an Euler circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EulerStep {
    /// Tail of the traversed edge.
    pub from: NodeId,
    /// Head of the traversed edge.
    pub to: NodeId,
    /// The traversed edge.
    pub edge: EdgeId,
}

/// Computes Euler circuits covering every edge of `g` exactly once, one
/// circuit per connected component that has edges.
///
/// Loops are traversed once (they contribute 2 to the degree, so the parity
/// condition is unaffected).
///
/// # Errors
///
/// Returns [`GraphError::OddDegree`] if some node has odd degree; an Euler
/// circuit through every edge then cannot exist.
///
/// # Examples
///
/// ```
/// use pn_graph::{MultiGraph, euler::euler_circuits};
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// let mut g = MultiGraph::new(3);
/// g.add_edge_ids(0, 1);
/// g.add_edge_ids(1, 2);
/// g.add_edge_ids(2, 0);
/// let circuits = euler_circuits(&g)?;
/// assert_eq!(circuits.len(), 1);
/// assert_eq!(circuits[0].steps.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn euler_circuits(g: &MultiGraph) -> Result<Vec<EulerCircuit>, GraphError> {
    for v in g.nodes() {
        if !g.degree(v).is_multiple_of(2) {
            return Err(GraphError::OddDegree {
                node: v,
                degree: g.degree(v),
            });
        }
    }
    let n = g.node_count();
    let mut used = vec![false; g.edge_count()];
    let mut cursor = vec![0usize; n];
    let mut visited = vec![false; n];
    let mut circuits = Vec::new();

    for start in g.nodes() {
        if visited[start.index()] || g.degree(start) == 0 {
            visited[start.index()] = true;
            continue;
        }
        // Hierholzer, iterative: stack entries are (node, edge used to
        // enter). Popped entries, reversed, form the circuit.
        let mut stack: Vec<(NodeId, Option<EdgeId>)> = vec![(start, None)];
        let mut walk: Vec<(NodeId, Option<EdgeId>)> = Vec::new();
        while let Some(&(v, _)) = stack.last() {
            visited[v.index()] = true;
            let adj = g.neighbors(v);
            let mut advanced = false;
            while cursor[v.index()] < adj.len() {
                let (u, e) = adj[cursor[v.index()]];
                cursor[v.index()] += 1;
                if !used[e.index()] {
                    used[e.index()] = true;
                    stack.push((u, Some(e)));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                walk.push(stack.pop().expect("stack is non-empty"));
            }
        }
        walk.reverse();
        let mut steps = Vec::with_capacity(walk.len().saturating_sub(1));
        for w in walk.windows(2) {
            let (from, _) = w[0];
            let (to, entered_by) = w[1];
            steps.push(EulerStep {
                from,
                to,
                edge: entered_by.expect("every non-initial walk entry has an edge"),
            });
        }
        circuits.push(EulerCircuit { steps });
    }
    Ok(circuits)
}

/// Orients every edge of `g` along Euler circuits.
///
/// Returns, for each edge id, the traversal direction `(tail, head)`. Every
/// node ends up with out-degree equal to in-degree (half of its degree).
///
/// # Errors
///
/// Same as [`euler_circuits`].
pub fn euler_orientation(g: &MultiGraph) -> Result<Vec<(NodeId, NodeId)>, GraphError> {
    let circuits = euler_circuits(g)?;
    let mut orientation = vec![None; g.edge_count()];
    for c in &circuits {
        for s in &c.steps {
            debug_assert!(orientation[s.edge.index()].is_none());
            orientation[s.edge.index()] = Some((s.from, s.to));
        }
    }
    Ok(orientation
        .into_iter()
        .map(|o| o.expect("euler circuits cover every edge"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_circuits(g: &MultiGraph) {
        let circuits = euler_circuits(g).unwrap();
        let mut seen = vec![false; g.edge_count()];
        for c in &circuits {
            assert!(!c.steps.is_empty());
            // Closed and connected walk.
            assert_eq!(c.steps.first().unwrap().from, c.steps.last().unwrap().to);
            for w in c.steps.windows(2) {
                assert_eq!(w[0].to, w[1].from);
            }
            for s in &c.steps {
                assert!(!seen[s.edge.index()], "edge used twice");
                seen[s.edge.index()] = true;
                let (a, b) = g.endpoints(s.edge);
                assert!(
                    (s.from, s.to) == (a, b) || (s.from, s.to) == (b, a),
                    "step uses edge endpoints"
                );
            }
        }
        assert!(seen.iter().all(|&x| x), "every edge covered");
    }

    #[test]
    fn triangle() {
        let mut g = MultiGraph::new(3);
        g.add_edge_ids(0, 1);
        g.add_edge_ids(1, 2);
        g.add_edge_ids(2, 0);
        check_circuits(&g);
    }

    #[test]
    fn two_components() {
        let mut g = MultiGraph::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_edge_ids(u, v);
        }
        let circuits = euler_circuits(&g).unwrap();
        assert_eq!(circuits.len(), 2);
        check_circuits(&g);
    }

    #[test]
    fn with_loops_and_parallels() {
        let mut g = MultiGraph::new(2);
        g.add_edge_ids(0, 0); // loop
        g.add_edge_ids(0, 1);
        g.add_edge_ids(1, 0); // parallel
        g.add_edge_ids(1, 1); // loop
        check_circuits(&g);
    }

    #[test]
    fn odd_degree_rejected() {
        let mut g = MultiGraph::new(2);
        g.add_edge_ids(0, 1);
        assert!(matches!(
            euler_circuits(&g),
            Err(GraphError::OddDegree { .. })
        ));
    }

    #[test]
    fn k5_eulerian() {
        // K5 is 4-regular, hence Eulerian.
        let mut g = MultiGraph::new(5);
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_edge_ids(u, v);
            }
        }
        check_circuits(&g);
        let orientation = euler_orientation(&g).unwrap();
        let mut out = [0usize; 5];
        let mut inn = [0usize; 5];
        for (t, h) in orientation {
            out[t.index()] += 1;
            inn[h.index()] += 1;
        }
        for v in 0..5 {
            assert_eq!(out[v], 2);
            assert_eq!(inn[v], 2);
        }
    }

    #[test]
    fn isolated_nodes_skipped() {
        let g = MultiGraph::new(4);
        assert!(euler_circuits(&g).unwrap().is_empty());
    }
}

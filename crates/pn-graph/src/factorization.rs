//! Petersen's 2-factorisation theorem, constructively.
//!
//! A *2-factor* of a graph `G` is a 2-regular spanning subgraph; a
//! *2-factorisation* partitions the edge set into 2-factors. Petersen
//! (1891) proved that **every `2k`-regular multigraph has a
//! 2-factorisation**. The lower-bound constructions of the paper (Theorems
//! 1 and 2) use this to build adversarial port numberings: ports `2i-1` and
//! `2i` are threaded along the directed cycles of factor `i`, which makes
//! entire graphs look locally like tiny multigraphs.
//!
//! The construction implemented here is the textbook proof (Diestel,
//! 3rd ed., p. 39):
//!
//! 1. orient every edge along Euler circuits ([`crate::euler`]); every node
//!    now has out-degree and in-degree `k`;
//! 2. form the bipartite graph `B` with a left copy `v⁺` and right copy
//!    `v⁻` of every node and an edge `v⁺u⁻` per arc `v → u`; `B` is
//!    `k`-regular;
//! 3. peel `k` perfect matchings off `B` (a `k`-regular bipartite graph
//!    always has one, by Hall's theorem); each matching assigns to every
//!    node exactly one outgoing and one incoming arc — an **oriented
//!    2-factor**.

use crate::euler::euler_orientation;
use crate::matching::{hopcroft_karp, Bipartite};
use crate::{EdgeId, GraphError, MultiGraph, NodeId, SimpleGraph};

/// A 2-factor together with an orientation into disjoint directed cycles.
///
/// Every node has exactly one outgoing arc (`successor`) and one incoming
/// arc; following successors traces the directed cycles of the factor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrientedTwoFactor {
    /// `out[v] = (successor of v, edge used)`.
    out: Vec<(NodeId, EdgeId)>,
}

impl OrientedTwoFactor {
    /// The successor of `v` and the edge to it.
    pub fn successor(&self, v: NodeId) -> (NodeId, EdgeId) {
        self.out[v.index()]
    }

    /// Iterates over all arcs `(from, to, edge)` of the factor.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeId)> + '_ {
        self.out
            .iter()
            .enumerate()
            .map(|(v, &(u, e))| (NodeId::new(v), u, e))
    }

    /// The edge identifiers of the factor, in node order of the tails.
    pub fn edge_ids(&self) -> Vec<EdgeId> {
        self.out.iter().map(|&(_, e)| e).collect()
    }

    /// Number of nodes spanned (every node of the host graph).
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Decomposes the factor into its directed cycles, each given as the
    /// sequence of nodes in traversal order.
    pub fn cycles(&self) -> Vec<Vec<NodeId>> {
        let n = self.out.len();
        let mut seen = vec![false; n];
        let mut cycles = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut cycle = Vec::new();
            let mut v = NodeId::new(start);
            while !seen[v.index()] {
                seen[v.index()] = true;
                cycle.push(v);
                v = self.out[v.index()].0;
            }
            cycles.push(cycle);
        }
        cycles
    }
}

/// Computes an oriented 2-factorisation of a `2k`-regular multigraph.
///
/// Returns `k` oriented 2-factors whose edge sets partition the edges of
/// `g`.
///
/// # Errors
///
/// Returns [`GraphError::NotRegular`] if the graph is not regular and
/// [`GraphError::OddDegree`] if the common degree is odd.
///
/// # Examples
///
/// ```
/// use pn_graph::{MultiGraph, factorization::two_factorize};
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// // K5 is 4-regular: it splits into two 2-factors.
/// let mut g = MultiGraph::new(5);
/// for u in 0..5 {
///     for v in (u + 1)..5 {
///         g.add_edge_ids(u, v);
///     }
/// }
/// let factors = two_factorize(&g)?;
/// assert_eq!(factors.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn two_factorize(g: &MultiGraph) -> Result<Vec<OrientedTwoFactor>, GraphError> {
    let n = g.node_count();
    let d = match g.regular_degree() {
        Some(d) => d,
        None => {
            let dmax = g.nodes().map(|v| g.degree(v)).max().unwrap_or(0);
            let bad = g
                .nodes()
                .find(|&v| g.degree(v) != dmax)
                .expect("irregular graph has a deviating node");
            return Err(GraphError::NotRegular {
                node: bad,
                found: g.degree(bad),
                expected: dmax,
            });
        }
    };
    if d % 2 != 0 {
        let v = g
            .nodes()
            .next()
            .expect("regular graph of odd degree is non-empty");
        return Err(GraphError::OddDegree { node: v, degree: d });
    }
    let k = d / 2;
    if k == 0 {
        return Ok(Vec::new());
    }

    // Step 1: Euler orientation.
    let orientation = euler_orientation(g)?;

    // Step 2: bipartite out/in graph; the tag of each bipartite edge is the
    // original edge id.
    let arcs: Vec<(NodeId, NodeId, EdgeId)> = orientation
        .iter()
        .enumerate()
        .map(|(e, &(t, h))| (t, h, EdgeId::new(e)))
        .collect();

    let mut remaining: Vec<bool> = vec![true; arcs.len()];
    let mut factors = Vec::with_capacity(k);

    // Step 3: peel k perfect matchings.
    for round in 0..k {
        let mut b = Bipartite::new(n, n);
        for (idx, &(t, h, _)) in arcs.iter().enumerate() {
            if remaining[idx] {
                b.add_edge(t.index(), h.index(), idx);
            }
        }
        let matching = hopcroft_karp(&b);
        let mut out: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
        for (v, m) in matching.iter().enumerate() {
            let (head, arc_idx) = m.unwrap_or_else(|| {
                panic!(
                    "Hall's theorem violated: no perfect matching in round {round} \
                     of a {}-regular bipartite graph",
                    k - round
                )
            });
            remaining[arc_idx] = false;
            out[v] = Some((NodeId::new(head), arcs[arc_idx].2));
        }
        factors.push(OrientedTwoFactor {
            out: out
                .into_iter()
                .map(|o| o.expect("perfect matching covers every left vertex"))
                .collect(),
        });
    }
    debug_assert!(
        remaining.iter().all(|&r| !r),
        "factorisation partitions edges"
    );
    Ok(factors)
}

/// Convenience wrapper: 2-factorise a `2k`-regular [`SimpleGraph`].
///
/// Edge identifiers in the factors refer to the simple graph's edges.
///
/// # Errors
///
/// Same as [`two_factorize`].
pub fn two_factorize_simple(g: &SimpleGraph) -> Result<Vec<OrientedTwoFactor>, GraphError> {
    two_factorize(&MultiGraph::from_simple(g))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_factorization(g: &MultiGraph) {
        let d = g.regular_degree().expect("test graphs are regular");
        let k = d / 2;
        let factors = two_factorize(g).unwrap();
        assert_eq!(factors.len(), k);
        let mut used = vec![0usize; g.edge_count()];
        for f in &factors {
            assert_eq!(f.node_count(), g.node_count());
            let mut indeg = vec![0usize; g.node_count()];
            for (from, to, e) in f.arcs() {
                used[e.index()] += 1;
                indeg[to.index()] += 1;
                let (a, b) = g.endpoints(e);
                assert!(
                    (from, to) == (a, b) || (from, to) == (b, a),
                    "arc uses a real edge"
                );
            }
            assert!(indeg.iter().all(|&x| x == 1), "in-degree 1 everywhere");
            // Cycles partition the node set.
            let total: usize = f.cycles().iter().map(Vec::len).sum();
            assert_eq!(total, g.node_count());
        }
        assert!(
            used.iter().all(|&c| c == 1),
            "every edge in exactly one factor"
        );
    }

    #[test]
    fn k5() {
        let mut g = MultiGraph::new(5);
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_edge_ids(u, v);
            }
        }
        check_factorization(&g);
    }

    #[test]
    fn cycle_is_its_own_factor() {
        let mut g = MultiGraph::new(5);
        for v in 0..5 {
            g.add_edge_ids(v, (v + 1) % 5);
        }
        let factors = two_factorize(&g).unwrap();
        assert_eq!(factors.len(), 1);
        assert_eq!(factors[0].cycles().len(), 1);
    }

    #[test]
    fn multigraph_with_parallels() {
        // Two nodes joined by 4 parallel edges: 4-regular.
        let mut g = MultiGraph::new(2);
        for _ in 0..4 {
            g.add_edge_ids(0, 1);
        }
        check_factorization(&g);
    }

    #[test]
    fn single_node_with_loops() {
        // One node with two loops: degree 4.
        let mut g = MultiGraph::new(1);
        g.add_edge_ids(0, 0);
        g.add_edge_ids(0, 0);
        check_factorization(&g);
    }

    #[test]
    fn odd_regular_rejected() {
        let mut g = MultiGraph::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)] {
            g.add_edge_ids(u, v);
        }
        assert_eq!(g.regular_degree(), Some(3));
        assert!(matches!(
            two_factorize(&g),
            Err(GraphError::OddDegree { .. })
        ));
    }

    #[test]
    fn irregular_rejected() {
        let mut g = MultiGraph::new(3);
        g.add_edge_ids(0, 1);
        g.add_edge_ids(1, 2);
        assert!(matches!(
            two_factorize(&g),
            Err(GraphError::NotRegular { .. })
        ));
    }

    #[test]
    fn complete_bipartite_k44_disjoint_from_matching() {
        // K_{4,4} is 4-regular.
        let mut g = MultiGraph::new(8);
        for u in 0..4 {
            for v in 4..8 {
                g.add_edge_ids(u, v);
            }
        }
        check_factorization(&g);
    }

    #[test]
    fn edgeless_graph_has_no_factors() {
        let g = MultiGraph::new(3);
        assert!(two_factorize(&g).unwrap().is_empty());
    }
}

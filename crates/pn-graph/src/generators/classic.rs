//! Deterministic classic graph families.

use crate::{GraphError, NodeId, SimpleGraph};

/// The path graph `P_n` on `n ≥ 1` nodes (`n - 1` edges).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`.
pub fn path(n: usize) -> Result<SimpleGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            detail: "path needs at least one node".to_owned(),
        });
    }
    let mut g = SimpleGraph::new(n);
    for v in 0..n.saturating_sub(1) {
        g.add_edge_ids(v, v + 1)?;
    }
    Ok(g)
}

/// The cycle graph `C_n` on `n ≥ 3` nodes.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 3`.
pub fn cycle(n: usize) -> Result<SimpleGraph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameter {
            detail: "cycle needs at least three nodes".to_owned(),
        });
    }
    let mut g = SimpleGraph::new(n);
    for v in 0..n {
        g.add_edge_ids(v, (v + 1) % n)?;
    }
    Ok(g)
}

/// The complete graph `K_n`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`.
pub fn complete(n: usize) -> Result<SimpleGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            detail: "complete graph needs at least one node".to_owned(),
        });
    }
    let mut g = SimpleGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge_ids(u, v)?;
        }
    }
    Ok(g)
}

/// The complete bipartite graph `K_{a,b}`: left nodes `0..a`, right nodes
/// `a..a+b`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either side is empty.
pub fn complete_bipartite(a: usize, b: usize) -> Result<SimpleGraph, GraphError> {
    if a == 0 || b == 0 {
        return Err(GraphError::InvalidParameter {
            detail: "complete bipartite graph needs non-empty sides".to_owned(),
        });
    }
    let mut g = SimpleGraph::new(a + b);
    for u in 0..a {
        for v in 0..b {
            g.add_edge_ids(u, a + v)?;
        }
    }
    Ok(g)
}

/// The crown graph `S_n⁰`: `K_{n,n}` minus a perfect matching
/// (`{i, n+j}` for all `i ≠ j`). This is the subgraph `T(ℓ)` in the
/// paper's Theorem 2 construction. Left nodes `0..n`, right `n..2n`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 2` (the crown on one
/// pair has no edges).
pub fn crown(n: usize) -> Result<SimpleGraph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameter {
            detail: "crown graph needs n >= 2".to_owned(),
        });
    }
    let mut g = SimpleGraph::new(2 * n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                g.add_edge_ids(i, n + j)?;
            }
        }
    }
    Ok(g)
}

/// The star `K_{1,n}`: a hub (node 0) with `n ≥ 1` leaves.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`.
pub fn star(n: usize) -> Result<SimpleGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            detail: "star needs at least one leaf".to_owned(),
        });
    }
    let mut g = SimpleGraph::new(n + 1);
    for v in 1..=n {
        g.add_edge_ids(0, v)?;
    }
    Ok(g)
}

/// The `dim`-dimensional hypercube `Q_dim` (a `dim`-regular graph on
/// `2^dim` nodes).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `dim == 0` or `dim > 20`.
pub fn hypercube(dim: usize) -> Result<SimpleGraph, GraphError> {
    if dim == 0 || dim > 20 {
        return Err(GraphError::InvalidParameter {
            detail: "hypercube dimension must be in 1..=20".to_owned(),
        });
    }
    let n = 1usize << dim;
    let mut g = SimpleGraph::new(n);
    for v in 0..n {
        for bit in 0..dim {
            let u = v ^ (1 << bit);
            if v < u {
                g.add_edge_ids(v, u)?;
            }
        }
    }
    Ok(g)
}

/// The `w × h` grid graph (no wraparound). Node `(x, y)` has index
/// `y * w + x`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either dimension is zero.
pub fn grid(w: usize, h: usize) -> Result<SimpleGraph, GraphError> {
    if w == 0 || h == 0 {
        return Err(GraphError::InvalidParameter {
            detail: "grid needs positive dimensions".to_owned(),
        });
    }
    let mut g = SimpleGraph::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            if x + 1 < w {
                g.add_edge_ids(v, v + 1)?;
            }
            if y + 1 < h {
                g.add_edge_ids(v, v + w)?;
            }
        }
    }
    Ok(g)
}

/// The `w × h` torus (grid with wraparound): 4-regular when
/// `w, h ≥ 3`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `w < 3` or `h < 3` (smaller
/// wraparounds create parallel edges).
pub fn torus(w: usize, h: usize) -> Result<SimpleGraph, GraphError> {
    if w < 3 || h < 3 {
        return Err(GraphError::InvalidParameter {
            detail: "torus needs dimensions >= 3".to_owned(),
        });
    }
    let mut g = SimpleGraph::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let v = y * w + x;
            let right = y * w + (x + 1) % w;
            let down = ((y + 1) % h) * w + x;
            g.add_edge_ids(v, right)?;
            g.add_edge_ids(v, down)?;
        }
    }
    Ok(g)
}

/// The Petersen graph: 3-regular, 10 nodes, girth 5 — a classic stress
/// test for matching algorithms (it has no 1-factorisation).
pub fn petersen() -> SimpleGraph {
    let mut g = SimpleGraph::new(10);
    // Outer 5-cycle.
    for v in 0..5 {
        g.add_edge_ids(v, (v + 1) % 5).expect("valid edge");
    }
    // Spokes.
    for v in 0..5 {
        g.add_edge_ids(v, v + 5).expect("valid edge");
    }
    // Inner pentagram.
    for v in 0..5 {
        g.add_edge_ids(5 + v, 5 + (v + 2) % 5).expect("valid edge");
    }
    g
}

/// The circulant graph `C_n(s_1, ..., s_k)`: node `v` is adjacent to
/// `v ± s_i (mod n)` for every stride. With distinct strides
/// `0 < s_i < n/2` the graph is `2k`-regular; a stride of exactly `n/2`
/// (for even `n`) adds a perfect matching and one more degree.
///
/// Circulants generalise cycles (`C_n(1)`) and give deterministic regular
/// workloads of any even degree.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for empty or out-of-range
/// strides, duplicate strides, or `n < 3`.
pub fn circulant(n: usize, strides: &[usize]) -> Result<SimpleGraph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameter {
            detail: "circulant needs at least three nodes".to_owned(),
        });
    }
    if strides.is_empty() {
        return Err(GraphError::InvalidParameter {
            detail: "circulant needs at least one stride".to_owned(),
        });
    }
    let mut seen = std::collections::HashSet::new();
    for &s in strides {
        if s == 0 || s > n / 2 {
            return Err(GraphError::InvalidParameter {
                detail: format!("stride {s} out of range 1..={}", n / 2),
            });
        }
        if !seen.insert(s) {
            return Err(GraphError::InvalidParameter {
                detail: format!("duplicate stride {s}"),
            });
        }
    }
    let mut g = SimpleGraph::new(n);
    for &s in strides {
        for v in 0..n {
            let u = (v + s) % n;
            if !g.has_edge(NodeId::new(v), NodeId::new(u)) {
                g.add_edge_ids(v, u)?;
            }
        }
    }
    Ok(g)
}

/// The wheel graph `W_n`: a cycle of `n ≥ 3` rim nodes (indices `0..n`)
/// plus a hub (index `n`) adjacent to every rim node.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 3`.
pub fn wheel(n: usize) -> Result<SimpleGraph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameter {
            detail: "wheel needs at least three rim nodes".to_owned(),
        });
    }
    let mut g = SimpleGraph::new(n + 1);
    for v in 0..n {
        g.add_edge_ids(v, (v + 1) % n)?;
        g.add_edge_ids(v, n)?;
    }
    Ok(g)
}

/// The ladder graph `L_n`: two paths of `n ≥ 2` nodes joined by rungs.
/// Node `(side, i)` has index `side * n + i`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 2`.
pub fn ladder(n: usize) -> Result<SimpleGraph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameter {
            detail: "ladder needs at least two rungs".to_owned(),
        });
    }
    let mut g = SimpleGraph::new(2 * n);
    for i in 0..n {
        g.add_edge_ids(i, n + i)?;
        if i + 1 < n {
            g.add_edge_ids(i, i + 1)?;
            g.add_edge_ids(n + i, n + i + 1)?;
        }
    }
    Ok(g)
}

/// Disjoint union of graphs; node indices of the `i`-th graph are shifted
/// by the total size of the preceding graphs.
pub fn disjoint_union(parts: &[SimpleGraph]) -> SimpleGraph {
    let total: usize = parts.iter().map(SimpleGraph::node_count).sum();
    let mut g = SimpleGraph::new(total);
    let mut offset = 0;
    for part in parts {
        for (_, u, v) in part.edges() {
            g.add_edge(
                NodeId::new(offset + u.index()),
                NodeId::new(offset + v.index()),
            )
            .expect("disjoint parts cannot conflict");
        }
        offset += part.node_count();
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_cycle() {
        let p = path(5).unwrap();
        assert_eq!(p.edge_count(), 4);
        assert_eq!(p.max_degree(), 2);
        let c = cycle(5).unwrap();
        assert_eq!(c.edge_count(), 5);
        assert_eq!(c.regular_degree(), Some(2));
        assert!(cycle(2).is_err());
        assert!(path(0).is_err());
    }

    #[test]
    fn complete_graphs() {
        let k5 = complete(5).unwrap();
        assert_eq!(k5.edge_count(), 10);
        assert_eq!(k5.regular_degree(), Some(4));
        let k1 = complete(1).unwrap();
        assert_eq!(k1.edge_count(), 0);
    }

    #[test]
    fn bipartite_and_crown() {
        let k34 = complete_bipartite(3, 4).unwrap();
        assert_eq!(k34.edge_count(), 12);
        assert_eq!(k34.degree_of(0), 4);
        assert_eq!(k34.degree_of(3), 3);
        // Crown on n=4: K_{4,4} minus matching: 12 edges, 3-regular.
        let c = crown(4).unwrap();
        assert_eq!(c.edge_count(), 12);
        assert_eq!(c.regular_degree(), Some(3));
        assert!(!c.has_edge(NodeId::new(0), NodeId::new(4)));
        assert!(c.has_edge(NodeId::new(0), NodeId::new(5)));
    }

    #[test]
    fn star_degrees() {
        let s = star(6).unwrap();
        assert_eq!(s.degree_of(0), 6);
        assert_eq!(s.degree_of(1), 1);
        assert_eq!(s.edge_count(), 6);
    }

    #[test]
    fn hypercube_regular() {
        let q4 = hypercube(4).unwrap();
        assert_eq!(q4.node_count(), 16);
        assert_eq!(q4.regular_degree(), Some(4));
        assert_eq!(q4.edge_count(), 32);
    }

    #[test]
    fn grid_and_torus() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // 17
        let t = torus(4, 5).unwrap();
        assert_eq!(t.regular_degree(), Some(4));
        assert_eq!(t.edge_count(), 2 * 20);
        assert!(torus(2, 5).is_err());
    }

    #[test]
    fn petersen_properties() {
        let p = petersen();
        assert_eq!(p.node_count(), 10);
        assert_eq!(p.edge_count(), 15);
        assert_eq!(p.regular_degree(), Some(3));
    }

    #[test]
    fn circulant_degrees() {
        // C_8(1, 2): 4-regular.
        let g = circulant(8, &[1, 2]).unwrap();
        assert_eq!(g.regular_degree(), Some(4));
        assert_eq!(g.edge_count(), 16);
        // C_6(1, 3): stride 3 = n/2 contributes one edge per node: 3-regular.
        let g = circulant(6, &[1, 3]).unwrap();
        assert_eq!(g.regular_degree(), Some(3));
        // C_n(1) is the cycle.
        let g = circulant(7, &[1]).unwrap();
        assert_eq!(g.edge_count(), 7);
        assert!(circulant(6, &[0]).is_err());
        assert!(circulant(6, &[4]).is_err());
        assert!(circulant(6, &[1, 1]).is_err());
        assert!(circulant(2, &[1]).is_err());
    }

    #[test]
    fn wheel_structure() {
        let g = wheel(5).unwrap();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.degree_of(5), 5); // hub
        assert_eq!(g.degree_of(0), 3); // rim
        assert!(wheel(2).is_err());
    }

    #[test]
    fn ladder_structure() {
        let g = ladder(4).unwrap();
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 4 + 2 * 3);
        assert_eq!(g.degree_of(0), 2); // corner
        assert_eq!(g.degree_of(1), 3); // interior
        assert!(ladder(1).is_err());
    }

    #[test]
    fn union_shifts_indices() {
        let a = cycle(3).unwrap();
        let b = path(2).unwrap();
        let u = disjoint_union(&[a, b]);
        assert_eq!(u.node_count(), 5);
        assert_eq!(u.edge_count(), 4);
        assert!(u.has_edge(NodeId::new(3), NodeId::new(4)));
    }
}

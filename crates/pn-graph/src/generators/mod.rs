//! Graph generators: classic families and random models.
//!
//! These provide the workloads for tests, examples and benchmarks: the
//! regular and bounded-degree families the paper's bounds are stated for,
//! plus random models for average-case experiments.

mod classic;
mod random;
mod streamed;

pub use classic::{
    circulant, complete, complete_bipartite, crown, cycle, disjoint_union, grid, hypercube, ladder,
    path, petersen, star, torus, wheel,
};
pub use random::{
    gnp, preferential_attachment, random_bounded_degree, random_geometric, random_regular,
    random_tree,
};
pub use streamed::{streamed_cubic, streamed_cycle};

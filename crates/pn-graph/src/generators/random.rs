//! Seeded random graph models.
//!
//! All generators are deterministic for a fixed seed, so experiments are
//! reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{GraphError, SimpleGraph};

/// Erdős–Rényi `G(n, p)`: each of the `n(n-1)/2` possible edges is present
/// independently with probability `p`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `p` is not in `[0, 1]`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Result<SimpleGraph, GraphError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter {
            detail: format!("edge probability {p} not in [0, 1]"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = SimpleGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge_ids(u, v)?;
            }
        }
    }
    Ok(g)
}

/// A uniform-ish random `d`-regular simple graph on `n` nodes via the
/// pairing (configuration) model with rejection: `n·d` half-edges are
/// shuffled and paired; pairings with loops or parallel edges are
/// discarded and retried.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n·d` is odd, `d ≥ n`, or no
/// simple pairing is found within the retry budget (only plausible for
/// extreme parameters).
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<SimpleGraph, GraphError> {
    if d >= n && !(d == 0 && n == 0) {
        return Err(GraphError::InvalidParameter {
            detail: format!("degree {d} must be smaller than node count {n}"),
        });
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            detail: format!("n*d = {} must be even", n * d),
        });
    }
    if d == 0 {
        return Ok(SimpleGraph::new(n));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Steger–Wormald style: repeatedly pair two random remaining stubs;
    // if the pairing is illegal, redraw; if the construction gets stuck,
    // restart from scratch.
    const MAX_RESTARTS: usize = 10_000;
    for _ in 0..MAX_RESTARTS {
        let mut stubs: Vec<usize> = (0..n * d).map(|i| i / d).collect();
        stubs.shuffle(&mut rng);
        let mut g = SimpleGraph::new(n);
        let mut stuck = false;
        while !stubs.is_empty() {
            // Try a bounded number of random draws before declaring this
            // attempt stuck.
            let mut paired = false;
            for _ in 0..200 {
                let i = rng.gen_range(0..stubs.len());
                let mut j = rng.gen_range(0..stubs.len());
                if stubs.len() > 1 {
                    while j == i {
                        j = rng.gen_range(0..stubs.len());
                    }
                }
                let (u, v) = (stubs[i], stubs[j]);
                if u == v || g.has_edge(crate::NodeId::new(u), crate::NodeId::new(v)) {
                    continue;
                }
                g.add_edge_ids(u, v)?;
                // Remove the larger index first so the smaller stays valid.
                let (hi, lo) = if i > j { (i, j) } else { (j, i) };
                stubs.swap_remove(hi);
                stubs.swap_remove(lo);
                paired = true;
                break;
            }
            if !paired {
                stuck = true;
                break;
            }
        }
        if !stuck {
            debug_assert_eq!(g.regular_degree(), Some(d));
            return Ok(g);
        }
    }
    Err(GraphError::InvalidParameter {
        detail: format!(
            "no simple {d}-regular pairing found for n = {n} after {MAX_RESTARTS} restarts"
        ),
    })
}

/// A random graph with maximum degree at most `delta`: edges are sampled
/// uniformly and accepted while both endpoints have spare degree. The
/// `density` parameter in `[0, 1]` scales how many candidate edges are
/// tried (`density * n * delta / 2` accepted edges at most).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for `delta == 0` with `n > 1`
/// or `density` outside `[0, 1]`.
pub fn random_bounded_degree(
    n: usize,
    delta: usize,
    density: f64,
    seed: u64,
) -> Result<SimpleGraph, GraphError> {
    if !(0.0..=1.0).contains(&density) {
        return Err(GraphError::InvalidParameter {
            detail: format!("density {density} not in [0, 1]"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = SimpleGraph::new(n);
    if n < 2 || delta == 0 {
        return Ok(g);
    }
    let target = ((n * delta) as f64 * density / 2.0).round() as usize;
    let budget = target.saturating_mul(20).max(100);
    let mut added = 0;
    for _ in 0..budget {
        if added >= target {
            break;
        }
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let (un, vn) = (crate::NodeId::new(u), crate::NodeId::new(v));
        if g.degree(un) >= delta || g.degree(vn) >= delta || g.has_edge(un, vn) {
            continue;
        }
        g.add_edge(un, vn)?;
        added += 1;
    }
    debug_assert!(g.max_degree() <= delta);
    Ok(g)
}

/// A power-law (heavy-tailed) graph via Barabási–Albert preferential
/// attachment: the first `m + 1` nodes form a star, then each new node
/// attaches to `m` distinct existing nodes chosen with probability
/// proportional to their current degree. Degrees follow a power law, so
/// these instances stress the `Δ`-parametrised protocols with hubs far
/// above the typical degree.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m == 0` or `n < m + 1`.
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> Result<SimpleGraph, GraphError> {
    if m == 0 {
        return Err(GraphError::InvalidParameter {
            detail: "preferential attachment needs m >= 1".to_owned(),
        });
    }
    if n < m + 1 {
        return Err(GraphError::InvalidParameter {
            detail: format!("preferential attachment needs n >= m + 1 (n = {n}, m = {m})"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = SimpleGraph::new(n);
    // Each accepted edge pushes both endpoints, so sampling an index
    // uniformly from `endpoints` is degree-proportional sampling.
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * m * n);
    for v in 1..=m {
        g.add_edge_ids(0, v)?;
        endpoints.push(0);
        endpoints.push(v);
    }
    for v in (m + 1)..n {
        let mut targets: Vec<usize> = Vec::with_capacity(m);
        while targets.len() < m {
            let u = endpoints[rng.gen_range(0..endpoints.len())];
            if u != v && !targets.contains(&u) {
                targets.push(u);
            }
        }
        for u in targets {
            g.add_edge_ids(u, v)?;
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    Ok(g)
}

/// A uniformly random labelled tree on `n` nodes via a random Prüfer
/// sequence.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`.
pub fn random_tree(n: usize, seed: u64) -> Result<SimpleGraph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            detail: "tree needs at least one node".to_owned(),
        });
    }
    let mut g = SimpleGraph::new(n);
    if n == 1 {
        return Ok(g);
    }
    if n == 2 {
        g.add_edge_ids(0, 1)?;
        return Ok(g);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &x in &prufer {
        degree[x] += 1;
    }
    // Standard decoding with a sorted set of leaves.
    let mut leaves: std::collections::BTreeSet<usize> =
        (0..n).filter(|&v| degree[v] == 1).collect();
    for &x in &prufer {
        let leaf = *leaves.iter().next().expect("a tree always has a leaf");
        leaves.remove(&leaf);
        g.add_edge_ids(leaf, x)?;
        degree[x] -= 1;
        if degree[x] == 1 {
            leaves.insert(x);
        }
    }
    let mut rest = leaves.into_iter();
    let (a, b) = (rest.next().unwrap(), rest.next().unwrap());
    g.add_edge_ids(a, b)?;
    Ok(g)
}

/// A random geometric graph: `n` points uniform in the unit square, edges
/// between pairs at Euclidean distance at most `radius`. Models the
/// wireless-network setting that motivates local algorithms.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `radius` is negative.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Result<SimpleGraph, GraphError> {
    if radius < 0.0 {
        return Err(GraphError::InvalidParameter {
            detail: format!("radius {radius} must be non-negative"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let mut g = SimpleGraph::new(n);
    let r2 = radius * radius;
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = pts[u].0 - pts[v].0;
            let dy = pts[u].1 - pts[v].1;
            if dx * dx + dy * dy <= r2 {
                g.add_edge_ids(u, v)?;
            }
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::connected_components;

    #[test]
    fn gnp_extremes() {
        let empty = gnp(10, 0.0, 1).unwrap();
        assert_eq!(empty.edge_count(), 0);
        let full = gnp(10, 1.0, 1).unwrap();
        assert_eq!(full.edge_count(), 45);
        assert!(gnp(5, 1.5, 1).is_err());
    }

    #[test]
    fn gnp_deterministic() {
        let a = gnp(20, 0.3, 7).unwrap();
        let b = gnp(20, 0.3, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn random_regular_is_regular() {
        for d in [1, 2, 3, 4, 5, 6] {
            let n = if d % 2 == 0 { 11 } else { 12 };
            let g = random_regular(n, d, 99 + d as u64).unwrap();
            assert_eq!(g.regular_degree(), Some(d), "d = {d}");
        }
    }

    #[test]
    fn random_regular_parity_check() {
        assert!(random_regular(5, 3, 1).is_err()); // n*d odd
        assert!(random_regular(4, 4, 1).is_err()); // d >= n
        let g = random_regular(6, 0, 1).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn bounded_degree_respects_cap() {
        let g = random_bounded_degree(50, 4, 0.8, 3).unwrap();
        assert!(g.max_degree() <= 4);
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn preferential_attachment_shape() {
        let g = preferential_attachment(60, 2, 7).unwrap();
        // m initial star edges plus m per subsequent node.
        assert_eq!(g.edge_count(), 2 + 2 * (60 - 3));
        assert!(g.min_degree() >= 1);
        let comps = connected_components(&g);
        assert_eq!(comps.count, 1);
        // Heavy tail: the largest hub dwarfs the minimum attachment
        // degree (deterministic for the fixed seed).
        assert!(g.max_degree() >= 3 * 2, "max degree {}", g.max_degree());
        // Deterministic for a fixed seed.
        assert_eq!(g, preferential_attachment(60, 2, 7).unwrap());
        assert_ne!(g, preferential_attachment(60, 2, 8).unwrap());
    }

    #[test]
    fn preferential_attachment_rejects_bad_parameters() {
        assert!(preferential_attachment(5, 0, 1).is_err());
        assert!(preferential_attachment(2, 2, 1).is_err());
        // The smallest legal instance is the seed star itself.
        let g = preferential_attachment(3, 2, 1).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn tree_is_connected_and_acyclic() {
        for n in [1usize, 2, 3, 10, 40] {
            let g = random_tree(n, 5).unwrap();
            assert_eq!(g.edge_count(), n - 1.min(n));
            if n >= 1 {
                let comps = connected_components(&g);
                assert_eq!(comps.count, 1);
            }
        }
    }

    #[test]
    fn geometric_radius_zero_and_full() {
        let g0 = random_geometric(10, 0.0, 2).unwrap();
        assert_eq!(g0.edge_count(), 0);
        let g1 = random_geometric(10, 2.0, 2).unwrap();
        assert_eq!(g1.edge_count(), 45);
    }
}

//! Streamed generators for the million-node scale tier.
//!
//! The regular generator pipeline builds a [`crate::SimpleGraph`]
//! (adjacency lists), converts it through the port-assignment helpers
//! (per-node edge permutations, a [`crate::PnGraphBuilder`] with one
//! `Vec<Option<Endpoint>>` per node), and only then flattens into the
//! final [`PortNumberedGraph`] arena. For million-node instances those
//! intermediate structures dominate both time and memory. The builders
//! here instead emit the **flat involution table directly** — one `O(n)`
//! pass, no adjacency lists, no builder, no hashing — which is what
//! makes the `million-*` scenario families practical as everyday
//! workloads.
//!
//! Port numberings are part of the construction (like the covering-map
//! families): `shuffle: None` yields the fixed role order documented on
//! each builder, `shuffle: Some(seed)` applies a seeded per-node role
//! permutation — the adversarial numbering for these families.

use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

use crate::{Endpoint, GraphError, NodeId, Port, PortNumberedGraph};

/// SplitMix64 finaliser: a cheap, well-mixed per-node hash for seeded
/// role permutations (no RNG stream to advance in node order, so the
/// numbering of node `v` is independent of every other node's).
#[inline]
fn mix(seed: u64, v: u64) -> u64 {
    let mut z = seed
        .wrapping_add(v.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The port (1-based) node `v` assigns to role `role` (0-based) under an
/// optional seeded shuffle of `degree` roles.
#[inline]
fn role_port(shuffle: Option<u64>, v: usize, role: usize, degree: usize) -> Port {
    match shuffle {
        None => Port::from_index(role),
        Some(seed) => {
            // Degrees here are 2 or 3: decode the v-th permutation of
            // 0..degree from a per-node hash (factorial number system).
            let h = mix(seed, v as u64) as usize;
            let mut roles = [0usize, 1, 2];
            let roles = &mut roles[..degree];
            // Fisher–Yates driven by the hash digits.
            let mut h = h;
            for i in (1..degree).rev() {
                roles.swap(i, h % (i + 1));
                h /= i + 1;
            }
            Port::from_index(roles[role])
        }
    }
}

/// The `n`-node cycle, emitted directly as a port-numbered graph.
///
/// Role order (before the optional shuffle): role 0 faces the successor
/// `v + 1 (mod n)`, role 1 the predecessor. The projection to a simple
/// graph is exactly [`super::cycle`]`(n)`; only the intermediate
/// structures (and, under `shuffle`, the numbering) differ.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 3`.
pub fn streamed_cycle(n: usize, shuffle: Option<u64>) -> Result<PortNumberedGraph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameter {
            detail: "cycle needs at least three nodes".to_owned(),
        });
    }
    let degrees = vec![2u32; n];
    let mut involution = vec![Endpoint::new(NodeId::new(0), Port::new(1)); 2 * n];
    for v in 0..n {
        let next = (v + 1) % n;
        let prev = (v + n - 1) % n;
        let base = 2 * v;
        involution[base + role_port(shuffle, v, 0, 2).index()] =
            Endpoint::new(NodeId::new(next), role_port(shuffle, next, 1, 2));
        involution[base + role_port(shuffle, v, 1, 2).index()] =
            Endpoint::new(NodeId::new(prev), role_port(shuffle, prev, 0, 2));
    }
    PortNumberedGraph::from_involution(degrees, involution)
}

/// A seeded 3-regular graph on `n` nodes (`n` even, `n ≥ 4`), emitted
/// directly as a port-numbered graph: a Hamiltonian cycle (roles 0/1 as
/// in [`streamed_cycle`]) plus a seeded perfect matching on role 2.
///
/// The matching is drawn by pairing a seeded permutation of the nodes
/// two by two; pairs that would duplicate a cycle edge are repaired by
/// deterministic swaps with the following pair, so the result is always
/// simple. Fixed seed ⇒ fixed graph.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 4` or `n` is odd.
pub fn streamed_cubic(n: usize, seed: u64, shuffle: bool) -> Result<PortNumberedGraph, GraphError> {
    if n < 4 || !n.is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            detail: "streamed cubic graph needs an even n >= 4".to_owned(),
        });
    }
    // Seeded permutation, paired two by two into a perfect matching.
    let mut sigma: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3_0000_0000);
    sigma.shuffle(&mut rng);
    let cycle_adjacent = |a: usize, b: usize| {
        let d = a.abs_diff(b);
        d == 1 || d == n - 1
    };
    let pairs = n / 2;
    let mut i = 0usize;
    // Total swap budget across the whole repair pass (never reset, so
    // the loop provably terminates even on adversarial seeds).
    let mut attempts = 0usize;
    while i < pairs {
        let a = sigma[2 * i] as usize;
        let b = sigma[2 * i + 1] as usize;
        if cycle_adjacent(a, b) {
            attempts += 1;
            if attempts > n {
                // Pathological seed (vanishing probability for large n):
                // fall back to the antipodal matching, which is valid
                // for every even n >= 4.
                for (v, s) in sigma.iter_mut().enumerate() {
                    let half = pairs;
                    let pair = v / 2;
                    *s = if v % 2 == 0 {
                        pair as u32
                    } else {
                        (pair + half) as u32
                    };
                }
                break;
            }
            // Swap with the following pair's second element and
            // re-validate from the earlier of the two disturbed pairs.
            let j = (i + 1) % pairs;
            sigma.swap(2 * i + 1, 2 * j + 1);
            if j < i {
                i = j;
            }
            continue;
        }
        i += 1;
    }
    let mut partner = vec![0u32; n];
    for i in 0..pairs {
        let a = sigma[2 * i];
        let b = sigma[2 * i + 1];
        partner[a as usize] = b;
        partner[b as usize] = a;
    }

    let shuffle = shuffle.then_some(seed);
    let degrees = vec![3u32; n];
    let mut involution = vec![Endpoint::new(NodeId::new(0), Port::new(1)); 3 * n];
    for v in 0..n {
        let next = (v + 1) % n;
        let prev = (v + n - 1) % n;
        let mate = partner[v] as usize;
        let base = 3 * v;
        involution[base + role_port(shuffle, v, 0, 3).index()] =
            Endpoint::new(NodeId::new(next), role_port(shuffle, next, 1, 3));
        involution[base + role_port(shuffle, v, 1, 3).index()] =
            Endpoint::new(NodeId::new(prev), role_port(shuffle, prev, 0, 3));
        involution[base + role_port(shuffle, v, 2, 3).index()] =
            Endpoint::new(NodeId::new(mate), role_port(shuffle, mate, 2, 3));
    }
    PortNumberedGraph::from_involution(degrees, involution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn streamed_cycle_projects_to_the_classic_cycle() {
        for shuffle in [None, Some(7u64), Some(8)] {
            let pg = streamed_cycle(12, shuffle).unwrap();
            assert_eq!(pg.regular_degree(), Some(2));
            assert!(pg.is_simple());
            let simple = pg.to_simple().unwrap();
            let classic = generators::cycle(12).unwrap();
            assert_eq!(simple.edge_count(), classic.edge_count());
            for v in 0..12 {
                assert!(simple.has_edge(NodeId::new(v), NodeId::new((v + 1) % 12)));
            }
        }
        assert!(streamed_cycle(2, None).is_err());
    }

    #[test]
    fn streamed_cycle_shuffle_is_seeded_and_nontrivial() {
        let a = streamed_cycle(40, Some(1)).unwrap();
        let b = streamed_cycle(40, Some(1)).unwrap();
        let c = streamed_cycle(40, Some(2)).unwrap();
        assert_eq!(a, b, "same seed, same numbering");
        assert_ne!(a, c, "different seed, different numbering");
        assert_ne!(a, streamed_cycle(40, None).unwrap());
    }

    #[test]
    fn streamed_cubic_is_simple_and_three_regular() {
        for seed in 0..20u64 {
            for shuffle in [false, true] {
                let pg = streamed_cubic(30, seed, shuffle).unwrap();
                assert_eq!(pg.regular_degree(), Some(3), "seed {seed}");
                assert!(pg.is_simple(), "seed {seed}: loops or parallel edges");
                let simple = pg.to_simple().unwrap();
                assert_eq!(simple.edge_count(), 45);
                // The Hamiltonian backbone is always present.
                for v in 0..30 {
                    assert!(simple.has_edge(NodeId::new(v), NodeId::new((v + 1) % 30)));
                }
            }
        }
        assert!(streamed_cubic(5, 0, false).is_err());
        assert!(streamed_cubic(2, 0, false).is_err());
    }

    #[test]
    fn streamed_cubic_smallest_instances() {
        // n = 4 and n = 6 have very few valid matchings; every seed must
        // still produce a simple graph (possibly via the repair loop or
        // the antipodal fallback).
        for n in [4usize, 6, 8] {
            for seed in 0..50u64 {
                let pg = streamed_cubic(n, seed, seed % 2 == 1).unwrap();
                assert_eq!(pg.regular_degree(), Some(3), "n {n} seed {seed}");
                assert!(pg.is_simple(), "n {n} seed {seed}");
            }
        }
    }

    #[test]
    fn streamed_builders_are_deterministic_at_scale() {
        let a = streamed_cubic(10_000, 3, true).unwrap();
        let b = streamed_cubic(10_000, 3, true).unwrap();
        assert_eq!(a, b);
        let c = streamed_cycle(10_000, Some(3)).unwrap();
        assert_eq!(c.node_count(), 10_000);
        assert_eq!(c.port_count(), 20_000);
    }
}

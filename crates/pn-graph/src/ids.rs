//! Strongly-typed identifiers for nodes, ports, and edges.
//!
//! The paper's model (Section 2.1) identifies a node's communication
//! endpoints by *port numbers* `1, 2, ..., d(v)`. We keep the 1-based
//! convention of the paper in [`Port`] so that code reads like the text
//! (e.g. "port `2i-1` of `u` is connected to port `2i` of `v`"), and expose
//! [`Port::index`] for 0-based array access.

use std::fmt;

/// Identifier of a node in a graph.
///
/// Node identifiers are *internal to the host program*: the distributed
/// algorithms in this workspace never see them. They index into the node
/// arrays of [`crate::SimpleGraph`], [`crate::MultiGraph`] and
/// [`crate::PortNumberedGraph`].
///
/// # Examples
///
/// ```
/// use pn_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a 0-based index.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32 range"))
    }

    /// Returns the 0-based index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// A 1-based port number, exactly as in the paper.
///
/// A node `v` of degree `d` has ports `1, 2, ..., d`; the involution
/// `p` of a [`crate::PortNumberedGraph`] connects ports to ports.
///
/// # Examples
///
/// ```
/// use pn_graph::Port;
/// let p = Port::new(1);
/// assert_eq!(p.get(), 1);
/// assert_eq!(p.index(), 0);
/// assert_eq!(Port::from_index(0), p);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port(u32);

impl Port {
    /// Creates a port from its 1-based number.
    ///
    /// # Panics
    ///
    /// Panics if `number == 0`; the paper's ports start at 1.
    #[inline]
    pub fn new(number: u32) -> Self {
        assert!(number >= 1, "port numbers are 1-based");
        Port(number)
    }

    /// Creates a port from a 0-based index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Port(u32::try_from(index).expect("port index exceeds u32 range") + 1)
    }

    /// Returns the 1-based port number.
    #[inline]
    pub fn get(self) -> u32 {
        self.0
    }

    /// Returns the 0-based index for array access.
    #[inline]
    pub fn index(self) -> usize {
        (self.0 - 1) as usize
    }
}

impl fmt::Debug for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of an edge.
///
/// Edge identifiers index into the edge arrays of the owning graph. In a
/// [`crate::MultiGraph`] parallel edges receive distinct identifiers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge identifier from a 0-based index.
    #[inline]
    pub fn new(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32 range"))
    }

    /// Returns the 0-based index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One endpoint of a potential connection: a `(node, port)` pair.
///
/// The set `P_G` of the paper is exactly the set of all endpoints; the
/// involution `p_G : P_G → P_G` maps endpoints to endpoints.
///
/// # Examples
///
/// ```
/// use pn_graph::{Endpoint, NodeId, Port};
/// let e = Endpoint::new(NodeId::new(0), Port::new(2));
/// assert_eq!(e.node.index(), 0);
/// assert_eq!(e.port.get(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Endpoint {
    /// The node that owns the port.
    pub node: NodeId,
    /// The 1-based port number at that node.
    pub port: Port,
}

impl Endpoint {
    /// Creates an endpoint from a node and a port.
    #[inline]
    pub fn new(node: NodeId, port: Port) -> Self {
        Endpoint { node, port }
    }
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?},{:?})", self.node, self.port)
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.node, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        for i in [0usize, 1, 17, 1_000_000] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn port_one_based() {
        let p = Port::new(5);
        assert_eq!(p.get(), 5);
        assert_eq!(p.index(), 4);
        assert_eq!(Port::from_index(4), p);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn port_zero_rejected() {
        let _ = Port::new(0);
    }

    #[test]
    fn ordering_matches_numbers() {
        assert!(Port::new(1) < Port::new(2));
        assert!(NodeId::new(0) < NodeId::new(1));
        assert!(EdgeId::new(3) < EdgeId::new(4));
    }

    #[test]
    fn debug_representations_nonempty() {
        assert_eq!(format!("{:?}", NodeId::new(1)), "n1");
        assert_eq!(format!("{:?}", Port::new(2)), "p2");
        assert_eq!(format!("{:?}", EdgeId::new(3)), "e3");
        let e = Endpoint::new(NodeId::new(1), Port::new(2));
        assert_eq!(format!("{:?}", e), "(n1,p2)");
        assert_eq!(format!("{}", e), "(1, 2)");
    }
}

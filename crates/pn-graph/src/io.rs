//! Plain-text edge-list serialisation.
//!
//! The interchange format is one edge per line, `u v` with 0-based node
//! indices; blank lines and `#` comments are ignored. An optional header
//! line `nodes <n>` pins the node count (otherwise it is
//! `1 + max index`), so isolated trailing nodes survive a round trip.

use crate::{GraphError, NodeId, SimpleGraph};

/// Parses an edge list into a [`SimpleGraph`].
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] on malformed lines, and the
/// usual construction errors for loops or duplicate edges.
///
/// # Examples
///
/// ```
/// use pn_graph::io::parse_edge_list;
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// let g = parse_edge_list("# a triangle\n0 1\n1 2\n2 0\n")?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 3);
/// # Ok(())
/// # }
/// ```
pub fn parse_edge_list(text: &str) -> Result<SimpleGraph, GraphError> {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut declared_nodes: Option<usize> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("nodes") {
            let n = rest
                .trim()
                .parse::<usize>()
                .map_err(|_| GraphError::InvalidParameter {
                    detail: format!("line {}: malformed node count {rest:?}", lineno + 1),
                })?;
            declared_nodes = Some(n);
            continue;
        }
        let mut parts = line.split_whitespace();
        let (u, v) = match (parts.next(), parts.next(), parts.next()) {
            (Some(u), Some(v), None) => (u, v),
            _ => {
                return Err(GraphError::InvalidParameter {
                    detail: format!("line {}: expected `u v`, got {line:?}", lineno + 1),
                })
            }
        };
        let parse = |s: &str| {
            s.parse::<usize>()
                .map_err(|_| GraphError::InvalidParameter {
                    detail: format!("line {}: {s:?} is not a node index", lineno + 1),
                })
        };
        edges.push((parse(u)?, parse(v)?));
    }
    let needed = edges.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(0);
    let n = match declared_nodes {
        Some(n) if n < needed => {
            return Err(GraphError::InvalidParameter {
                detail: format!(
                    "declared {n} nodes but an edge references node {}",
                    needed - 1
                ),
            })
        }
        Some(n) => n,
        None => needed,
    };
    let mut g = SimpleGraph::new(n);
    for (u, v) in edges {
        g.add_edge(NodeId::new(u), NodeId::new(v))?;
    }
    Ok(g)
}

/// Writes a graph as an edge list (with a `nodes` header so isolated
/// nodes round-trip).
pub fn write_edge_list(g: &SimpleGraph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "nodes {}", g.node_count());
    for (_, u, v) in g.edges() {
        let _ = writeln!(out, "{} {}", u.index(), v.index());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip() {
        let mut g = generators::petersen();
        g.add_node(); // an isolated node must survive
        let text = write_edge_list(&g);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for (_, u, v) in g.edges() {
            assert!(back.has_edge(u, v));
        }
    }

    #[test]
    fn comments_and_blanks() {
        let g = parse_edge_list("\n# comment\n0 1 # trailing\n\n1 2\n").unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn header_allows_isolated_nodes() {
        let g = parse_edge_list("nodes 5\n0 1\n").unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse_edge_list("0\n").is_err());
        assert!(parse_edge_list("0 1 2\n").is_err());
        assert!(parse_edge_list("a b\n").is_err());
        assert!(parse_edge_list("nodes x\n").is_err());
        assert!(parse_edge_list("nodes 1\n0 1\n").is_err());
    }

    #[test]
    fn structural_errors_propagate() {
        assert!(matches!(
            parse_edge_list("0 0\n"),
            Err(GraphError::LoopNotAllowed { .. })
        ));
        assert!(matches!(
            parse_edge_list("0 1\n1 0\n"),
            Err(GraphError::ParallelEdge { .. })
        ));
    }

    #[test]
    fn empty_input() {
        let g = parse_edge_list("").unwrap();
        assert_eq!(g.node_count(), 0);
    }
}

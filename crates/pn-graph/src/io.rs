//! Plain-text edge-list serialisation.
//!
//! The interchange format is one edge per line, `u v` with 0-based node
//! indices; blank lines and `#` comments are ignored. An optional header
//! line `nodes <n>` pins the node count (otherwise it is
//! `1 + max index`), so isolated trailing nodes survive a round trip.

use crate::{GraphError, NodeId, SimpleGraph};

/// Parses an edge list into a [`SimpleGraph`].
///
/// Equivalent to [`parse_edge_list_capped`] with the largest cap the
/// node-id representation supports (`u32::MAX` nodes). Callers feeding
/// **untrusted** input should prefer the capped variant with a realistic
/// limit: the format itself lets a two-line file declare billions of
/// nodes, and the cap is what turns that into a structured error instead
/// of a giant allocation.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] on malformed lines or node
/// indices outside the representable range, and the usual construction
/// errors for loops or duplicate edges. Never panics, for any input.
///
/// # Examples
///
/// ```
/// use pn_graph::io::parse_edge_list;
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// let g = parse_edge_list("# a triangle\n0 1\n1 2\n2 0\n")?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 3);
/// # Ok(())
/// # }
/// ```
pub fn parse_edge_list(text: &str) -> Result<SimpleGraph, GraphError> {
    parse_edge_list_capped(text, u32::MAX as usize)
}

/// Parses an edge list, rejecting inputs that would exceed `max_nodes`.
///
/// This is the ingestion path for untrusted input (the `eds` CLI and the
/// `eds-serve` daemon): a declared node count or edge endpoint at or
/// above `max_nodes` is a structured [`GraphError::InvalidParameter`],
/// reported *before* any allocation proportional to it happens. The cap
/// is clamped to `u32::MAX` (the node-id representation limit), so the
/// historical panic sites — `NodeId::new` on an oversized index, and the
/// `max + 1` node-count overflow on `usize::MAX` — are unreachable.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] on malformed lines, out-of-range
/// indices, or an over-cap node count; loop/parallel-edge construction
/// errors propagate unchanged. Never panics, for any input.
pub fn parse_edge_list_capped(text: &str, max_nodes: usize) -> Result<SimpleGraph, GraphError> {
    let cap = max_nodes.min(u32::MAX as usize);
    let check = |idx: usize, lineno: usize| {
        if idx >= cap {
            return Err(GraphError::InvalidParameter {
                detail: format!(
                    "line {}: node index {idx} exceeds the limit of {cap} nodes",
                    lineno + 1
                ),
            });
        }
        Ok(idx)
    };
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut declared_nodes: Option<usize> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("nodes") {
            let n = rest
                .trim()
                .parse::<usize>()
                .map_err(|_| GraphError::InvalidParameter {
                    detail: format!("line {}: malformed node count {rest:?}", lineno + 1),
                })?;
            if n > cap {
                return Err(GraphError::InvalidParameter {
                    detail: format!(
                        "line {}: declared node count {n} exceeds the limit of {cap} nodes",
                        lineno + 1
                    ),
                });
            }
            declared_nodes = Some(n);
            continue;
        }
        let mut parts = line.split_whitespace();
        let (u, v) = match (parts.next(), parts.next(), parts.next()) {
            (Some(u), Some(v), None) => (u, v),
            _ => {
                return Err(GraphError::InvalidParameter {
                    detail: format!("line {}: expected `u v`, got {line:?}", lineno + 1),
                })
            }
        };
        let parse = |s: &str| {
            s.parse::<usize>()
                .map_err(|_| GraphError::InvalidParameter {
                    detail: format!("line {}: {s:?} is not a node index", lineno + 1),
                })
        };
        edges.push((check(parse(u)?, lineno)?, check(parse(v)?, lineno)?));
    }
    // Safe: every index is < cap <= u32::MAX, so `+ 1` cannot overflow.
    let needed = edges.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(0);
    let n = match declared_nodes {
        Some(n) if n < needed => {
            return Err(GraphError::InvalidParameter {
                detail: format!(
                    "declared {n} nodes but an edge references node {}",
                    needed - 1
                ),
            })
        }
        Some(n) => n,
        None => needed,
    };
    let mut g = SimpleGraph::new(n);
    for (u, v) in edges {
        g.add_edge(NodeId::new(u), NodeId::new(v))?;
    }
    Ok(g)
}

/// Writes a graph as an edge list (with a `nodes` header so isolated
/// nodes round-trip).
pub fn write_edge_list(g: &SimpleGraph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "nodes {}", g.node_count());
    for (_, u, v) in g.edges() {
        let _ = writeln!(out, "{} {}", u.index(), v.index());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip() {
        let mut g = generators::petersen();
        g.add_node(); // an isolated node must survive
        let text = write_edge_list(&g);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for (_, u, v) in g.edges() {
            assert!(back.has_edge(u, v));
        }
    }

    #[test]
    fn comments_and_blanks() {
        let g = parse_edge_list("\n# comment\n0 1 # trailing\n\n1 2\n").unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn header_allows_isolated_nodes() {
        let g = parse_edge_list("nodes 5\n0 1\n").unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse_edge_list("0\n").is_err());
        assert!(parse_edge_list("0 1 2\n").is_err());
        assert!(parse_edge_list("a b\n").is_err());
        assert!(parse_edge_list("nodes x\n").is_err());
        assert!(parse_edge_list("nodes 1\n0 1\n").is_err());
    }

    #[test]
    fn structural_errors_propagate() {
        assert!(matches!(
            parse_edge_list("0 0\n"),
            Err(GraphError::LoopNotAllowed { .. })
        ));
        assert!(matches!(
            parse_edge_list("0 1\n1 0\n"),
            Err(GraphError::ParallelEdge { .. })
        ));
    }

    #[test]
    fn empty_input() {
        let g = parse_edge_list("").unwrap();
        assert_eq!(g.node_count(), 0);
    }

    /// The historical panic sites: an endpoint at `usize::MAX` used to
    /// overflow the `max + 1` node count in debug builds, and anything
    /// above `u32::MAX` used to trip the `NodeId::new` expect. Both are
    /// structured errors now, for any input.
    #[test]
    fn oversized_indices_are_structured_errors() {
        let huge = format!("0 {}\n", usize::MAX);
        assert!(matches!(
            parse_edge_list(&huge),
            Err(GraphError::InvalidParameter { .. })
        ));
        let above_u32 = format!("0 {}\n", u64::from(u32::MAX) + 1);
        assert!(matches!(
            parse_edge_list(&above_u32),
            Err(GraphError::InvalidParameter { .. })
        ));
        let huge_header = format!("nodes {}\n", usize::MAX);
        assert!(matches!(
            parse_edge_list(&huge_header),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn cap_rejects_before_allocating() {
        // A cap of 10 turns a 1e9-node declaration into an error.
        assert!(parse_edge_list_capped("nodes 1000000000\n", 10).is_err());
        assert!(parse_edge_list_capped("0 999\n", 10).is_err());
        let g = parse_edge_list_capped("0 9\n", 10).unwrap();
        assert_eq!(g.node_count(), 10);
        // Index == cap is out of range (indices are 0-based).
        assert!(parse_edge_list_capped("0 10\n", 10).is_err());
    }
}

//! Port-numbered graphs and the combinatorial substrate for anonymous
//! distributed computing.
//!
//! This crate implements the graph model of Suomela, *Distributed
//! Algorithms for Edge Dominating Sets* (PODC 2010), Section 2:
//!
//! * [`SimpleGraph`] and [`MultiGraph`] — plain undirected graphs with
//!   stable edge identifiers;
//! * [`PortNumberedGraph`] — nodes with degrees and an **involution** over
//!   ports, the input representation for algorithms in the port-numbering
//!   model;
//! * [`ports`] — strategies for assigning port numbers to a simple graph,
//!   including the adversarial 2-factorised numbering of the paper's lower
//!   bounds;
//! * [`euler`] and [`factorization`] — Euler circuits and Petersen's
//!   2-factorisation theorem (every `2k`-regular multigraph splits into
//!   `k` 2-factors);
//! * [`covering`] — covering maps and lifts (Section 2.3), the engine of
//!   the lower-bound proofs;
//! * [`matching`] — centralised bipartite and greedy matchings;
//! * [`transform`] — line graphs, bipartite double covers, edge subgraphs;
//! * [`generators`] — classic and random graph families;
//! * [`analysis`] — connectivity, bipartiteness and degree statistics.
//!
//! # Example
//!
//! Build a 4-regular graph, give it the adversarial 2-factorised port
//! numbering, and inspect the wiring:
//!
//! ```
//! use pn_graph::{generators, ports, Endpoint, Port};
//! # fn main() -> Result<(), pn_graph::GraphError> {
//! let g = generators::torus(4, 4)?; // 4-regular
//! let pg = ports::two_factor_ports(&g)?;
//! // Every port 1 is wired to a port 2, every port 3 to a port 4.
//! for v in pg.nodes() {
//!     assert_eq!(pg.connection(Endpoint::new(v, Port::new(1))).port, Port::new(2));
//!     assert_eq!(pg.connection(Endpoint::new(v, Port::new(3))).port, Port::new(4));
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod covering;
pub mod dot;
pub mod dynamic;
mod error;
pub mod euler;
pub mod factorization;
pub mod generators;
mod ids;
pub mod io;
pub mod matching;
mod multi;
mod pn;
pub mod ports;
mod simple;
pub mod transform;

pub use covering::CoveringMap;
pub use dynamic::{DynTopology, DynamicTopology, StreamedDynamicTopology};
pub use error::GraphError;
pub use ids::{EdgeId, Endpoint, NodeId, Port};
pub use multi::MultiGraph;
pub use pn::{EdgeShape, PnGraphBuilder, PortNumberedGraph};
pub use simple::SimpleGraph;

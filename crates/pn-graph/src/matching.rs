//! Centralised matching algorithms.
//!
//! Two algorithms are provided:
//!
//! * [`hopcroft_karp`] — maximum matching in a bipartite (multi)graph, used
//!   by the 2-factorisation machinery to peel perfect matchings off a
//!   `k`-regular bipartite graph;
//! * [`greedy_maximal_matching`] — a maximal matching in an arbitrary
//!   graph, the classical centralised 2-approximation for minimum edge
//!   dominating sets (paper Section 1.2).

use crate::{EdgeId, SimpleGraph};

/// A bipartite graph given as adjacency lists from left vertices to
/// `(right vertex, tag)` pairs. Parallel edges are allowed; `tag` lets the
/// caller recover which parallel edge was matched.
#[derive(Clone, Debug, Default)]
pub struct Bipartite {
    /// Number of right-side vertices.
    pub right_count: usize,
    /// `adj[u]` lists the right neighbours of left vertex `u` as
    /// `(right, tag)`.
    pub adj: Vec<Vec<(usize, usize)>>,
}

impl Bipartite {
    /// Creates a bipartite graph with the given side sizes and no edges.
    pub fn new(left_count: usize, right_count: usize) -> Self {
        Bipartite {
            right_count,
            adj: vec![Vec::new(); left_count],
        }
    }

    /// Adds an edge from left vertex `u` to right vertex `v` with a caller
    /// chosen `tag`.
    pub fn add_edge(&mut self, u: usize, v: usize, tag: usize) {
        assert!(u < self.adj.len(), "left vertex out of range");
        assert!(v < self.right_count, "right vertex out of range");
        self.adj[u].push((v, tag));
    }

    /// Number of left-side vertices.
    pub fn left_count(&self) -> usize {
        self.adj.len()
    }
}

/// A matching in a [`Bipartite`] graph: for each left vertex, the matched
/// `(right, tag)` pair, if any.
pub type BipartiteMatching = Vec<Option<(usize, usize)>>;

const UNMATCHED: usize = usize::MAX;

/// Hopcroft–Karp maximum bipartite matching, `O(E √V)`.
///
/// Returns for each left vertex its matched `(right, tag)` pair, or `None`.
/// In a `k`-regular bipartite graph (`k ≥ 1`) the result is always a
/// perfect matching — the property the 2-factorisation relies on.
///
/// # Examples
///
/// ```
/// use pn_graph::matching::{Bipartite, hopcroft_karp};
/// let mut b = Bipartite::new(2, 2);
/// b.add_edge(0, 0, 100);
/// b.add_edge(0, 1, 101);
/// b.add_edge(1, 0, 102);
/// let m = hopcroft_karp(&b);
/// assert!(m.iter().all(Option::is_some)); // perfect
/// ```
pub fn hopcroft_karp(g: &Bipartite) -> BipartiteMatching {
    let n_left = g.left_count();
    let n_right = g.right_count;
    // match_left[u] = index into g.adj[u] of the matched edge, or UNMATCHED.
    let mut match_left = vec![UNMATCHED; n_left];
    // match_right[v] = matched left vertex, or UNMATCHED.
    let mut match_right = vec![UNMATCHED; n_right];
    let mut dist = vec![usize::MAX; n_left];
    let mut queue = Vec::with_capacity(n_left);

    loop {
        // BFS: layer the free left vertices.
        queue.clear();
        for u in 0..n_left {
            if match_left[u] == UNMATCHED {
                dist[u] = 0;
                queue.push(u);
            } else {
                dist[u] = usize::MAX;
            }
        }
        let mut found_augmenting_layer = false;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &(v, _) in &g.adj[u] {
                let w = match_right[v];
                if w == UNMATCHED {
                    found_augmenting_layer = true;
                } else if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    queue.push(w);
                }
            }
        }
        if !found_augmenting_layer {
            break;
        }
        // DFS phase: find a maximal set of shortest augmenting paths.
        fn try_augment(
            u: usize,
            g: &Bipartite,
            match_left: &mut [usize],
            match_right: &mut [usize],
            dist: &mut [usize],
        ) -> bool {
            for idx in 0..g.adj[u].len() {
                let (v, _) = g.adj[u][idx];
                let w = match_right[v];
                let ok = if w == UNMATCHED {
                    true
                } else if dist[w] == dist[u] + 1 {
                    try_augment(w, g, match_left, match_right, dist)
                } else {
                    false
                };
                if ok {
                    match_left[u] = idx;
                    match_right[v] = u;
                    return true;
                }
            }
            dist[u] = usize::MAX;
            false
        }
        let mut augmented = false;
        for u in 0..n_left {
            if match_left[u] == UNMATCHED
                && try_augment(u, g, &mut match_left, &mut match_right, &mut dist)
            {
                augmented = true;
            }
        }
        if !augmented {
            break;
        }
    }

    (0..n_left)
        .map(|u| {
            let idx = match_left[u];
            if idx == UNMATCHED {
                None
            } else {
                Some(g.adj[u][idx])
            }
        })
        .collect()
}

/// Greedy maximal matching over the edges of `g` in edge-id order.
///
/// The result is a *maximal* matching (no edge can be added), hence an edge
/// dominating set of size at most twice the minimum (paper Section 1.1).
///
/// # Examples
///
/// ```
/// use pn_graph::{SimpleGraph, matching::greedy_maximal_matching};
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// let mut g = SimpleGraph::new(4);
/// g.add_edge_ids(0, 1)?;
/// g.add_edge_ids(1, 2)?;
/// g.add_edge_ids(2, 3)?;
/// let m = greedy_maximal_matching(&g);
/// assert_eq!(m.len(), 2); // {0-1, 2-3}
/// # Ok(())
/// # }
/// ```
pub fn greedy_maximal_matching(g: &SimpleGraph) -> Vec<EdgeId> {
    greedy_maximal_matching_in(g, |_| true)
}

/// Greedy maximal matching restricted to edges accepted by `filter`.
///
/// The result is maximal *within the filtered edge set*: every accepted
/// edge shares an endpoint with some matched edge.
pub fn greedy_maximal_matching_in<F>(g: &SimpleGraph, mut filter: F) -> Vec<EdgeId>
where
    F: FnMut(EdgeId) -> bool,
{
    let mut covered = vec![false; g.node_count()];
    let mut matching = Vec::new();
    for (e, u, v) in g.edges() {
        if !filter(e) {
            continue;
        }
        if !covered[u.index()] && !covered[v.index()] {
            covered[u.index()] = true;
            covered[v.index()] = true;
            matching.push(e);
        }
    }
    matching
}

/// Checks whether `edges` forms a matching in `g` (no two edges share a
/// node).
pub fn is_matching(g: &SimpleGraph, edges: &[EdgeId]) -> bool {
    let mut covered = vec![false; g.node_count()];
    for &e in edges {
        let (u, v) = g.endpoints(e);
        if covered[u.index()] || covered[v.index()] {
            return false;
        }
        covered[u.index()] = true;
        covered[v.index()] = true;
    }
    true
}

/// The set of nodes covered by an edge set, as a boolean mask.
pub fn covered_nodes(g: &SimpleGraph, edges: &[EdgeId]) -> Vec<bool> {
    let mut covered = vec![false; g.node_count()];
    for &e in edges {
        let (u, v) = g.endpoints(e);
        covered[u.index()] = true;
        covered[v.index()] = true;
    }
    covered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hopcroft_karp_perfect_on_regular() {
        // 3-regular bipartite graph on 4+4 vertices: circulant.
        let mut b = Bipartite::new(4, 4);
        for u in 0..4 {
            for s in 0..3 {
                b.add_edge(u, (u + s) % 4, u * 10 + s);
            }
        }
        let m = hopcroft_karp(&b);
        assert!(m.iter().all(Option::is_some));
        let mut rights: Vec<_> = m.iter().map(|x| x.unwrap().0).collect();
        rights.sort_unstable();
        assert_eq!(rights, vec![0, 1, 2, 3]);
    }

    #[test]
    fn hopcroft_karp_maximum_not_just_maximal() {
        // Path structure where greedy could pick the middle edge only:
        // L0-R0, L1-R0, L1-R1. Maximum matching = 2.
        let mut b = Bipartite::new(2, 2);
        b.add_edge(0, 0, 0);
        b.add_edge(1, 0, 1);
        b.add_edge(1, 1, 2);
        let m = hopcroft_karp(&b);
        assert_eq!(m.iter().filter(|x| x.is_some()).count(), 2);
        assert_eq!(m[0], Some((0, 0)));
        assert_eq!(m[1], Some((1, 2)));
    }

    #[test]
    fn hopcroft_karp_with_parallel_edges() {
        let mut b = Bipartite::new(1, 1);
        b.add_edge(0, 0, 7);
        b.add_edge(0, 0, 8);
        let m = hopcroft_karp(&b);
        assert_eq!(m[0].unwrap().0, 0);
    }

    #[test]
    fn hopcroft_karp_empty() {
        let b = Bipartite::new(3, 2);
        let m = hopcroft_karp(&b);
        assert!(m.iter().all(Option::is_none));
    }

    #[test]
    fn greedy_is_maximal() {
        let mut g = SimpleGraph::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)] {
            g.add_edge_ids(u, v).unwrap();
        }
        let m = greedy_maximal_matching(&g);
        assert!(is_matching(&g, &m));
        let covered = covered_nodes(&g, &m);
        for (e, u, v) in g.edges() {
            let _ = e;
            assert!(covered[u.index()] || covered[v.index()], "maximality");
        }
    }

    #[test]
    fn filtered_greedy_respects_filter() {
        let mut g = SimpleGraph::new(4);
        let e0 = g.add_edge_ids(0, 1).unwrap();
        let e1 = g.add_edge_ids(2, 3).unwrap();
        let m = greedy_maximal_matching_in(&g, |e| e == e1);
        assert_eq!(m, vec![e1]);
        let _ = e0;
    }

    #[test]
    fn is_matching_detects_conflicts() {
        let mut g = SimpleGraph::new(3);
        let a = g.add_edge_ids(0, 1).unwrap();
        let b = g.add_edge_ids(1, 2).unwrap();
        assert!(is_matching(&g, &[a]));
        assert!(!is_matching(&g, &[a, b]));
    }
}

//! Undirected multigraphs (loops and parallel edges allowed).
//!
//! Multigraphs appear in two roles in the reproduction:
//!
//! * as the *targets of covering maps* in the lower-bound proofs
//!   (the one-node multigraph of Theorem 1, the `(d+1)`-node multigraph of
//!   Theorem 2) — those are built directly as
//!   [`crate::PortNumberedGraph`]s; and
//! * as inputs to the Euler-tour and 2-factorisation machinery
//!   ([`crate::euler`], [`crate::factorization`]), where intermediate
//!   graphs may be non-simple even when the original graph is simple.

use crate::{EdgeId, GraphError, NodeId, SimpleGraph};

/// An undirected multigraph with stable edge identifiers.
///
/// Loops are allowed and contribute **2** to the degree of their node, the
/// standard convention that keeps the handshake lemma (`Σ deg = 2|E|`) and
/// Euler's theorem intact.
///
/// # Examples
///
/// ```
/// use pn_graph::{MultiGraph, NodeId};
/// let mut g = MultiGraph::new(2);
/// g.add_edge_ids(0, 1);
/// g.add_edge_ids(0, 1); // parallel edge: fine
/// g.add_edge_ids(1, 1); // loop: fine
/// assert_eq!(g.degree(NodeId::new(0)), 2);
/// assert_eq!(g.degree(NodeId::new(1)), 4);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MultiGraph {
    /// adjacency: for each node, (neighbour, edge id); loops appear twice.
    adj: Vec<Vec<(NodeId, EdgeId)>>,
    edges: Vec<(NodeId, NodeId)>,
}

impl MultiGraph {
    /// Creates a multigraph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        MultiGraph {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Adds a new isolated node, returning its identifier.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        NodeId::new(self.adj.len() - 1)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges (each loop counts once).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}` (possibly a loop or a parallel
    /// edge).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        assert!(u.index() < self.node_count(), "node {u} out of range");
        assert!(v.index() < self.node_count(), "node {v} out of range");
        let id = EdgeId::new(self.edges.len());
        self.edges.push((u, v));
        self.adj[u.index()].push((v, id));
        self.adj[v.index()].push((u, id));
        id
    }

    /// Convenience wrapper around [`MultiGraph::add_edge`] taking raw
    /// indices.
    pub fn add_edge_ids(&mut self, u: usize, v: usize) -> EdgeId {
        self.add_edge(NodeId::new(u), NodeId::new(v))
    }

    /// Degree of `v`; loops count twice.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// The endpoints of edge `e`.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e.index()]
    }

    /// Returns `true` if edge `e` is a loop.
    pub fn is_loop(&self, e: EdgeId) -> bool {
        let (u, v) = self.endpoints(e);
        u == v
    }

    /// Neighbour list of `v` (loops appear twice), in insertion order.
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[v.index()]
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterates over all edges as `(EdgeId, u, v)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId::new(i), u, v))
    }

    /// Returns `Some(d)` if the graph is `d`-regular, `None` otherwise.
    pub fn regular_degree(&self) -> Option<usize> {
        let d = self.adj.iter().map(Vec::len).max().unwrap_or(0);
        if self.adj.iter().all(|a| a.len() == d) {
            Some(d)
        } else {
            None
        }
    }

    /// Returns `true` if the graph has no loops and no parallel edges.
    pub fn is_simple(&self) -> bool {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for &(u, v) in &self.edges {
            if u == v {
                return false;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if !seen.insert(key) {
                return false;
            }
        }
        true
    }

    /// Converts to a [`SimpleGraph`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotSimple`] if the multigraph has loops or
    /// parallel edges. Edge identifiers are preserved (edge `i` of the
    /// multigraph becomes edge `i` of the simple graph).
    pub fn to_simple(&self) -> Result<SimpleGraph, GraphError> {
        let mut g = SimpleGraph::new(self.node_count());
        for &(u, v) in &self.edges {
            g.add_edge(u, v).map_err(|e| GraphError::NotSimple {
                detail: e.to_string(),
            })?;
        }
        Ok(g)
    }

    /// Builds a multigraph from a simple graph, preserving node and edge
    /// identifiers.
    pub fn from_simple(g: &SimpleGraph) -> Self {
        let mut m = MultiGraph::new(g.node_count());
        for (_, u, v) in g.edges() {
            m.add_edge(u, v);
        }
        m
    }
}

impl From<&SimpleGraph> for MultiGraph {
    fn from(g: &SimpleGraph) -> Self {
        MultiGraph::from_simple(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loops_count_twice() {
        let mut g = MultiGraph::new(1);
        g.add_edge_ids(0, 0);
        assert_eq!(g.degree(NodeId::new(0)), 2);
        assert!(g.is_loop(EdgeId::new(0)));
        assert!(!g.is_simple());
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = MultiGraph::new(2);
        let a = g.add_edge_ids(0, 1);
        let b = g.add_edge_ids(1, 0);
        assert_ne!(a, b);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(NodeId::new(0)), 2);
        assert!(!g.is_simple());
    }

    #[test]
    fn simple_round_trip() {
        let mut s = SimpleGraph::new(3);
        s.add_edge_ids(0, 1).unwrap();
        s.add_edge_ids(1, 2).unwrap();
        let m = MultiGraph::from_simple(&s);
        assert!(m.is_simple());
        let back = m.to_simple().unwrap();
        assert_eq!(back.edge_count(), 2);
        assert_eq!(back.endpoints(EdgeId::new(0)), s.endpoints(EdgeId::new(0)));
    }

    #[test]
    fn to_simple_rejects_loop() {
        let mut g = MultiGraph::new(1);
        g.add_edge_ids(0, 0);
        assert!(matches!(g.to_simple(), Err(GraphError::NotSimple { .. })));
    }

    #[test]
    fn regularity() {
        let mut g = MultiGraph::new(2);
        g.add_edge_ids(0, 1);
        g.add_edge_ids(0, 1);
        assert_eq!(g.regular_degree(), Some(2));
        g.add_edge_ids(0, 0);
        assert_eq!(g.regular_degree(), None);
    }
}

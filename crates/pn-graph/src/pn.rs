//! Port-numbered graphs: the paper's model of anonymous networks.
//!
//! A port-numbered graph (Section 2.1 of the paper) is a set of nodes `V`, a
//! degree function `d : V → ℕ`, and an **involution** `p : P → P` over the
//! set of ports `P = {(v, i) : v ∈ V, 1 ≤ i ≤ d(v)}`. The involution
//! describes which port is wired to which: if `p(v, i) = (u, j)`, messages
//! sent by `v` to its port `i` are received by `u` from its port `j`.
//!
//! The derived edge multiset `E` contains an undirected edge `{v, u}` for
//! every transposed pair of ports, and a *directed loop* for every fixed
//! point of the involution. Multigraphs (the covering-map targets of the
//! lower-bound proofs) are therefore represented natively.

use std::collections::HashSet;

use crate::{EdgeId, Endpoint, GraphError, NodeId, Port, SimpleGraph};

/// The shape of one edge of a port-numbered graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeShape {
    /// An undirected edge joining two distinct ports. The two ports may
    /// belong to the same node (an undirected self-loop using two ports).
    Link {
        /// The endpoint with the smaller `(node, port)` pair.
        a: Endpoint,
        /// The endpoint with the larger `(node, port)` pair.
        b: Endpoint,
    },
    /// A fixed point of the involution: `p(v, i) = (v, i)`. The paper calls
    /// this a *directed loop*; a message sent to this port comes straight
    /// back in on the same port.
    HalfLoop {
        /// The self-connected endpoint.
        at: Endpoint,
    },
}

impl EdgeShape {
    /// The two node endpoints of the edge (equal for loops).
    pub fn nodes(&self) -> (NodeId, NodeId) {
        match *self {
            EdgeShape::Link { a, b } => (a.node, b.node),
            EdgeShape::HalfLoop { at } => (at.node, at.node),
        }
    }

    /// Returns `true` if the edge is a loop of either kind.
    pub fn is_loop(&self) -> bool {
        let (u, v) = self.nodes();
        u == v
    }
}

/// An immutable, validated port-numbered graph.
///
/// Construct one with [`PnGraphBuilder`], [`PortNumberedGraph::from_involution`],
/// or the port-assignment helpers in [`crate::ports`].
///
/// # Examples
///
/// Build the two-node graph in which port 1 of each node is wired to port 1
/// of the other:
///
/// ```
/// use pn_graph::{PnGraphBuilder, Endpoint, NodeId, Port};
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// let mut b = PnGraphBuilder::new();
/// let u = b.add_node(1);
/// let v = b.add_node(1);
/// b.connect(Endpoint::new(u, Port::new(1)), Endpoint::new(v, Port::new(1)))?;
/// let g = b.finish()?;
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.edge_count(), 1);
/// assert!(g.is_simple());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortNumberedGraph {
    degrees: Vec<u32>,
    offsets: Vec<usize>,
    conn: Vec<Endpoint>,
    edges: Vec<EdgeShape>,
    edge_at_slot: Vec<EdgeId>,
}

impl PortNumberedGraph {
    /// Builds a port-numbered graph from an explicit involution table.
    ///
    /// `involution[slot]` must hold `p(v, i)` where `slot` enumerates ports
    /// in node order, i.e. slot `offset(v) + (i - 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::PortOutOfRange`] or
    /// [`GraphError::NotAnInvolution`] if the table is malformed.
    pub fn from_involution(
        degrees: Vec<u32>,
        involution: Vec<Endpoint>,
    ) -> Result<Self, GraphError> {
        let offsets = Self::offsets_for(&degrees);
        let total: usize = degrees.iter().map(|&d| d as usize).sum();
        if involution.len() != total {
            return Err(GraphError::InvalidParameter {
                detail: format!(
                    "involution table has {} entries but the graph has {} ports",
                    involution.len(),
                    total
                ),
            });
        }
        Self::check_tables(&degrees, &offsets, &involution)?;
        let (edges, edge_at_slot) = Self::derive_edges(&degrees, &offsets, &involution);
        Ok(PortNumberedGraph {
            degrees,
            offsets,
            conn: involution,
            edges,
            edge_at_slot,
        })
    }

    /// The structural checks behind [`PortNumberedGraph::from_involution`]:
    /// every involution target in range, and `p(p(x)) = x` everywhere.
    fn check_tables(
        degrees: &[u32],
        offsets: &[usize],
        involution: &[Endpoint],
    ) -> Result<(), GraphError> {
        for &target in involution {
            let node = target.node;
            if node.index() >= degrees.len() {
                return Err(GraphError::NodeOutOfRange {
                    node,
                    nodes: degrees.len(),
                });
            }
            if target.port.get() > degrees[node.index()] {
                return Err(GraphError::PortOutOfRange {
                    endpoint: target,
                    degree: degrees[node.index()] as usize,
                });
            }
        }
        for v in 0..degrees.len() {
            for i in 0..degrees[v] as usize {
                let here = Endpoint::new(NodeId::new(v), Port::from_index(i));
                let there = involution[offsets[v] + i];
                let slot_there = offsets[there.node.index()] + there.port.index();
                let back = involution[slot_there];
                if back != here {
                    return Err(GraphError::NotAnInvolution { endpoint: here });
                }
            }
        }
        Ok(())
    }

    /// Re-runs the construction-time structural validation against the
    /// stored tables: involution targets in range and `p(p(x)) = x` for
    /// every port.
    ///
    /// Graphs built through the safe constructors already hold these
    /// invariants, so this is a defense-in-depth check for graphs that
    /// crossed a trust boundary — external ingestion
    /// (`eds_scenarios::Scenario::external`) and the churn harness's
    /// [`crate::DynamicTopology::freeze`] both call it so a malformed
    /// port map surfaces as a structured error at ingestion time instead
    /// of as a debug-assert (or silent misrouting in release builds)
    /// deep inside the simulator.
    ///
    /// # Errors
    ///
    /// The same errors as [`PortNumberedGraph::from_involution`].
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.offsets.len() != self.degrees.len() {
            return Err(GraphError::InvalidParameter {
                detail: format!(
                    "offset table has {} entries for {} nodes",
                    self.offsets.len(),
                    self.degrees.len()
                ),
            });
        }
        let total: usize = self.degrees.iter().map(|&d| d as usize).sum();
        if self.conn.len() != total {
            return Err(GraphError::InvalidParameter {
                detail: format!(
                    "involution table has {} entries but the graph has {total} ports",
                    self.conn.len()
                ),
            });
        }
        Self::check_tables(&self.degrees, &self.offsets, &self.conn)
    }

    fn offsets_for(degrees: &[u32]) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(degrees.len());
        let mut acc = 0usize;
        for &d in degrees {
            offsets.push(acc);
            acc += d as usize;
        }
        offsets
    }

    fn derive_edges(
        degrees: &[u32],
        offsets: &[usize],
        conn: &[Endpoint],
    ) -> (Vec<EdgeShape>, Vec<EdgeId>) {
        let total = conn.len();
        let mut edges = Vec::new();
        let mut edge_at_slot = vec![EdgeId::new(0); total];
        for v in 0..degrees.len() {
            for i in 0..degrees[v] as usize {
                let here = Endpoint::new(NodeId::new(v), Port::from_index(i));
                let there = conn[offsets[v] + i];
                if there == here {
                    let id = EdgeId::new(edges.len());
                    edges.push(EdgeShape::HalfLoop { at: here });
                    edge_at_slot[offsets[v] + i] = id;
                } else if here < there {
                    let id = EdgeId::new(edges.len());
                    edges.push(EdgeShape::Link { a: here, b: there });
                    edge_at_slot[offsets[v] + i] = id;
                    edge_at_slot[offsets[there.node.index()] + there.port.index()] = id;
                }
            }
        }
        (edges, edge_at_slot)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.degrees.len()
    }

    /// Number of edges (links and loops together).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Degree `d(v)` of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        debug_assert!(v.index() < self.degrees.len(), "node {v} out of range");
        self.degrees[v.index()] as usize
    }

    /// Maximum degree `Δ`.
    pub fn max_degree(&self) -> usize {
        self.degrees.iter().copied().max().unwrap_or(0) as usize
    }

    /// Returns `Some(d)` if every node has degree `d`.
    pub fn regular_degree(&self) -> Option<usize> {
        let d = self.max_degree();
        if self.degrees.iter().all(|&x| x as usize == d) {
            Some(d)
        } else {
            None
        }
    }

    /// Total number of ports (`Σ_v d(v)`).
    #[inline]
    pub fn port_count(&self) -> usize {
        self.conn.len()
    }

    /// The involution: where is this port wired to?
    ///
    /// Bounds are validated with `debug_assert!` only — a hot accessor on
    /// the simulator's routing path. An out-of-range endpoint panics in
    /// debug builds; in release builds it may silently resolve to another
    /// node's slot (all callers in this workspace pass validated
    /// endpoints).
    #[inline]
    pub fn connection(&self, e: Endpoint) -> Endpoint {
        self.conn[self.slot(e)]
    }

    /// The node reached through port `i` of `v` (the *neighbour through
    /// port `i`*; may be `v` itself for loops).
    #[inline]
    pub fn neighbor_through(&self, v: NodeId, i: Port) -> NodeId {
        self.connection(Endpoint::new(v, i)).node
    }

    /// The edge incident to the given endpoint.
    #[inline]
    pub fn edge_at(&self, e: Endpoint) -> EdgeId {
        self.edge_at_slot[self.slot(e)]
    }

    /// The precomputed slot-offset table: `slot_offsets()[v]` is the index
    /// of the first port slot of node `v` in the flat port arena (ports
    /// are laid out in node order, `slot(v, i) = slot_offsets()[v] + i -
    /// 1`). Computed once at construction; consumers such as `pn-runtime`
    /// should borrow this instead of re-deriving prefix sums per run.
    #[inline]
    pub fn slot_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The flat index of endpoint `e` in the port arena — the slot whose
    /// entry [`PortNumberedGraph::involution`] holds `p(e)`.
    #[inline]
    pub fn slot_of(&self, e: Endpoint) -> usize {
        self.slot(e)
    }

    /// The raw involution table: entry `s` holds `p(e)` for the endpoint
    /// `e` with `slot_of(e) == s`. Together with
    /// [`PortNumberedGraph::slot_offsets`] this is the whole routing
    /// structure of the graph in two flat slices.
    #[inline]
    pub fn involution(&self) -> &[Endpoint] {
        &self.conn
    }

    /// The degree-sorted node relayout: a permutation `perm` with
    /// `perm[new] = old` listing the nodes in ascending order of degree,
    /// **stable** (nodes of equal degree keep their original relative
    /// order, so structured generators' locality survives the sort).
    ///
    /// This is the CSR reordering used by the packed execution tier in
    /// `pn-runtime`: grouping equal-degree nodes makes their port windows
    /// uniform runs in the flat slot arena, which is what lets per-word
    /// kernels process many nodes per machine word and keeps the route
    /// plan's gather entries shared across lanes. On a regular graph the
    /// permutation is the identity.
    ///
    /// # Panics
    ///
    /// Panics if the node count exceeds `u32::MAX` (no generator in this
    /// workspace can produce such a graph: the port arena is addressed
    /// with `u32` slots well before that).
    pub fn degree_sorted_permutation(&self) -> Vec<u32> {
        assert!(
            self.degrees.len() <= u32::MAX as usize,
            "node count exceeds u32 range"
        );
        let mut perm: Vec<u32> = (0..self.degrees.len() as u32).collect();
        perm.sort_by_key(|&v| self.degrees[v as usize]);
        perm
    }

    /// The shape of edge `e`.
    pub fn edge(&self, e: EdgeId) -> EdgeShape {
        self.edges[e.index()]
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterates over all ports of node `v` in increasing order.
    #[inline]
    pub fn ports(&self, v: NodeId) -> impl Iterator<Item = Port> + '_ {
        (0..self.degree(v)).map(Port::from_index)
    }

    /// Iterates over all edges with their identifiers.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, EdgeShape)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &s)| (EdgeId::new(i), s))
    }

    /// Iterates over the edge identifiers incident to `v` in port order.
    /// A loop attached to `v` by two ports appears twice.
    pub fn incident_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.ports(v)
            .map(move |p| self.edge_at(Endpoint::new(v, p)))
    }

    /// Returns `true` if the graph is simple: no loops of either kind and
    /// no parallel links.
    pub fn is_simple(&self) -> bool {
        let mut seen = HashSet::new();
        for e in &self.edges {
            if e.is_loop() {
                return false;
            }
            let (u, v) = e.nodes();
            let key = if u < v { (u, v) } else { (v, u) };
            if !seen.insert(key) {
                return false;
            }
        }
        true
    }

    /// The port `ℓ_G(v, u)` through which `v` sees its neighbour `u`
    /// (Section 5 of the paper). Only meaningful in simple graphs, where it
    /// is unique; returns the smallest such port in multigraphs.
    pub fn port_toward(&self, v: NodeId, u: NodeId) -> Option<Port> {
        self.ports(v).find(|&p| self.neighbor_through(v, p) == u)
    }

    /// The two port endpoints of edge `e` (equal for half-loops).
    pub fn edge_endpoints(&self, e: EdgeId) -> (Endpoint, Endpoint) {
        match self.edge(e) {
            EdgeShape::Link { a, b } => (a, b),
            EdgeShape::HalfLoop { at } => (at, at),
        }
    }

    /// Extracts the underlying [`SimpleGraph`], with **identical edge
    /// identifiers** (edge `i` here becomes edge `i` there).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotSimple`] if the graph has loops or parallel
    /// links.
    pub fn to_simple(&self) -> Result<SimpleGraph, GraphError> {
        let mut g = SimpleGraph::new(self.node_count());
        for e in &self.edges {
            match *e {
                EdgeShape::HalfLoop { at } => {
                    return Err(GraphError::NotSimple {
                        detail: format!("directed loop at {at}"),
                    })
                }
                EdgeShape::Link { a, b } => {
                    g.add_edge(a.node, b.node)
                        .map_err(|err| GraphError::NotSimple {
                            detail: err.to_string(),
                        })?;
                }
            }
        }
        Ok(g)
    }

    #[inline]
    fn slot(&self, e: Endpoint) -> usize {
        let v = e.node.index();
        debug_assert!(v < self.degrees.len(), "node {} out of range", e.node);
        debug_assert!(
            e.port.get() <= self.degrees[v],
            "port {} exceeds degree {} of node {}",
            e.port,
            self.degrees[v],
            e.node
        );
        self.offsets[v] + e.port.index()
    }
}

/// Incremental builder for [`PortNumberedGraph`].
///
/// Declare nodes with fixed degrees, then wire ports pairwise with
/// [`PnGraphBuilder::connect`] (or [`PnGraphBuilder::fix_point`] for the
/// paper's directed loops), and call [`PnGraphBuilder::finish`].
#[derive(Clone, Debug, Default)]
pub struct PnGraphBuilder {
    degrees: Vec<u32>,
    conn: Vec<Vec<Option<Endpoint>>>,
}

impl PnGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with the given (fixed) degree, returning its identifier.
    pub fn add_node(&mut self, degree: usize) -> NodeId {
        self.degrees
            .push(u32::try_from(degree).expect("degree exceeds u32 range"));
        self.conn.push(vec![None; degree]);
        NodeId::new(self.degrees.len() - 1)
    }

    /// Adds `count` nodes of the same degree.
    pub fn add_nodes(&mut self, count: usize, degree: usize) -> Vec<NodeId> {
        (0..count).map(|_| self.add_node(degree)).collect()
    }

    /// Wires port `a` to port `b` (and vice versa). `a == b` creates a
    /// fixed point, equivalent to [`PnGraphBuilder::fix_point`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::PortAlreadyConnected`] if either port is in
    /// use, and range errors for invalid endpoints.
    pub fn connect(&mut self, a: Endpoint, b: Endpoint) -> Result<(), GraphError> {
        self.check(a)?;
        self.check(b)?;
        if self.slot(a).is_some() {
            return Err(GraphError::PortAlreadyConnected { endpoint: a });
        }
        if a != b && self.slot(b).is_some() {
            return Err(GraphError::PortAlreadyConnected { endpoint: b });
        }
        *self.slot_mut(a) = Some(b);
        *self.slot_mut(b) = Some(a);
        Ok(())
    }

    /// Declares `p(e) = e`: a fixed point of the involution (a directed
    /// loop in the paper's terminology).
    ///
    /// # Errors
    ///
    /// Same as [`PnGraphBuilder::connect`].
    pub fn fix_point(&mut self, e: Endpoint) -> Result<(), GraphError> {
        self.connect(e, e)
    }

    /// Validates that every port is wired and produces the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::PortUnconnected`] if any port is dangling.
    pub fn finish(self) -> Result<PortNumberedGraph, GraphError> {
        let mut flat = Vec::with_capacity(self.conn.iter().map(Vec::len).sum());
        for (v, slots) in self.conn.iter().enumerate() {
            for (i, s) in slots.iter().enumerate() {
                match s {
                    Some(t) => flat.push(*t),
                    None => {
                        return Err(GraphError::PortUnconnected {
                            endpoint: Endpoint::new(NodeId::new(v), Port::from_index(i)),
                        })
                    }
                }
            }
        }
        PortNumberedGraph::from_involution(self.degrees, flat)
    }

    fn check(&self, e: Endpoint) -> Result<(), GraphError> {
        let n = self.degrees.len();
        if e.node.index() >= n {
            return Err(GraphError::NodeOutOfRange {
                node: e.node,
                nodes: n,
            });
        }
        if e.port.get() > self.degrees[e.node.index()] {
            return Err(GraphError::PortOutOfRange {
                endpoint: e,
                degree: self.degrees[e.node.index()] as usize,
            });
        }
        Ok(())
    }

    fn slot(&self, e: Endpoint) -> &Option<Endpoint> {
        &self.conn[e.node.index()][e.port.index()]
    }

    fn slot_mut(&mut self, e: Endpoint) -> &mut Option<Endpoint> {
        &mut self.conn[e.node.index()][e.port.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(v: usize, p: u32) -> Endpoint {
        Endpoint::new(NodeId::new(v), Port::new(p))
    }

    /// The multigraph `M` of paper Figure 2: `V = {s, t}`, `d(s) = 3`,
    /// `d(t) = 4`, with `p` mapping `(s,1)↔(t,2)`, `(s,2)↔(t,1)`,
    /// `(s,3)↦(s,3)`, `(t,3)↔(t,4)`.
    fn figure2_multigraph() -> PortNumberedGraph {
        let mut b = PnGraphBuilder::new();
        let s = b.add_node(3);
        let t = b.add_node(4);
        b.connect(
            Endpoint::new(s, Port::new(1)),
            Endpoint::new(t, Port::new(2)),
        )
        .unwrap();
        b.connect(
            Endpoint::new(s, Port::new(2)),
            Endpoint::new(t, Port::new(1)),
        )
        .unwrap();
        b.fix_point(Endpoint::new(s, Port::new(3))).unwrap();
        b.connect(
            Endpoint::new(t, Port::new(3)),
            Endpoint::new(t, Port::new(4)),
        )
        .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn figure2_example() {
        let m = figure2_multigraph();
        assert_eq!(m.node_count(), 2);
        assert_eq!(m.degree(NodeId::new(0)), 3);
        assert_eq!(m.degree(NodeId::new(1)), 4);
        // Edges: two parallel s-t links, one half-loop at s, one link-loop at t.
        assert_eq!(m.edge_count(), 4);
        assert!(!m.is_simple());
        let shapes: Vec<_> = m.edges().map(|(_, s)| s).collect();
        let loops = shapes.iter().filter(|s| s.is_loop()).count();
        assert_eq!(loops, 2);
        // Involution checks.
        assert_eq!(m.connection(ep(0, 1)), ep(1, 2));
        assert_eq!(m.connection(ep(1, 2)), ep(0, 1));
        assert_eq!(m.connection(ep(0, 3)), ep(0, 3));
        assert_eq!(m.connection(ep(1, 3)), ep(1, 4));
    }

    #[test]
    fn simple_path_graph() {
        // Path a - b - c with canonical ports.
        let mut b = PnGraphBuilder::new();
        let x = b.add_node(1);
        let y = b.add_node(2);
        let z = b.add_node(1);
        b.connect(
            Endpoint::new(x, Port::new(1)),
            Endpoint::new(y, Port::new(1)),
        )
        .unwrap();
        b.connect(
            Endpoint::new(y, Port::new(2)),
            Endpoint::new(z, Port::new(1)),
        )
        .unwrap();
        let g = b.finish().unwrap();
        assert!(g.is_simple());
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbor_through(y, Port::new(2)), z);
        assert_eq!(g.port_toward(y, x), Some(Port::new(1)));
        assert_eq!(g.port_toward(x, z), None);
        let s = g.to_simple().unwrap();
        assert_eq!(s.edge_count(), 2);
        // Edge ids preserved.
        for (id, shape) in g.edges() {
            let (u, v) = shape.nodes();
            let (su, sv) = s.endpoints(id);
            assert_eq!((u, v), (su, sv));
        }
    }

    #[test]
    fn unconnected_port_rejected() {
        let mut b = PnGraphBuilder::new();
        let _ = b.add_node(2);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, GraphError::PortUnconnected { .. }));
    }

    #[test]
    fn double_connect_rejected() {
        let mut b = PnGraphBuilder::new();
        let u = b.add_node(2);
        let v = b.add_node(2);
        b.connect(
            Endpoint::new(u, Port::new(1)),
            Endpoint::new(v, Port::new(1)),
        )
        .unwrap();
        let err = b
            .connect(
                Endpoint::new(u, Port::new(1)),
                Endpoint::new(v, Port::new(2)),
            )
            .unwrap_err();
        assert!(matches!(err, GraphError::PortAlreadyConnected { .. }));
    }

    #[test]
    fn from_involution_validates() {
        // Non-involution table: (0,1) -> (1,1) but (1,1) -> (1,1).
        let degrees = vec![1, 1];
        let bad = vec![ep(1, 1), ep(1, 1)];
        assert!(matches!(
            PortNumberedGraph::from_involution(degrees, bad),
            Err(GraphError::NotAnInvolution { .. })
        ));
    }

    #[test]
    fn from_involution_wrong_length() {
        assert!(matches!(
            PortNumberedGraph::from_involution(vec![2], vec![ep(0, 1)]),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn edge_at_consistency() {
        let m = figure2_multigraph();
        for (id, shape) in m.edges() {
            match shape {
                EdgeShape::Link { a, b } => {
                    assert_eq!(m.edge_at(a), id);
                    assert_eq!(m.edge_at(b), id);
                }
                EdgeShape::HalfLoop { at } => assert_eq!(m.edge_at(at), id),
            }
        }
    }

    #[test]
    fn incident_edges_in_port_order() {
        let m = figure2_multigraph();
        let t = NodeId::new(1);
        let inc: Vec<_> = m.incident_edges(t).collect();
        assert_eq!(inc.len(), 4);
        // Ports 3 and 4 of t carry the same loop edge.
        assert_eq!(inc[2], inc[3]);
    }
}

//! Port-assignment strategies: turning a [`SimpleGraph`] into a
//! [`PortNumberedGraph`].
//!
//! A distributed algorithm in the port-numbering model has no control over
//! how ports are assigned — the assignment is part of the input, chosen by
//! an adversary in the lower bounds. Three strategies are provided:
//!
//! * [`canonical_ports`] — ports follow adjacency-list insertion order;
//! * [`shuffled_ports`] — a seeded random permutation per node;
//! * [`two_factor_ports`] — the adversarial numbering of the paper's lower
//!   bounds, threading ports `2i-1`/`2i` along the oriented cycles of the
//!   `i`-th 2-factor (only for `2k`-regular graphs).

use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

use crate::factorization::two_factorize_simple;
use crate::{
    EdgeId, Endpoint, GraphError, NodeId, PnGraphBuilder, Port, PortNumberedGraph, SimpleGraph,
};

/// Assigns ports in adjacency-list order: the `i`-th neighbour added to `v`
/// is reached through port `i`.
///
/// # Errors
///
/// Propagates builder errors; these cannot occur for a well-formed
/// [`SimpleGraph`].
///
/// # Examples
///
/// ```
/// use pn_graph::{SimpleGraph, ports::canonical_ports, NodeId, Port};
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// let mut g = SimpleGraph::new(3);
/// g.add_edge_ids(0, 1)?;
/// g.add_edge_ids(0, 2)?;
/// let pg = canonical_ports(&g)?;
/// assert_eq!(pg.neighbor_through(NodeId::new(0), Port::new(1)), NodeId::new(1));
/// assert_eq!(pg.neighbor_through(NodeId::new(0), Port::new(2)), NodeId::new(2));
/// # Ok(())
/// # }
/// ```
pub fn canonical_ports(g: &SimpleGraph) -> Result<PortNumberedGraph, GraphError> {
    let orders: Vec<Vec<EdgeId>> = g.nodes().map(|v| g.incident_edges(v).collect()).collect();
    ports_from_orders(g, &orders)
}

/// Assigns ports by a seeded random permutation of each node's incident
/// edges. Deterministic for a fixed seed.
///
/// # Errors
///
/// Propagates builder errors; these cannot occur for a well-formed
/// [`SimpleGraph`].
pub fn shuffled_ports(g: &SimpleGraph, seed: u64) -> Result<PortNumberedGraph, GraphError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let orders: Vec<Vec<EdgeId>> = g
        .nodes()
        .map(|v| {
            let mut inc: Vec<EdgeId> = g.incident_edges(v).collect();
            inc.shuffle(&mut rng);
            inc
        })
        .collect();
    ports_from_orders(g, &orders)
}

/// Assigns ports from explicit per-node edge orders: `orders[v]` lists the
/// incident edges of `v` in the desired port order (`orders[v][0]` gets
/// port 1, and so on).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `orders[v]` is not a
/// permutation of the incident edges of `v`.
pub fn ports_from_orders(
    g: &SimpleGraph,
    orders: &[Vec<EdgeId>],
) -> Result<PortNumberedGraph, GraphError> {
    if orders.len() != g.node_count() {
        return Err(GraphError::InvalidParameter {
            detail: format!(
                "orders has {} entries for a graph with {} nodes",
                orders.len(),
                g.node_count()
            ),
        });
    }
    // port_of[slot in edge] -> port of each endpoint.
    let mut port_of_u: Vec<Option<Port>> = vec![None; g.edge_count()];
    let mut port_of_v: Vec<Option<Port>> = vec![None; g.edge_count()];
    for v in g.nodes() {
        let order = &orders[v.index()];
        if order.len() != g.degree(v) {
            return Err(GraphError::InvalidParameter {
                detail: format!(
                    "order of node {v} has {} entries but degree is {}",
                    order.len(),
                    g.degree(v)
                ),
            });
        }
        let mut seen = vec![false; g.edge_count()];
        for (i, &e) in order.iter().enumerate() {
            let (a, b) = g.endpoints(e);
            if (a != v && b != v) || seen[e.index()] {
                return Err(GraphError::InvalidParameter {
                    detail: format!("order of node {v} is not a permutation of its incident edges"),
                });
            }
            seen[e.index()] = true;
            if a == v {
                port_of_u[e.index()] = Some(Port::from_index(i));
            } else {
                port_of_v[e.index()] = Some(Port::from_index(i));
            }
        }
    }
    let mut b = PnGraphBuilder::new();
    for v in g.nodes() {
        b.add_node(g.degree(v));
    }
    for (e, u, v) in g.edges() {
        let pu = port_of_u[e.index()].ok_or_else(|| GraphError::InvalidParameter {
            detail: format!("edge {e} missing from order of node {u}"),
        })?;
        let pv = port_of_v[e.index()].ok_or_else(|| GraphError::InvalidParameter {
            detail: format!("edge {e} missing from order of node {v}"),
        })?;
        b.connect(Endpoint::new(u, pu), Endpoint::new(v, pv))?;
    }
    let pg = b.finish()?;
    debug_assert_eq!(pg.edge_count(), g.edge_count());
    Ok(pg)
}

/// The adversarial 2-factorised port numbering used in the lower bounds
/// (paper Sections 3.2 and 4.1).
///
/// Requires a `2k`-regular graph. The graph is split into `k` oriented
/// 2-factors; for each arc `u → v` of factor `i`, port `2i-1` of `u` is
/// wired to port `2i` of `v`. Every node then uses each port exactly once,
/// and *every* node sees the identical local wiring pattern — the source of
/// the indistinguishability in the lower-bound proofs.
///
/// # Errors
///
/// Returns [`GraphError::NotRegular`]/[`GraphError::OddDegree`] if the
/// graph is not `2k`-regular.
pub fn two_factor_ports(g: &SimpleGraph) -> Result<PortNumberedGraph, GraphError> {
    let factors = two_factorize_simple(g)?;
    let mut b = PnGraphBuilder::new();
    for v in g.nodes() {
        b.add_node(g.degree(v));
    }
    for (i, f) in factors.iter().enumerate() {
        let (out_port, in_port) = factor_ports(i);
        for (u, v, _e) in f.arcs() {
            b.connect(Endpoint::new(u, out_port), Endpoint::new(v, in_port))?;
        }
    }
    b.finish()
}

/// The pair of ports `(2i-1, 2i)` assigned to (0-based) factor `i` by the
/// paper's numbering scheme.
pub fn factor_ports(i: usize) -> (Port, Port) {
    (Port::new(2 * i as u32 + 1), Port::new(2 * i as u32 + 2))
}

/// Verifies that the port-numbered graph `pg` realises the simple graph
/// `g`: same node count, same degrees, and every edge of `g` appears as a
/// link of `pg` (and nothing else).
pub fn realizes(pg: &PortNumberedGraph, g: &SimpleGraph) -> bool {
    if pg.node_count() != g.node_count() || pg.edge_count() != g.edge_count() {
        return false;
    }
    if !pg.is_simple() {
        return false;
    }
    for (_, shape) in pg.edges() {
        let (u, v) = shape.nodes();
        if !g.has_edge(u, v) {
            return false;
        }
    }
    g.nodes().all(|v| pg.degree(v) == g.degree(v))
}

/// Enumerates *all* port numberings of a small simple graph, as explicit
/// per-node edge orders. The count is `Π_v d(v)!`, so use only on tiny
/// graphs (tests, exhaustive lower-bound checks).
pub fn all_port_orders(g: &SimpleGraph) -> Vec<Vec<Vec<EdgeId>>> {
    fn permutations(items: &[EdgeId]) -> Vec<Vec<EdgeId>> {
        if items.is_empty() {
            return vec![Vec::new()];
        }
        let mut out = Vec::new();
        for i in 0..items.len() {
            let mut rest = items.to_vec();
            let x = rest.remove(i);
            for mut tail in permutations(&rest) {
                let mut perm = vec![x];
                perm.append(&mut tail);
                out.push(perm);
            }
        }
        out
    }
    let per_node: Vec<Vec<Vec<EdgeId>>> = g
        .nodes()
        .map(|v| permutations(&g.incident_edges(v).collect::<Vec<_>>()))
        .collect();
    let mut results: Vec<Vec<Vec<EdgeId>>> = vec![Vec::new()];
    for options in per_node {
        let mut next = Vec::with_capacity(results.len() * options.len());
        for prefix in &results {
            for opt in &options {
                let mut row = prefix.clone();
                row.push(opt.clone());
                next.push(row);
            }
        }
        results = next;
    }
    results
}

/// Convenience: the node each port of `v` leads to, in port order.
pub fn neighbor_list(pg: &PortNumberedGraph, v: NodeId) -> Vec<NodeId> {
    pg.ports(v).map(|p| pg.neighbor_through(v, p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn canonical_round_trip() {
        let g = generators::cycle(6).unwrap();
        let pg = canonical_ports(&g).unwrap();
        assert!(realizes(&pg, &g));
        let back = pg.to_simple().unwrap();
        assert_eq!(back.edge_count(), g.edge_count());
    }

    #[test]
    fn shuffled_is_deterministic_and_valid() {
        let g = generators::complete(5).unwrap();
        let a = shuffled_ports(&g, 42).unwrap();
        let b = shuffled_ports(&g, 42).unwrap();
        let c = shuffled_ports(&g, 43).unwrap();
        assert_eq!(a, b);
        assert!(realizes(&a, &g));
        assert!(realizes(&c, &g));
    }

    #[test]
    fn two_factor_ports_structure() {
        // C6 is 2-regular: one factor, ports 1 and 2.
        let g = generators::cycle(6).unwrap();
        let pg = two_factor_ports(&g).unwrap();
        assert!(realizes(&pg, &g));
        for v in pg.nodes() {
            // Port 1 leads "forward", port 2 "backward": the wiring must be
            // port 1 -> port 2 everywhere.
            let out = pg.connection(Endpoint::new(v, Port::new(1)));
            assert_eq!(out.port, Port::new(2));
            let inn = pg.connection(Endpoint::new(v, Port::new(2)));
            assert_eq!(inn.port, Port::new(1));
        }
    }

    #[test]
    fn two_factor_ports_k5() {
        let g = generators::complete(5).unwrap();
        let pg = two_factor_ports(&g).unwrap();
        assert!(realizes(&pg, &g));
        // Every odd port wires to the next even port.
        for v in pg.nodes() {
            for i in 0..2 {
                let (po, pi) = factor_ports(i);
                assert_eq!(pg.connection(Endpoint::new(v, po)).port, pi);
                assert_eq!(pg.connection(Endpoint::new(v, pi)).port, po);
            }
        }
    }

    #[test]
    fn two_factor_ports_rejects_odd_regular() {
        let g = generators::complete(4).unwrap(); // 3-regular
        assert!(two_factor_ports(&g).is_err());
    }

    #[test]
    fn orders_validation() {
        let mut g = SimpleGraph::new(2);
        let e = g.add_edge_ids(0, 1).unwrap();
        // Wrong length.
        assert!(ports_from_orders(&g, &[vec![e]]).is_err());
        // Edge not incident.
        let bad = vec![vec![e], vec![EdgeId::new(0)]];
        assert!(ports_from_orders(&g, &bad).is_ok()); // e is incident to both
        let mut g2 = SimpleGraph::new(3);
        let e0 = g2.add_edge_ids(0, 1).unwrap();
        let e1 = g2.add_edge_ids(1, 2).unwrap();
        let bad2 = vec![vec![e1], vec![e0, e1], vec![e1]];
        assert!(ports_from_orders(&g2, &bad2).is_err()); // e1 not incident to node 0
    }

    #[test]
    fn all_port_orders_count() {
        // Path on 3 nodes: degrees 1, 2, 1 -> 1! * 2! * 1! = 2 numberings.
        let g = generators::path(3).unwrap();
        let all = all_port_orders(&g);
        assert_eq!(all.len(), 2);
        for orders in &all {
            let pg = ports_from_orders(&g, orders).unwrap();
            assert!(realizes(&pg, &g));
        }
    }

    #[test]
    fn neighbor_list_matches_ports() {
        let g = generators::star(3).unwrap();
        let pg = canonical_ports(&g).unwrap();
        let hub = NodeId::new(0);
        let nl = neighbor_list(&pg, hub);
        assert_eq!(nl.len(), 3);
    }
}

//! Simple undirected graphs (no loops, no parallel edges).
//!
//! [`SimpleGraph`] is the combinatorial substrate on which the edge
//! dominating set problem is defined. Edges carry stable identifiers so that
//! edge subsets (matchings, dominating sets, ...) can be stored as bit sets.

use std::collections::HashSet;

use crate::{EdgeId, GraphError, NodeId};

/// An undirected simple graph with stable edge identifiers.
///
/// Nodes are `NodeId::new(0) .. NodeId::new(n-1)`. Neighbour lists preserve
/// insertion order, which downstream code uses to derive *canonical* port
/// numberings.
///
/// # Examples
///
/// ```
/// use pn_graph::SimpleGraph;
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// let mut g = SimpleGraph::new(3);
/// let e01 = g.add_edge_ids(0, 1)?;
/// let e12 = g.add_edge_ids(1, 2)?;
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.degree_of(1), 2);
/// assert_ne!(e01, e12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimpleGraph {
    adj: Vec<Vec<(NodeId, EdgeId)>>,
    edges: Vec<(NodeId, NodeId)>,
    edge_set: HashSet<(u32, u32)>,
}

impl SimpleGraph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        SimpleGraph {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
            edge_set: HashSet::new(),
        }
    }

    /// Creates an empty graph (no nodes, no edges).
    pub fn empty() -> Self {
        Self::new(0)
    }

    /// Adds a new isolated node, returning its identifier.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        NodeId::new(self.adj.len() - 1)
    }

    /// Adds `count` new isolated nodes, returning their identifiers.
    pub fn add_nodes(&mut self, count: usize) -> Vec<NodeId> {
        (0..count).map(|_| self.add_node()).collect()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no edges.
    pub fn is_edgeless(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::LoopNotAllowed`] if `u == v`,
    /// [`GraphError::ParallelEdge`] if the edge already exists, and
    /// [`GraphError::NodeOutOfRange`] if either endpoint does not exist.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeId, GraphError> {
        let n = self.node_count();
        for w in [u, v] {
            if w.index() >= n {
                return Err(GraphError::NodeOutOfRange { node: w, nodes: n });
            }
        }
        if u == v {
            return Err(GraphError::LoopNotAllowed { node: u });
        }
        let key = Self::key(u, v);
        if self.edge_set.contains(&key) {
            return Err(GraphError::ParallelEdge { u, v });
        }
        let id = EdgeId::new(self.edges.len());
        self.edges.push((u, v));
        self.edge_set.insert(key);
        self.adj[u.index()].push((v, id));
        self.adj[v.index()].push((u, id));
        Ok(id)
    }

    /// Convenience wrapper around [`SimpleGraph::add_edge`] taking raw
    /// indices.
    ///
    /// # Errors
    ///
    /// Same as [`SimpleGraph::add_edge`].
    pub fn add_edge_ids(&mut self, u: usize, v: usize) -> Result<EdgeId, GraphError> {
        self.add_edge(NodeId::new(u), NodeId::new(v))
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Degree of the node with raw index `v`.
    pub fn degree_of(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Maximum degree `Δ` of the graph (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum degree `δ` of the graph (0 for an empty graph).
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Returns `Some(d)` if the graph is `d`-regular, `None` otherwise.
    ///
    /// The empty graph is vacuously regular of degree 0.
    pub fn regular_degree(&self) -> Option<usize> {
        let d = self.max_degree();
        if self.adj.iter().all(|a| a.len() == d) {
            Some(d)
        } else {
            None
        }
    }

    /// Neighbours of `v` with the connecting edge ids, in insertion order.
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[v.index()]
    }

    /// The endpoints of edge `e` (in insertion order of the call to
    /// [`SimpleGraph::add_edge`]).
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e.index()]
    }

    /// Given an edge and one endpoint, returns the other endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.endpoints(e);
        if a == v {
            b
        } else {
            assert_eq!(b, v, "node {v} is not an endpoint of edge {e}");
            a
        }
    }

    /// Returns `true` if the edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        self.edge_set.contains(&Self::key(u, v))
    }

    /// Looks up the identifier of the edge `{u, v}` if it exists.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.adj
            .get(u.index())?
            .iter()
            .find(|(w, _)| *w == v)
            .map(|&(_, e)| e)
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterates over all edges as `(EdgeId, u, v)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId::new(i), u, v))
    }

    /// Iterates over the edge identifiers incident to `v`.
    pub fn incident_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.adj[v.index()].iter().map(|&(_, e)| e)
    }

    /// The closed edge neighbourhood `N[e]`: every edge sharing an
    /// endpoint with `e`, plus `e` itself, each listed once in
    /// ascending [`EdgeId`] order. This is the constraint row of the
    /// edge-domination covering LP (an edge is dominated exactly by the
    /// members of its closed neighbourhood).
    ///
    /// # Panics
    ///
    /// Panics if `e` is not an edge of the graph.
    pub fn closed_edge_neighborhood(&self, e: EdgeId) -> Vec<EdgeId> {
        let (u, v) = self.endpoints(e);
        let mut out: Vec<EdgeId> = self
            .incident_edges(u)
            .chain(self.incident_edges(v))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Sum of all degrees (`2 |E|` by the handshake lemma).
    pub fn degree_sum(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    fn key(u: NodeId, v: NodeId) -> (u32, u32) {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        (a.index() as u32, b.index() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_triangle() {
        let mut g = SimpleGraph::new(3);
        g.add_edge_ids(0, 1).unwrap();
        g.add_edge_ids(1, 2).unwrap();
        g.add_edge_ids(2, 0).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.regular_degree(), Some(2));
        assert_eq!(g.degree_sum(), 6);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(0)));
    }

    #[test]
    fn closed_edge_neighborhood_dedups_and_sorts() {
        // Path 0-1-2-3: the middle edge's closed neighbourhood is all
        // three edges; an end edge's is itself plus the middle.
        let mut g = SimpleGraph::new(4);
        let e01 = g.add_edge_ids(0, 1).unwrap();
        let e12 = g.add_edge_ids(1, 2).unwrap();
        let e23 = g.add_edge_ids(2, 3).unwrap();
        assert_eq!(g.closed_edge_neighborhood(e12), vec![e01, e12, e23]);
        assert_eq!(g.closed_edge_neighborhood(e01), vec![e01, e12]);
        // A triangle edge sees every edge exactly once despite both
        // endpoints touching the third edge's endpoints.
        let mut t = SimpleGraph::new(3);
        let a = t.add_edge_ids(0, 1).unwrap();
        let b = t.add_edge_ids(1, 2).unwrap();
        let c = t.add_edge_ids(2, 0).unwrap();
        assert_eq!(t.closed_edge_neighborhood(a), vec![a, b, c]);
    }

    #[test]
    fn rejects_loop() {
        let mut g = SimpleGraph::new(2);
        assert_eq!(
            g.add_edge_ids(1, 1),
            Err(GraphError::LoopNotAllowed {
                node: NodeId::new(1)
            })
        );
    }

    #[test]
    fn rejects_parallel_edge_both_orientations() {
        let mut g = SimpleGraph::new(2);
        g.add_edge_ids(0, 1).unwrap();
        assert!(matches!(
            g.add_edge_ids(0, 1),
            Err(GraphError::ParallelEdge { .. })
        ));
        assert!(matches!(
            g.add_edge_ids(1, 0),
            Err(GraphError::ParallelEdge { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = SimpleGraph::new(2);
        assert!(matches!(
            g.add_edge_ids(0, 5),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn other_endpoint_works() {
        let mut g = SimpleGraph::new(2);
        let e = g.add_edge_ids(0, 1).unwrap();
        assert_eq!(g.other_endpoint(e, NodeId::new(0)), NodeId::new(1));
        assert_eq!(g.other_endpoint(e, NodeId::new(1)), NodeId::new(0));
    }

    #[test]
    fn find_edge_and_neighbors() {
        let mut g = SimpleGraph::new(4);
        let e = g.add_edge_ids(0, 2).unwrap();
        assert_eq!(g.find_edge(NodeId::new(0), NodeId::new(2)), Some(e));
        assert_eq!(g.find_edge(NodeId::new(2), NodeId::new(0)), Some(e));
        assert_eq!(g.find_edge(NodeId::new(0), NodeId::new(1)), None);
        assert_eq!(g.neighbors(NodeId::new(0)), &[(NodeId::new(2), e)]);
    }

    #[test]
    fn degree_statistics() {
        let mut g = SimpleGraph::new(4);
        g.add_edge_ids(0, 1).unwrap();
        g.add_edge_ids(0, 2).unwrap();
        g.add_edge_ids(0, 3).unwrap();
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
        assert_eq!(g.regular_degree(), None);
    }

    #[test]
    fn empty_graph_statistics() {
        let g = SimpleGraph::empty();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.regular_degree(), Some(0));
        assert!(g.is_edgeless());
    }

    #[test]
    fn add_nodes_returns_fresh_ids() {
        let mut g = SimpleGraph::new(1);
        let ids = g.add_nodes(3);
        assert_eq!(ids, vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
        assert_eq!(g.node_count(), 4);
    }
}

//! Graph transformations: line graphs, bipartite double covers, edge
//! subgraphs.
//!
//! * The **line graph** connects the edge dominating set problem to the
//!   dominating set problem (paper Section 1.1): dominating sets of `L(G)`
//!   are exactly the edge dominating sets of `G`.
//! * The **bipartite double cover** is the structure behind Phase III of
//!   the Theorem 5 algorithm (the Polishchuk–Suomela 2-matching
//!   construction).

use crate::{EdgeId, NodeId, SimpleGraph};

/// The line graph `L(G)`: one node per edge of `g`, adjacent iff the edges
/// share an endpoint. Node `i` of the result corresponds to `EdgeId(i)` of
/// the input.
///
/// # Examples
///
/// ```
/// use pn_graph::{SimpleGraph, transform::line_graph};
/// # fn main() -> Result<(), pn_graph::GraphError> {
/// let mut g = SimpleGraph::new(3);
/// g.add_edge_ids(0, 1)?;
/// g.add_edge_ids(1, 2)?;
/// let l = line_graph(&g);
/// assert_eq!(l.node_count(), 2);
/// assert_eq!(l.edge_count(), 1); // the two edges share node 1
/// # Ok(())
/// # }
/// ```
pub fn line_graph(g: &SimpleGraph) -> SimpleGraph {
    let mut l = SimpleGraph::new(g.edge_count());
    for v in g.nodes() {
        let inc: Vec<EdgeId> = g.incident_edges(v).collect();
        for i in 0..inc.len() {
            for j in (i + 1)..inc.len() {
                let a = NodeId::new(inc[i].index());
                let b = NodeId::new(inc[j].index());
                // Two edges can share both endpoints only in multigraphs,
                // but they may share *two different* nodes of g via
                // triangles; dedupe through has_edge.
                if !l.has_edge(a, b) {
                    l.add_edge(a, b).expect("line graph edge is valid");
                }
            }
        }
    }
    l
}

/// The bipartite double cover `G × K₂`: nodes `(v, side)` for
/// `side ∈ {0, 1}`, with `(u, 0)-(v, 1)` and `(v, 0)-(u, 1)` for every
/// edge `{u, v}` of `g`. Node `(v, side)` has index `side * n + v`.
///
/// The result is always bipartite and has the same degrees as `g` on both
/// copies.
pub fn bipartite_double_cover(g: &SimpleGraph) -> SimpleGraph {
    let n = g.node_count();
    let mut d = SimpleGraph::new(2 * n);
    for (_, u, v) in g.edges() {
        d.add_edge(NodeId::new(u.index()), NodeId::new(n + v.index()))
            .expect("double cover edge is valid");
        d.add_edge(NodeId::new(v.index()), NodeId::new(n + u.index()))
            .expect("double cover edge is valid");
    }
    d
}

/// The spanning subgraph of `g` containing exactly the edges selected by
/// `keep`. Node set and node ids are unchanged; edge ids are renumbered
/// (the mapping from new edge id to the original is returned alongside).
pub fn edge_subgraph(g: &SimpleGraph, keep: &[EdgeId]) -> (SimpleGraph, Vec<EdgeId>) {
    let mut s = SimpleGraph::new(g.node_count());
    let mut back = Vec::with_capacity(keep.len());
    for &e in keep {
        let (u, v) = g.endpoints(e);
        s.add_edge(u, v).expect("edge subgraph edge is valid");
        back.push(e);
    }
    (s, back)
}

/// The complement edge set: all edge ids of `g` not contained in `exclude`.
pub fn complement_edges(g: &SimpleGraph, exclude: &[EdgeId]) -> Vec<EdgeId> {
    let mut mask = vec![false; g.edge_count()];
    for &e in exclude {
        mask[e.index()] = true;
    }
    (0..g.edge_count())
        .map(EdgeId::new)
        .filter(|e| !mask[e.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::is_bipartite;
    use crate::generators;

    #[test]
    fn line_graph_of_star_is_complete() {
        let s = generators::star(4).unwrap();
        let l = line_graph(&s);
        assert_eq!(l.node_count(), 4);
        assert_eq!(l.edge_count(), 6); // K4
    }

    #[test]
    fn line_graph_of_cycle_is_cycle() {
        let c = generators::cycle(5).unwrap();
        let l = line_graph(&c);
        assert_eq!(l.node_count(), 5);
        assert_eq!(l.edge_count(), 5);
        assert_eq!(l.regular_degree(), Some(2));
    }

    #[test]
    fn line_graph_of_triangle() {
        // Triangle: edges pairwise adjacent -> K3. No duplicates despite
        // sharing two nodes.
        let t = generators::cycle(3).unwrap();
        let l = line_graph(&t);
        assert_eq!(l.edge_count(), 3);
    }

    #[test]
    fn double_cover_is_bipartite_with_same_degrees() {
        let g = generators::petersen();
        let d = bipartite_double_cover(&g);
        assert_eq!(d.node_count(), 20);
        assert_eq!(d.edge_count(), 30);
        assert!(is_bipartite(&d));
        for v in g.nodes() {
            assert_eq!(d.degree_of(v.index()), g.degree(v));
            assert_eq!(d.degree_of(10 + v.index()), g.degree(v));
        }
    }

    #[test]
    fn double_cover_of_bipartite_is_two_copies() {
        let g = generators::complete_bipartite(2, 3).unwrap();
        let d = bipartite_double_cover(&g);
        let comps = crate::analysis::connected_components(&d);
        assert_eq!(comps.count, 2);
    }

    #[test]
    fn edge_subgraph_preserves_nodes() {
        let g = generators::complete(4).unwrap();
        let keep: Vec<EdgeId> = vec![EdgeId::new(0), EdgeId::new(3)];
        let (s, back) = edge_subgraph(&g, &keep);
        assert_eq!(s.node_count(), 4);
        assert_eq!(s.edge_count(), 2);
        assert_eq!(back, keep);
    }

    #[test]
    fn complement_partitions() {
        let g = generators::complete(4).unwrap();
        let some: Vec<EdgeId> = vec![EdgeId::new(1), EdgeId::new(4)];
        let rest = complement_edges(&g, &some);
        assert_eq!(rest.len(), g.edge_count() - 2);
        assert!(!rest.contains(&EdgeId::new(1)));
    }
}

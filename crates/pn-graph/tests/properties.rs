//! Property-based tests for the graph substrate: involutions, Euler
//! circuits, 2-factorisations, covering lifts, ports and transforms over
//! randomly generated inputs — including multigraphs with loops and
//! parallel edges.

use pn_graph::covering::cyclic_lift;
use pn_graph::euler::{euler_circuits, euler_orientation};
use pn_graph::factorization::two_factorize;
use pn_graph::matching::{hopcroft_karp, Bipartite};
use pn_graph::transform::{bipartite_double_cover, line_graph};
use pn_graph::{generators, ports, MultiGraph, NodeId, SimpleGraph};
use proptest::prelude::*;

/// Strategy: a random multigraph with all-even degrees, built by adding
/// random closed walks (so the parity invariant holds by construction).
/// Loops and parallel edges occur naturally.
fn even_multigraph() -> impl Strategy<Value = MultiGraph> {
    (
        2usize..10,
        proptest::collection::vec((0usize..1000, 2usize..6), 1..6),
    )
        .prop_map(|(n, walks)| {
            let mut g = MultiGraph::new(n);
            for (seed, len) in walks {
                // A closed walk visiting pseudo-random nodes.
                let mut prev = seed % n;
                let start = prev;
                for i in 0..len {
                    let next = (seed / (i + 1) + 7 * i + 1) % n;
                    g.add_edge_ids(prev, next);
                    prev = next;
                }
                g.add_edge_ids(prev, start);
            }
            g
        })
}

fn simple_graph() -> impl Strategy<Value = SimpleGraph> {
    (3usize..14, 0.1f64..0.9, 0u64..10_000)
        .prop_map(|(n, p, seed)| generators::gnp(n, p, seed).expect("gnp"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Euler circuits cover every edge exactly once and form closed walks.
    #[test]
    fn euler_covers_everything(g in even_multigraph()) {
        let circuits = euler_circuits(&g).unwrap();
        let mut used = vec![false; g.edge_count()];
        for c in &circuits {
            prop_assert!(!c.steps.is_empty());
            prop_assert_eq!(c.steps.first().unwrap().from, c.steps.last().unwrap().to);
            for w in c.steps.windows(2) {
                prop_assert_eq!(w[0].to, w[1].from);
            }
            for s in &c.steps {
                prop_assert!(!used[s.edge.index()]);
                used[s.edge.index()] = true;
            }
        }
        prop_assert!(used.iter().all(|&u| u));
    }

    /// Euler orientations balance in-degree and out-degree.
    #[test]
    fn euler_orientation_balances(g in even_multigraph()) {
        let orientation = euler_orientation(&g).unwrap();
        let mut out = vec![0usize; g.node_count()];
        let mut inn = vec![0usize; g.node_count()];
        for (t, h) in orientation {
            out[t.index()] += 1;
            inn[h.index()] += 1;
        }
        for v in 0..g.node_count() {
            prop_assert_eq!(out[v], inn[v]);
        }
    }

    /// Petersen 2-factorisation on *regular* even multigraphs: edges
    /// partition into 2-regular spanning factors. (We regularise the
    /// random multigraph by overlaying circulant walks.)
    #[test]
    fn factorization_on_circulant_multigraphs(n in 3usize..10, k in 1usize..4, seed in 0u64..100) {
        // 2k-regular circulant multigraph: k closed walks covering all
        // nodes, shifted by a seed-dependent stride (may create parallel
        // edges — that is the point).
        let mut g = MultiGraph::new(n);
        for j in 0..k {
            let stride = 1 + (seed as usize + j) % (n - 1);
            for v in 0..n {
                g.add_edge_ids(v, (v + stride) % n);
            }
        }
        prop_assert_eq!(g.regular_degree(), Some(2 * k));
        let factors = two_factorize(&g).unwrap();
        prop_assert_eq!(factors.len(), k);
        let mut used = vec![false; g.edge_count()];
        for f in &factors {
            let mut indeg = vec![0usize; n];
            for (_, to, e) in f.arcs() {
                prop_assert!(!used[e.index()]);
                used[e.index()] = true;
                indeg[to.index()] += 1;
            }
            prop_assert!(indeg.iter().all(|&x| x == 1));
        }
        prop_assert!(used.iter().all(|&u| u));
    }

    /// Hopcroft–Karp finds perfect matchings in k-regular bipartite
    /// graphs (Hall's theorem, constructively).
    #[test]
    fn hopcroft_karp_regular_perfect(n in 2usize..20, k in 1usize..5, seed in 0u64..50) {
        let k = k.min(n);
        let mut b = Bipartite::new(n, n);
        for u in 0..n {
            for j in 0..k {
                b.add_edge(u, (u + (seed as usize % n) + j) % n, u * 10 + j);
            }
        }
        let m = hopcroft_karp(&b);
        prop_assert!(m.iter().all(Option::is_some));
        let mut rights: Vec<usize> = m.iter().map(|x| x.unwrap().0).collect();
        rights.sort_unstable();
        rights.dedup();
        prop_assert_eq!(rights.len(), n);
    }

    /// Every port assignment realises the same simple graph; the label
    /// pair structure is permutation-invariant in the aggregate.
    #[test]
    fn port_assignments_realize(g in simple_graph(), seed in 0u64..1000) {
        let canonical = ports::canonical_ports(&g).unwrap();
        let shuffled = ports::shuffled_ports(&g, seed).unwrap();
        prop_assert!(ports::realizes(&canonical, &g));
        prop_assert!(ports::realizes(&shuffled, &g));
        // Degrees are preserved by construction.
        for v in g.nodes() {
            prop_assert_eq!(canonical.degree(v), g.degree(v));
            prop_assert_eq!(shuffled.degree(v), g.degree(v));
        }
    }

    /// Cyclic lifts are covering graphs; lifting multiplies node and edge
    /// counts by the layer count (for loop-free bases).
    #[test]
    fn lifts_cover(g in simple_graph(), layers in 1usize..5) {
        let pg = ports::canonical_ports(&g).unwrap();
        let (h, f) = cyclic_lift(&pg, layers);
        prop_assert!(f.verify(&h, &pg).is_ok());
        prop_assert_eq!(h.node_count(), layers * pg.node_count());
        prop_assert_eq!(h.edge_count(), layers * pg.edge_count());
        prop_assert!(h.is_simple());
    }

    /// Line graph: node count = edge count of the base; handshake-style
    /// degree identity deg_L(e) = deg(u) + deg(v) - 2.
    #[test]
    fn line_graph_degrees(g in simple_graph()) {
        let l = line_graph(&g);
        prop_assert_eq!(l.node_count(), g.edge_count());
        for (e, u, v) in g.edges() {
            // Triangles would collapse parallel adjacencies, but in a
            // simple graph two distinct edges share at most one node, so
            // the degree identity is exact.
            prop_assert_eq!(
                l.degree(NodeId::new(e.index())),
                g.degree(u) + g.degree(v) - 2
            );
        }
    }

    /// Bipartite double cover: always bipartite, degree-preserving, and
    /// double the size.
    #[test]
    fn double_cover_props(g in simple_graph()) {
        let d = bipartite_double_cover(&g);
        prop_assert_eq!(d.node_count(), 2 * g.node_count());
        prop_assert_eq!(d.edge_count(), 2 * g.edge_count());
        prop_assert!(pn_graph::analysis::is_bipartite(&d));
        for v in g.nodes() {
            prop_assert_eq!(d.degree_of(v.index()), g.degree(v));
            prop_assert_eq!(d.degree_of(g.node_count() + v.index()), g.degree(v));
        }
    }

    /// Handshake lemma and basic accounting for random simple graphs.
    #[test]
    fn handshake(g in simple_graph()) {
        prop_assert_eq!(g.degree_sum(), 2 * g.edge_count());
        let hist = pn_graph::analysis::degree_histogram(&g);
        prop_assert_eq!(hist.iter().sum::<usize>(), g.node_count());
    }

    /// Edge-list serialisation round-trips arbitrary simple graphs.
    #[test]
    fn edge_list_round_trip(g in simple_graph()) {
        let text = pn_graph::io::write_edge_list(&g);
        let back = pn_graph::io::parse_edge_list(&text).unwrap();
        prop_assert_eq!(back.node_count(), g.node_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        for (_, u, v) in g.edges() {
            prop_assert!(back.has_edge(u, v));
        }
    }

    /// DOT output mentions every node and edge exactly once.
    #[test]
    fn dot_mentions_everything(g in simple_graph()) {
        let dot = pn_graph::dot::to_dot(&g, "g", &[]);
        prop_assert_eq!(dot.matches(" -- ").count(), g.edge_count());
        for v in g.nodes() {
            let declared = dot.contains(&format!("n{};", v.index()));
            let in_edge = dot.contains(&format!("n{} --", v.index()));
            prop_assert!(declared || in_edge);
        }
    }

    /// Random regular generation really is regular and simple.
    #[test]
    fn random_regular_valid(n0 in 4usize..20, d in 1usize..6, seed in 0u64..500) {
        let d = d.min(n0 - 1);
        let n = if (n0 * d) % 2 == 1 { n0 + 1 } else { n0 };
        let g = generators::random_regular(n, d, seed).unwrap();
        prop_assert_eq!(g.regular_degree(), Some(d));
        // Simplicity is structural (SimpleGraph cannot hold loops or
        // parallel edges), but verify the counts to be sure.
        prop_assert_eq!(g.edge_count(), n * d / 2);
    }
}

/// BFS connectivity on the simple projection.
fn is_connected(g: &SimpleGraph) -> bool {
    if g.node_count() == 0 {
        return true;
    }
    let mut seen = vec![false; g.node_count()];
    let mut queue = std::collections::VecDeque::from([NodeId::new(0)]);
    seen[0] = true;
    while let Some(v) = queue.pop_front() {
        for &(u, _) in g.neighbors(v) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                queue.push_back(u);
            }
        }
    }
    seen.into_iter().all(|s| s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The streamed cycle emits a valid involution (checked by the
    /// structural validator), is 2-regular, connected, and projects to
    /// exactly the classic cycle — with or without the port shuffle.
    #[test]
    fn streamed_cycle_valid(n in 3usize..40, shuffle_seed in 0u64..1001) {
        // The shim has no Option strategy; the top of the range means None.
        let shuffle = (shuffle_seed < 1000).then_some(shuffle_seed);
        let g = generators::streamed_cycle(n, shuffle).unwrap();
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.regular_degree(), Some(2));
        let simple = g.to_simple().unwrap();
        prop_assert!(is_connected(&simple));
        // Same topology as the classic generator; only the intermediate
        // structures (and the numbering) differ.
        let classic = generators::cycle(n).unwrap();
        prop_assert_eq!(simple.edge_count(), classic.edge_count());
        for v in simple.nodes() {
            prop_assert!(simple.has_edge(v, NodeId::new((v.index() + 1) % n)));
        }
    }

    /// The streamed cubic generator emits a valid involution, is
    /// 3-regular, simple and connected (it contains a Hamiltonian
    /// cycle by construction), deterministically per seed.
    #[test]
    fn streamed_cubic_valid(half in 2usize..24, seed in 0u64..1000, shuffle_bit in 0u8..2) {
        let shuffle = shuffle_bit == 1;
        let n = 2 * half;
        let g = generators::streamed_cubic(n, seed, shuffle).unwrap();
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.regular_degree(), Some(3));
        let simple = g.to_simple().unwrap();
        prop_assert_eq!(simple.edge_count(), 3 * n / 2);
        prop_assert!(is_connected(&simple));
        // Fixed seed ⇒ fixed graph.
        let again = generators::streamed_cubic(n, seed, shuffle).unwrap();
        prop_assert_eq!(g, again);
    }

    /// Sampled prefixes of the degree/involution tables stay internally
    /// consistent: every endpoint the prefix references points back
    /// through the involution, so streaming consumers that stop early
    /// never observe a dangling half-edge.
    #[test]
    fn streamed_tables_have_consistent_prefixes(
        n in 3usize..40,
        seed in 0u64..1000,
        frac in 0.1f64..1.0,
    ) {
        let g = generators::streamed_cycle(n, Some(seed)).unwrap();
        let inv = g.involution();
        let prefix = ((inv.len() as f64 * frac) as usize).max(1);
        for (slot, &e) in inv.iter().take(prefix).enumerate() {
            // The involution is its own inverse on every sampled slot.
            let back = g.connection(e);
            prop_assert_eq!(g.slot_of(back), slot);
        }
    }
}

//! The node-algorithm abstraction for the port-numbering model.
//!
//! A deterministic distributed algorithm (paper Section 2.2) is a state
//! machine replicated at every node. Initially a node knows **only its own
//! degree** (and any parameters of the algorithm family, such as `Δ`). In
//! each synchronous round every running node
//!
//! 1. performs local computation and sends one message per port
//!    ([`NodeAlgorithm::send`]), then
//! 2. receives one message per port and updates its state
//!    ([`NodeAlgorithm::receive`]), optionally halting with an output.
//!
//! The simulator enforces that a node of degree `d` emits exactly `d`
//! messages per round. Messages from already-halted neighbours arrive as
//! `None`; the algorithms in this workspace are round-synchronised and
//! never observe one, but the API keeps the case explicit.

/// The state machine run by every node.
///
/// Implementations must be deterministic: all the information a node may
/// use is its degree, the algorithm parameters captured at construction
/// time, and the messages received so far. This is what makes the
/// covering-map indistinguishability argument (paper Section 2.3) hold
/// exactly in this runtime.
pub trait NodeAlgorithm {
    /// The message type exchanged over links.
    type Message: Clone + std::fmt::Debug;
    /// The local output announced when the node halts.
    type Output: Clone + std::fmt::Debug;

    /// Produces the outgoing messages for this round, one per port, in
    /// port order (index 0 = port 1). Must return exactly `degree` many.
    fn send(&mut self, round: usize) -> Vec<Self::Message>;

    /// Consumes the incoming messages for this round (index 0 = port 1;
    /// `None` marks a halted neighbour). Returns `Some(output)` to halt.
    fn receive(
        &mut self,
        round: usize,
        inbox: &[Option<Self::Message>],
    ) -> Option<Self::Output>;
}

/// A factory constructing the per-node state machine from the node's
/// degree. Implemented for closures.
pub trait AlgorithmFactory {
    /// The node state machine this factory builds.
    type Algorithm: NodeAlgorithm;

    /// Builds the state machine for a node of degree `degree`. All nodes
    /// of the same degree must receive identical initial states —
    /// anonymity is the whole point of the model.
    fn create(&self, degree: usize) -> Self::Algorithm;
}

impl<F, A> AlgorithmFactory for F
where
    F: Fn(usize) -> A,
    A: NodeAlgorithm,
{
    type Algorithm = A;

    fn create(&self, degree: usize) -> A {
        self(degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-round algorithm: every node immediately outputs its degree.
    struct DegreeEcho {
        degree: usize,
    }

    impl NodeAlgorithm for DegreeEcho {
        type Message = ();
        type Output = usize;

        fn send(&mut self, _round: usize) -> Vec<()> {
            vec![(); self.degree]
        }

        fn receive(&mut self, _round: usize, _inbox: &[Option<()>]) -> Option<usize> {
            Some(self.degree)
        }
    }

    #[test]
    fn closures_are_factories() {
        let factory = |d: usize| DegreeEcho { degree: d };
        let mut a = factory.create(3);
        assert_eq!(a.send(0).len(), 3);
        assert_eq!(a.receive(0, &[None, None, None]), Some(3));
    }
}

//! The node-algorithm abstraction for the port-numbering model.
//!
//! A deterministic distributed algorithm (paper Section 2.2) is a state
//! machine replicated at every node. Initially a node knows **only its own
//! degree** (and any parameters of the algorithm family, such as `Δ`). In
//! each synchronous round every running node
//!
//! 1. performs local computation and sends one message per port
//!    ([`NodeAlgorithm::send_into`], or the legacy allocating
//!    [`NodeAlgorithm::send`]), then
//! 2. receives one message per port and updates its state
//!    ([`NodeAlgorithm::receive`]), optionally halting with an output.
//!
//! The simulator enforces that a node of degree `d` emits exactly `d`
//! messages per round when the legacy `send` path is used. Messages from
//! already-halted neighbours arrive as `None`; the algorithms in this
//! workspace are round-synchronised and never observe one, but the API
//! keeps the case explicit.
//!
//! # `send` vs `send_into`
//!
//! [`NodeAlgorithm::send`] returns a freshly allocated `Vec` every node,
//! every round — convenient for prototypes and correct by default.
//! [`NodeAlgorithm::send_into`] writes into a preallocated per-port slice
//! owned by the simulator and allocates nothing. The simulator only ever
//! calls `send_into`; its default implementation delegates to `send`, so
//! existing algorithms keep working unchanged. Hot-path algorithms should
//! override `send_into` directly and implement `send` as a thin wrapper
//! (see [`collect_send`]) for callers that still want the allocating form.

/// Returned by [`NodeAlgorithm::send_into`] when the number of produced
/// messages does not match the node's degree (only possible through the
/// legacy [`NodeAlgorithm::send`] delegation — a native `send_into`
/// implementation writes into a slice that *is* the right size).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WrongCount {
    /// How many messages the node produced.
    pub got: usize,
}

/// The state machine run by every node.
///
/// Implementations must be deterministic: all the information a node may
/// use is its degree, the algorithm parameters captured at construction
/// time, and the messages received so far. This is what makes the
/// covering-map indistinguishability argument (paper Section 2.3) hold
/// exactly in this runtime.
pub trait NodeAlgorithm {
    /// The message type exchanged over links.
    type Message: Clone + std::fmt::Debug;
    /// The local output announced when the node halts.
    type Output: Clone + std::fmt::Debug;

    /// Produces the outgoing messages for this round, one per port, in
    /// port order (index 0 = port 1). Must return exactly `degree` many.
    ///
    /// This is the legacy allocating entry point; the simulator never
    /// calls it directly, only through the default [`NodeAlgorithm::send_into`].
    fn send(&mut self, round: usize) -> Vec<Self::Message>;

    /// Writes the outgoing messages for this round into `outbox`, one
    /// slot per port in port order (`outbox.len()` equals the node's
    /// degree). All slots are `None` on entry; a slot left `None` delivers
    /// nothing on that port (the neighbour receives `None`, exactly as
    /// from a halted node).
    ///
    /// This is the simulator's hot path: overriding it (instead of
    /// relying on the default delegation to [`NodeAlgorithm::send`])
    /// removes one `Vec` allocation per node per round.
    ///
    /// # Errors
    ///
    /// The default implementation returns [`WrongCount`] if `send`
    /// produced a number of messages different from the degree; native
    /// implementations should always return `Ok(())`.
    fn send_into(
        &mut self,
        round: usize,
        outbox: &mut [Option<Self::Message>],
    ) -> Result<(), WrongCount> {
        let out = self.send(round);
        if out.len() != outbox.len() {
            return Err(WrongCount { got: out.len() });
        }
        for (slot, m) in outbox.iter_mut().zip(out) {
            *slot = Some(m);
        }
        Ok(())
    }

    /// Consumes the incoming messages for this round (index 0 = port 1;
    /// `None` marks a halted neighbour). Returns `Some(output)` to halt.
    fn receive(&mut self, round: usize, inbox: &[Option<Self::Message>]) -> Option<Self::Output>;

    /// Adversarially scrambles the node's *soft* state — the fault model
    /// of the churn harness ([`crate::ChurnSimulator`]). `entropy` is a
    /// deterministic seed; implementations derive every flipped bit from
    /// it so corrupted runs stay reproducible.
    ///
    /// Contract: only protocol **values** may be garbled (claims,
    /// cursors, pending proposals, learned labels), never the structural
    /// configuration (degree, `Δ`, round schedule), and the corrupted
    /// state must never make `send_into`/`receive` panic or index out of
    /// bounds — a corrupted node may output garbage, but the execution
    /// must stay well-defined so recovery can be measured. The default
    /// is a no-op: a stateless algorithm has nothing to corrupt.
    fn corrupt(&mut self, entropy: u64) {
        let _ = entropy;
    }

    /// Restores the node to its initial state (as constructed, before
    /// any round ran) — the self-stabilizing restart the churn harness
    /// applies when a corrupted epoch fails to converge. Implementations
    /// rebuild all soft state from the construction-time parameters they
    /// retain. The default is a no-op, correct exactly for algorithms
    /// whose `corrupt` is also the no-op.
    fn reset(&mut self) {}
}

/// A deterministic stream of scramble words for
/// [`NodeAlgorithm::corrupt`] implementations: a SplitMix64 sequence
/// seeded with the event's entropy. Protocols draw one word per state
/// field they garble, so the same `Corrupt` event always produces the
/// same corrupted state — churn runs stay bit-reproducible.
pub fn entropy_stream(entropy: u64) -> impl FnMut() -> u64 {
    let mut x = entropy;
    move || {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Builds the allocating [`NodeAlgorithm::send`] result out of a native
/// [`NodeAlgorithm::send_into`] implementation — the compat shim migrated
/// algorithms use so both entry points stay available.
///
/// Only call this from a `send` whose type **overrides `send_into`**:
/// with the default `send_into` still in place the two methods delegate
/// to each other (`send` → `collect_send` → default `send_into` → `send`)
/// and recurse until the stack overflows.
///
/// # Panics
///
/// Panics if the `send_into` implementation reports a wrong count or
/// leaves a slot empty (native implementations of full-duplex protocols
/// fill every slot).
pub fn collect_send<A: NodeAlgorithm>(alg: &mut A, round: usize, degree: usize) -> Vec<A::Message> {
    let mut buf: Vec<Option<A::Message>> = (0..degree).map(|_| None).collect();
    alg.send_into(round, &mut buf)
        .expect("native send_into never reports a wrong count");
    buf.into_iter()
        .map(|m| m.expect("send_into left a port slot empty"))
        .collect()
}

/// A factory constructing the per-node state machine from the node's
/// degree. Implemented for closures.
pub trait AlgorithmFactory {
    /// The node state machine this factory builds.
    type Algorithm: NodeAlgorithm;

    /// Builds the state machine for a node of degree `degree`. All nodes
    /// of the same degree must receive identical initial states —
    /// anonymity is the whole point of the model.
    fn create(&self, degree: usize) -> Self::Algorithm;
}

impl<F, A> AlgorithmFactory for F
where
    F: Fn(usize) -> A,
    A: NodeAlgorithm,
{
    type Algorithm = A;

    fn create(&self, degree: usize) -> A {
        self(degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-round algorithm: every node immediately outputs its degree.
    struct DegreeEcho {
        degree: usize,
    }

    impl NodeAlgorithm for DegreeEcho {
        type Message = ();
        type Output = usize;

        fn send(&mut self, _round: usize) -> Vec<()> {
            vec![(); self.degree]
        }

        fn receive(&mut self, _round: usize, _inbox: &[Option<()>]) -> Option<usize> {
            Some(self.degree)
        }
    }

    #[test]
    fn closures_are_factories() {
        let factory = |d: usize| DegreeEcho { degree: d };
        let mut a = factory.create(3);
        assert_eq!(a.send(0).len(), 3);
        assert_eq!(a.receive(0, &[None, None, None]), Some(3));
    }

    #[test]
    fn default_send_into_delegates_to_send() {
        let mut a = DegreeEcho { degree: 2 };
        let mut outbox = [None, None];
        a.send_into(0, &mut outbox).unwrap();
        assert_eq!(outbox, [Some(()), Some(())]);
    }

    #[test]
    fn default_send_into_reports_wrong_count() {
        struct Liar;
        impl NodeAlgorithm for Liar {
            type Message = u8;
            type Output = ();
            fn send(&mut self, _round: usize) -> Vec<u8> {
                vec![1, 2, 3]
            }
            fn receive(&mut self, _round: usize, _inbox: &[Option<u8>]) -> Option<()> {
                None
            }
        }
        let mut outbox = [None; 2];
        assert_eq!(Liar.send_into(0, &mut outbox), Err(WrongCount { got: 3 }));
    }

    #[test]
    fn collect_send_round_trips_native_impls() {
        struct Native {
            degree: usize,
        }
        impl NodeAlgorithm for Native {
            type Message = u32;
            type Output = ();
            fn send(&mut self, round: usize) -> Vec<u32> {
                collect_send(self, round, self.degree)
            }
            fn send_into(
                &mut self,
                round: usize,
                outbox: &mut [Option<u32>],
            ) -> Result<(), WrongCount> {
                for (i, slot) in outbox.iter_mut().enumerate() {
                    *slot = Some((round + i) as u32);
                }
                Ok(())
            }
            fn receive(&mut self, _round: usize, _inbox: &[Option<u32>]) -> Option<()> {
                None
            }
        }
        let mut a = Native { degree: 3 };
        assert_eq!(a.send(5), vec![5, 6, 7]);
    }
}

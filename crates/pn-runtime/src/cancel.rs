//! Cooperative cancellation for simulation runs.
//!
//! A [`CancelToken`] is a cheaply clonable handle shared between the
//! party that may abort a run (a serve-daemon timeout, a ctrl-C
//! handler) and the round loop that must notice. The engines check it
//! once per round — between rounds, never mid-phase — so a cancelled
//! run aborts at a consistent barrier with
//! [`RuntimeError::Cancelled`](crate::RuntimeError::Cancelled) and no
//! partially delivered round is ever observable.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared flag (plus an optional wall-clock deadline) polled by the
/// round loop.
///
/// Cloning shares the underlying state: cancelling any clone cancels
/// them all. A default token never fires until [`CancelToken::cancel`]
/// is called.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline; fires only on [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that additionally fires once `deadline` has passed.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been *requested* (flag only — does not
    /// consult the deadline clock).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Polls the token: true once cancelled or past the deadline. A
    /// deadline crossing latches the flag, so subsequent polls are a
    /// single atomic load.
    pub fn check(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                self.inner.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn plain_token_fires_only_on_cancel() {
        let token = CancelToken::new();
        assert!(!token.check());
        let clone = token.clone();
        clone.cancel();
        assert!(token.check());
        assert!(token.is_cancelled());
    }

    #[test]
    fn deadline_latches() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(!token.is_cancelled(), "flag untouched before first poll");
        assert!(token.check());
        assert!(token.is_cancelled(), "deadline crossing latched the flag");

        let future = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!future.check());
    }
}

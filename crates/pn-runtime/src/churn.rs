//! Fault injection for dynamic-graph runs: event schedules, epochs, and
//! the self-stabilizing churn simulator.
//!
//! The static [`crate::Simulator`] runs one protocol to quiescence on a
//! frozen graph. This module adds the adversary: an [`EventSchedule`] of
//! **bursts** — edge insertions/deletions, node crashes and joins, and
//! state corruption — that the [`ChurnSimulator`] applies between
//! protocol **epochs**.
//!
//! # Epoch semantics
//!
//! Events are applied only at *quiescence barriers*: every node has
//! halted, the burst mutates the topology ([`pn_graph::DynamicTopology`])
//! and/or queues state corruption, and the protocol then re-runs to
//! quiescence on the frozen snapshot. Events are never interleaved with
//! the send/route/receive phases of a round — the paper's protocols are
//! driven by rigid round schedules derived from `Δ` and the port
//! numbering, both of which a topology change invalidates, so the honest
//! dynamic model is *re-stabilization*: a churn event restarts the
//! affected protocol from its initial states on the new topology, and
//! recovery is measured in the rounds of that re-run.
//!
//! Within an epoch the engine is the unmodified static one — the
//! sequential core, or the persistent worker pool when
//! [`ChurnSimulator::simulator_threads`] asks for it. The pool applies
//! each burst at the same epoch barrier as the sequential path and the
//! per-epoch engine is bit-identical across thread counts, so a whole
//! churn run is reproducible at any `--simulator-threads` value, and a
//! run with an **empty** schedule is exactly one static run.
//!
//! # Corruption and recovery
//!
//! A [`ChurnEvent::Corrupt`] event scrambles one node's initial state
//! for the next epoch through [`crate::NodeAlgorithm::corrupt`] — the
//! adversarial wake-up of self-stabilization: the node starts the epoch
//! from an arbitrary (deterministically seeded) state instead of its
//! constructed one. If the corrupted epoch fails outright (a runtime
//! error from scrambled bookkeeping), the simulator runs one **recovery
//! epoch**: the corrupted states are rebuilt, scrambled identically,
//! then restored via [`crate::NodeAlgorithm::reset`] — the
//! self-stabilizing restart — and the epoch re-runs from clean initial
//! states. [`Epoch::reset_recovery`] records that the fallback fired;
//! its rounds count toward recovery like any others.

use pn_graph::{DynTopology, DynamicTopology, GraphError, NodeId, PortNumberedGraph};

use crate::cancel::CancelToken;
use crate::{NodeAlgorithm, RunOptions, RuntimeError, Simulator};

/// One fault-injection event, applied at an epoch barrier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Insert the edge `{u, v}` (appending a fresh highest port at both
    /// endpoints). Inserting an edge at a crashed node revives it.
    InsertEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Delete the edge `{u, v}` (the surviving ports of both endpoints
    /// are densely renumbered — an adversarial renumbering, see
    /// [`pn_graph::dynamic`]).
    DeleteEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Crash `v`: every incident edge disappears and the node sits out
    /// subsequent epochs at degree 0 until an insertion revives it.
    Crash {
        /// The crashing node.
        v: NodeId,
    },
    /// A fresh node joins, wired to the listed existing nodes.
    Join {
        /// Nodes the newcomer attaches to (distinct, non-crashed).
        attach: Vec<NodeId>,
    },
    /// Scramble `v`'s protocol state for the next epoch via
    /// [`crate::NodeAlgorithm::corrupt`] with the given entropy.
    Corrupt {
        /// The corrupted node.
        v: NodeId,
        /// Deterministic seed for the scrambling.
        entropy: u64,
    },
}

/// A deterministic fault schedule: bursts of events, one burst per
/// epoch barrier.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventSchedule {
    bursts: Vec<Vec<ChurnEvent>>,
}

impl EventSchedule {
    /// The empty schedule (a run under it is exactly one static run).
    pub fn new() -> Self {
        EventSchedule::default()
    }

    /// Appends one burst, consumed at the next epoch barrier.
    pub fn push_burst(&mut self, burst: Vec<ChurnEvent>) -> &mut Self {
        self.bursts.push(burst);
        self
    }

    /// The scheduled bursts in application order.
    pub fn bursts(&self) -> &[Vec<ChurnEvent>] {
        &self.bursts
    }

    /// Number of scheduled bursts.
    pub fn len(&self) -> usize {
        self.bursts.len()
    }

    /// Whether no burst is scheduled.
    pub fn is_empty(&self) -> bool {
        self.bursts.is_empty()
    }

    /// Total number of events across all bursts.
    pub fn event_count(&self) -> usize {
        self.bursts.iter().map(Vec::len).sum()
    }
}

/// An error from a churn run: either a topology mutation was invalid or
/// a protocol epoch failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChurnError {
    /// A topology event was structurally invalid (unknown node, missing
    /// edge, duplicate edge, ...).
    Graph(GraphError),
    /// A protocol epoch failed (and, for corrupted epochs, so did the
    /// reset-recovery re-run).
    Runtime(RuntimeError),
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::Graph(e) => write!(f, "churn event failed: {e}"),
            ChurnError::Runtime(e) => write!(f, "churn epoch failed: {e}"),
        }
    }
}

impl std::error::Error for ChurnError {}

impl From<GraphError> for ChurnError {
    fn from(e: GraphError) -> Self {
        ChurnError::Graph(e)
    }
}

impl From<RuntimeError> for ChurnError {
    fn from(e: RuntimeError) -> Self {
        ChurnError::Runtime(e)
    }
}

/// The result of one protocol epoch (one re-stabilization).
#[derive(Clone, Debug)]
pub struct Epoch<O> {
    /// The frozen topology the epoch ran on (outputs index into it).
    pub graph: PortNumberedGraph,
    /// Per-node outputs at quiescence.
    pub outputs: Vec<O>,
    /// Rounds until every node halted — the recovery cost of the burst
    /// that preceded this epoch.
    pub rounds: usize,
    /// Messages delivered during the epoch.
    pub messages: usize,
    /// How many nodes started this epoch from corrupted state.
    pub corrupted: usize,
    /// Whether the corrupted run failed and the epoch was recovered by
    /// rebuilding the states through [`crate::NodeAlgorithm::reset`].
    pub reset_recovery: bool,
}

/// Runs a node algorithm across churn epochs over a mutable topology.
///
/// The factory receives `(node, degree)` so identifier- and seed-keyed
/// protocols can look up per-node inputs; anonymous protocols ignore the
/// node id. Nodes created by [`ChurnEvent::Join`] get fresh ids past the
/// original range — factories must be total over them.
///
/// The topology parameter `T` defaults to the dense
/// [`DynamicTopology`]; [`ChurnSimulator::with_topology`] accepts any
/// [`DynTopology`] — in particular
/// [`pn_graph::StreamedDynamicTopology`], which lets million-node
/// streamed graphs churn without a second full materialisation.
pub struct ChurnSimulator<A, F, T = DynamicTopology>
where
    F: Fn(NodeId, usize) -> A,
    T: DynTopology,
{
    topo: T,
    factory: F,
    options: RunOptions,
    threads: usize,
    crashed: Vec<bool>,
    pending_corrupt: Vec<(NodeId, u64)>,
    cancel: Option<CancelToken>,
}

impl<A, F> ChurnSimulator<A, F, DynamicTopology>
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
    A::Output: Send,
    F: Fn(NodeId, usize) -> A,
{
    /// A churn simulator over the wiring of `g` with default options and
    /// the sequential per-epoch engine.
    ///
    /// # Errors
    ///
    /// [`GraphError::NotSimple`] if `g` has loops — the dynamic layer
    /// maintains simple topologies only.
    pub fn new(g: &PortNumberedGraph, factory: F) -> Result<Self, GraphError> {
        Ok(Self::with_topology(
            DynamicTopology::from_graph(g)?,
            factory,
        ))
    }
}

impl<A, F, T> ChurnSimulator<A, F, T>
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
    A::Output: Send,
    F: Fn(NodeId, usize) -> A,
    T: DynTopology,
{
    /// A churn simulator over an existing mutable topology (dense or
    /// streamed) with default options and the sequential per-epoch
    /// engine. Every node starts alive.
    pub fn with_topology(topo: T, factory: F) -> Self {
        let n = topo.node_count();
        ChurnSimulator {
            topo,
            factory,
            options: RunOptions::default(),
            threads: 1,
            crashed: vec![false; n],
            pending_corrupt: Vec::new(),
            cancel: None,
        }
    }

    /// Overrides the per-epoch run options.
    pub fn options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// Routes every epoch through the persistent worker pool on
    /// `threads` workers (`1` keeps the sequential engine). Epoch
    /// results are bit-identical at every value — the pool applies
    /// bursts at the same epoch barriers as the sequential path.
    pub fn simulator_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Polls `token` at every epoch barrier and once per round inside
    /// each epoch. A deadline firing mid-epoch aborts the run at the
    /// next round boundary with a structured
    /// [`RuntimeError::Cancelled`]; the reset-recovery fallback is never
    /// attempted for a cancelled epoch.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The current (mutable) topology.
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// Drops any queued corruption without running an epoch, returning
    /// how many corrupt events were discarded. The repair-only recovery
    /// rung uses this: corruption damage is healed in the *witness* (the
    /// scrambled node outputs are re-legalised locally), so carrying the
    /// queue into a later full epoch would double-apply the fault.
    pub fn clear_corruption(&mut self) -> usize {
        let n = self.pending_corrupt.len();
        self.pending_corrupt.clear();
        n
    }

    /// Whether `v` is currently crashed (isolated and not yet revived).
    pub fn is_crashed(&self, v: NodeId) -> bool {
        self.crashed.get(v.index()).copied().unwrap_or(false)
    }

    /// Applies one burst of events at the current epoch barrier.
    /// Topology events mutate immediately; corruption is queued for the
    /// next [`ChurnSimulator::stabilize`]. Returns the number of events
    /// applied.
    ///
    /// # Errors
    ///
    /// [`ChurnError::Graph`] on a structurally invalid event; prior
    /// events of the burst stay applied (the schedule generator is
    /// expected to emit valid bursts).
    pub fn apply_burst(&mut self, burst: &[ChurnEvent]) -> Result<usize, ChurnError> {
        for event in burst {
            match event {
                ChurnEvent::InsertEdge { u, v } => {
                    self.topo.insert_edge(*u, *v)?;
                    self.crashed[u.index()] = false;
                    self.crashed[v.index()] = false;
                }
                ChurnEvent::DeleteEdge { u, v } => {
                    self.topo.delete_edge(*u, *v)?;
                }
                ChurnEvent::Crash { v } => {
                    self.topo.isolate(*v)?;
                    self.crashed[v.index()] = true;
                }
                ChurnEvent::Join { attach } => {
                    let newcomer = self.topo.add_node();
                    self.crashed.push(false);
                    for &u in attach {
                        self.topo.insert_edge(newcomer, u)?;
                    }
                }
                ChurnEvent::Corrupt { v, entropy } => {
                    if v.index() >= self.topo.node_count() {
                        return Err(GraphError::NodeOutOfRange {
                            node: *v,
                            nodes: self.topo.node_count(),
                        }
                        .into());
                    }
                    self.pending_corrupt.push((*v, *entropy));
                }
            }
        }
        Ok(burst.len())
    }

    /// Builds the epoch's initial states: factory-fresh, with queued
    /// corruption applied (and, on the recovery path, reset again).
    fn build_states(&self, g: &PortNumberedGraph, reset: bool) -> Vec<A> {
        let mut states: Vec<A> = g.nodes().map(|v| (self.factory)(v, g.degree(v))).collect();
        for &(v, entropy) in &self.pending_corrupt {
            states[v.index()].corrupt(entropy);
            if reset {
                states[v.index()].reset();
            }
        }
        states
    }

    /// Runs the protocol to quiescence on the current topology,
    /// consuming any queued corruption. See the [module docs](self) for
    /// the corruption/recovery semantics.
    ///
    /// # Errors
    ///
    /// [`ChurnError::Runtime`] if the epoch fails — for corrupted
    /// epochs, only after the reset-recovery re-run also failed.
    pub fn stabilize(&mut self) -> Result<Epoch<A::Output>, ChurnError> {
        crate::metrics::metrics().churn_epochs.inc();
        if let Some(token) = &self.cancel {
            if token.check() {
                // The deadline fired at the barrier: nothing ran yet.
                return Err(RuntimeError::Cancelled {
                    after_rounds: 0,
                    still_running: self.topo.node_count(),
                }
                .into());
            }
        }
        let g = self.topo.freeze()?;
        let corrupted = self.pending_corrupt.len();
        let mut sim = Simulator::with_options(&g, self.options);
        if let Some(token) = &self.cancel {
            sim = sim.cancel_token(token.clone());
        }
        let run_epoch = |states: Vec<A>| {
            if self.threads > 1 {
                sim.run_parallel_states(states, self.threads)
            } else {
                sim.run_states(states)
            }
        };
        let (run, reset_recovery) = match run_epoch(self.build_states(&g, false)) {
            Ok(run) => (run, false),
            // A cancelled epoch is a timeout, not scrambled bookkeeping —
            // retrying from reset would just burn the rest of the budget.
            Err(e @ RuntimeError::Cancelled { .. }) => return Err(e.into()),
            Err(_) if corrupted > 0 => {
                // Self-stabilizing restart: rebuild, scramble identically,
                // reset back to initial states, and re-run clean.
                (run_epoch(self.build_states(&g, true))?, true)
            }
            Err(e) => return Err(e.into()),
        };
        self.pending_corrupt.clear();
        drop(sim);
        Ok(Epoch {
            graph: g,
            outputs: run.outputs,
            rounds: run.rounds,
            messages: run.messages,
            corrupted,
            reset_recovery,
        })
    }

    /// Runs a whole schedule: an initial epoch on the starting topology,
    /// then one epoch per burst. Returns every epoch in order (the first
    /// entry is the churn-free baseline).
    ///
    /// # Errors
    ///
    /// The first [`ChurnError`] encountered; earlier epochs are lost.
    pub fn run(&mut self, schedule: &EventSchedule) -> Result<Vec<Epoch<A::Output>>, ChurnError> {
        let mut epochs = Vec::with_capacity(schedule.len() + 1);
        epochs.push(self.stabilize()?);
        for burst in schedule.bursts() {
            self.apply_burst(burst)?;
            epochs.push(self.stabilize()?);
        }
        Ok(epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pn_graph::{generators, ports};

    /// A two-round echo protocol with corruptible soft state: nodes
    /// exchange a token and output `base + smallest neighbour token`.
    /// `corrupt` garbles the token, `reset` restores it — and a token of
    /// `u64::MAX` makes the node emit a wrong *message count*, so a
    /// corrupted epoch can fail outright and exercise reset recovery.
    #[derive(Clone, Debug)]
    struct Echo {
        degree: usize,
        token: u64,
    }

    impl NodeAlgorithm for Echo {
        type Message = u64;
        type Output = u64;

        fn send(&mut self, _round: usize) -> Vec<u64> {
            if self.token == u64::MAX {
                return Vec::new(); // wrong count -> RuntimeError
            }
            vec![self.token; self.degree]
        }

        fn receive(&mut self, _round: usize, inbox: &[Option<u64>]) -> Option<u64> {
            Some(self.token + inbox.iter().flatten().min().copied().unwrap_or(0))
        }

        fn corrupt(&mut self, entropy: u64) {
            self.token = entropy;
        }

        fn reset(&mut self) {
            self.token = 1;
        }
    }

    fn sim() -> ChurnSimulator<Echo, impl Fn(NodeId, usize) -> Echo> {
        let g = ports::canonical_ports(&generators::cycle(6).unwrap()).unwrap();
        ChurnSimulator::new(&g, |_, d| Echo {
            degree: d,
            token: 1,
        })
        .unwrap()
    }

    #[test]
    fn empty_schedule_is_one_static_run() {
        let g = ports::canonical_ports(&generators::cycle(6).unwrap()).unwrap();
        let baseline = Simulator::new(&g)
            .run(|d| Echo {
                degree: d,
                token: 1,
            })
            .unwrap();
        let epochs = sim().run(&EventSchedule::new()).unwrap();
        assert_eq!(epochs.len(), 1);
        assert_eq!(epochs[0].outputs, baseline.outputs);
        assert_eq!(epochs[0].rounds, baseline.rounds);
        assert_eq!(epochs[0].messages, baseline.messages);
        assert_eq!(epochs[0].graph, g);
    }

    #[test]
    fn epochs_are_bit_identical_across_thread_counts() {
        let mut schedule = EventSchedule::new();
        schedule
            .push_burst(vec![
                ChurnEvent::DeleteEdge {
                    u: NodeId::new(0),
                    v: NodeId::new(1),
                },
                ChurnEvent::InsertEdge {
                    u: NodeId::new(0),
                    v: NodeId::new(3),
                },
            ])
            .push_burst(vec![
                ChurnEvent::Crash { v: NodeId::new(2) },
                ChurnEvent::Join {
                    attach: vec![NodeId::new(4), NodeId::new(5)],
                },
            ]);
        let baseline = sim().run(&schedule).unwrap();
        for threads in [2, 4] {
            let parallel = sim().simulator_threads(threads).run(&schedule).unwrap();
            assert_eq!(parallel.len(), baseline.len());
            for (p, b) in parallel.iter().zip(&baseline) {
                assert_eq!(p.graph, b.graph, "threads={threads}");
                assert_eq!(p.outputs, b.outputs, "threads={threads}");
                assert_eq!(p.rounds, b.rounds);
                assert_eq!(p.messages, b.messages);
            }
        }
    }

    #[test]
    fn crash_isolates_and_insert_revives() {
        let mut s = sim();
        s.apply_burst(&[ChurnEvent::Crash { v: NodeId::new(2) }])
            .unwrap();
        assert!(s.is_crashed(NodeId::new(2)));
        let epoch = s.stabilize().unwrap();
        assert_eq!(epoch.graph.degree(NodeId::new(2)), 0);
        s.apply_burst(&[ChurnEvent::InsertEdge {
            u: NodeId::new(2),
            v: NodeId::new(5),
        }])
        .unwrap();
        assert!(!s.is_crashed(NodeId::new(2)));
        assert_eq!(s.stabilize().unwrap().graph.degree(NodeId::new(2)), 1);
    }

    #[test]
    fn corruption_is_consumed_and_counted() {
        let mut s = sim();
        s.apply_burst(&[ChurnEvent::Corrupt {
            v: NodeId::new(0),
            entropy: 41,
        }])
        .unwrap();
        let corrupted = s.stabilize().unwrap();
        assert_eq!(corrupted.corrupted, 1);
        assert!(!corrupted.reset_recovery);
        // Node 0 started from token 41: its neighbours see it.
        assert_eq!(corrupted.outputs[1], 1 + 1); // unaffected min
        assert_eq!(corrupted.outputs[0], 41 + 1);
        // The queue is consumed: the next epoch is clean.
        let clean = s.stabilize().unwrap();
        assert_eq!(clean.corrupted, 0);
        assert_eq!(clean.outputs[0], 2);
    }

    #[test]
    fn failed_corrupted_epoch_recovers_through_reset() {
        let mut s = sim();
        s.apply_burst(&[ChurnEvent::Corrupt {
            v: NodeId::new(3),
            entropy: u64::MAX, // makes the node's send fail outright
        }])
        .unwrap();
        let epoch = s.stabilize().unwrap();
        assert!(epoch.reset_recovery);
        assert_eq!(epoch.corrupted, 1);
        // After reset the epoch is indistinguishable from a clean one.
        let clean = sim().stabilize().unwrap();
        assert_eq!(epoch.outputs, clean.outputs);
    }

    #[test]
    fn uncorrupted_failure_propagates() {
        let g = ports::canonical_ports(&generators::cycle(4).unwrap()).unwrap();
        let mut s = ChurnSimulator::new(&g, |_, d| Echo {
            degree: d,
            token: u64::MAX,
        })
        .unwrap();
        assert!(matches!(
            s.stabilize(),
            Err(ChurnError::Runtime(RuntimeError::WrongMessageCount { .. }))
        ));
    }

    #[test]
    fn cancelled_barrier_yields_structured_timeout() {
        let token = CancelToken::new();
        token.cancel();
        let mut s = sim().cancel_token(token);
        match s.stabilize() {
            Err(ChurnError::Runtime(RuntimeError::Cancelled {
                after_rounds,
                still_running,
            })) => {
                assert_eq!(after_rounds, 0);
                assert_eq!(still_running, 6);
            }
            other => panic!("expected a cancelled epoch, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_corrupted_epoch_skips_reset_recovery() {
        // Corruption is queued AND the token is already cancelled: the
        // epoch must report the timeout, not attempt the reset re-run.
        let token = CancelToken::new();
        token.cancel();
        let mut s = sim().cancel_token(token);
        s.apply_burst(&[ChurnEvent::Corrupt {
            v: NodeId::new(0),
            entropy: u64::MAX,
        }])
        .unwrap();
        assert!(matches!(
            s.stabilize(),
            Err(ChurnError::Runtime(RuntimeError::Cancelled { .. }))
        ));
    }

    #[test]
    fn clear_corruption_discards_the_queue() {
        let mut s = sim();
        s.apply_burst(&[ChurnEvent::Corrupt {
            v: NodeId::new(0),
            entropy: 41,
        }])
        .unwrap();
        assert_eq!(s.clear_corruption(), 1);
        let epoch = s.stabilize().unwrap();
        assert_eq!(epoch.corrupted, 0);
        assert_eq!(epoch.outputs[0], 2, "the fault never reached the run");
    }

    #[test]
    fn streamed_topology_churns_identically_to_dense() {
        let g = ports::canonical_ports(&generators::cycle(6).unwrap()).unwrap();
        let mut schedule = EventSchedule::new();
        schedule
            .push_burst(vec![
                ChurnEvent::DeleteEdge {
                    u: NodeId::new(0),
                    v: NodeId::new(1),
                },
                ChurnEvent::InsertEdge {
                    u: NodeId::new(0),
                    v: NodeId::new(3),
                },
            ])
            .push_burst(vec![
                ChurnEvent::Crash { v: NodeId::new(2) },
                ChurnEvent::Join {
                    attach: vec![NodeId::new(4)],
                },
            ]);
        let dense = sim().run(&schedule).unwrap();
        let factory = |_: NodeId, d: usize| Echo {
            degree: d,
            token: 1,
        };
        let streamed =
            ChurnSimulator::with_topology(pn_graph::StreamedDynamicTopology::new(&g), factory)
                .run(&schedule)
                .unwrap();
        assert_eq!(dense.len(), streamed.len());
        for (d, s) in dense.iter().zip(&streamed) {
            assert_eq!(d.graph, s.graph);
            assert_eq!(d.outputs, s.outputs);
            assert_eq!(d.rounds, s.rounds);
            assert_eq!(d.messages, s.messages);
        }
    }

    #[test]
    fn invalid_events_surface_structured_errors() {
        let mut s = sim();
        assert!(matches!(
            s.apply_burst(&[ChurnEvent::DeleteEdge {
                u: NodeId::new(0),
                v: NodeId::new(3),
            }]),
            Err(ChurnError::Graph(GraphError::InvalidParameter { .. }))
        ));
        assert!(matches!(
            s.apply_burst(&[ChurnEvent::Corrupt {
                v: NodeId::new(99),
                entropy: 0,
            }]),
            Err(ChurnError::Graph(GraphError::NodeOutOfRange { .. }))
        ));
    }
}

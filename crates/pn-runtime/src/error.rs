//! Error types for simulator runs.

use std::error::Error;
use std::fmt;

use pn_graph::{NodeId, Port};

/// Errors produced while executing a distributed algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The round limit was reached before every node halted.
    RoundLimitExceeded {
        /// The configured limit.
        limit: usize,
        /// Number of nodes still running.
        still_running: usize,
    },
    /// A node emitted the wrong number of outgoing messages: a node of
    /// degree `d` must send exactly one message per port.
    WrongMessageCount {
        /// The offending node.
        node: NodeId,
        /// Number of messages emitted.
        got: usize,
        /// The node's degree.
        expected: usize,
    },
    /// A port-set output is not internally consistent: `i ∈ X(v)` with
    /// `p(v, i) = (u, j)` requires `j ∈ X(u)` (paper Section 2.2).
    InconsistentOutput {
        /// The selecting endpoint's node.
        node: NodeId,
        /// The selecting endpoint's port.
        port: Port,
        /// The counterpart node that did not select the edge.
        counterpart: NodeId,
        /// The counterpart port missing from the output.
        counterpart_port: Port,
    },
    /// The run was aborted between rounds by a
    /// [`CancelToken`](crate::CancelToken) — a caller-requested
    /// cancellation or an expired deadline.
    Cancelled {
        /// Rounds fully executed before cancellation was observed.
        after_rounds: usize,
        /// Number of nodes still running at the abort point.
        still_running: usize,
    },
    /// An output referenced a port beyond the node's degree.
    OutputPortOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The out-of-range port.
        port: Port,
        /// The node's degree.
        degree: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::RoundLimitExceeded {
                limit,
                still_running,
            } => write!(
                f,
                "round limit {limit} exceeded with {still_running} nodes still running"
            ),
            RuntimeError::WrongMessageCount {
                node,
                got,
                expected,
            } => write!(
                f,
                "node {node} sent {got} messages but has degree {expected}"
            ),
            RuntimeError::InconsistentOutput {
                node,
                port,
                counterpart,
                counterpart_port,
            } => write!(
                f,
                "output is inconsistent: node {node} selected port {port} but \
                 node {counterpart} did not select port {counterpart_port}"
            ),
            RuntimeError::Cancelled {
                after_rounds,
                still_running,
            } => write!(
                f,
                "run cancelled after {after_rounds} rounds with {still_running} nodes still running"
            ),
            RuntimeError::OutputPortOutOfRange { node, port, degree } => write!(
                f,
                "output of node {node} names port {port} beyond degree {degree}"
            ),
        }
    }
}

impl Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = RuntimeError::RoundLimitExceeded {
            limit: 10,
            still_running: 3,
        };
        assert!(e.to_string().contains("10"));
        let e = RuntimeError::WrongMessageCount {
            node: NodeId::new(2),
            got: 1,
            expected: 3,
        };
        assert!(e.to_string().contains("degree 3"));
    }
}

//! Deterministic synchronous simulator for distributed algorithms in
//! anonymous port-numbered networks.
//!
//! This crate implements the model of computation of Suomela, *Distributed
//! Algorithms for Edge Dominating Sets* (PODC 2010), Section 2.2:
//! synchronous rounds, one message per port per round, no node
//! identifiers, nodes initially knowing only their own degree.
//!
//! * [`NodeAlgorithm`] — the per-node deterministic state machine;
//! * [`Simulator`] — executes an algorithm on a
//!   [`pn_graph::PortNumberedGraph`], routing messages through the port
//!   involution and counting rounds and messages;
//! * [`PortSet`], [`edge_set_from_outputs`] — the paper's output
//!   convention for edge subsets, with the internal-consistency check;
//! * [`fiber_agreement`] — executable covering-map indistinguishability.
//!
//! # Example
//!
//! The "port-1" algorithm of Theorem 3 in 15 lines: every node selects
//! port 1 and any port whose counterpart announced itself as a port 1.
//!
//! ```
//! use pn_graph::{generators, ports, Port};
//! use pn_runtime::{edge_set_from_outputs, NodeAlgorithm, PortSet, Simulator};
//!
//! struct PortOne { degree: usize }
//! impl NodeAlgorithm for PortOne {
//!     type Message = bool; // "my end of this link is port 1"
//!     type Output = PortSet;
//!     fn send(&mut self, _r: usize) -> Vec<bool> {
//!         (1..=self.degree).map(|i| i == 1).collect()
//!     }
//!     fn receive(&mut self, _r: usize, inbox: &[Option<bool>]) -> Option<PortSet> {
//!         let mut x = PortSet::new();
//!         x.insert(Port::new(1));
//!         for (i, m) in inbox.iter().enumerate() {
//!             if m == &Some(true) {
//!                 x.insert(Port::from_index(i));
//!             }
//!         }
//!         Some(x)
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = ports::canonical_ports(&generators::cycle(6)?)?;
//! let run = Simulator::new(&g).run(|d| PortOne { degree: d })?;
//! let edges = edge_set_from_outputs(&g, &run.outputs)?; // consistent!
//! assert!(!edges.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod algorithm;
mod error;
mod output;
mod parallel;
mod simulator;
mod trace;

pub use algorithm::{AlgorithmFactory, NodeAlgorithm};
pub use error::RuntimeError;
pub use output::{edge_set_from_outputs, fiber_agreement, outputs_from_edge_set, PortSet};
pub use simulator::{Run, RunOptions, Simulator};
pub use trace::{HaltEvent, MessageEvent, Trace};

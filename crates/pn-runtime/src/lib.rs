//! Deterministic synchronous simulator for distributed algorithms in
//! anonymous port-numbered networks.
//!
//! This crate implements the model of computation of Suomela, *Distributed
//! Algorithms for Edge Dominating Sets* (PODC 2010), Section 2.2:
//! synchronous rounds, one message per port per round, no node
//! identifiers, nodes initially knowing only their own degree.
//!
//! * [`NodeAlgorithm`] — the per-node deterministic state machine;
//! * [`Simulator`] — executes an algorithm on a
//!   [`pn_graph::PortNumberedGraph`], routing messages through the port
//!   involution and counting rounds and messages;
//! * [`PortSet`], [`edge_set_from_outputs`] — the paper's output
//!   convention for edge subsets, with the internal-consistency check;
//! * [`fiber_agreement`] — executable covering-map indistinguishability.
//!
//! # The three-phase round engine
//!
//! All entry points — [`Simulator::run`], [`Simulator::run_with_inputs`],
//! and [`Simulator::run_parallel`] — execute the same zero-allocation
//! round loop over two flat per-port message buffers (`outbox`, `inbox`),
//! laid out in the graph's slot arena: node `v`'s ports occupy the
//! contiguous window starting at
//! [`pn_graph::PortNumberedGraph::slot_offsets`]`()[v]`. Each round is
//! three phases:
//!
//! 1. **Send** — every *active* node writes one message per port into its
//!    outbox window via [`NodeAlgorithm::send_into`];
//! 2. **Route** — a permuted buffer move: `inbox[route[s]] =
//!    outbox[s].take()` for every occupied source slot `s`, where `route`
//!    is the **routing table** precomputed at [`Simulator`] construction
//!    (`route[slot(e)] = slot(p(e))`; it equals its own inverse because
//!    the port map `p` is an involution — see
//!    [`Simulator::routing_table`]). No `connection()` lookups or
//!    `Endpoint` arithmetic happen per round, and draining the outbox
//!    with `take` restores its all-`None` invariant without a full
//!    buffer clear;
//! 3. **Receive** — every active node consumes its inbox window through
//!    [`NodeAlgorithm::receive`] and optionally halts with an output.
//!
//! Active nodes live on a **frontier** (a compact vector of still-running
//! node ids) that the receive phase compacts in place as nodes halt, so
//! a halted node costs *nothing* in later rounds — long-tail executions
//! where a few high-degree nodes outlive everyone else run at the cost
//! of the survivors, not of the graph.
//!
//! [`Simulator::run_parallel`] executes the same loop on a **persistent
//! worker pool**: workers are spawned once per run, own contiguous node
//! chunks (states, slot ranges, per-chunk frontiers), and synchronise
//! phases through an epoch barrier — two barrier waits per round,
//! cross-chunk messages moved through per-pair mailboxes, results
//! bit-identical to the sequential engine at every thread count. The
//! `parallel` module docs describe the full design (sharing discipline,
//! quiescent chunks, barrier poisoning).
//!
//! Execution transcripts ([`RunOptions::record_trace`]) are captured by a
//! separate traced route phase; with tracing off (the default) the hot
//! loop contains no formatting and no per-message branching beyond the
//! occupancy check.
//!
//! # The bit-packed raw-speed tier
//!
//! Protocols whose messages implement [`PackedMessage`] (tiny enums over
//! bounded degrees — every protocol in this workspace except the
//! identifier-model baseline) can run through the **packed engine**
//! ([`Simulator::run_packed`], [`Simulator::run_packed_parallel`]): port
//! windows become bit lanes inside `u64` words, the route phase becomes
//! a per-word gather plan, and nodes are relayouted by a stable degree
//! sort for cache locality — bit-identical to this generic engine, which
//! remains the conformance oracle. Regular-graph broadcast/fold programs
//! can go further with [`WordKernel`]s
//! ([`Simulator::run_packed_kernel`]), advancing 8–64 node-ports per
//! word operation. See the `packed` module docs for the word layout,
//! eligibility rules and the CSR permutation contract.
//!
//! # Migrating from `send` to `send_into`
//!
//! [`NodeAlgorithm::send`] (allocate and return a `Vec` per node per
//! round) keeps working unchanged: the default
//! [`NodeAlgorithm::send_into`] delegates to it and enforces the
//! message-count contract. Hot algorithms should override `send_into` to
//! write into the engine-owned window directly and implement `send` as
//! `pn_runtime::collect_send(self, round, degree)` for API
//! compatibility; see `eds_core::distributed` for migrated examples.
//! A native `send_into` may leave a slot `None`, which delivers nothing
//! on that port (the peer receives `None`, as from a halted neighbour).
//! Silent ports have no representation in the legacy `Vec` API, so an
//! algorithm that uses them cannot go through [`collect_send`] (it
//! panics on empty slots by design) — implement `send` as
//! `unimplemented!` for such protocols and route all callers through
//! the simulator, which only ever calls `send_into`.
//!
//! # Example
//!
//! The "port-1" algorithm of Theorem 3 in 15 lines: every node selects
//! port 1 and any port whose counterpart announced itself as a port 1.
//!
//! ```
//! use pn_graph::{generators, ports, Port};
//! use pn_runtime::{edge_set_from_outputs, NodeAlgorithm, PortSet, Simulator};
//!
//! struct PortOne { degree: usize }
//! impl NodeAlgorithm for PortOne {
//!     type Message = bool; // "my end of this link is port 1"
//!     type Output = PortSet;
//!     fn send(&mut self, _r: usize) -> Vec<bool> {
//!         (1..=self.degree).map(|i| i == 1).collect()
//!     }
//!     fn receive(&mut self, _r: usize, inbox: &[Option<bool>]) -> Option<PortSet> {
//!         let mut x = PortSet::new();
//!         x.insert(Port::new(1));
//!         for (i, m) in inbox.iter().enumerate() {
//!             if m == &Some(true) {
//!                 x.insert(Port::from_index(i));
//!             }
//!         }
//!         Some(x)
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = ports::canonical_ports(&generators::cycle(6)?)?;
//! let run = Simulator::new(&g).run(|d| PortOne { degree: d })?;
//! let edges = edge_set_from_outputs(&g, &run.outputs)?; // consistent!
//! assert!(!edges.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod algorithm;
mod cancel;
mod churn;
mod error;
mod metrics;
mod output;
mod packed;
mod parallel;
mod pool;
mod simulator;
mod trace;

pub use algorithm::{collect_send, entropy_stream, AlgorithmFactory, NodeAlgorithm, WrongCount};
pub use cancel::CancelToken;
pub use churn::{ChurnError, ChurnEvent, ChurnSimulator, Epoch, EventSchedule};
pub use error::RuntimeError;
pub use output::{edge_set_from_outputs, fiber_agreement, outputs_from_edge_set, PortSet};
pub use packed::{
    kernel_reference_run, lane_width_for, KernelNode, OrGossipKernel, PackedMessage, WordKernel,
};
pub use pool::{SubmitError, WorkerPool};
pub use simulator::{Run, RunOptions, Simulator};
pub use trace::{HaltEvent, MessageEvent, Trace};

//! The runtime's global-registry telemetry series.
//!
//! Everything here aggregates **per run**, not per message: the round
//! loops accumulate into plain locals (see [`RunFlush`]) and fold them
//! into the process-global [`eds_telemetry::global`] registry exactly
//! once, when the run ends — on any exit path, including errors, via
//! `Drop`. The steady-state cost added to a round is a handful of
//! integer adds; the per-message cost is zero atomics.

use std::sync::{Arc, OnceLock};

use eds_telemetry::{Counter, Histogram, LocalHistogram};

/// Handles to the runtime's series in the global registry.
pub(crate) struct RuntimeMetrics {
    /// `eds_runtime_runs_total`.
    pub runs: Arc<Counter>,
    /// `eds_runtime_rounds_total`.
    pub rounds: Arc<Counter>,
    /// `eds_runtime_messages_total`.
    pub messages: Arc<Counter>,
    /// `eds_runtime_frontier_nodes` — active-frontier size observed at
    /// the top of each round.
    pub frontier: Arc<Histogram>,
    /// `eds_runtime_barrier_waits_total` — pool-barrier rendezvous
    /// performed by parallel-engine workers (two per worker per round).
    pub barrier_waits: Arc<Counter>,
    /// `eds_runtime_churn_epochs_total`.
    pub churn_epochs: Arc<Counter>,
}

/// The one-time-registered handle set.
pub(crate) fn metrics() -> &'static RuntimeMetrics {
    static METRICS: OnceLock<RuntimeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = eds_telemetry::global();
        RuntimeMetrics {
            runs: registry.counter(
                "eds_runtime_runs_total",
                "Simulation runs started (any engine).",
            ),
            rounds: registry.counter(
                "eds_runtime_rounds_total",
                "Communication rounds executed across all runs.",
            ),
            messages: registry.counter(
                "eds_runtime_messages_total",
                "Messages routed across all runs.",
            ),
            frontier: registry.histogram(
                "eds_runtime_frontier_nodes",
                "Active-node frontier size at the top of each round.",
            ),
            barrier_waits: registry.counter(
                "eds_runtime_barrier_waits_total",
                "Pool-barrier waits performed by parallel-engine workers.",
            ),
            churn_epochs: registry.counter(
                "eds_runtime_churn_epochs_total",
                "Churn epochs stabilized by the dynamic-graph driver.",
            ),
        }
    })
}

/// Per-run local aggregates, flushed to the global registry on drop —
/// one atomic add per non-zero field per run, whatever the exit path.
pub(crate) struct RunFlush {
    /// 1 for the seat that owns the run (worker 0 / the sequential
    /// engine), 0 for secondary pool workers.
    pub runs: u64,
    pub rounds: u64,
    pub messages: u64,
    pub barrier_waits: u64,
    pub frontier: LocalHistogram,
}

impl RunFlush {
    /// A fresh aggregate; `owner` marks the seat that accounts for the
    /// run itself (worker 0 or the sequential engine).
    pub fn new(owner: bool) -> Self {
        RunFlush {
            runs: u64::from(owner),
            rounds: 0,
            messages: 0,
            barrier_waits: 0,
            frontier: LocalHistogram::new(),
        }
    }
}

impl Drop for RunFlush {
    fn drop(&mut self) {
        let m = metrics();
        if self.runs > 0 {
            m.runs.add(self.runs);
        }
        if self.rounds > 0 {
            m.rounds.add(self.rounds);
        }
        if self.messages > 0 {
            m.messages.add(self.messages);
        }
        if self.barrier_waits > 0 {
            m.barrier_waits.add(self.barrier_waits);
        }
        self.frontier.flush(&m.frontier);
    }
}

//! Port-set outputs and the paper's internal-consistency requirement.
//!
//! When a distributed algorithm computes an edge dominating set (paper
//! Section 2.2), each node `v` outputs a set `X(v)` of its own port
//! numbers; the selected edge set is `{ {v, u} : i ∈ X(v), p(v,i) = (u,j) }`.
//! The output must be *internally consistent*: if `i ∈ X(v)` and
//! `p(v, i) = (u, j)`, then `j ∈ X(u)` — both endpoints agree on every
//! selected edge.

use std::collections::BTreeSet;

use pn_graph::{EdgeId, Endpoint, NodeId, Port, PortNumberedGraph};

use crate::RuntimeError;

/// The output of one node: the set `X(v)` of selected port numbers.
///
/// # Examples
///
/// ```
/// use pn_runtime::PortSet;
/// use pn_graph::Port;
/// let mut x = PortSet::new();
/// x.insert(Port::new(2));
/// assert!(x.contains(Port::new(2)));
/// assert!(!x.contains(Port::new(1)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PortSet {
    ports: BTreeSet<Port>,
}

impl PortSet {
    /// Creates an empty port set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a port; returns `true` if it was not already present.
    pub fn insert(&mut self, p: Port) -> bool {
        self.ports.insert(p)
    }

    /// Returns `true` if the port is selected.
    pub fn contains(&self, p: Port) -> bool {
        self.ports.contains(&p)
    }

    /// Number of selected ports.
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// Returns `true` if no port is selected.
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }

    /// Iterates over the selected ports in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Port> + '_ {
        self.ports.iter().copied()
    }
}

impl FromIterator<Port> for PortSet {
    fn from_iter<T: IntoIterator<Item = Port>>(iter: T) -> Self {
        PortSet {
            ports: iter.into_iter().collect(),
        }
    }
}

impl Extend<Port> for PortSet {
    fn extend<T: IntoIterator<Item = Port>>(&mut self, iter: T) {
        self.ports.extend(iter);
    }
}

/// Validates internal consistency of per-node port outputs and extracts
/// the selected edge set.
///
/// # Errors
///
/// * [`RuntimeError::OutputPortOutOfRange`] if an output names a port
///   beyond the node's degree;
/// * [`RuntimeError::InconsistentOutput`] if the two endpoints of some
///   edge disagree.
///
/// # Panics
///
/// Panics if `outputs.len()` differs from the node count of `g`.
pub fn edge_set_from_outputs(
    g: &PortNumberedGraph,
    outputs: &[PortSet],
) -> Result<Vec<EdgeId>, RuntimeError> {
    assert_eq!(
        outputs.len(),
        g.node_count(),
        "one output per node required"
    );
    let mut selected = vec![false; g.edge_count()];
    for v in g.nodes() {
        for i in outputs[v.index()].iter() {
            if i.get() as usize > g.degree(v) {
                return Err(RuntimeError::OutputPortOutOfRange {
                    node: v,
                    port: i,
                    degree: g.degree(v),
                });
            }
            let there = g.connection(Endpoint::new(v, i));
            if !outputs[there.node.index()].contains(there.port) {
                return Err(RuntimeError::InconsistentOutput {
                    node: v,
                    port: i,
                    counterpart: there.node,
                    counterpart_port: there.port,
                });
            }
            selected[g.edge_at(Endpoint::new(v, i)).index()] = true;
        }
    }
    Ok((0..g.edge_count())
        .map(EdgeId::new)
        .filter(|e| selected[e.index()])
        .collect())
}

/// Builds per-node port outputs from an edge set (the inverse of
/// [`edge_set_from_outputs`]); useful for comparing centralised reference
/// solutions with distributed ones.
pub fn outputs_from_edge_set(g: &PortNumberedGraph, edges: &[EdgeId]) -> Vec<PortSet> {
    let mut outputs = vec![PortSet::new(); g.node_count()];
    for &e in edges {
        let (a, b) = g.edge_endpoints(e);
        outputs[a.node.index()].insert(a.port);
        outputs[b.node.index()].insert(b.port);
    }
    outputs
}

/// Checks that all nodes in the same fibre of a covering map produced the
/// same output; returns the first violating pair otherwise.
///
/// This is the executable form of the paper's Section 2.3 lemma: a
/// deterministic algorithm cannot distinguish covering-equivalent nodes.
pub fn fiber_agreement<O: PartialEq>(
    fibers: &[Vec<NodeId>],
    outputs: &[O],
) -> Result<(), (NodeId, NodeId)> {
    for fiber in fibers {
        if let Some((&first, rest)) = fiber.split_first() {
            for &v in rest {
                if outputs[v.index()] != outputs[first.index()] {
                    return Err((first, v));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pn_graph::{generators, ports};

    #[test]
    fn round_trip_edges_outputs() {
        let g = ports::canonical_ports(&generators::complete(4).unwrap()).unwrap();
        let edges: Vec<EdgeId> = vec![EdgeId::new(0), EdgeId::new(4)];
        let outputs = outputs_from_edge_set(&g, &edges);
        let back = edge_set_from_outputs(&g, &outputs).unwrap();
        assert_eq!(back, edges);
    }

    #[test]
    fn inconsistency_detected() {
        let g = ports::canonical_ports(&generators::path(2).unwrap()).unwrap();
        let mut outputs = vec![PortSet::new(), PortSet::new()];
        outputs[0].insert(Port::new(1)); // node 1 does not select its side
        let err = edge_set_from_outputs(&g, &outputs).unwrap_err();
        assert!(matches!(err, RuntimeError::InconsistentOutput { .. }));
    }

    #[test]
    fn out_of_range_port_detected() {
        let g = ports::canonical_ports(&generators::path(2).unwrap()).unwrap();
        let mut outputs = vec![PortSet::new(), PortSet::new()];
        outputs[0].insert(Port::new(9));
        let err = edge_set_from_outputs(&g, &outputs).unwrap_err();
        assert!(matches!(err, RuntimeError::OutputPortOutOfRange { .. }));
    }

    #[test]
    fn fiber_agreement_checks() {
        let fibers = vec![vec![NodeId::new(0), NodeId::new(1)], vec![NodeId::new(2)]];
        let ok = vec![5, 5, 7];
        assert!(fiber_agreement(&fibers, &ok).is_ok());
        let bad = vec![5, 6, 7];
        assert_eq!(
            fiber_agreement(&fibers, &bad),
            Err((NodeId::new(0), NodeId::new(1)))
        );
    }

    #[test]
    fn port_set_basics() {
        let mut s: PortSet = [Port::new(3), Port::new(1)].into_iter().collect();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        let listed: Vec<Port> = s.iter().collect();
        assert_eq!(listed, vec![Port::new(1), Port::new(3)]); // sorted
        s.extend([Port::new(2)]);
        assert_eq!(s.len(), 3);
        assert!(!s.insert(Port::new(2)));
    }
}

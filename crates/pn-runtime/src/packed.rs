//! Bit-packed fixed-degree execution: the raw-speed tier for 10M–100M
//! node graphs exchanging tiny enum messages over bounded-degree ports.
//!
//! The generic three-phase engine ([`Simulator::run`]) moves messages as
//! individual `Option<M>` values — one load, one branch and one store
//! per port per round. Every protocol in this workspace, however, sends
//! messages drawn from an alphabet of a handful of symbols over degrees
//! of 2–8, so a whole port window fits comfortably inside one machine
//! word. This module exploits that:
//!
//! # Word layout
//!
//! A message is encoded as a **lane**: a `b`-bit code with `b` a power
//! of two (so lanes never straddle word boundaries), code `0` reserved
//! for *no message* (an empty `send_into` slot or a halted neighbour)
//! and codes `1..2^b` for the live alphabet — the [`PackedMessage`]
//! contract. The flat port-slot arena of the graph becomes two `Vec<u64>`
//! bit arenas (`out`, `in`) holding `64 / b` lanes per word; node `v`'s
//! window is the `degree(v)` consecutive lanes starting at its slot
//! offset, exactly mirroring the generic engine's layout.
//!
//! # CSR permutation contract
//!
//! At construction the nodes are relayouted by the **stable degree
//! sort** ([`pn_graph::PortNumberedGraph::degree_sorted_permutation`]):
//! equal-degree nodes become uniform runs of equal-width windows, which
//! keeps route-plan gather entries shared across lanes and gives the
//! chunked parallel path word-aligned chunk boundaries. The permutation
//! is applied to states on entry and **inverted on output**: `outputs`,
//! `halted_at` and all error node ids are reported in original node
//! order, so callers never observe the relayout.
//!
//! # The packed round
//!
//! 1. **Send** — each frontier node's `send_into` runs against a scratch
//!    window of `Option<M>` (the *bridge*: unchanged node algorithms,
//!    bit-identical behaviour) and the slots are encoded into the `out`
//!    arena; occupancy is counted here, which equals the generic
//!    engine's per-`take()` message count.
//! 2. **Route** — a precomputed **gather plan**: for every destination
//!    word, a short list of `(source word, shift, mask)` entries rebuilt
//!    from the port involution. Each destination word is reassembled in
//!    a register with `acc |= ((src >> shr) << shl) & mask`, so on
//!    structured layouts (canonical cycles, uniform-degree runs) a word
//!    of 16–64 lanes moves in 2–4 operations and the inbox needs no
//!    clearing — it is fully overwritten every round.
//! 3. **Receive** — lanes are decoded back into the scratch window and
//!    handed to `receive`; halting nodes zero their `out` lanes (the
//!    packed analogue of leaving the frontier) and the frontier is
//!    compacted in place exactly like the generic engine.
//!
//! # Eligibility rules
//!
//! The packed path is chosen automatically when (see
//! [`Simulator::packed_eligible`]):
//!
//! * the message type reports a lane width for the graph's maximum
//!   degree ([`PackedMessage::lane_bits`] is `Some`),
//! * the widest port window fits one word (`Δ · b ≤ 64`),
//! * no execution transcript was requested
//!   ([`crate::RunOptions::record_trace`] is off), and
//! * ports and nodes fit `u32` lane indices.
//!
//! Anything else (the identifier-model baseline's unbounded messages, a
//! traced run, a hub beyond the word budget) falls back to the generic
//! engine, which remains the **conformance oracle**: the packed path
//! must produce bit-identical [`Run`]s — outputs, halt rounds, round and
//! message totals — and the equivalence suites assert it property-based
//! across the whole protocol portfolio.
//!
//! # Native word kernels
//!
//! The bridge path still executes scalar node code; its win is the route
//! phase and memory traffic. For regular graphs there is a second tier:
//! [`WordKernel`] programs keep the whole node state as one `b`-bit
//! token per node and advance 8–64 nodes per operation through SWAR
//! spread/fold ladders ([`Simulator::run_packed_kernel`]), with a scalar
//! twin ([`kernel_reference_run`]) on the generic engine as the oracle.
//! This is the tier that reaches ≥10⁹ messages/second sequentially.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use pn_graph::{NodeId, PortNumberedGraph};

use crate::algorithm::{AlgorithmFactory, NodeAlgorithm};
use crate::metrics::RunFlush;
use crate::parallel::{PoisonOnPanic, PoolBarrier};
use crate::simulator::Run;
use crate::{RuntimeError, Simulator};

/// A message type encodable into fixed-width bit lanes.
///
/// # Contract
///
/// * [`PackedMessage::lane_bits`] returns the lane width `b` (a power of
///   two dividing 64) sufficient for **every** message the protocol can
///   produce on a graph of the given maximum degree, or `None` when the
///   alphabet cannot be bounded (unbounded payloads).
/// * [`PackedMessage::encode`] maps a message to a code in `1..2^b`
///   (code `0` is reserved for *no message*).
/// * [`PackedMessage::decode`] inverts `encode` **exactly** — the packed
///   engine's bit-identity with the generic engine rests on
///   `decode(encode(m)) == Some(m)` for every reachable `m`. `decode(0)`
///   must be `None`.
///
/// Both directions receive the same `max_degree` the width was computed
/// for, so port numbers and degrees can be folded into the code space.
pub trait PackedMessage: Sized + Clone {
    /// Lane width in bits for a graph of maximum degree `max_degree`, or
    /// `None` if the alphabet does not pack.
    fn lane_bits(max_degree: usize) -> Option<u32>;
    /// The nonzero lane code of this message (`< 2^lane_bits`).
    fn encode(&self, max_degree: usize) -> u64;
    /// The message for a lane code; `None` exactly for code `0`.
    fn decode(code: u64, max_degree: usize) -> Option<Self>;
}

/// The lane width needed to host codes `1..=max_code`: the bit length of
/// `max_code` rounded up to a power of two, or `None` beyond 64 bits.
/// Convenience for [`PackedMessage::lane_bits`] implementations.
pub fn lane_width_for(max_code: u64) -> Option<u32> {
    let bits = (64 - max_code.leading_zeros()).max(1);
    let b = bits.next_power_of_two();
    (b <= 64).then_some(b)
}

impl PackedMessage for bool {
    fn lane_bits(_max_degree: usize) -> Option<u32> {
        Some(2)
    }

    fn encode(&self, _max_degree: usize) -> u64 {
        if *self {
            2
        } else {
            1
        }
    }

    fn decode(code: u64, _max_degree: usize) -> Option<Self> {
        match code {
            1 => Some(false),
            2 => Some(true),
            _ => None,
        }
    }
}

/// One gather entry of the route plan: `dest |= ((words[src] >> shr)
/// << shl) & mask`. Exactly one of `shr`/`shl` is nonzero (or both are
/// zero for an aligned move).
#[derive(Clone, Copy, Debug)]
struct GatherEntry {
    src: u32,
    shr: u8,
    shl: u8,
    mask: u64,
}

/// The packed execution layout for one graph at one lane width: the
/// degree-sorted permutation, permuted window offsets and the
/// destination-word gather plan derived from the port involution.
struct PackedLayout {
    bits: u32,
    /// Lanes per word (`64 / bits`).
    lpw: u32,
    lane_mask: u64,
    /// Arena length in words.
    words: usize,
    /// `perm[new] = old` — the stable degree sort.
    perm: Vec<u32>,
    /// Permuted window offsets in lanes, `n + 1` entries.
    offsets: Vec<u32>,
    /// `plan[plan_index[w]..plan_index[w+1]]` rebuilds dest word `w`.
    plan: Vec<GatherEntry>,
    plan_index: Vec<u32>,
}

impl PackedLayout {
    /// Builds the layout. `degree_sort` is disabled by the kernel path
    /// (regular graphs — the sort is the identity there anyway).
    fn new(g: &PortNumberedGraph, bits: u32, degree_sort: bool) -> Self {
        let n = g.node_count();
        let lanes = g.port_count();
        let lpw = 64 / bits;
        let lane_mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let perm: Vec<u32> = if degree_sort {
            g.degree_sorted_permutation()
        } else {
            (0..n as u32).collect()
        };
        let mut inv = vec![0u32; n];
        for (new, &old) in perm.iter().enumerate() {
            inv[old as usize] = new as u32;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &old in &perm {
            acc += g.degree(NodeId::new(old as usize)) as u32;
            offsets.push(acc);
        }
        debug_assert_eq!(acc as usize, lanes);

        // The permuted lane involution, then folded into the per-word
        // gather plan (the route vector itself is not retained: the
        // steady-state round only needs the plan).
        let old_offsets = g.slot_offsets();
        let conn = g.involution();
        let mut route = vec![0u32; lanes];
        for new_v in 0..n {
            let old_v = perm[new_v] as usize;
            let base_new = offsets[new_v] as usize;
            let base_old = old_offsets[old_v];
            let d = (offsets[new_v + 1] - offsets[new_v]) as usize;
            for i in 0..d {
                let partner = conn[base_old + i];
                route[base_new + i] =
                    offsets[inv[partner.node.index()] as usize] + partner.port.index() as u32;
            }
        }

        let words = lanes.div_ceil(lpw as usize);
        let mut plan = Vec::new();
        let mut plan_index = Vec::with_capacity(words + 1);
        plan_index.push(0u32);
        let mut bucket: Vec<GatherEntry> = Vec::with_capacity(lpw as usize);
        for w in 0..words {
            bucket.clear();
            let lo = w * lpw as usize;
            let hi = (lo + lpw as usize).min(lanes);
            for (j, t) in (lo..hi).enumerate() {
                let s = route[t] as usize;
                let src = (s / lpw as usize) as u32;
                let s_bit = (s % lpw as usize) as u32 * bits;
                let t_bit = j as u32 * bits;
                let (shr, shl) = if s_bit >= t_bit {
                    ((s_bit - t_bit) as u8, 0u8)
                } else {
                    (0u8, (t_bit - s_bit) as u8)
                };
                let mask = lane_mask << t_bit;
                match bucket
                    .iter_mut()
                    .find(|e| e.src == src && e.shr == shr && e.shl == shl)
                {
                    Some(e) => e.mask |= mask,
                    None => bucket.push(GatherEntry {
                        src,
                        shr,
                        shl,
                        mask,
                    }),
                }
            }
            plan.extend_from_slice(&bucket);
            plan_index.push(u32::try_from(plan.len()).expect("plan fits u32"));
        }

        PackedLayout {
            bits,
            lpw,
            lane_mask,
            words,
            perm,
            offsets,
            plan,
            plan_index,
        }
    }

    #[inline]
    fn word_of(&self, lane: usize) -> usize {
        lane / self.lpw as usize
    }

    #[inline]
    fn bit_of(&self, lane: usize) -> u32 {
        (lane % self.lpw as usize) as u32 * self.bits
    }

    /// Executes the gather plan for destination word `w` against the
    /// `out` arena.
    #[inline]
    fn gather(&self, out: &[u64], w: usize) -> u64 {
        let lo = self.plan_index[w] as usize;
        let hi = self.plan_index[w + 1] as usize;
        let mut acc = 0u64;
        for e in &self.plan[lo..hi] {
            acc |= ((out[e.src as usize] >> e.shr) << e.shl) & e.mask;
        }
        acc
    }

    /// The same gather against an atomic arena (chunked parallel path).
    #[inline]
    fn gather_atomic(&self, out: &[AtomicU64], w: usize) -> u64 {
        let lo = self.plan_index[w] as usize;
        let hi = self.plan_index[w + 1] as usize;
        let mut acc = 0u64;
        for e in &self.plan[lo..hi] {
            acc |= ((out[e.src as usize].load(Ordering::Relaxed) >> e.shr) << e.shl) & e.mask;
        }
        acc
    }
}

/// Checks the packed-path eligibility rules for message type `M` on this
/// simulator's graph (see the module docs); used by
/// [`Simulator::run_packed`] to fall back and by callers that want to
/// know which engine will run.
fn eligible_bits<M: PackedMessage>(g: &PortNumberedGraph, record_trace: bool) -> Option<u32> {
    if record_trace {
        return None;
    }
    let delta = g.max_degree();
    let bits = M::lane_bits(delta)?;
    let ok = bits.is_power_of_two()
        && bits <= 64
        && (delta as u64) * u64::from(bits) <= 64
        && g.port_count() < u32::MAX as usize
        && g.node_count() < u32::MAX as usize;
    ok.then_some(bits)
}

impl<'g> Simulator<'g> {
    /// Returns `true` if the packed fixed-degree path will be used for
    /// message type `M` on this graph under the current options — the
    /// eligibility rules in the [`crate::packed`](self) module docs.
    pub fn packed_eligible<M: PackedMessage>(&self) -> bool {
        eligible_bits::<M>(self.graph(), self.options().record_trace).is_some()
    }

    /// Runs the algorithm through the **bit-packed engine** when the
    /// eligibility rules hold, and transparently falls back to the
    /// generic sequential engine ([`Simulator::run`]) otherwise. Results
    /// are bit-identical either way — the generic engine is the packed
    /// path's conformance oracle.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    pub fn run_packed<F>(
        &self,
        factory: F,
    ) -> Result<Run<<F::Algorithm as NodeAlgorithm>::Output>, RuntimeError>
    where
        F: AlgorithmFactory,
        <F::Algorithm as NodeAlgorithm>::Message: PackedMessage,
    {
        let g = self.graph();
        self.run_packed_states(
            g.nodes()
                .map(|v| factory.create(g.degree(v)))
                .collect::<Vec<_>>(),
        )
    }

    /// The per-node-inputs sibling of [`Simulator::run_packed`] (the
    /// identifier-model entry point on the packed engine), with the same
    /// transparent fallback.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the node count.
    pub fn run_packed_with_inputs<A, I>(
        &self,
        inputs: &[I],
        factory: impl Fn(usize, &I) -> A,
    ) -> Result<Run<A::Output>, RuntimeError>
    where
        A: NodeAlgorithm,
        A::Message: PackedMessage,
    {
        let g = self.graph();
        assert_eq!(inputs.len(), g.node_count(), "one input per node required");
        self.run_packed_states(
            g.nodes()
                .map(|v| factory(g.degree(v), &inputs[v.index()]))
                .collect::<Vec<_>>(),
        )
    }

    /// The sequential packed round loop (bridge driver).
    fn run_packed_states<A>(&self, states: Vec<A>) -> Result<Run<A::Output>, RuntimeError>
    where
        A: NodeAlgorithm,
        A::Message: PackedMessage,
    {
        let g = self.graph();
        let Some(bits) = eligible_bits::<A::Message>(g, self.options().record_trace) else {
            return self.run_states(states);
        };
        let delta = g.max_degree();
        let n = g.node_count();
        let layout = PackedLayout::new(g, bits, true);

        // Apply the CSR permutation to the states; outputs are written
        // back through `perm` so the relayout is invisible to callers.
        let mut pool: Vec<Option<A>> = states.into_iter().map(Some).collect();
        let mut states: Vec<Option<A>> = layout
            .perm
            .iter()
            .map(|&old| pool[old as usize].take())
            .collect();
        drop(pool);

        let mut outputs: Vec<Option<A::Output>> = (0..n).map(|_| None).collect();
        let mut halted_at = vec![0usize; n];
        let mut out_words = vec![0u64; layout.words];
        let mut in_words = vec![0u64; layout.words];
        let mut scratch: Vec<Option<A::Message>> = (0..delta).map(|_| None).collect();
        let mut frontier: Vec<u32> = (0..n as u32).collect();
        let mut rounds = 0usize;
        let mut messages = 0usize;
        let mut stats = RunFlush::new(true);

        while !frontier.is_empty() {
            if rounds >= self.options().max_rounds {
                return Err(RuntimeError::RoundLimitExceeded {
                    limit: self.options().max_rounds,
                    still_running: frontier.len(),
                });
            }
            if let Some(cancel) = self.cancel() {
                if cancel.check() {
                    return Err(RuntimeError::Cancelled {
                        after_rounds: rounds,
                        still_running: frontier.len(),
                    });
                }
            }
            stats.frontier.observe(frontier.len() as u64);

            // ---- Send: scalar bridge into the packed outbox. ----
            for &vu in &frontier {
                let v = vu as usize;
                let base = layout.offsets[v] as usize;
                let d = (layout.offsets[v + 1] - layout.offsets[v]) as usize;
                let window = &mut scratch[..d];
                for slot in window.iter_mut() {
                    *slot = None;
                }
                let state = states[v].as_mut().expect("frontier nodes are running");
                state.send_into(rounds, window).map_err(|wrong| {
                    RuntimeError::WrongMessageCount {
                        node: NodeId::new(layout.perm[v] as usize),
                        got: wrong.got,
                        expected: d,
                    }
                })?;
                for (i, slot) in window.iter_mut().enumerate() {
                    let lane = base + i;
                    let code = match slot.take() {
                        Some(m) => {
                            messages += 1;
                            let c = m.encode(delta);
                            debug_assert!(
                                c != 0 && c <= layout.lane_mask,
                                "encode() must produce a nonzero code within the lane"
                            );
                            c
                        }
                        None => 0,
                    };
                    let w = layout.word_of(lane);
                    let bit = layout.bit_of(lane);
                    out_words[w] = (out_words[w] & !(layout.lane_mask << bit)) | (code << bit);
                }
            }

            // ---- Route: word-level gather plan. ----
            for (w, word) in in_words.iter_mut().enumerate() {
                *word = layout.gather(&out_words, w);
            }

            // ---- Receive: decode windows, compact the frontier. ----
            let mut write = 0usize;
            for read in 0..frontier.len() {
                let vu = frontier[read];
                let v = vu as usize;
                let base = layout.offsets[v] as usize;
                let d = (layout.offsets[v + 1] - layout.offsets[v]) as usize;
                for (i, slot) in scratch[..d].iter_mut().enumerate() {
                    let lane = base + i;
                    let code =
                        (in_words[layout.word_of(lane)] >> layout.bit_of(lane)) & layout.lane_mask;
                    *slot = A::Message::decode(code, delta);
                }
                let state = states[v].as_mut().expect("frontier nodes are running");
                match state.receive(rounds, &scratch[..d]) {
                    Some(out) => {
                        let old = layout.perm[v] as usize;
                        outputs[old] = Some(out);
                        halted_at[old] = rounds + 1;
                        states[v] = None;
                        // A halted node's lanes must read as "no
                        // message" from now on.
                        for lane in base..base + d {
                            let w = layout.word_of(lane);
                            out_words[w] &= !(layout.lane_mask << layout.bit_of(lane));
                        }
                    }
                    None => {
                        frontier[write] = vu;
                        write += 1;
                    }
                }
            }
            frontier.truncate(write);
            rounds += 1;
            stats.rounds = rounds as u64;
            stats.messages = messages as u64;
        }

        Ok(Run {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("all nodes halted"))
                .collect(),
            rounds: halted_at.iter().copied().max().unwrap_or(0),
            halted_at,
            messages,
            trace: None,
        })
    }

    /// The chunked-parallel packed engine: the bridge driver sharded
    /// over word-aligned node chunks on the PR-4 pool machinery
    /// (epoch [`PoolBarrier`], three waits per round: send → route →
    /// receive). Falls back to [`Simulator::run_parallel`] when the
    /// eligibility rules fail and to the sequential packed engine for
    /// `threads <= 1`. Bit-identical to every other engine.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    pub fn run_packed_parallel<F>(
        &self,
        factory: F,
        threads: usize,
    ) -> Result<Run<<F::Algorithm as NodeAlgorithm>::Output>, RuntimeError>
    where
        F: AlgorithmFactory,
        F::Algorithm: Send,
        <F::Algorithm as NodeAlgorithm>::Message: PackedMessage + Send,
        <F::Algorithm as NodeAlgorithm>::Output: Send,
    {
        let g = self.graph();
        let states: Vec<F::Algorithm> = g.nodes().map(|v| factory.create(g.degree(v))).collect();
        if eligible_bits::<<F::Algorithm as NodeAlgorithm>::Message>(g, self.options().record_trace)
            .is_none()
        {
            return self.run_parallel_states(states, threads);
        }
        if threads <= 1 || g.node_count() < 2 {
            return self.run_packed_states(states);
        }
        self.run_packed_parallel_states(states, threads)
    }

    /// The per-node-inputs sibling of [`Simulator::run_packed_parallel`],
    /// with the same fallbacks (generic parallel when ineligible,
    /// sequential packed for one thread).
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the node count.
    pub fn run_packed_parallel_with_inputs<A, I>(
        &self,
        inputs: &[I],
        factory: impl Fn(usize, &I) -> A,
        threads: usize,
    ) -> Result<Run<A::Output>, RuntimeError>
    where
        A: NodeAlgorithm + Send,
        A::Message: PackedMessage + Send,
        A::Output: Send,
    {
        let g = self.graph();
        assert_eq!(inputs.len(), g.node_count(), "one input per node required");
        let states: Vec<A> = g
            .nodes()
            .map(|v| factory(g.degree(v), &inputs[v.index()]))
            .collect();
        if eligible_bits::<A::Message>(g, self.options().record_trace).is_none() {
            return self.run_parallel_states(states, threads);
        }
        if threads <= 1 || g.node_count() < 2 {
            return self.run_packed_states(states);
        }
        self.run_packed_parallel_states(states, threads)
    }

    fn run_packed_parallel_states<A>(
        &self,
        states: Vec<A>,
        threads: usize,
    ) -> Result<Run<A::Output>, RuntimeError>
    where
        A: NodeAlgorithm + Send,
        A::Message: PackedMessage,
        A::Output: Send,
    {
        let g = self.graph();
        let bits = eligible_bits::<A::Message>(g, self.options().record_trace)
            .expect("caller checked eligibility");
        let delta = g.max_degree();
        let n = g.node_count();
        let layout = &PackedLayout::new(g, bits, true);

        // Word-aligned chunk boundaries in the permuted node order: a
        // chunk owns whole arena words, so its send phase and halt
        // zeroing never touch a word shared with a peer.
        let mut bounds = vec![0usize];
        for c in 1..threads {
            let mut v = c * n / threads;
            while v < n && !layout.offsets[v].is_multiple_of(layout.lpw) {
                v += 1;
            }
            if v > *bounds.last().expect("nonempty") && v < n {
                bounds.push(v);
            }
        }
        bounds.push(n);
        let workers = bounds.len() - 1;
        if workers < 2 {
            return self.run_packed_states(states);
        }

        // Permute states and split them into per-chunk vectors.
        let mut pool: Vec<Option<A>> = states.into_iter().map(Some).collect();
        let mut permuted: Vec<Option<A>> = layout
            .perm
            .iter()
            .map(|&old| pool[old as usize].take())
            .collect();
        drop(pool);
        let mut chunk_states: Vec<Vec<Option<A>>> = Vec::with_capacity(workers);
        for w in (0..workers).rev() {
            chunk_states.push(permuted.split_off(bounds[w]));
        }
        chunk_states.reverse();

        let out: Vec<AtomicU64> = (0..layout.words).map(|_| AtomicU64::new(0)).collect();
        let inb: Vec<AtomicU64> = (0..layout.words).map(|_| AtomicU64::new(0)).collect();
        let barrier = PoolBarrier::new(workers);
        let failed = AtomicBool::new(false);
        let error: Mutex<Option<RuntimeError>> = Mutex::new(None);
        let chunk_running: Vec<AtomicUsize> = bounds
            .windows(2)
            .map(|w| AtomicUsize::new(w[1] - w[0]))
            .collect();
        // Word ranges for the route phase: chunk `w` rebuilds the dest
        // words its own lanes live in (word-aligned by construction;
        // the last chunk also owns the tail word).
        let word_bounds: Vec<usize> = (0..=workers)
            .map(|w| {
                if w == workers {
                    layout.words
                } else {
                    layout.offsets[bounds[w]] as usize / layout.lpw as usize
                }
            })
            .collect();

        let fail_with = |e: RuntimeError| {
            let mut slot = error.lock().expect("packed error slot");
            if slot.is_none() {
                *slot = Some(e);
            }
            failed.store(true, Ordering::Release);
        };

        struct ChunkOut<O> {
            lo: usize,
            outputs: Vec<Option<O>>,
            halted_at: Vec<usize>,
            messages: u64,
        }

        let max_rounds = self.options().max_rounds;
        let cancel = self.cancel();
        let worker_loop = |seat: usize,
                           mut states: Vec<Option<A>>|
         -> Option<ChunkOut<A::Output>> {
            let _guard = PoisonOnPanic(&barrier);
            let lo = bounds[seat];
            let hi = bounds[seat + 1];
            let mut outputs: Vec<Option<A::Output>> = (lo..hi).map(|_| None).collect();
            let mut halted_at = vec![0usize; hi - lo];
            let mut scratch: Vec<Option<A::Message>> = (0..delta).map(|_| None).collect();
            let mut frontier: Vec<u32> = (lo as u32..hi as u32).collect();
            let mut messages = 0u64;
            let mut rounds = 0usize;
            let mut total_running = n;
            let mut stats = RunFlush::new(seat == 0);

            loop {
                if total_running == 0 {
                    return Some(ChunkOut {
                        lo,
                        outputs,
                        halted_at,
                        messages,
                    });
                }
                if rounds >= max_rounds {
                    fail_with(RuntimeError::RoundLimitExceeded {
                        limit: max_rounds,
                        still_running: total_running,
                    });
                }
                if seat == 0 {
                    stats.frontier.observe(total_running as u64);
                    if let Some(token) = cancel {
                        if token.check() {
                            fail_with(RuntimeError::Cancelled {
                                after_rounds: rounds,
                                still_running: total_running,
                            });
                        }
                    }
                }

                // ---- Send into own (word-aligned) outbox range. ----
                if !failed.load(Ordering::Acquire) {
                    'send: for &vu in &frontier {
                        let v = vu as usize;
                        let base = layout.offsets[v] as usize;
                        let d = (layout.offsets[v + 1] - layout.offsets[v]) as usize;
                        let window = &mut scratch[..d];
                        for slot in window.iter_mut() {
                            *slot = None;
                        }
                        let state = states[v - lo].as_mut().expect("frontier nodes run");
                        if let Err(wrong) = state.send_into(rounds, window) {
                            fail_with(RuntimeError::WrongMessageCount {
                                node: NodeId::new(layout.perm[v] as usize),
                                got: wrong.got,
                                expected: d,
                            });
                            break 'send;
                        }
                        for (i, slot) in window.iter_mut().enumerate() {
                            let lane = base + i;
                            let code = match slot.take() {
                                Some(m) => {
                                    messages += 1;
                                    m.encode(delta)
                                }
                                None => 0,
                            };
                            let w = layout.word_of(lane);
                            let bit = layout.bit_of(lane);
                            let old = out[w].load(Ordering::Relaxed);
                            out[w].store(
                                (old & !(layout.lane_mask << bit)) | (code << bit),
                                Ordering::Relaxed,
                            );
                        }
                    }
                }
                stats.barrier_waits += 1;
                if barrier.wait().is_err() || failed.load(Ordering::Acquire) {
                    return None;
                }

                // ---- Route own destination-word range. ----
                for (w, slot) in inb
                    .iter()
                    .enumerate()
                    .take(word_bounds[seat + 1])
                    .skip(word_bounds[seat])
                {
                    slot.store(layout.gather_atomic(&out, w), Ordering::Relaxed);
                }
                stats.barrier_waits += 1;
                if barrier.wait().is_err() {
                    return None;
                }

                // ---- Receive own chunk, compact own frontier. ----
                let mut write = 0usize;
                for read in 0..frontier.len() {
                    let vu = frontier[read];
                    let v = vu as usize;
                    let base = layout.offsets[v] as usize;
                    let d = (layout.offsets[v + 1] - layout.offsets[v]) as usize;
                    for (i, slot) in scratch[..d].iter_mut().enumerate() {
                        let lane = base + i;
                        let code = (inb[layout.word_of(lane)].load(Ordering::Relaxed)
                            >> layout.bit_of(lane))
                            & layout.lane_mask;
                        *slot = A::Message::decode(code, delta);
                    }
                    let state = states[v - lo].as_mut().expect("frontier nodes run");
                    match state.receive(rounds, &scratch[..d]) {
                        Some(outv) => {
                            outputs[v - lo] = Some(outv);
                            halted_at[v - lo] = rounds + 1;
                            states[v - lo] = None;
                            for lane in base..base + d {
                                let w = layout.word_of(lane);
                                let bit = layout.bit_of(lane);
                                let old = out[w].load(Ordering::Relaxed);
                                out[w].store(old & !(layout.lane_mask << bit), Ordering::Relaxed);
                            }
                        }
                        None => {
                            frontier[write] = vu;
                            write += 1;
                        }
                    }
                }
                frontier.truncate(write);
                chunk_running[seat].store(frontier.len(), Ordering::Relaxed);
                stats.barrier_waits += 1;
                if barrier.wait().is_err() {
                    return None;
                }
                total_running = chunk_running
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .sum();
                rounds += 1;
                if seat == 0 {
                    stats.rounds = rounds as u64;
                    stats.messages = messages;
                }
            }
        };

        let results: Vec<Option<ChunkOut<A::Output>>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers - 1);
            let mut iter = chunk_states.into_iter();
            let first = iter.next().expect("at least two chunks");
            for (seat, chunk) in iter.enumerate() {
                let worker_loop = &worker_loop;
                handles.push(scope.spawn(move || worker_loop(seat + 1, chunk)));
            }
            let mut results = vec![worker_loop(0, first)];
            for h in handles {
                results.push(h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
            }
            results
        });

        if failed.load(Ordering::Acquire) || results.iter().any(Option::is_none) {
            return Err(error
                .lock()
                .expect("packed error slot")
                .take()
                .expect("failure recorded an error"));
        }

        let mut outputs: Vec<Option<A::Output>> = (0..n).map(|_| None).collect();
        let mut halted_at = vec![0usize; n];
        let mut messages = 0usize;
        for chunk in results.into_iter().flatten() {
            messages += chunk.messages as usize;
            for (off, (out_v, halt)) in chunk.outputs.into_iter().zip(chunk.halted_at).enumerate() {
                let old = layout.perm[chunk.lo + off] as usize;
                outputs[old] = out_v;
                halted_at[old] = halt;
            }
        }
        Ok(Run {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("all nodes halted"))
                .collect(),
            rounds: halted_at.iter().copied().max().unwrap_or(0),
            halted_at,
            messages,
            trace: None,
        })
    }
}

// ---------------------------------------------------------------------
// Native word kernels: whole-word SWAR execution for regular graphs.
// ---------------------------------------------------------------------

/// A program advanced entirely in packed word arithmetic: per-node state
/// is one nonzero `b`-bit **token**, broadcast on every port each round
/// and folded with a lane-local combine; every node halts at a fixed
/// horizon. This is the tier that moves 8–64 node-ports per operation
/// (see the module docs) — gossip/flooding-style aggregations such as
/// the OR-reachability benchmark kernel.
///
/// # Contract
///
/// * [`WordKernel::lane_bits`] is a power of two `<= 64`; tokens and all
///   [`WordKernel::combine`] results fit in `b` bits and stay **nonzero**
///   (`0` still means *no message* in the arenas).
/// * `combine` is applied to whole 64-bit words and must be
///   **lane-local** (bit lane `i` of the result depends only on bit lane
///   `i` of the operands — bitwise ops like OR/AND qualify),
///   **associative** and **commutative** (the word path folds port
///   windows as a shift tree, the scalar twin folds them left to right),
///   with `combine(0, 0) == 0` (tail lanes must stay empty).
/// * [`WordKernel::horizon`] is the fixed halting round, `>= 1`.
pub trait WordKernel {
    /// Token width in bits: a power of two, at most 64.
    fn lane_bits(&self) -> u32;
    /// Number of rounds every node runs before halting (`>= 1`).
    fn horizon(&self) -> usize;
    /// The initial (nonzero) token of node `v`.
    fn init(&self, v: usize) -> u64;
    /// Lane-local associative commutative fold of two token words.
    fn combine(&self, acc: u64, incoming: u64) -> u64;
}

#[inline]
fn ones_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Replicates the `period`-bit value `v` across all 64 bits
/// (`period` must divide 64, `v < 2^period`).
#[inline]
fn repeat_mask(v: u64, period: u32) -> u64 {
    if period == 64 {
        v
    } else {
        v.wrapping_mul(u64::MAX / ((1u64 << period) - 1))
    }
}

/// Folds every `w_bits`-wide window of `x` (holding `w_bits / b` lanes)
/// into the window's low `b` bits via a shift tree of `combine`s; all
/// other bits are cleared. Requires `b | w_bits | 64`, powers of two.
#[cfg(test)]
fn fold_windows<K: WordKernel + ?Sized>(kernel: &K, mut x: u64, w_bits: u32, b: u32) -> u64 {
    let mut s = b;
    while s < w_bits {
        x = kernel.combine(x, x >> s);
        s <<= 1;
    }
    x & repeat_mask(ones_mask(b), w_bits)
}

/// Gathers the low `b` bits of each `w_bits`-wide window into
/// consecutive `b`-bit lanes at the bottom of the word: the output's low
/// `(64 / w_bits) * b` bits are the window values in order, the rest
/// zero. Precondition: every window holds only its low `b` bits.
#[cfg(test)]
fn compact_windows(mut x: u64, w_bits: u32, b: u32) -> u64 {
    let mut valid = b;
    let mut stride = w_bits;
    while stride < 64 {
        x |= x >> (stride - valid);
        stride <<= 1;
        valid <<= 1;
        x &= repeat_mask(ones_mask(valid), stride);
    }
    x
}

/// The inverse of [`compact_windows`]: spreads the low
/// `(64 / w_bits) * b` bits of `x` (consecutive `b`-bit lanes) into the
/// low `b` bits of consecutive `w_bits`-wide windows.
#[cfg(test)]
fn spread_windows(mut x: u64, w_bits: u32, b: u32) -> u64 {
    // Replay the compaction ladder in reverse: the step that merged
    // `stride`-blocks (low `valid` bits live) into `2*stride`-blocks is
    // undone by splitting each `2*stride`-block back into halves.
    let steps = (64 / w_bits).trailing_zeros();
    for i in (0..steps).rev() {
        let stride = w_bits << i;
        let valid = b << i;
        let low = x & repeat_mask(ones_mask(valid), stride << 1);
        let high = x & repeat_mask(ones_mask(valid) << valid, stride << 1);
        x = low | (high << (stride - valid));
    }
    x & repeat_mask(ones_mask(b), w_bits)
}

impl<'g> Simulator<'g> {
    /// Runs a [`WordKernel`] on a **regular** graph through the native
    /// packed engine: `horizon` rounds of broadcast-and-fold executed as
    /// word operations (SWAR spread/fold ladders when the window width
    /// `d * b` is a power of two, a per-lane loop otherwise), returning
    /// a [`Run`] with the final token of each node as its output. The
    /// scalar twin on the generic engine is [`kernel_reference_run`];
    /// the two are bit-identical by the [`WordKernel`] contract.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::RoundLimitExceeded`] when the horizon exceeds
    ///   [`RunOptions::max_rounds`](crate::RunOptions::max_rounds);
    /// * [`RuntimeError::Cancelled`] if a cancel token fires.
    ///
    /// # Panics
    ///
    /// Panics when the graph is not regular, when the kernel violates
    /// its width contract (`b` not a power of two, `d * b > 64`), or
    /// when `horizon() == 0`.
    pub fn run_packed_kernel<K: WordKernel + ?Sized>(
        &self,
        kernel: &K,
    ) -> Result<Run<u64>, RuntimeError> {
        let g = self.graph();
        let n = g.node_count();
        if n == 0 {
            return Ok(Run {
                outputs: Vec::new(),
                halted_at: Vec::new(),
                rounds: 0,
                messages: 0,
                trace: None,
            });
        }
        let d = g
            .regular_degree()
            .expect("run_packed_kernel requires a regular graph");
        let b = kernel.lane_bits();
        assert!(
            b.is_power_of_two() && b <= 64,
            "WordKernel lane width must be a power of two <= 64"
        );
        let horizon = kernel.horizon();
        assert!(horizon >= 1, "WordKernel horizon must be at least 1");
        let w_bits = u32::try_from(d).ok().and_then(|d| d.checked_mul(b));
        let w_bits = w_bits
            .filter(|&w| w <= 64)
            .expect("WordKernel window (degree * lane bits) must fit one machine word");

        let mut stats = RunFlush::new(true);
        let max_rounds = self.options().max_rounds;
        let port_count = g.port_count();
        let layout = PackedLayout::new(g, b, false);
        let mut out_words = vec![0u64; layout.words];
        let mut in_words = vec![0u64; layout.words];
        let lane_mask = layout.lane_mask;

        let check_round = |r: usize, stats: &mut RunFlush| -> Result<(), RuntimeError> {
            if r >= max_rounds {
                return Err(RuntimeError::RoundLimitExceeded {
                    limit: max_rounds,
                    still_running: n,
                });
            }
            if let Some(cancel) = self.cancel() {
                if cancel.check() {
                    return Err(RuntimeError::Cancelled {
                        after_rounds: r,
                        still_running: n,
                    });
                }
            }
            stats.frontier.observe(n as u64);
            Ok(())
        };

        let outputs: Vec<u64> = if d > 0 && w_bits.is_power_of_two() {
            // SWAR path: `w_bits | 64`, so node windows never straddle
            // words and each out word holds `64 / w_bits` whole windows.
            // The shift/mask ladders of the spread/fold/compact steps
            // depend only on `(w_bits, b)`, so they are materialised
            // once here — `repeat_mask` hides a 64-bit hardware division
            // that must not run per word per round.
            let tpw = (64 / b) as usize; // tokens per token word
            let sub_bits = (64 / d) as u32; // token bits feeding one out word
            let sub_mask = ones_mask(sub_bits);
            let mut mult = 0u64; // broadcast multiplier: token -> window
            for j in 0..d as u32 {
                mult |= 1u64 << (j * b);
            }
            // Spread ladder: replay of the compaction ladder in reverse,
            // as (low_mask, high_mask, shift) triples, final mask last.
            let spread_steps: Vec<(u64, u64, u32)> = (0..(64 / w_bits).trailing_zeros())
                .rev()
                .map(|i| {
                    let stride = w_bits << i;
                    let valid = b << i;
                    let low = repeat_mask(ones_mask(valid), stride << 1);
                    let high = repeat_mask(ones_mask(valid) << valid, stride << 1);
                    (low, high, stride - valid)
                })
                .collect();
            let window_mask = repeat_mask(ones_mask(b), w_bits);
            // Fold ladder: combine shifts b, 2b, ... below w_bits.
            let fold_steps: Vec<u32> = std::iter::successors(Some(b), |s| Some(s << 1))
                .take_while(|&s| s < w_bits)
                .collect();
            // Compact ladder: (shift, mask) pairs doubling the stride.
            let compact_steps: Vec<(u32, u64)> =
                std::iter::successors(Some((w_bits, b)), |&(stride, valid)| {
                    Some((stride << 1, valid << 1))
                })
                .take_while(|&(stride, _)| stride < 64)
                .map(|(stride, valid)| {
                    (
                        stride - valid,
                        repeat_mask(ones_mask(valid << 1), stride << 1),
                    )
                })
                .collect();
            let spread = |mut x: u64| {
                for &(low, high, shift) in &spread_steps {
                    x = (x & low) | ((x & high) << shift);
                }
                x & window_mask
            };
            let mut tokens = vec![0u64; n.div_ceil(tpw)];
            for v in 0..n {
                let t = kernel.init(v);
                debug_assert!(t != 0 && t <= lane_mask, "init token out of range");
                tokens[v / tpw] |= t << ((v % tpw) as u32 * b);
            }
            for r in 0..horizon {
                check_round(r, &mut stats)?;
                for (tw, &token) in tokens.iter().enumerate() {
                    for k in 0..d {
                        let w = tw * d + k;
                        if w >= layout.words {
                            break;
                        }
                        let sub = (token >> (k as u32 * sub_bits)) & sub_mask;
                        out_words[w] = spread(sub).wrapping_mul(mult);
                    }
                }
                for (w, word) in in_words.iter_mut().enumerate() {
                    *word = layout.gather(&out_words, w);
                }
                for (tw, token) in tokens.iter_mut().enumerate() {
                    let mut packed = 0u64;
                    for k in 0..d {
                        let w = tw * d + k;
                        if w >= layout.words {
                            break;
                        }
                        let mut x = in_words[w];
                        for &s in &fold_steps {
                            x = kernel.combine(x, x >> s);
                        }
                        x &= window_mask;
                        for &(shift, mask) in &compact_steps {
                            x |= x >> shift;
                            x &= mask;
                        }
                        packed |= x << (k as u32 * sub_bits);
                    }
                    *token = kernel.combine(*token, packed);
                }
                stats.rounds = (r + 1) as u64;
                stats.messages = ((r + 1) * port_count) as u64;
            }
            (0..n)
                .map(|v| (tokens[v / tpw] >> ((v % tpw) as u32 * b)) & lane_mask)
                .collect()
        } else {
            // Per-lane path: windows may straddle words (non-power-of-two
            // window widths, e.g. cubic graphs) but individual lanes
            // never do, so tokens move one lane at a time.
            let mut tokens: Vec<u64> = (0..n)
                .map(|v| {
                    let t = kernel.init(v);
                    debug_assert!(t != 0 && t <= lane_mask, "init token out of range");
                    t
                })
                .collect();
            for r in 0..horizon {
                check_round(r, &mut stats)?;
                for (v, &t) in tokens.iter().enumerate() {
                    for lane in layout.offsets[v] as usize..layout.offsets[v + 1] as usize {
                        let w = layout.word_of(lane);
                        let bit = layout.bit_of(lane);
                        out_words[w] = (out_words[w] & !(lane_mask << bit)) | (t << bit);
                    }
                }
                for (w, word) in in_words.iter_mut().enumerate() {
                    *word = layout.gather(&out_words, w);
                }
                for (v, token) in tokens.iter_mut().enumerate() {
                    let mut acc = *token;
                    for lane in layout.offsets[v] as usize..layout.offsets[v + 1] as usize {
                        let code =
                            (in_words[layout.word_of(lane)] >> layout.bit_of(lane)) & lane_mask;
                        acc = kernel.combine(acc, code);
                    }
                    *token = acc;
                }
                stats.rounds = (r + 1) as u64;
                stats.messages = ((r + 1) * port_count) as u64;
            }
            tokens
        };

        Ok(Run {
            outputs,
            halted_at: vec![horizon; n],
            rounds: horizon,
            messages: horizon * port_count,
            trace: None,
        })
    }
}

/// The scalar twin of a [`WordKernel`]: a [`NodeAlgorithm`] holding one
/// token, broadcasting it on every port and folding incoming codes left
/// to right — the generic engine runs it as the conformance oracle for
/// [`Simulator::run_packed_kernel`] (see [`kernel_reference_run`]).
pub struct KernelNode<'k, K: WordKernel + ?Sized> {
    kernel: &'k K,
    token: u64,
    remaining: usize,
    degree: usize,
}

impl<'k, K: WordKernel + ?Sized> NodeAlgorithm for KernelNode<'k, K> {
    type Message = u64;
    type Output = u64;

    fn send(&mut self, _round: usize) -> Vec<u64> {
        vec![self.token; self.degree]
    }

    fn receive(&mut self, _round: usize, inbox: &[Option<u64>]) -> Option<u64> {
        for m in inbox.iter().flatten() {
            self.token = self.kernel.combine(self.token, *m);
        }
        self.remaining -= 1;
        (self.remaining == 0).then_some(self.token)
    }
}

/// Runs `kernel`'s scalar twin ([`KernelNode`]) through the generic
/// engine of `sim` — the reference a [`Simulator::run_packed_kernel`]
/// result must be bit-identical to (outputs, `halted_at`, rounds and
/// message totals alike).
///
/// # Errors
///
/// Same as [`Simulator::run`].
pub fn kernel_reference_run<K: WordKernel + ?Sized>(
    sim: &Simulator<'_>,
    kernel: &K,
) -> Result<Run<u64>, RuntimeError> {
    let g = sim.graph();
    let inputs: Vec<u64> = (0..g.node_count()).map(|v| kernel.init(v)).collect();
    sim.run_with_inputs(&inputs, |degree, &token| KernelNode {
        kernel,
        token,
        remaining: kernel.horizon(),
        degree,
    })
}

/// The benchmark kernel: 4-bit OR-gossip. Tokens are nonzero nibbles
/// seeded from the node index; each round every node ORs in its
/// neighbours' tokens — after `horizon` rounds a node's output is the
/// OR of all tokens within distance `horizon`.
#[derive(Clone, Copy, Debug)]
pub struct OrGossipKernel {
    /// Fixed halting round.
    pub rounds: usize,
}

impl WordKernel for OrGossipKernel {
    fn lane_bits(&self) -> u32 {
        4
    }

    fn horizon(&self) -> usize {
        self.rounds
    }

    fn init(&self, v: usize) -> u64 {
        (v as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) % 15 + 1
    }

    fn combine(&self, acc: u64, incoming: u64) -> u64 {
        acc | incoming
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pn_graph::{generators, ports};

    #[test]
    fn lane_width_rounds_to_power_of_two() {
        assert_eq!(lane_width_for(1), Some(1));
        assert_eq!(lane_width_for(2), Some(2));
        assert_eq!(lane_width_for(3), Some(2));
        assert_eq!(lane_width_for(4), Some(4));
        assert_eq!(lane_width_for(15), Some(4));
        assert_eq!(lane_width_for(16), Some(8));
        assert_eq!(lane_width_for(255), Some(8));
        assert_eq!(lane_width_for(256), Some(16));
        assert_eq!(lane_width_for(u64::MAX), Some(64));
    }

    #[test]
    fn bool_codec_round_trips() {
        for m in [false, true] {
            let code = m.encode(7);
            assert_ne!(code, 0);
            assert_eq!(<bool as PackedMessage>::decode(code, 7), Some(m));
        }
        assert_eq!(<bool as PackedMessage>::decode(0, 7), None);
    }

    #[test]
    fn repeat_mask_replicates_periods() {
        assert_eq!(repeat_mask(0xF, 8), 0x0F0F_0F0F_0F0F_0F0F);
        assert_eq!(repeat_mask(1, 4), 0x1111_1111_1111_1111);
        assert_eq!(repeat_mask(0xAB, 64), 0xAB);
    }

    #[test]
    fn spread_is_inverse_of_compact() {
        struct Or;
        impl WordKernel for Or {
            fn lane_bits(&self) -> u32 {
                4
            }
            fn horizon(&self) -> usize {
                1
            }
            fn init(&self, _v: usize) -> u64 {
                1
            }
            fn combine(&self, a: u64, b: u64) -> u64 {
                a | b
            }
        }
        let mut x = 0x1234_5678_9abc_def0u64;
        for (w_bits, b) in [(8u32, 4u32), (16, 4), (16, 8), (32, 4), (64, 4), (8, 8)] {
            let tokens_bits = 64 / w_bits * b;
            x = x.rotate_left(11);
            let low = x & ones_mask(tokens_bits);
            let spread = spread_windows(low, w_bits, b);
            // Every window holds only its low b bits.
            assert_eq!(spread & !repeat_mask(ones_mask(b), w_bits), 0);
            assert_eq!(compact_windows(spread, w_bits, b), low, "w={w_bits} b={b}");
            // Folding a spread word (one lane live per window) is the
            // identity on the window values.
            assert_eq!(fold_windows(&Or, spread, w_bits, b), spread);
        }
    }

    #[test]
    fn fold_ors_all_lanes_of_each_window() {
        struct Or;
        impl WordKernel for Or {
            fn lane_bits(&self) -> u32 {
                4
            }
            fn horizon(&self) -> usize {
                1
            }
            fn init(&self, _v: usize) -> u64 {
                1
            }
            fn combine(&self, a: u64, b: u64) -> u64 {
                a | b
            }
        }
        // Two 8-bit windows per 16 bits: lanes {1,2} fold to 3, {4,8} to C.
        let x = 0x2184_2184_2184_2184u64; // windows: 21, 84 repeated
        let folded = fold_windows(&Or, x, 8, 4);
        assert_eq!(folded, 0x030C_030C_030C_030C & repeat_mask(0xF, 8));
    }

    #[test]
    fn packed_bridge_matches_generic_on_small_graphs() {
        struct Parity {
            degree: usize,
            flag: bool,
            left: usize,
        }
        impl NodeAlgorithm for Parity {
            type Message = bool;
            type Output = bool;
            fn send(&mut self, _r: usize) -> Vec<bool> {
                vec![self.flag; self.degree]
            }
            fn receive(&mut self, _r: usize, inbox: &[Option<bool>]) -> Option<bool> {
                for m in inbox.iter().flatten() {
                    self.flag ^= m;
                }
                self.left -= 1;
                (self.left == 0).then_some(self.flag)
            }
        }
        for g in [
            ports::canonical_ports(&generators::cycle(17).unwrap()).unwrap(),
            ports::shuffled_ports(&generators::petersen(), 5).unwrap(),
            ports::canonical_ports(&generators::path(9).unwrap()).unwrap(),
        ] {
            let sim = Simulator::new(&g);
            let factory = |d: usize| Parity {
                degree: d,
                flag: d % 2 == 1,
                left: 1 + d % 3,
            };
            let generic = sim.run(factory).unwrap();
            let packed = sim.run_packed(factory).unwrap();
            assert!(sim.packed_eligible::<bool>());
            assert_eq!(generic.outputs, packed.outputs);
            assert_eq!(generic.halted_at, packed.halted_at);
            assert_eq!(generic.rounds, packed.rounds);
            assert_eq!(generic.messages, packed.messages);
        }
    }

    #[test]
    fn kernel_matches_scalar_twin_on_both_paths() {
        // d = 2 (SWAR, window 8) and d = 3 (per-lane, window 12).
        let kernel = OrGossipKernel { rounds: 5 };
        for g in [
            ports::canonical_ports(&generators::cycle(67).unwrap()).unwrap(),
            ports::shuffled_ports(&generators::petersen(), 3).unwrap(),
        ] {
            let sim = Simulator::new(&g);
            let fast = sim.run_packed_kernel(&kernel).unwrap();
            let slow = kernel_reference_run(&sim, &kernel).unwrap();
            assert_eq!(fast.outputs, slow.outputs);
            assert_eq!(fast.halted_at, slow.halted_at);
            assert_eq!(fast.rounds, slow.rounds);
            assert_eq!(fast.messages, slow.messages);
        }
    }

    #[test]
    fn kernel_respects_round_limit_and_cancellation() {
        let g = ports::canonical_ports(&generators::cycle(8).unwrap()).unwrap();
        let kernel = OrGossipKernel { rounds: 10 };
        let sim = Simulator::with_options(
            &g,
            crate::RunOptions {
                max_rounds: 3,
                ..Default::default()
            },
        );
        let err = sim.run_packed_kernel(&kernel).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::RoundLimitExceeded {
                limit: 3,
                still_running: 8
            }
        ));
        let token = crate::CancelToken::new();
        token.cancel();
        let sim = Simulator::new(&g).cancel_token(token);
        let err = sim.run_packed_kernel(&kernel).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::Cancelled {
                after_rounds: 0,
                ..
            }
        ));
    }
}

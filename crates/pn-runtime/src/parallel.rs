//! Multi-threaded execution of the synchronous simulator.
//!
//! Each synchronous round is three embarrassingly parallel maps — send
//! (per node), route (per receiving port, a gather through the
//! involution), receive (per node) — with a barrier between them, so the
//! execution parallelises without changing semantics:
//! [`Simulator::run_parallel`] produces **bit-identical** results to
//! [`Simulator::run`] (a property the tests assert, not just promise).
//!
//! Tracing is not supported in parallel mode; use the sequential driver
//! when a transcript is needed.

use pn_graph::NodeId;

use crate::algorithm::{AlgorithmFactory, NodeAlgorithm};
use crate::simulator::{Run, Simulator};
use crate::RuntimeError;

impl<'g> Simulator<'g> {
    /// Runs the algorithm on `threads` OS threads (clamped to at least
    /// 1). Results are identical to [`Simulator::run`]; wall-clock time
    /// shrinks for large graphs.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    pub fn run_parallel<F>(
        &self,
        factory: F,
        threads: usize,
    ) -> Result<Run<<F::Algorithm as NodeAlgorithm>::Output>, RuntimeError>
    where
        F: AlgorithmFactory,
        F::Algorithm: Send,
        <F::Algorithm as NodeAlgorithm>::Message: Send + Sync,
        <F::Algorithm as NodeAlgorithm>::Output: Send,
    {
        let g = self.graph();
        let n = g.node_count();
        let threads = threads.clamp(1, n.max(1));

        type Msg<F> = <<F as AlgorithmFactory>::Algorithm as NodeAlgorithm>::Message;
        type Out<F> = <<F as AlgorithmFactory>::Algorithm as NodeAlgorithm>::Output;

        let mut states: Vec<Option<F::Algorithm>> = g
            .nodes()
            .map(|v| Some(factory.create(g.degree(v))))
            .collect();
        let mut outputs: Vec<Option<Out<F>>> = (0..n).map(|_| None).collect();
        let mut halted_at = vec![0usize; n];
        let mut running = n;
        let mut messages = 0usize;
        let mut rounds = 0usize;

        // Slot offsets per node; node chunk boundaries with their slot
        // boundaries.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        for v in g.nodes() {
            offsets.push(acc);
            acc += g.degree(v);
        }
        offsets.push(acc);
        let total_ports = acc;
        let chunk = n.div_ceil(threads);
        let node_bounds: Vec<(usize, usize)> = (0..threads)
            .map(|t| ((t * chunk).min(n), ((t + 1) * chunk).min(n)))
            .collect();

        let mut outbox: Vec<Option<Msg<F>>> = (0..total_ports).map(|_| None).collect();
        let mut inbox: Vec<Option<Msg<F>>> = (0..total_ports).map(|_| None).collect();

        while running > 0 {
            if rounds >= self.options().max_rounds {
                return Err(RuntimeError::RoundLimitExceeded {
                    limit: self.options().max_rounds,
                    still_running: running,
                });
            }

            // ---- Send phase: parallel over node chunks. ----
            let send_results: Vec<Result<(), RuntimeError>> = {
                let mut state_slices: Vec<&mut [Option<F::Algorithm>]> = Vec::new();
                let mut out_slices: Vec<&mut [Option<Msg<F>>]> = Vec::new();
                let mut s_rest = states.as_mut_slice();
                let mut o_rest = outbox.as_mut_slice();
                let mut consumed_nodes = 0usize;
                let mut consumed_slots = 0usize;
                for &(lo, hi) in &node_bounds {
                    let (s_chunk, s_next) = s_rest.split_at_mut(hi - consumed_nodes);
                    let slot_hi = offsets[hi];
                    let (o_chunk, o_next) = o_rest.split_at_mut(slot_hi - consumed_slots);
                    state_slices.push(s_chunk);
                    out_slices.push(o_chunk);
                    s_rest = s_next;
                    o_rest = o_next;
                    consumed_nodes = hi;
                    consumed_slots = slot_hi;
                    let _ = lo;
                }
                std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for (((lo, hi), s_chunk), o_chunk) in node_bounds
                        .iter()
                        .copied()
                        .zip(state_slices)
                        .zip(out_slices)
                    {
                        let offsets = &offsets;
                        handles.push(scope.spawn(move || {
                            for slot in o_chunk.iter_mut() {
                                *slot = None;
                            }
                            let base = offsets[lo];
                            for (idx, state) in s_chunk.iter_mut().enumerate() {
                                let v = lo + idx;
                                if let Some(state) = state.as_mut() {
                                    let out = state.send(rounds);
                                    let d = offsets[v + 1] - offsets[v];
                                    if out.len() != d {
                                        return Err(RuntimeError::WrongMessageCount {
                                            node: NodeId::new(v),
                                            got: out.len(),
                                            expected: d,
                                        });
                                    }
                                    for (i, m) in out.into_iter().enumerate() {
                                        o_chunk[offsets[v] + i - base] = Some(m);
                                    }
                                }
                            }
                            let _ = hi;
                            Ok(())
                        }));
                    }
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("send thread panicked"))
                        .collect()
                })
            };
            for r in send_results {
                r?;
            }

            // ---- Route phase: gather, parallel over receiver chunks. ----
            let delivered: usize = {
                let mut in_slices: Vec<&mut [Option<Msg<F>>]> = Vec::new();
                let mut i_rest = inbox.as_mut_slice();
                let mut consumed_slots = 0usize;
                for &(_, hi) in &node_bounds {
                    let slot_hi = offsets[hi];
                    let (chunk_slice, next) = i_rest.split_at_mut(slot_hi - consumed_slots);
                    in_slices.push(chunk_slice);
                    i_rest = next;
                    consumed_slots = slot_hi;
                }
                let outbox_ref = &outbox;
                std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for ((lo, hi), i_chunk) in node_bounds.iter().copied().zip(in_slices) {
                        let offsets = &offsets;
                        handles.push(scope.spawn(move || {
                            let mut count = 0usize;
                            let base = offsets[lo];
                            for v in lo..hi {
                                for i in 0..(offsets[v + 1] - offsets[v]) {
                                    let here = pn_graph::Endpoint::new(
                                        NodeId::new(v),
                                        pn_graph::Port::from_index(i),
                                    );
                                    let from = self.graph().connection(here);
                                    let from_slot =
                                        offsets[from.node.index()] + from.port.index();
                                    let m = outbox_ref[from_slot].clone();
                                    if m.is_some() {
                                        count += 1;
                                    }
                                    i_chunk[offsets[v] + i - base] = m;
                                }
                            }
                            count
                        }));
                    }
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("route thread panicked"))
                        .sum()
                })
            };
            messages += delivered;

            // ---- Receive phase: parallel over node chunks. ----
            let halts: Vec<Vec<(usize, Out<F>)>> = {
                let mut state_slices: Vec<&mut [Option<F::Algorithm>]> = Vec::new();
                let mut s_rest = states.as_mut_slice();
                let mut consumed_nodes = 0usize;
                for &(_, hi) in &node_bounds {
                    let (chunk_slice, next) = s_rest.split_at_mut(hi - consumed_nodes);
                    state_slices.push(chunk_slice);
                    s_rest = next;
                    consumed_nodes = hi;
                }
                let inbox_ref = &inbox;
                std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for ((lo, hi), s_chunk) in node_bounds.iter().copied().zip(state_slices) {
                        let offsets = &offsets;
                        handles.push(scope.spawn(move || {
                            let mut halts = Vec::new();
                            for (idx, state_slot) in s_chunk.iter_mut().enumerate() {
                                let v = lo + idx;
                                if let Some(state) = state_slot.as_mut() {
                                    let window = &inbox_ref[offsets[v]..offsets[v + 1]];
                                    if let Some(out) = state.receive(rounds, window) {
                                        halts.push((v, out));
                                        *state_slot = None;
                                    }
                                }
                            }
                            let _ = hi;
                            halts
                        }));
                    }
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("receive thread panicked"))
                        .collect()
                })
            };
            for (v, out) in halts.into_iter().flatten() {
                outputs[v] = Some(out);
                halted_at[v] = rounds + 1;
                running -= 1;
            }
            rounds += 1;
        }

        Ok(Run {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("all nodes halted"))
                .collect(),
            rounds: halted_at.iter().copied().max().unwrap_or(0),
            halted_at,
            messages,
            trace: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{NodeAlgorithm, Simulator};
    use pn_graph::{generators, ports};

    #[derive(Clone)]
    struct Gossip {
        degree: usize,
        acc: u64,
        left: usize,
    }

    impl NodeAlgorithm for Gossip {
        type Message = u64;
        type Output = u64;
        fn send(&mut self, _r: usize) -> Vec<u64> {
            (0..self.degree)
                .map(|q| self.acc.wrapping_add(q as u64))
                .collect()
        }
        fn receive(&mut self, _r: usize, inbox: &[Option<u64>]) -> Option<u64> {
            for m in inbox.iter().flatten() {
                self.acc = self.acc.rotate_left(5).wrapping_add(*m);
            }
            self.left -= 1;
            (self.left == 0).then_some(self.acc)
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        for (n, d, seed) in [(20usize, 4usize, 1u64), (37, 6, 2), (64, 3, 3)] {
            let n = if (n * d) % 2 == 1 { n + 1 } else { n };
            let g = generators::random_regular(n, d, seed).unwrap();
            let pg = ports::shuffled_ports(&g, seed).unwrap();
            let factory = |deg: usize| Gossip {
                degree: deg,
                acc: deg as u64,
                left: 9,
            };
            let seq = Simulator::new(&pg).run(factory).unwrap();
            for threads in [1usize, 2, 3, 8, 1000] {
                let par = Simulator::new(&pg).run_parallel(factory, threads).unwrap();
                assert_eq!(par.outputs, seq.outputs, "threads = {threads}");
                assert_eq!(par.rounds, seq.rounds);
                assert_eq!(par.messages, seq.messages);
                assert_eq!(par.halted_at, seq.halted_at);
            }
        }
    }

    struct PortOne {
        degree: usize,
    }

    impl NodeAlgorithm for PortOne {
        type Message = bool;
        type Output = crate::PortSet;
        fn send(&mut self, _r: usize) -> Vec<bool> {
            (1..=self.degree).map(|i| i == 1).collect()
        }
        fn receive(&mut self, _r: usize, inbox: &[Option<bool>]) -> Option<crate::PortSet> {
            let mut x = crate::PortSet::new();
            if self.degree >= 1 {
                x.insert(pn_graph::Port::new(1));
            }
            for (i, m) in inbox.iter().enumerate() {
                if m == &Some(true) {
                    x.insert(pn_graph::Port::from_index(i));
                }
            }
            Some(x)
        }
    }

    #[test]
    fn parallel_runs_real_protocols() {
        let g = ports::shuffled_ports(&generators::torus(6, 6).unwrap(), 4).unwrap();
        let seq = Simulator::new(&g)
            .run(|d: usize| PortOne { degree: d })
            .unwrap();
        let par = Simulator::new(&g)
            .run_parallel(|d: usize| PortOne { degree: d }, 4)
            .unwrap();
        assert_eq!(seq.outputs, par.outputs);
        let edges = crate::edge_set_from_outputs(&g, &par.outputs).unwrap();
        assert!(!edges.is_empty());
    }

    #[test]
    fn parallel_error_paths() {
        struct Liar {
            degree: usize,
        }
        impl NodeAlgorithm for Liar {
            type Message = ();
            type Output = ();
            fn send(&mut self, _r: usize) -> Vec<()> {
                vec![(); self.degree + 1]
            }
            fn receive(&mut self, _r: usize, _i: &[Option<()>]) -> Option<()> {
                Some(())
            }
        }
        let g = ports::canonical_ports(&generators::cycle(5).unwrap()).unwrap();
        let err = Simulator::new(&g)
            .run_parallel(|d: usize| Liar { degree: d }, 3)
            .unwrap_err();
        assert!(matches!(err, crate::RuntimeError::WrongMessageCount { .. }));
    }
}

//! Multi-threaded execution of the synchronous simulator: a **persistent
//! worker pool** with epoch-barrier phase synchronisation.
//!
//! # Execution model
//!
//! [`Simulator::run_parallel`] spawns `threads - 1` OS threads **once per
//! run** (the calling thread seats the remaining worker) and moves the
//! whole round loop inside that scope. Nodes are partitioned into one
//! contiguous chunk per worker; each worker exclusively owns its chunk's
//! algorithm states, outbox and inbox slot ranges, output/halt slots and
//! an **active-node frontier** (compacted in place as its nodes halt,
//! exactly like the sequential engine). Workers advance in lock step
//! through a shared [`PoolBarrier`] — an epoch counter plus a poisoning
//! flag — so the steady-state cost of a round is **two barrier waits**,
//! not the `3 × threads` thread spawns of the previous scoped-spawn
//! design:
//!
//! 1. **send + route (fused)** — the worker writes each frontier node's
//!    outbox window ([`NodeAlgorithm::send_into`]) and immediately
//!    gathers: every written slot is **moved** (`take()`) through the
//!    precomputed routing table. A message staying inside the chunk
//!    lands directly in the worker's own inbox range; a message crossing
//!    chunks is moved into a per-(sender, receiver) **mailbox** handed
//!    over wholesale (one lock per worker pair per round, buffers
//!    swapped so capacity is reused). No message is ever cloned, and
//!    draining the outbox restores its all-`None` invariant for free,
//!    mirroring the sequential engine. The two sub-phases need no
//!    barrier between them because no worker reads another's inbox or
//!    mailboxes until the next phase.
//! 2. *barrier* — all routed messages become visible.
//! 3. **receive** — the worker drains the mailboxes addressed to it into
//!    its inbox range, delivers each frontier node's inbox window,
//!    clears it, records halts into its chunk's output slots and
//!    compacts its frontier. It then publishes the chunk's remaining
//!    node count.
//! 4. *barrier* — every worker sums the published counts, agreeing on
//!    termination (and on [`RunOptions::max_rounds`]) without any
//!    coordinator thread.
//!
//! A chunk whose nodes have all halted is **quiescent**: its frontier is
//! empty, so its worker touches no slot in any phase and costs only the
//! two barrier waits per round. (An explicit per-chunk flag is not
//! needed — the frontier *is* the flag, and unlike a dense receiver-side
//! gather there is no per-port route range left to skip: routing is
//! sender-side and frontier-driven.)
//!
//! [`RunOptions::max_rounds`]: crate::RunOptions::max_rounds
//! [`RunOptions::record_trace`]: crate::RunOptions::record_trace
//!
//! Chunks are contiguous node ranges on purpose: for structured
//! workloads (cycles, grids, lifts) most edges stay within a chunk, so
//! the bulk of the traffic takes the direct in-chunk move and the
//! mailboxes carry only the boundary.
//!
//! `threads == 1` (or a single-node graph) bypasses the pool entirely
//! and runs the sequential engine — bit-identical by construction and
//! honouring [`RunOptions::record_trace`]. With two or more workers
//! tracing is not supported; use the sequential driver when a transcript
//! is needed.
//!
//! [`Simulator::run_parallel`] produces **bit-identical** [`Run`]s to
//! [`Simulator::run`] for every thread count — outputs, halt rounds and
//! message totals (per-worker counters merged in deterministic chunk
//! order at the end). The equivalence suite asserts this, not just
//! promises it.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use pn_graph::NodeId;

use crate::algorithm::{AlgorithmFactory, NodeAlgorithm};
use crate::metrics::RunFlush;
use crate::simulator::{Run, Simulator};
use crate::{CancelToken, RuntimeError};

/// A reusable epoch barrier for the worker pool.
///
/// Functionally `std::sync::Barrier` plus two things the pool needs:
/// a spin-then-block fast path (a simulation phase on a large chunk
/// takes far longer than a few hundred spins, so blocking is the
/// exception on balanced chunks) and **poisoning** — when a worker
/// panics inside a user algorithm, its drop guard poisons the barrier
/// and every peer unblocks with an error instead of deadlocking on a
/// rendezvous that can never complete.
pub(crate) struct PoolBarrier {
    size: usize,
    /// Spin iterations before yielding/blocking: zero on a single-CPU
    /// host, where spinning only steals the releaser's timeslice.
    spin_limit: u32,
    arrived: AtomicUsize,
    epoch: AtomicU64,
    poisoned: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

/// Returned by [`PoolBarrier::wait`] when a peer worker panicked.
pub(crate) struct BarrierPoisoned;

impl PoolBarrier {
    pub(crate) fn new(size: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        PoolBarrier {
            size,
            spin_limit: if cores > 1 { 128 } else { 0 },
            arrived: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Blocks until all `size` workers have arrived (or the barrier is
    /// poisoned). The last arriver resets the count *before* bumping the
    /// epoch, so the barrier is immediately reusable.
    pub(crate) fn wait(&self) -> Result<(), BarrierPoisoned> {
        let epoch = self.epoch.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.size {
            self.arrived.store(0, Ordering::Relaxed);
            self.epoch.fetch_add(1, Ordering::Release);
            // Serialise with sleepers' predicate check, then wake them.
            drop(self.lock.lock().expect("pool barrier lock"));
            self.cv.notify_all();
        } else {
            let mut spins = 0u32;
            loop {
                if self.epoch.load(Ordering::Acquire) != epoch
                    || self.poisoned.load(Ordering::Acquire)
                {
                    break;
                }
                spins += 1;
                if spins < self.spin_limit {
                    std::hint::spin_loop();
                } else if self.spin_limit > 0 && spins < self.spin_limit + 32 {
                    // Oversubscribed multi-core hosts: give the releaser
                    // a slot. On a single core, skip straight to the
                    // condvar — one block beats 32 scheduler round-trips.
                    std::thread::yield_now();
                } else {
                    let guard = self.lock.lock().expect("pool barrier lock");
                    let _guard = self
                        .cv
                        .wait_while(guard, |()| {
                            self.epoch.load(Ordering::Acquire) == epoch
                                && !self.poisoned.load(Ordering::Acquire)
                        })
                        .expect("pool barrier lock");
                    break;
                }
            }
        }
        if self.poisoned.load(Ordering::Acquire) {
            Err(BarrierPoisoned)
        } else {
            Ok(())
        }
    }

    /// Marks the barrier unusable and wakes every sleeper. Called from a
    /// panicking worker's drop guard.
    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        drop(self.lock.lock().expect("pool barrier lock"));
        self.cv.notify_all();
    }
}

/// Poisons the barrier if dropped during a panic, so peer workers
/// unblock instead of deadlocking; the panic itself propagates through
/// the scope join.
pub(crate) struct PoisonOnPanic<'a>(pub(crate) &'a PoolBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// One staged cross-chunk message batch: `(destination slot, message)`
/// pairs, exchanged wholesale between a sender and a receiver chunk.
type Mailbox<M> = Mutex<Vec<(u32, M)>>;

/// Everything the workers share by reference.
struct SharedCtx<'a, A: NodeAlgorithm> {
    graph: &'a pn_graph::PortNumberedGraph,
    offsets: &'a [usize],
    route: &'a [u32],
    /// Chunk slot boundaries, ascending, `workers + 1` entries; chunk
    /// `w` owns slots `slot_bounds[w]..slot_bounds[w + 1]`.
    slot_bounds: Vec<usize>,
    /// Cross-chunk message handoff: `mailboxes[sender * workers + dest]`
    /// is written (swapped in) by `sender` in the route phase and
    /// drained by `dest` in the receive phase — never both in the same
    /// phase, so every lock is uncontended in the steady state.
    mailboxes: Vec<Mailbox<A::Message>>,
    barrier: PoolBarrier,
    /// Set by a worker whose chunk produced a [`RuntimeError`]; every
    /// worker checks it after the route barrier and aborts the run.
    failed: AtomicBool,
    /// Per-chunk remaining-node counts, republished every round after
    /// the receive phase; their sum is the termination condition every
    /// worker computes identically.
    chunk_running: Vec<AtomicUsize>,
    max_rounds: usize,
    total_nodes: usize,
    /// The run's cancellation token; polled by worker 0 each round and
    /// propagated through `failed`, so every worker aborts at the same
    /// barrier.
    cancel: Option<&'a CancelToken>,
}

impl<A: NodeAlgorithm> SharedCtx<'_, A> {
    /// The chunk owning `slot` (binary search over the chunk bounds).
    #[inline]
    fn worker_of_slot(&self, slot: usize) -> usize {
        self.slot_bounds.partition_point(|&b| b <= slot) - 1
    }
}

/// One worker's private seat: the chunk slices it exclusively owns.
struct Seat<'a, A: NodeAlgorithm> {
    index: usize,
    /// First node of the chunk.
    lo: usize,
    /// First slot of the chunk.
    slot_base: usize,
    states: &'a mut [Option<A>],
    outputs: &'a mut [Option<A::Output>],
    halted_at: &'a mut [usize],
    outbox: &'a mut [Option<A::Message>],
    inbox: &'a mut [Option<A::Message>],
    frontier: Vec<u32>,
    /// Per-destination-chunk staging buffers for cross-chunk messages,
    /// swapped into the shared mailboxes once per round (capacities
    /// ping-pong between the two sides, so steady-state rounds allocate
    /// nothing).
    outbound: Vec<Vec<(u32, A::Message)>>,
}

impl<'g> Simulator<'g> {
    /// Runs the algorithm on a pool of `threads` persistent workers
    /// (clamped to at least 1 and at most the node count). Results are
    /// bit-identical to [`Simulator::run`]; wall-clock time shrinks for
    /// large graphs on multi-core hosts.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    pub fn run_parallel<F>(
        &self,
        factory: F,
        threads: usize,
    ) -> Result<Run<<F::Algorithm as NodeAlgorithm>::Output>, RuntimeError>
    where
        F: AlgorithmFactory,
        F::Algorithm: Send,
        <F::Algorithm as NodeAlgorithm>::Message: Send,
        <F::Algorithm as NodeAlgorithm>::Output: Send,
    {
        let g = self.graph();
        self.run_parallel_states(
            g.nodes().map(|v| factory.create(g.degree(v))).collect(),
            threads,
        )
    }

    /// The per-node-inputs sibling of [`Simulator::run_parallel`]: the
    /// identifier-model entry point ([`Simulator::run_with_inputs`]) on
    /// the worker pool, again bit-identical to the sequential run.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the node count.
    pub fn run_parallel_with_inputs<A, I>(
        &self,
        inputs: &[I],
        factory: impl Fn(usize, &I) -> A,
        threads: usize,
    ) -> Result<Run<A::Output>, RuntimeError>
    where
        A: NodeAlgorithm + Send,
        A::Message: Send,
        A::Output: Send,
    {
        let g = self.graph();
        assert_eq!(inputs.len(), g.node_count(), "one input per node required");
        self.run_parallel_states(
            g.nodes()
                .map(|v| factory(g.degree(v), &inputs[v.index()]))
                .collect(),
            threads,
        )
    }

    pub(crate) fn run_parallel_states<A>(
        &self,
        states: Vec<A>,
        threads: usize,
    ) -> Result<Run<A::Output>, RuntimeError>
    where
        A: NodeAlgorithm + Send,
        A::Message: Send,
        A::Output: Send,
    {
        let g = self.graph();
        let n = g.node_count();
        let workers = threads.clamp(1, n.max(1));
        if workers <= 1 {
            // Not worth a pool: the sequential engine *is* the
            // single-worker pool, without the barriers (and it honours
            // `record_trace`, making `run_parallel(_, 1)` behave exactly
            // like `run`).
            return self.run_states(states);
        }

        type Msg<A> = <A as NodeAlgorithm>::Message;
        type Out<A> = <A as NodeAlgorithm>::Output;

        let offsets = g.slot_offsets();
        let total_ports = g.port_count();
        let slot_at = |v: usize| {
            if v == n {
                total_ports
            } else {
                offsets[v]
            }
        };

        // Static node chunks, one per worker, with aligned slot chunks.
        let chunk = n.div_ceil(workers);
        let node_bounds: Vec<(usize, usize)> = (0..workers)
            .map(|t| ((t * chunk).min(n), ((t + 1) * chunk).min(n)))
            .collect();
        let slot_bounds: Vec<usize> = (0..=workers).map(|t| slot_at((t * chunk).min(n))).collect();

        let mut states: Vec<Option<A>> = states.into_iter().map(Some).collect();
        let mut outputs: Vec<Option<Out<A>>> = (0..n).map(|_| None).collect();
        let mut halted_at = vec![0usize; n];
        let mut outbox: Vec<Option<Msg<A>>> = (0..total_ports).map(|_| None).collect();
        let mut inbox: Vec<Option<Msg<A>>> = (0..total_ports).map(|_| None).collect();

        let shared = SharedCtx::<A> {
            graph: g,
            offsets,
            route: self.routing_table(),
            slot_bounds,
            mailboxes: (0..workers * workers)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            barrier: PoolBarrier::new(workers),
            failed: AtomicBool::new(false),
            chunk_running: node_bounds
                .iter()
                .map(|&(lo, hi)| AtomicUsize::new(hi - lo))
                .collect(),
            max_rounds: self.options().max_rounds,
            total_nodes: n,
            cancel: self.cancel(),
        };

        // Carve each worker's seat out of the flat buffers.
        let mut seats: Vec<Seat<A>> = Vec::with_capacity(workers);
        {
            let mut states_rest = states.as_mut_slice();
            let mut outputs_rest = outputs.as_mut_slice();
            let mut halted_rest = halted_at.as_mut_slice();
            let mut outbox_rest = outbox.as_mut_slice();
            let mut inbox_rest = inbox.as_mut_slice();
            let mut node_consumed = 0usize;
            let mut slot_consumed = 0usize;
            for (index, &(lo, hi)) in node_bounds.iter().enumerate() {
                let (seat_states, next) = states_rest.split_at_mut(hi - node_consumed);
                states_rest = next;
                let (seat_outputs, next) = outputs_rest.split_at_mut(hi - node_consumed);
                outputs_rest = next;
                let (seat_halted, next) = halted_rest.split_at_mut(hi - node_consumed);
                halted_rest = next;
                let (seat_outbox, next) = outbox_rest.split_at_mut(slot_at(hi) - slot_consumed);
                outbox_rest = next;
                let (seat_inbox, next) = inbox_rest.split_at_mut(slot_at(hi) - slot_consumed);
                inbox_rest = next;
                node_consumed = hi;
                let slot_base = slot_consumed;
                slot_consumed = slot_at(hi);
                seats.push(Seat {
                    index,
                    lo,
                    slot_base,
                    states: seat_states,
                    outputs: seat_outputs,
                    halted_at: seat_halted,
                    outbox: seat_outbox,
                    inbox: seat_inbox,
                    frontier: (lo as u32..hi as u32).collect(),
                    outbound: (0..workers).map(|_| Vec::new()).collect(),
                });
            }
        }

        let results: Vec<Result<usize, RuntimeError>> = std::thread::scope(|scope| {
            let shared = &shared;
            let mut seats = seats.into_iter();
            let seat0 = seats.next().expect("at least one worker");
            let handles: Vec<_> = seats
                .map(|seat| scope.spawn(move || run_worker(seat, shared)))
                .collect();
            let mut results = vec![run_worker(seat0, shared)];
            for h in handles {
                results.push(h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
            }
            results
        });

        // First error in chunk order: chunks hold ascending node ids, so
        // this is the same node the sequential engine would report.
        let mut messages = 0usize;
        for r in results {
            messages += r?;
        }

        Ok(Run {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("all nodes halted"))
                .collect(),
            rounds: halted_at.iter().copied().max().unwrap_or(0),
            halted_at,
            messages,
            trace: None,
        })
    }
}

/// The pool worker: runs its chunk of every round until global
/// termination, an error, or barrier poisoning. Returns the number of
/// messages this worker routed.
fn run_worker<A>(mut seat: Seat<A>, sh: &SharedCtx<A>) -> Result<usize, RuntimeError>
where
    A: NodeAlgorithm + Send,
    A::Message: Send,
    A::Output: Send,
{
    let _poison_guard = PoisonOnPanic(&sh.barrier);
    let g = sh.graph;
    let workers = sh.chunk_running.len();
    let mut rounds = 0usize;
    let mut running = sh.total_nodes;
    let mut messages = 0usize;
    let mut my_error: Option<RuntimeError> = None;
    // Per-worker telemetry aggregate, flushed on any exit path; worker 0
    // accounts for the run itself and the shared per-round series.
    let mut stats = RunFlush::new(seat.index == 0);

    while running > 0 {
        if rounds >= sh.max_rounds {
            // Every worker reaches this conclusion in the same round;
            // only the first seat materialises the error.
            if seat.index == 0 {
                my_error = Some(RuntimeError::RoundLimitExceeded {
                    limit: sh.max_rounds,
                    still_running: running,
                });
            }
            break;
        }
        if seat.index == 0 {
            stats.frontier.observe(running as u64);
            // Cancellation rides the `failed` flag: every worker aborts
            // at this round's first barrier, exactly like a local error.
            if sh.cancel.is_some_and(CancelToken::check) {
                my_error = Some(RuntimeError::Cancelled {
                    after_rounds: rounds,
                    still_running: running,
                });
                sh.failed.store(true, Ordering::Release);
            }
        }

        // ---- Send + route (fused), frontier-driven: each node's
        // freshly written window is gathered while still cache-hot.
        // Gathering before an abort is harmless — everything it touches
        // (own inbox, private staging) dies with the aborted run, and
        // the mailbox handoff below only happens on success. ----
        let mut sent_ok = true;
        let slot_base = seat.slot_base;
        let route = sh.route;
        for &vu in &seat.frontier {
            let v = vu as usize;
            let base = sh.offsets[v];
            let d = g.degree(NodeId::new(v));
            let local = base - slot_base;
            let state = seat.states[v - seat.lo]
                .as_mut()
                .expect("frontier nodes run");
            let window = &mut seat.outbox[local..local + d];
            if let Err(wrong) = state.send_into(rounds, window) {
                my_error = Some(RuntimeError::WrongMessageCount {
                    node: NodeId::new(v),
                    got: wrong.got,
                    expected: d,
                });
                sh.failed.store(true, Ordering::Release);
                sent_ok = false;
                break;
            }
            for (off, slot) in window.iter_mut().enumerate() {
                if let Some(m) = slot.take() {
                    messages += 1;
                    let dest = route[base + off] as usize;
                    // In-chunk destinations (the common case under
                    // contiguous chunking) land directly; the wrapping
                    // subtraction folds the range test into the slice
                    // lookup.
                    match seat.inbox.get_mut(dest.wrapping_sub(slot_base)) {
                        Some(target) => *target = Some(m),
                        None => {
                            seat.outbound[sh.worker_of_slot(dest)].push((dest as u32, m));
                        }
                    }
                }
            }
        }
        if sent_ok {
            // Hand the staged cross-chunk messages over wholesale: one
            // uncontended lock per destination chunk, buffers swapped so
            // both sides keep their capacity.
            for (dest_worker, staged) in seat.outbound.iter_mut().enumerate() {
                if staged.is_empty() {
                    continue;
                }
                let mut mailbox = sh.mailboxes[seat.index * workers + dest_worker]
                    .lock()
                    .expect("mailbox lock");
                std::mem::swap(&mut *mailbox, staged);
            }
        }
        if sh.barrier.wait().is_err() {
            return Ok(0); // a peer panicked; the scope join re-raises it
        }
        if sh.failed.load(Ordering::Acquire) {
            // Workers without a local error abort quietly; the caller
            // surfaces the first chunk's error.
            return match my_error {
                Some(e) => Err(e),
                None => Ok(0),
            };
        }

        // ---- Receive phase: drain mailboxes, then own chunk only. ----
        for sender in 0..workers {
            if sender == seat.index {
                continue;
            }
            let mut mailbox = sh.mailboxes[sender * workers + seat.index]
                .lock()
                .expect("mailbox lock");
            for (dest, m) in mailbox.drain(..) {
                seat.inbox[dest as usize - seat.slot_base] = Some(m);
            }
        }
        let mut write = 0usize;
        for read in 0..seat.frontier.len() {
            let vu = seat.frontier[read];
            let v = vu as usize;
            let base = sh.offsets[v];
            let d = g.degree(NodeId::new(v));
            let local = base - seat.slot_base;
            let state_slot = &mut seat.states[v - seat.lo];
            let state = state_slot.as_mut().expect("frontier nodes run");
            let window = &mut seat.inbox[local..local + d];
            let decision = state.receive(rounds, window);
            for slot in window.iter_mut() {
                *slot = None;
            }
            match decision {
                Some(out) => {
                    seat.outputs[v - seat.lo] = Some(out);
                    seat.halted_at[v - seat.lo] = rounds + 1;
                    *state_slot = None;
                }
                None => {
                    seat.frontier[write] = vu;
                    write += 1;
                }
            }
        }
        seat.frontier.truncate(write);
        sh.chunk_running[seat.index].store(seat.frontier.len(), Ordering::Release);
        if sh.barrier.wait().is_err() {
            return Ok(0);
        }
        running = sh
            .chunk_running
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .sum();
        rounds += 1;
        stats.barrier_waits += 2;
        stats.messages = messages as u64;
        if seat.index == 0 {
            stats.rounds = rounds as u64;
        }
    }

    match my_error {
        Some(e) => Err(e),
        None => Ok(messages),
    }
}

#[cfg(test)]
mod tests {
    use super::PoolBarrier;
    use crate::{NodeAlgorithm, Simulator};
    use pn_graph::{generators, ports};

    #[derive(Clone)]
    struct Gossip {
        degree: usize,
        acc: u64,
        left: usize,
    }

    impl NodeAlgorithm for Gossip {
        type Message = u64;
        type Output = u64;
        fn send(&mut self, _r: usize) -> Vec<u64> {
            (0..self.degree)
                .map(|q| self.acc.wrapping_add(q as u64))
                .collect()
        }
        fn receive(&mut self, _r: usize, inbox: &[Option<u64>]) -> Option<u64> {
            for m in inbox.iter().flatten() {
                self.acc = self.acc.rotate_left(5).wrapping_add(*m);
            }
            self.left -= 1;
            (self.left == 0).then_some(self.acc)
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        for (n, d, seed) in [(20usize, 4usize, 1u64), (37, 6, 2), (64, 3, 3)] {
            let n = if (n * d) % 2 == 1 { n + 1 } else { n };
            let g = generators::random_regular(n, d, seed).unwrap();
            let pg = ports::shuffled_ports(&g, seed).unwrap();
            let factory = |deg: usize| Gossip {
                degree: deg,
                acc: deg as u64,
                left: 9,
            };
            let seq = Simulator::new(&pg).run(factory).unwrap();
            for threads in [1usize, 2, 3, 8, 1000] {
                let par = Simulator::new(&pg).run_parallel(factory, threads).unwrap();
                assert_eq!(par.outputs, seq.outputs, "threads = {threads}");
                assert_eq!(par.rounds, seq.rounds);
                assert_eq!(par.messages, seq.messages);
                assert_eq!(par.halted_at, seq.halted_at);
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_with_staggered_halts() {
        // Nodes halt after `degree + 1` rounds, so low-degree nodes fall
        // silent while high-degree neighbours keep running — the case
        // where frontier compaction and the drained-outbox invariant
        // must agree between the sequential and pool drivers.
        #[derive(Clone)]
        struct Staggered {
            degree: usize,
            seen: u64,
            round_count: usize,
        }
        impl NodeAlgorithm for Staggered {
            type Message = u64;
            type Output = u64;
            fn send(&mut self, r: usize) -> Vec<u64> {
                vec![self.seen.wrapping_add(r as u64); self.degree]
            }
            fn receive(&mut self, _r: usize, inbox: &[Option<u64>]) -> Option<u64> {
                for (q, m) in inbox.iter().enumerate() {
                    match m {
                        Some(x) => self.seen = self.seen.rotate_left(7) ^ x,
                        None => self.seen = self.seen.wrapping_mul(31).wrapping_add(q as u64),
                    }
                }
                self.round_count += 1;
                (self.round_count > self.degree).then_some(self.seen)
            }
        }
        let g = generators::gnp(40, 0.12, 5).unwrap();
        let pg = ports::shuffled_ports(&g, 6).unwrap();
        let factory = |d: usize| Staggered {
            degree: d,
            seen: d as u64,
            round_count: 0,
        };
        let seq = Simulator::new(&pg).run(factory).unwrap();
        for threads in [1usize, 2, 5, 16] {
            let par = Simulator::new(&pg).run_parallel(factory, threads).unwrap();
            assert_eq!(par.outputs, seq.outputs, "threads = {threads}");
            assert_eq!(par.messages, seq.messages, "threads = {threads}");
            assert_eq!(par.halted_at, seq.halted_at, "threads = {threads}");
        }
    }

    struct PortOne {
        degree: usize,
    }

    impl NodeAlgorithm for PortOne {
        type Message = bool;
        type Output = crate::PortSet;
        fn send(&mut self, _r: usize) -> Vec<bool> {
            (1..=self.degree).map(|i| i == 1).collect()
        }
        fn receive(&mut self, _r: usize, inbox: &[Option<bool>]) -> Option<crate::PortSet> {
            let mut x = crate::PortSet::new();
            if self.degree >= 1 {
                x.insert(pn_graph::Port::new(1));
            }
            for (i, m) in inbox.iter().enumerate() {
                if m == &Some(true) {
                    x.insert(pn_graph::Port::from_index(i));
                }
            }
            Some(x)
        }
    }

    #[test]
    fn parallel_runs_real_protocols() {
        let g = ports::shuffled_ports(&generators::torus(6, 6).unwrap(), 4).unwrap();
        let seq = Simulator::new(&g)
            .run(|d: usize| PortOne { degree: d })
            .unwrap();
        let par = Simulator::new(&g)
            .run_parallel(|d: usize| PortOne { degree: d }, 4)
            .unwrap();
        assert_eq!(seq.outputs, par.outputs);
        let edges = crate::edge_set_from_outputs(&g, &par.outputs).unwrap();
        assert!(!edges.is_empty());
    }

    #[test]
    fn parallel_error_paths() {
        struct Liar {
            degree: usize,
        }
        impl NodeAlgorithm for Liar {
            type Message = ();
            type Output = ();
            fn send(&mut self, _r: usize) -> Vec<()> {
                vec![(); self.degree + 1]
            }
            fn receive(&mut self, _r: usize, _i: &[Option<()>]) -> Option<()> {
                Some(())
            }
        }
        let g = ports::canonical_ports(&generators::cycle(5).unwrap()).unwrap();
        let err = Simulator::new(&g)
            .run_parallel(|d: usize| Liar { degree: d }, 3)
            .unwrap_err();
        assert!(matches!(err, crate::RuntimeError::WrongMessageCount { .. }));
    }

    #[test]
    fn parallel_round_limit() {
        struct Forever {
            degree: usize,
        }
        impl NodeAlgorithm for Forever {
            type Message = ();
            type Output = ();
            fn send(&mut self, _r: usize) -> Vec<()> {
                vec![(); self.degree]
            }
            fn receive(&mut self, _r: usize, _i: &[Option<()>]) -> Option<()> {
                None
            }
        }
        let g = ports::canonical_ports(&generators::cycle(12).unwrap()).unwrap();
        let sim = Simulator::with_options(
            &g,
            crate::RunOptions {
                max_rounds: 7,
                ..crate::RunOptions::default()
            },
        );
        for threads in [2usize, 4] {
            let err = sim
                .run_parallel(|d: usize| Forever { degree: d }, threads)
                .unwrap_err();
            assert!(
                matches!(
                    err,
                    crate::RuntimeError::RoundLimitExceeded {
                        limit: 7,
                        still_running: 12
                    }
                ),
                "threads = {threads}: {err:?}"
            );
        }
    }

    #[test]
    fn panicking_algorithm_propagates_without_deadlock() {
        struct Bomb {
            degree: usize,
            armed: bool,
        }
        impl NodeAlgorithm for Bomb {
            type Message = ();
            type Output = ();
            fn send(&mut self, _r: usize) -> Vec<()> {
                vec![(); self.degree]
            }
            fn receive(&mut self, _r: usize, _i: &[Option<()>]) -> Option<()> {
                assert!(!self.armed, "bomb went off");
                Some(())
            }
        }
        let g = ports::canonical_ports(&generators::cycle(16).unwrap()).unwrap();
        let sim = Simulator::new(&g);
        let armed = std::sync::atomic::AtomicBool::new(true);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run_parallel(
                |d: usize| Bomb {
                    degree: d,
                    armed: armed.swap(false, std::sync::atomic::Ordering::Relaxed),
                },
                4,
            )
        }));
        assert!(result.is_err(), "panic must propagate, not deadlock");
    }

    #[test]
    fn pool_barrier_epochs_and_poisoning() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let barrier = PoolBarrier::new(3);
        let hits = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        assert!(barrier.wait().is_ok());
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 150);
        // Poisoning unblocks a waiter that would otherwise sleep forever.
        let barrier = PoolBarrier::new(2);
        std::thread::scope(|scope| {
            let h = scope.spawn(|| barrier.wait().is_err());
            std::thread::sleep(std::time::Duration::from_millis(10));
            barrier.poison();
            assert!(h.join().unwrap(), "waiter observed the poison");
        });
    }
}

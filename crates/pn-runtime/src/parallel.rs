//! Multi-threaded execution of the synchronous simulator.
//!
//! Each synchronous round is three embarrassingly parallel maps — send
//! (per node), route (per receiving port, a gather through the
//! precomputed routing table), receive (per node) — with a barrier
//! between them, so the execution parallelises without changing
//! semantics: [`Simulator::run_parallel`] produces **bit-identical**
//! results to [`Simulator::run`] (a property the tests assert, not just
//! promise).
//!
//! The parallel driver shares the [`Simulator`]'s routing table with the
//! sequential engine: the route phase reads `outbox[route[t]]` for every
//! receiver slot `t` instead of recomputing `connection()` endpoints per
//! port per round. Send and receive phases iterate per-chunk active-node
//! frontiers, so halted nodes cost nothing there; the route phase stays
//! dense over the slot arena because a gather must also *clear* receiver
//! slots whose counterpart fell silent.
//!
//! Tracing is not supported in parallel mode; use the sequential driver
//! when a transcript is needed.

use pn_graph::NodeId;

use crate::algorithm::{AlgorithmFactory, NodeAlgorithm};
use crate::simulator::{Run, Simulator};
use crate::RuntimeError;

impl<'g> Simulator<'g> {
    /// Runs the algorithm on `threads` OS threads (clamped to at least
    /// 1). Results are identical to [`Simulator::run`]; wall-clock time
    /// shrinks for large graphs.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    pub fn run_parallel<F>(
        &self,
        factory: F,
        threads: usize,
    ) -> Result<Run<<F::Algorithm as NodeAlgorithm>::Output>, RuntimeError>
    where
        F: AlgorithmFactory,
        F::Algorithm: Send,
        <F::Algorithm as NodeAlgorithm>::Message: Send + Sync,
        <F::Algorithm as NodeAlgorithm>::Output: Send,
    {
        let g = self.graph();
        self.run_parallel_states(
            g.nodes().map(|v| factory.create(g.degree(v))).collect(),
            threads,
        )
    }

    /// The per-node-inputs sibling of [`Simulator::run_parallel`]: the
    /// identifier-model entry point ([`Simulator::run_with_inputs`]) on
    /// `threads` OS threads, again bit-identical to the sequential run.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the node count.
    pub fn run_parallel_with_inputs<A, I>(
        &self,
        inputs: &[I],
        factory: impl Fn(usize, &I) -> A,
        threads: usize,
    ) -> Result<Run<A::Output>, RuntimeError>
    where
        A: NodeAlgorithm + Send,
        A::Message: Send + Sync,
        A::Output: Send,
    {
        let g = self.graph();
        assert_eq!(inputs.len(), g.node_count(), "one input per node required");
        self.run_parallel_states(
            g.nodes()
                .map(|v| factory(g.degree(v), &inputs[v.index()]))
                .collect(),
            threads,
        )
    }

    fn run_parallel_states<A>(
        &self,
        states: Vec<A>,
        threads: usize,
    ) -> Result<Run<A::Output>, RuntimeError>
    where
        A: NodeAlgorithm + Send,
        A::Message: Send + Sync,
        A::Output: Send,
    {
        let g = self.graph();
        let n = g.node_count();
        let threads = threads.clamp(1, n.max(1));

        type Msg<A> = <A as NodeAlgorithm>::Message;
        type Out<A> = <A as NodeAlgorithm>::Output;

        let mut states: Vec<Option<A>> = states.into_iter().map(Some).collect();
        let mut outputs: Vec<Option<Out<A>>> = (0..n).map(|_| None).collect();
        let mut halted_at = vec![0usize; n];
        let mut running = n;
        let mut messages = 0usize;
        let mut rounds = 0usize;

        // Shared routing structure: the graph's slot offsets and the
        // simulator's precomputed slot permutation.
        let offsets = g.slot_offsets();
        let route = self.routing_table();
        let total_ports = g.port_count();
        let slot_at = |v: usize| {
            if v == n {
                total_ports
            } else {
                offsets[v]
            }
        };

        // Static node chunks, one per thread, with aligned slot chunks.
        let chunk = n.div_ceil(threads);
        let node_bounds: Vec<(usize, usize)> = (0..threads)
            .map(|t| ((t * chunk).min(n), ((t + 1) * chunk).min(n)))
            .collect();

        // Per-chunk active-node frontiers, compacted as nodes halt.
        let mut frontiers: Vec<Vec<u32>> = node_bounds
            .iter()
            .map(|&(lo, hi)| (lo as u32..hi as u32).collect())
            .collect();

        let mut outbox: Vec<Option<Msg<A>>> = (0..total_ports).map(|_| None).collect();
        let mut inbox: Vec<Option<Msg<A>>> = (0..total_ports).map(|_| None).collect();

        // Splits a flat per-port buffer into one mutable slice per chunk.
        fn split_slots<'a, T>(
            mut rest: &'a mut [T],
            node_bounds: &[(usize, usize)],
            slot_at: &impl Fn(usize) -> usize,
        ) -> Vec<&'a mut [T]> {
            let mut chunks = Vec::with_capacity(node_bounds.len());
            let mut consumed = 0usize;
            for &(_, hi) in node_bounds {
                let (chunk, next) = rest.split_at_mut(slot_at(hi) - consumed);
                chunks.push(chunk);
                rest = next;
                consumed = slot_at(hi);
            }
            chunks
        }

        // Splits the per-node state vector into one slice per chunk.
        fn split_nodes<'a, T>(
            mut rest: &'a mut [T],
            node_bounds: &[(usize, usize)],
        ) -> Vec<&'a mut [T]> {
            let mut chunks = Vec::with_capacity(node_bounds.len());
            let mut consumed = 0usize;
            for &(_, hi) in node_bounds {
                let (chunk, next) = rest.split_at_mut(hi - consumed);
                chunks.push(chunk);
                rest = next;
                consumed = hi;
            }
            chunks
        }

        while running > 0 {
            if rounds >= self.options().max_rounds {
                return Err(RuntimeError::RoundLimitExceeded {
                    limit: self.options().max_rounds,
                    still_running: running,
                });
            }

            // ---- Send phase: parallel over chunks, frontier-driven. ----
            let send_results: Vec<Result<(), RuntimeError>> = {
                let state_slices = split_nodes(states.as_mut_slice(), &node_bounds);
                let out_slices = split_slots(outbox.as_mut_slice(), &node_bounds, &slot_at);
                std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for (((lo, _), s_chunk), (frontier, o_chunk)) in node_bounds
                        .iter()
                        .copied()
                        .zip(state_slices)
                        .zip(frontiers.iter().zip(out_slices))
                    {
                        handles.push(scope.spawn(move || {
                            let slot_base = slot_at(lo);
                            for &vu in frontier {
                                let v = vu as usize;
                                let base = offsets[v] - slot_base;
                                let d = g.degree(NodeId::new(v));
                                let window = &mut o_chunk[base..base + d];
                                // The window may hold the previous round's
                                // messages (the route gather clones rather
                                // than drains); reset before writing.
                                for slot in window.iter_mut() {
                                    *slot = None;
                                }
                                let state = s_chunk[v - lo].as_mut().expect("frontier nodes run");
                                state.send_into(rounds, window).map_err(|wrong| {
                                    RuntimeError::WrongMessageCount {
                                        node: NodeId::new(v),
                                        got: wrong.got,
                                        expected: d,
                                    }
                                })?;
                            }
                            Ok(())
                        }));
                    }
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("send thread panicked"))
                        .collect()
                })
            };
            for r in send_results {
                r?;
            }

            // ---- Route phase: gather, parallel over receiver slots. ----
            let delivered: usize = {
                let in_slices = split_slots(inbox.as_mut_slice(), &node_bounds, &slot_at);
                let outbox_ref = &outbox;
                std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for ((lo, _), i_chunk) in node_bounds.iter().copied().zip(in_slices) {
                        handles.push(scope.spawn(move || {
                            let slot_base = slot_at(lo);
                            let mut count = 0usize;
                            for (off, slot) in i_chunk.iter_mut().enumerate() {
                                let m = outbox_ref[route[slot_base + off] as usize].clone();
                                if m.is_some() {
                                    count += 1;
                                }
                                *slot = m;
                            }
                            count
                        }));
                    }
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("route thread panicked"))
                        .sum()
                })
            };
            messages += delivered;

            // ---- Receive phase: parallel over chunks, frontier-driven;
            // halting nodes clear their outbox window so the gather never
            // re-delivers a final message. ----
            let halts: Vec<Vec<(usize, Out<A>)>> = {
                let state_slices = split_nodes(states.as_mut_slice(), &node_bounds);
                let out_slices = split_slots(outbox.as_mut_slice(), &node_bounds, &slot_at);
                let inbox_ref = &inbox;
                std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for (((lo, _), s_chunk), (frontier, o_chunk)) in node_bounds
                        .iter()
                        .copied()
                        .zip(state_slices)
                        .zip(frontiers.iter_mut().zip(out_slices))
                    {
                        handles.push(scope.spawn(move || {
                            let slot_base = slot_at(lo);
                            let mut halts = Vec::new();
                            let mut write = 0usize;
                            for read in 0..frontier.len() {
                                let vu = frontier[read];
                                let v = vu as usize;
                                let base = offsets[v];
                                let d = g.degree(NodeId::new(v));
                                let state_slot = &mut s_chunk[v - lo];
                                let state = state_slot.as_mut().expect("frontier nodes run");
                                let window = &inbox_ref[base..base + d];
                                if let Some(out) = state.receive(rounds, window) {
                                    halts.push((v, out));
                                    *state_slot = None;
                                    let local = base - slot_base;
                                    for slot in o_chunk[local..local + d].iter_mut() {
                                        *slot = None;
                                    }
                                } else {
                                    frontier[write] = vu;
                                    write += 1;
                                }
                            }
                            frontier.truncate(write);
                            halts
                        }));
                    }
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("receive thread panicked"))
                        .collect()
                })
            };
            for (v, out) in halts.into_iter().flatten() {
                outputs[v] = Some(out);
                halted_at[v] = rounds + 1;
                running -= 1;
            }
            rounds += 1;
        }

        Ok(Run {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("all nodes halted"))
                .collect(),
            rounds: halted_at.iter().copied().max().unwrap_or(0),
            halted_at,
            messages,
            trace: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{NodeAlgorithm, Simulator};
    use pn_graph::{generators, ports};

    #[derive(Clone)]
    struct Gossip {
        degree: usize,
        acc: u64,
        left: usize,
    }

    impl NodeAlgorithm for Gossip {
        type Message = u64;
        type Output = u64;
        fn send(&mut self, _r: usize) -> Vec<u64> {
            (0..self.degree)
                .map(|q| self.acc.wrapping_add(q as u64))
                .collect()
        }
        fn receive(&mut self, _r: usize, inbox: &[Option<u64>]) -> Option<u64> {
            for m in inbox.iter().flatten() {
                self.acc = self.acc.rotate_left(5).wrapping_add(*m);
            }
            self.left -= 1;
            (self.left == 0).then_some(self.acc)
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        for (n, d, seed) in [(20usize, 4usize, 1u64), (37, 6, 2), (64, 3, 3)] {
            let n = if (n * d) % 2 == 1 { n + 1 } else { n };
            let g = generators::random_regular(n, d, seed).unwrap();
            let pg = ports::shuffled_ports(&g, seed).unwrap();
            let factory = |deg: usize| Gossip {
                degree: deg,
                acc: deg as u64,
                left: 9,
            };
            let seq = Simulator::new(&pg).run(factory).unwrap();
            for threads in [1usize, 2, 3, 8, 1000] {
                let par = Simulator::new(&pg).run_parallel(factory, threads).unwrap();
                assert_eq!(par.outputs, seq.outputs, "threads = {threads}");
                assert_eq!(par.rounds, seq.rounds);
                assert_eq!(par.messages, seq.messages);
                assert_eq!(par.halted_at, seq.halted_at);
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_with_staggered_halts() {
        // Nodes halt after `degree + 1` rounds, so low-degree nodes fall
        // silent while high-degree neighbours keep running — the case
        // where frontier compaction and outbox clearing must agree
        // between the sequential and parallel drivers.
        #[derive(Clone)]
        struct Staggered {
            degree: usize,
            seen: u64,
            round_count: usize,
        }
        impl NodeAlgorithm for Staggered {
            type Message = u64;
            type Output = u64;
            fn send(&mut self, r: usize) -> Vec<u64> {
                vec![self.seen.wrapping_add(r as u64); self.degree]
            }
            fn receive(&mut self, _r: usize, inbox: &[Option<u64>]) -> Option<u64> {
                for (q, m) in inbox.iter().enumerate() {
                    match m {
                        Some(x) => self.seen = self.seen.rotate_left(7) ^ x,
                        None => self.seen = self.seen.wrapping_mul(31).wrapping_add(q as u64),
                    }
                }
                self.round_count += 1;
                (self.round_count > self.degree).then_some(self.seen)
            }
        }
        let g = generators::gnp(40, 0.12, 5).unwrap();
        let pg = ports::shuffled_ports(&g, 6).unwrap();
        let factory = |d: usize| Staggered {
            degree: d,
            seen: d as u64,
            round_count: 0,
        };
        let seq = Simulator::new(&pg).run(factory).unwrap();
        for threads in [1usize, 2, 5, 16] {
            let par = Simulator::new(&pg).run_parallel(factory, threads).unwrap();
            assert_eq!(par.outputs, seq.outputs, "threads = {threads}");
            assert_eq!(par.messages, seq.messages, "threads = {threads}");
            assert_eq!(par.halted_at, seq.halted_at, "threads = {threads}");
        }
    }

    struct PortOne {
        degree: usize,
    }

    impl NodeAlgorithm for PortOne {
        type Message = bool;
        type Output = crate::PortSet;
        fn send(&mut self, _r: usize) -> Vec<bool> {
            (1..=self.degree).map(|i| i == 1).collect()
        }
        fn receive(&mut self, _r: usize, inbox: &[Option<bool>]) -> Option<crate::PortSet> {
            let mut x = crate::PortSet::new();
            if self.degree >= 1 {
                x.insert(pn_graph::Port::new(1));
            }
            for (i, m) in inbox.iter().enumerate() {
                if m == &Some(true) {
                    x.insert(pn_graph::Port::from_index(i));
                }
            }
            Some(x)
        }
    }

    #[test]
    fn parallel_runs_real_protocols() {
        let g = ports::shuffled_ports(&generators::torus(6, 6).unwrap(), 4).unwrap();
        let seq = Simulator::new(&g)
            .run(|d: usize| PortOne { degree: d })
            .unwrap();
        let par = Simulator::new(&g)
            .run_parallel(|d: usize| PortOne { degree: d }, 4)
            .unwrap();
        assert_eq!(seq.outputs, par.outputs);
        let edges = crate::edge_set_from_outputs(&g, &par.outputs).unwrap();
        assert!(!edges.is_empty());
    }

    #[test]
    fn parallel_error_paths() {
        struct Liar {
            degree: usize,
        }
        impl NodeAlgorithm for Liar {
            type Message = ();
            type Output = ();
            fn send(&mut self, _r: usize) -> Vec<()> {
                vec![(); self.degree + 1]
            }
            fn receive(&mut self, _r: usize, _i: &[Option<()>]) -> Option<()> {
                Some(())
            }
        }
        let g = ports::canonical_ports(&generators::cycle(5).unwrap()).unwrap();
        let err = Simulator::new(&g)
            .run_parallel(|d: usize| Liar { degree: d }, 3)
            .unwrap_err();
        assert!(matches!(err, crate::RuntimeError::WrongMessageCount { .. }));
    }
}

//! A persistent, bounded, batching worker pool for solver services.
//!
//! The simulator's own parallel engine ([`crate::Simulator::run_parallel`])
//! spawns its workers per run and shards the *nodes of one graph*; this
//! module is the complementary layer above it: a pool that outlives any
//! single run and shards *independent jobs* (whole solve requests) across
//! long-lived threads. `eds-serve` multiplexes every client connection
//! onto one such pool, so thread spawn cost is paid once per process, not
//! once per request.
//!
//! Design points, all load-bearing for a long-lived daemon:
//!
//! * **Bounded queue with blocking submission.** [`WorkerPool::submit`]
//!   blocks once `capacity` jobs are queued — backpressure propagates to
//!   the callers (network readers) instead of growing an unbounded
//!   buffer. [`WorkerPool::try_submit`] is the non-blocking variant for
//!   callers that prefer to shed load.
//! * **Batch hand-off.** A worker that wakes up drains up to
//!   `batch_limit` queued jobs in one lock acquisition and passes them to
//!   the handler *together*. The handler can then amortise shared setup
//!   across the batch — `eds-serve` uses this to run several small
//!   instances through one shared `Session` sweep
//!   instead of one session per request.
//! * **Panic containment.** A handler panic is caught
//!   ([`std::panic::catch_unwind`]), counted, and the worker keeps
//!   serving. One poisoned request must never take down the daemon or
//!   starve the pool. The panic payload is dropped; the handler is
//!   responsible for emitting per-job error responses *before* doing
//!   anything that might panic, or for never panicking (the serve layer
//!   does both).
//! * **Graceful drain.** [`WorkerPool::drain`] blocks until the queue is
//!   empty *and* every worker is idle — the shutdown path runs it before
//!   flushing sinks so no in-flight solve is dropped. [`WorkerPool::shutdown`]
//!   closes the queue (subsequent submits fail fast), lets workers finish
//!   everything already queued, and joins them.
//!
//! The pool is deliberately generic over the job type rather than taking
//! boxed closures: batching only makes sense when the handler can see the
//! jobs as data and group them.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Error returned by [`WorkerPool::try_submit`].
#[derive(Debug)]
pub enum SubmitError<J> {
    /// The queue is at capacity; the job is handed back to the caller.
    Full(J),
    /// The pool has been shut down; the job is handed back to the caller.
    Closed(J),
}

impl<J> std::fmt::Display for SubmitError<J> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full(_) => write!(f, "worker pool queue is full"),
            SubmitError::Closed(_) => write!(f, "worker pool is shut down"),
        }
    }
}

struct PoolState<J> {
    queue: VecDeque<J>,
    busy: usize,
    closed: bool,
}

struct PoolShared<J> {
    state: Mutex<PoolState<J>>,
    /// Workers wait here for jobs (or for closure).
    jobs: Condvar,
    /// Blocked submitters wait here for queue space.
    space: Condvar,
    /// `drain()` waits here for quiescence.
    idle: Condvar,
    capacity: usize,
    batch_limit: usize,
    panics: AtomicUsize,
}

/// A persistent pool of worker threads consuming batches of typed jobs.
///
/// Created once, reused across arbitrarily many submissions; see the
/// module docs for the design contract.
pub struct WorkerPool<J: Send + 'static> {
    shared: Arc<PoolShared<J>>,
    workers: Vec<JoinHandle<()>>,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawn `threads` workers running `handler` over job batches.
    ///
    /// `capacity` bounds the queue (submissions beyond it block);
    /// `batch_limit` bounds how many queued jobs one worker hands to the
    /// handler at a time. Both are clamped to at least 1.
    pub fn new<F>(threads: usize, capacity: usize, batch_limit: usize, handler: F) -> Self
    where
        F: Fn(Vec<J>) + Send + Sync + 'static,
    {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                busy: 0,
                closed: false,
            }),
            jobs: Condvar::new(),
            space: Condvar::new(),
            idle: Condvar::new(),
            capacity: capacity.max(1),
            batch_limit: batch_limit.max(1),
            panics: AtomicUsize::new(0),
        });
        let handler = Arc::new(handler);
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("eds-pool-{i}"))
                    .spawn(move || worker_loop(&shared, &*handler))
                    .expect("spawning a pool worker thread failed")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Queue a job, blocking while the queue is at capacity.
    ///
    /// Returns the job back in `Err` if the pool has been shut down.
    pub fn submit(&self, job: J) -> Result<(), SubmitError<J>> {
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        loop {
            if state.closed {
                return Err(SubmitError::Closed(job));
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(job);
                self.shared.jobs.notify_one();
                return Ok(());
            }
            state = self.shared.space.wait(state).expect("pool lock poisoned");
        }
    }

    /// Queue a job without blocking; sheds load when the queue is full.
    pub fn try_submit(&self, job: J) -> Result<(), SubmitError<J>> {
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        if state.closed {
            return Err(SubmitError::Closed(job));
        }
        if state.queue.len() >= self.shared.capacity {
            return Err(SubmitError::Full(job));
        }
        state.queue.push_back(job);
        self.shared.jobs.notify_one();
        Ok(())
    }

    /// Number of jobs queued but not yet claimed by a worker.
    pub fn pending(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool lock poisoned")
            .queue
            .len()
    }

    /// Number of handler panics caught since the pool started.
    pub fn panics(&self) -> usize {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Block until the queue is empty and every worker is idle.
    ///
    /// Jobs submitted concurrently with `drain` may extend the wait; the
    /// daemon's shutdown path stops accepting work first.
    pub fn drain(&self) {
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        while !state.queue.is_empty() || state.busy > 0 {
            state = self.shared.idle.wait(state).expect("pool lock poisoned");
        }
    }

    /// Close the queue, finish all queued jobs, and join the workers.
    ///
    /// Submissions racing with shutdown fail with
    /// [`SubmitError::Closed`] and get their job handed back, so the
    /// caller can emit a structured rejection instead of losing it.
    pub fn shutdown(mut self) {
        self.close();
        for worker in self.workers.drain(..) {
            // A worker that panicked outside the contained handler call
            // (impossible in safe operation) is not worth propagating
            // during shutdown.
            let _ = worker.join();
        }
    }

    fn close(&self) {
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        state.closed = true;
        drop(state);
        self.shared.jobs.notify_all();
        self.shared.space.notify_all();
    }
}

impl<J: Send + 'static> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        self.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop<J: Send + 'static>(
    shared: &PoolShared<J>,
    handler: &(dyn Fn(Vec<J>) + Send + Sync),
) {
    loop {
        let batch = {
            let mut state = shared.state.lock().expect("pool lock poisoned");
            loop {
                if !state.queue.is_empty() {
                    break;
                }
                if state.closed {
                    return;
                }
                state = shared.jobs.wait(state).expect("pool lock poisoned");
            }
            let take = state.queue.len().min(shared.batch_limit);
            let batch: Vec<J> = state.queue.drain(..take).collect();
            state.busy += 1;
            // More jobs may remain; wake a sibling and any blocked
            // submitter now that the queue has room.
            if !state.queue.is_empty() {
                shared.jobs.notify_one();
            }
            drop(state);
            shared.space.notify_all();
            batch
        };
        // AssertUnwindSafe: the handler owns the batch; shared state the
        // closure captures is all behind locks/atomics that re-establish
        // their invariants (no lock is held across this call).
        if catch_unwind(AssertUnwindSafe(|| handler(batch))).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
        let mut state = shared.state.lock().expect("pool lock poisoned");
        state.busy -= 1;
        if state.queue.is_empty() && state.busy == 0 {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Mutex as StdMutex;
    use std::time::Duration;

    #[test]
    fn processes_every_job_across_batches() {
        let seen = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let pool = WorkerPool::new(2, 64, 4, move |batch: Vec<usize>| {
            sink.lock().unwrap().extend(batch);
        });
        for i in 0..100 {
            pool.submit(i).unwrap();
        }
        pool.drain();
        let mut got = seen.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn batches_are_bounded_by_batch_limit() {
        let max_batch = Arc::new(AtomicUsize::new(0));
        let probe = Arc::clone(&max_batch);
        let pool = WorkerPool::new(1, 64, 3, move |batch: Vec<u32>| {
            probe.fetch_max(batch.len(), Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(1));
        });
        for i in 0..30 {
            pool.submit(i).unwrap();
        }
        pool.drain();
        let seen = max_batch.load(Ordering::Relaxed);
        assert!((1..=3).contains(&seen), "batch size {seen} out of range");
        pool.shutdown();
    }

    #[test]
    fn try_submit_sheds_load_at_capacity() {
        let gate = Arc::new(AtomicBool::new(false));
        let release = Arc::clone(&gate);
        let pool = WorkerPool::new(1, 2, 1, move |_batch: Vec<u8>| {
            while !release.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        // One job occupies the worker; the queue then fills to capacity.
        pool.submit(0).unwrap();
        while pool.pending() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.submit(1).unwrap();
        pool.submit(2).unwrap();
        match pool.try_submit(3) {
            Err(SubmitError::Full(job)) => assert_eq!(job, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        gate.store(true, Ordering::Relaxed);
        pool.drain();
        pool.shutdown();
    }

    #[test]
    fn panicking_handler_is_contained_and_pool_survives() {
        let done = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&done);
        let pool = WorkerPool::new(1, 16, 1, move |batch: Vec<i32>| {
            if batch[0] < 0 {
                panic!("poisoned job");
            }
            counter.fetch_add(1, Ordering::Relaxed);
        });
        pool.submit(-1).unwrap();
        pool.submit(1).unwrap();
        pool.submit(2).unwrap();
        pool.drain();
        assert_eq!(pool.panics(), 1);
        assert_eq!(done.load(Ordering::Relaxed), 2);
        pool.shutdown();
    }

    #[test]
    fn shutdown_finishes_queued_jobs_and_rejects_new_ones() {
        let done = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&done);
        let pool = WorkerPool::new(2, 64, 8, move |batch: Vec<u64>| {
            counter.fetch_add(batch.len(), Ordering::Relaxed);
        });
        for i in 0..40 {
            pool.submit(i).unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 40);

        let pool = WorkerPool::new(1, 4, 1, |_batch: Vec<u64>| {});
        pool.close();
        match pool.submit(7) {
            Err(SubmitError::Closed(job)) => assert_eq!(job, 7),
            other => panic!("expected Closed, got {other:?}"),
        }
    }
}

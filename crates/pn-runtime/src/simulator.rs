//! The synchronous executor: a zero-allocation three-phase round engine.
//!
//! Per-round work is three passes over an **active-node frontier** —
//! send, route, receive — against two flat per-port message buffers. All
//! routing arithmetic is precomputed at [`Simulator`] construction into a
//! flat slot permutation, so the steady-state round loop performs no
//! allocation, no hashing, and no `Endpoint` arithmetic.

use pn_graph::{Endpoint, NodeId, Port, PortNumberedGraph};

use crate::algorithm::{AlgorithmFactory, NodeAlgorithm};
use crate::metrics::RunFlush;
use crate::{CancelToken, RuntimeError};

/// Configuration for a simulation run.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Abort with [`RuntimeError::RoundLimitExceeded`] if any node is
    /// still running after this many rounds. Defaults to 1,000,000.
    pub max_rounds: usize,
    /// Record a full [`crate::Trace`] of message deliveries and halts
    /// (costly; off by default).
    pub record_trace: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_rounds: 1_000_000,
            record_trace: false,
        }
    }
}

/// The result of a completed run: every node has halted.
#[derive(Clone, Debug)]
pub struct Run<O> {
    /// The output of each node, indexed by node.
    pub outputs: Vec<O>,
    /// The round in which each node halted (1-based count of executed
    /// rounds).
    pub halted_at: Vec<usize>,
    /// The running time: maximum of `halted_at` (0 for an empty graph).
    pub rounds: usize,
    /// Total number of messages delivered from running nodes.
    pub messages: usize,
    /// The execution transcript, if requested via
    /// [`RunOptions::record_trace`].
    pub trace: Option<crate::Trace>,
}

/// Deterministic synchronous simulator for one port-numbered graph.
///
/// Construction precomputes the **routing table**: a permutation of the
/// flat port-slot arena mapping each source slot to the slot of the port
/// it is wired to (`route[slot(e)] = slot(p(e))`). Because the port map
/// `p` is an involution, the table is its own inverse; the per-round
/// route phase is a single permuted buffer move.
///
/// # Examples
///
/// Run a toy two-round "ping" algorithm on a cycle:
///
/// ```
/// use pn_graph::{generators, ports};
/// use pn_runtime::{NodeAlgorithm, Simulator};
///
/// struct Ping { degree: usize, got: usize }
/// impl NodeAlgorithm for Ping {
///     type Message = u64;
///     type Output = usize;
///     fn send(&mut self, _round: usize) -> Vec<u64> { vec![7; self.degree] }
///     fn receive(&mut self, _round: usize, inbox: &[Option<u64>]) -> Option<usize> {
///         self.got = inbox.iter().flatten().count();
///         Some(self.got)
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = ports::canonical_ports(&generators::cycle(5)?)?;
/// let run = Simulator::new(&g).run(|d| Ping { degree: d, got: 0 })?;
/// assert_eq!(run.rounds, 1);
/// assert!(run.outputs.iter().all(|&o| o == 2));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Simulator<'g> {
    graph: &'g PortNumberedGraph,
    options: RunOptions,
    /// `route[s]` is the flat slot receiving what source slot `s` sends:
    /// the precomputed image of the port involution over the slot arena.
    route: Vec<u32>,
    /// Polled between rounds when set; see [`Simulator::cancel_token`].
    cancel: Option<CancelToken>,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator for `graph` with default options.
    pub fn new(graph: &'g PortNumberedGraph) -> Self {
        Self::with_options(graph, RunOptions::default())
    }

    /// Creates a simulator with explicit options.
    pub fn with_options(graph: &'g PortNumberedGraph, options: RunOptions) -> Self {
        let offsets = graph.slot_offsets();
        let route = graph
            .involution()
            .iter()
            .map(|to| {
                u32::try_from(offsets[to.node.index()] + to.port.index())
                    .expect("port count exceeds u32 range")
            })
            .collect();
        Simulator {
            graph,
            options,
            route,
            cancel: None,
        }
    }

    /// Installs a cooperative [`CancelToken`]: the round loops (both
    /// engines) poll it between rounds and abort with
    /// [`RuntimeError::Cancelled`] once it fires, so a caller-side
    /// timeout stops a run mid-solve instead of merely gating entry.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The installed cancellation token, if any.
    pub(crate) fn cancel(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The graph this simulator executes on.
    pub fn graph(&self) -> &PortNumberedGraph {
        self.graph
    }

    /// The run options in effect.
    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// The precomputed slot-routing permutation: `routing_table()[s]` is
    /// the destination slot of messages sent from source slot `s` (see
    /// [`pn_graph::PortNumberedGraph::slot_of`]). The table equals its own
    /// inverse because the port map is an involution.
    pub fn routing_table(&self) -> &[u32] {
        &self.route
    }

    /// Runs the algorithm built by `factory` at every node until all
    /// nodes halt.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::WrongMessageCount`] if a node sends a number of
    ///   messages different from its degree;
    /// * [`RuntimeError::RoundLimitExceeded`] if the round limit is hit.
    pub fn run<F>(
        &self,
        factory: F,
    ) -> Result<Run<<F::Algorithm as NodeAlgorithm>::Output>, RuntimeError>
    where
        F: AlgorithmFactory,
    {
        self.run_states(
            self.graph
                .nodes()
                .map(|v| factory.create(self.graph.degree(v)))
                .collect(),
        )
    }

    /// Runs an algorithm whose nodes receive **per-node inputs** in
    /// addition to their degree — the *identifier model* and other
    /// non-anonymous settings. `inputs[v]` is handed to the factory
    /// together with the degree of node `v`.
    ///
    /// Anonymous algorithms should use [`Simulator::run`]; this entry
    /// point deliberately breaks the symmetry the port-numbering model is
    /// about, and exists to host the paper's identifier-model baselines.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the node count.
    pub fn run_with_inputs<A, I>(
        &self,
        inputs: &[I],
        factory: impl Fn(usize, &I) -> A,
    ) -> Result<Run<A::Output>, RuntimeError>
    where
        A: NodeAlgorithm,
    {
        assert_eq!(
            inputs.len(),
            self.graph.node_count(),
            "one input per node required"
        );
        self.run_states(
            self.graph
                .nodes()
                .map(|v| factory(self.graph.degree(v), &inputs[v.index()]))
                .collect(),
        )
    }

    pub(crate) fn run_states<A>(&self, states: Vec<A>) -> Result<Run<A::Output>, RuntimeError>
    where
        A: NodeAlgorithm,
    {
        let g = self.graph;
        let n = g.node_count();
        let offsets = g.slot_offsets();
        let route = &self.route;
        let mut states: Vec<Option<A>> = states.into_iter().map(Some).collect();
        let mut outputs: Vec<Option<A::Output>> = (0..n).map(|_| None).collect();
        let mut halted_at = vec![0usize; n];
        let mut messages = 0usize;
        let mut rounds = 0usize;
        let mut trace = self.options.record_trace.then(crate::Trace::new);
        // Per-run telemetry aggregate: plain locals in the loop, folded
        // into the global registry once on drop (any exit path).
        let mut stats = RunFlush::new(true);

        // Flat per-port buffers, allocated once. Invariant at the top of
        // every round: `outbox` is all-`None` (the route phase drains it)
        // and the inbox windows of all *running* nodes are all-`None`
        // (cleared in the receive phase). Halted nodes' windows may hold
        // stale values; nothing reads them.
        let total_ports = g.port_count();
        let mut outbox: Vec<Option<A::Message>> = (0..total_ports).map(|_| None).collect();
        let mut inbox: Vec<Option<A::Message>> = (0..total_ports).map(|_| None).collect();

        // Active-node frontier, ascending; compacted in place as nodes
        // halt so a halted node costs nothing in later rounds.
        let mut frontier: Vec<u32> = (0..n as u32).collect();

        while !frontier.is_empty() {
            if rounds >= self.options.max_rounds {
                return Err(RuntimeError::RoundLimitExceeded {
                    limit: self.options.max_rounds,
                    still_running: frontier.len(),
                });
            }
            if let Some(cancel) = self.cancel() {
                if cancel.check() {
                    return Err(RuntimeError::Cancelled {
                        after_rounds: rounds,
                        still_running: frontier.len(),
                    });
                }
            }
            stats.frontier.observe(frontier.len() as u64);

            // ---- Send phase: every active node writes its window. ----
            for &vu in &frontier {
                let v = vu as usize;
                let base = offsets[v];
                let d = g.degree(NodeId::new(v));
                let state = states[v].as_mut().expect("frontier nodes are running");
                state
                    .send_into(rounds, &mut outbox[base..base + d])
                    .map_err(|wrong| RuntimeError::WrongMessageCount {
                        node: NodeId::new(v),
                        got: wrong.got,
                        expected: d,
                    })?;
            }

            // ---- Route phase: permuted move through the routing table,
            // draining the outbox (which restores its all-`None`
            // invariant for free). ----
            if let Some(t) = trace.as_mut() {
                // Traced slow path: reconstruct endpoints and format
                // messages. Only taken when a transcript was requested.
                for &vu in &frontier {
                    let v = vu as usize;
                    let base = offsets[v];
                    for i in 0..g.degree(NodeId::new(v)) {
                        let s = base + i;
                        if let Some(m) = outbox[s].take() {
                            t.messages.push(crate::MessageEvent {
                                round: rounds,
                                from: Endpoint::new(NodeId::new(v), Port::from_index(i)),
                                to: g.involution()[s],
                                message: format!("{m:?}"),
                            });
                            inbox[route[s] as usize] = Some(m);
                            messages += 1;
                        }
                    }
                }
            } else {
                for &vu in &frontier {
                    let v = vu as usize;
                    let base = offsets[v];
                    let d = g.degree(NodeId::new(v));
                    for s in base..base + d {
                        if let Some(m) = outbox[s].take() {
                            inbox[route[s] as usize] = Some(m);
                            messages += 1;
                        }
                    }
                }
            }

            // ---- Receive phase: deliver windows, compact the frontier. ----
            let mut write = 0usize;
            for read in 0..frontier.len() {
                let vu = frontier[read];
                let v = vu as usize;
                let base = offsets[v];
                let d = g.degree(NodeId::new(v));
                let state = states[v].as_mut().expect("frontier nodes are running");
                let window = &mut inbox[base..base + d];
                let decision = state.receive(rounds, window);
                for slot in window.iter_mut() {
                    *slot = None;
                }
                match decision {
                    Some(out) => {
                        if let Some(t) = trace.as_mut() {
                            t.halts.push(crate::HaltEvent {
                                round: rounds,
                                node: NodeId::new(v),
                                output: format!("{out:?}"),
                            });
                        }
                        outputs[v] = Some(out);
                        halted_at[v] = rounds + 1;
                        states[v] = None;
                    }
                    None => {
                        frontier[write] = vu;
                        write += 1;
                    }
                }
            }
            frontier.truncate(write);
            rounds += 1;
            stats.rounds = rounds as u64;
            stats.messages = messages as u64;
        }

        Ok(Run {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("all nodes halted"))
                .collect(),
            rounds: halted_at.iter().copied().max().unwrap_or(0),
            halted_at,
            messages,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeAlgorithm;
    use pn_graph::{generators, ports, PnGraphBuilder, Port};

    /// Flood the minimum of an initial per-degree token for `t` rounds.
    struct MinFlood {
        degree: usize,
        value: u64,
        rounds_left: usize,
    }

    impl NodeAlgorithm for MinFlood {
        type Message = u64;
        type Output = u64;

        fn send(&mut self, _round: usize) -> Vec<u64> {
            vec![self.value; self.degree]
        }

        fn receive(&mut self, _round: usize, inbox: &[Option<u64>]) -> Option<u64> {
            for m in inbox.iter().flatten() {
                self.value = self.value.min(*m);
            }
            self.rounds_left -= 1;
            if self.rounds_left == 0 {
                Some(self.value)
            } else {
                None
            }
        }
    }

    #[test]
    fn min_flood_converges_on_path() {
        // Degrees on a path: endpoints 1, middle 2. Min value = 1.
        let g = ports::canonical_ports(&generators::path(6).unwrap()).unwrap();
        let run = Simulator::new(&g)
            .run(|d| MinFlood {
                degree: d,
                value: d as u64,
                rounds_left: 6,
            })
            .unwrap();
        assert_eq!(run.rounds, 6);
        assert!(run.outputs.iter().all(|&v| v == 1));
        // 2 * |E| messages per round while everyone runs.
        assert_eq!(run.messages, 6 * 2 * 5);
    }

    #[test]
    fn round_limit_enforced() {
        struct Forever {
            degree: usize,
        }
        impl NodeAlgorithm for Forever {
            type Message = ();
            type Output = ();
            fn send(&mut self, _round: usize) -> Vec<()> {
                vec![(); self.degree]
            }
            fn receive(&mut self, _round: usize, _inbox: &[Option<()>]) -> Option<()> {
                None
            }
        }
        let g = ports::canonical_ports(&generators::cycle(3).unwrap()).unwrap();
        let sim = Simulator::with_options(
            &g,
            RunOptions {
                max_rounds: 5,
                ..RunOptions::default()
            },
        );
        let err = sim.run(|d| Forever { degree: d }).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::RoundLimitExceeded { limit: 5, .. }
        ));
    }

    #[test]
    fn wrong_message_count_detected() {
        struct Liar;
        impl NodeAlgorithm for Liar {
            type Message = ();
            type Output = ();
            fn send(&mut self, _round: usize) -> Vec<()> {
                vec![()] // always one message, regardless of degree
            }
            fn receive(&mut self, _round: usize, _inbox: &[Option<()>]) -> Option<()> {
                Some(())
            }
        }
        let g = ports::canonical_ports(&generators::star(3).unwrap()).unwrap();
        let err = Simulator::new(&g).run(|_| Liar).unwrap_err();
        assert!(matches!(err, RuntimeError::WrongMessageCount { .. }));
    }

    #[test]
    fn half_loop_reflects_message() {
        // One node, one port, fixed point: the node receives its own
        // message back on the same port.
        struct Echo {
            degree: usize,
        }
        impl NodeAlgorithm for Echo {
            type Message = u32;
            type Output = u32;
            fn send(&mut self, _round: usize) -> Vec<u32> {
                vec![41; self.degree]
            }
            fn receive(&mut self, _round: usize, inbox: &[Option<u32>]) -> Option<u32> {
                Some(inbox[0].unwrap() + 1)
            }
        }
        let mut b = PnGraphBuilder::new();
        let x = b.add_node(1);
        b.fix_point(pn_graph::Endpoint::new(x, Port::new(1)))
            .unwrap();
        let g = b.finish().unwrap();
        let run = Simulator::new(&g).run(|d| Echo { degree: d }).unwrap();
        assert_eq!(run.outputs, vec![42]);
    }

    #[test]
    fn staggered_halting_delivers_none() {
        // Nodes halt after `degree` rounds; a degree-2 node sees None from
        // a degree-1 neighbour that halted earlier.
        struct Staggered {
            degree: usize,
            seen_none: bool,
            round_count: usize,
        }
        impl NodeAlgorithm for Staggered {
            type Message = u8;
            type Output = bool;
            fn send(&mut self, _round: usize) -> Vec<u8> {
                vec![0; self.degree]
            }
            fn receive(&mut self, _round: usize, inbox: &[Option<u8>]) -> Option<bool> {
                if inbox.iter().any(Option::is_none) {
                    self.seen_none = true;
                }
                self.round_count += 1;
                if self.round_count >= self.degree {
                    Some(self.seen_none)
                } else {
                    None
                }
            }
        }
        let g = ports::canonical_ports(&generators::path(3).unwrap()).unwrap();
        let run = Simulator::new(&g)
            .run(|d| Staggered {
                degree: d,
                seen_none: false,
                round_count: 0,
            })
            .unwrap();
        // Endpoints (degree 1) halt in round 1 without seeing None; the
        // middle node (degree 2) runs a second round and sees None twice.
        assert_eq!(run.outputs, vec![false, true, false]);
        assert_eq!(run.halted_at, vec![1, 2, 1]);
        assert_eq!(run.rounds, 2);
    }

    #[test]
    fn trace_records_messages_and_halts() {
        let g = ports::canonical_ports(&generators::path(3).unwrap()).unwrap();
        let sim = Simulator::with_options(
            &g,
            RunOptions {
                record_trace: true,
                ..RunOptions::default()
            },
        );
        let run = sim
            .run(|d| MinFlood {
                degree: d,
                value: d as u64,
                rounds_left: 2,
            })
            .unwrap();
        let trace = run.trace.expect("trace requested");
        // 2 rounds x 2|E| messages.
        assert_eq!(trace.message_count(), 2 * 2 * 2);
        assert_eq!(trace.halts.len(), 3);
        assert_eq!(trace.round_messages(0).count(), 4);
        let rendered = trace.render();
        assert!(rendered.contains("round 0:"));
        assert!(rendered.contains("halt"));
        // No trace without the flag.
        let run = Simulator::new(&g)
            .run(|d| MinFlood {
                degree: d,
                value: d as u64,
                rounds_left: 2,
            })
            .unwrap();
        assert!(run.trace.is_none());
    }

    #[test]
    fn runs_are_deterministic() {
        let g = ports::shuffled_ports(&generators::petersen(), 3).unwrap();
        let factory = |d: usize| MinFlood {
            degree: d,
            value: d as u64 * 17 % 5,
            rounds_left: 6,
        };
        let a = Simulator::new(&g).run(factory).unwrap();
        let b = Simulator::new(&g).run(factory).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn empty_graph_runs_trivially() {
        let g = pn_graph::PortNumberedGraph::from_involution(vec![], vec![]).unwrap();
        struct Never;
        impl NodeAlgorithm for Never {
            type Message = ();
            type Output = ();
            fn send(&mut self, _r: usize) -> Vec<()> {
                unreachable!()
            }
            fn receive(&mut self, _r: usize, _i: &[Option<()>]) -> Option<()> {
                unreachable!()
            }
        }
        let run = Simulator::new(&g).run(|_| Never).unwrap();
        assert_eq!(run.rounds, 0);
        assert!(run.outputs.is_empty());
    }

    #[test]
    fn routing_table_is_an_involution() {
        let g = ports::shuffled_ports(&generators::petersen(), 9).unwrap();
        let sim = Simulator::new(&g);
        let route = sim.routing_table();
        assert_eq!(route.len(), g.port_count());
        for (s, &t) in route.iter().enumerate() {
            assert_eq!(route[t as usize] as usize, s, "route is its own inverse");
        }
        // Spot-check against the graph's involution.
        for v in g.nodes() {
            for p in g.ports(v) {
                let e = pn_graph::Endpoint::new(v, p);
                assert_eq!(
                    route[g.slot_of(e)] as usize,
                    g.slot_of(g.connection(e)),
                    "route agrees with connection() at {e}"
                );
            }
        }
    }

    #[test]
    fn native_send_into_may_leave_slots_empty() {
        // A node that only ever talks on its first port; the second port
        // delivers nothing, which the receiver observes as `None`.
        struct FirstPortOnly {
            got: Vec<bool>,
        }
        impl NodeAlgorithm for FirstPortOnly {
            type Message = u8;
            type Output = Vec<bool>;
            fn send(&mut self, _round: usize) -> Vec<u8> {
                // Silent ports have no representation in the legacy Vec
                // API (and `collect_send` would rightly panic), so this
                // protocol offers `send_into` only.
                unimplemented!("FirstPortOnly uses silent ports; only send_into is supported")
            }
            fn send_into(
                &mut self,
                _round: usize,
                outbox: &mut [Option<u8>],
            ) -> Result<(), crate::WrongCount> {
                if let Some(first) = outbox.first_mut() {
                    *first = Some(1);
                }
                Ok(())
            }
            fn receive(&mut self, _round: usize, inbox: &[Option<u8>]) -> Option<Vec<bool>> {
                self.got = inbox.iter().map(Option::is_some).collect();
                Some(self.got.clone())
            }
        }
        // Path a - b - c: the middle node hears only from the neighbour
        // whose port 1 points at it.
        let g = ports::canonical_ports(&generators::path(3).unwrap()).unwrap();
        let run = Simulator::new(&g)
            .run(|_| FirstPortOnly { got: Vec::new() })
            .unwrap();
        // Every delivered message was counted; silent ports were not.
        assert_eq!(
            run.messages,
            run.outputs.iter().flatten().filter(|&&b| b).count()
        );
    }
}

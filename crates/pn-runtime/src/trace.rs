//! Execution traces: a record of every message delivery and halt event.
//!
//! Traces make the synchronous executions inspectable — which message
//! crossed which link in which round — without changing algorithm
//! behaviour. Messages are stored in their `Debug` rendering so the trace
//! type is independent of the algorithm's message type.

use pn_graph::{Endpoint, NodeId};

/// One message delivery: sent from `from` in round `round`, received at
/// `to` in the same round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageEvent {
    /// 0-based round index.
    pub round: usize,
    /// Sending endpoint.
    pub from: Endpoint,
    /// Receiving endpoint (`p(from)`).
    pub to: Endpoint,
    /// `Debug` rendering of the message.
    pub message: String,
}

/// One halt event: the node announced its output at the end of `round`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HaltEvent {
    /// 0-based round index in which the node halted.
    pub round: usize,
    /// The halting node.
    pub node: NodeId,
    /// `Debug` rendering of the output.
    pub output: String,
}

/// A complete execution transcript.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// All message deliveries, in round order (and node/port order within
    /// a round).
    pub messages: Vec<MessageEvent>,
    /// All halt events, in round order.
    pub halts: Vec<HaltEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The messages of one round.
    pub fn round_messages(&self, round: usize) -> impl Iterator<Item = &MessageEvent> + '_ {
        self.messages.iter().filter(move |m| m.round == round)
    }

    /// The messages sent by one node (any round).
    pub fn sent_by(&self, node: NodeId) -> impl Iterator<Item = &MessageEvent> + '_ {
        self.messages.iter().filter(move |m| m.from.node == node)
    }

    /// The messages received by one node (any round).
    pub fn received_by(&self, node: NodeId) -> impl Iterator<Item = &MessageEvent> + '_ {
        self.messages.iter().filter(move |m| m.to.node == node)
    }

    /// Total number of recorded message deliveries.
    pub fn message_count(&self) -> usize {
        self.messages.len()
    }

    /// Renders the transcript as readable text, one line per event.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let max_round = self
            .messages
            .iter()
            .map(|m| m.round)
            .chain(self.halts.iter().map(|h| h.round))
            .max();
        let Some(max_round) = max_round else {
            return "(empty trace)\n".to_owned();
        };
        for r in 0..=max_round {
            let _ = writeln!(out, "round {r}:");
            for m in self.round_messages(r) {
                let _ = writeln!(out, "  {} -> {}: {}", m.from, m.to, m.message);
            }
            for h in self.halts.iter().filter(|h| h.round == r) {
                let _ = writeln!(out, "  halt {:?}: {}", h.node, h.output);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pn_graph::Port;

    fn ev(round: usize, from: usize, to: usize) -> MessageEvent {
        MessageEvent {
            round,
            from: Endpoint::new(NodeId::new(from), Port::new(1)),
            to: Endpoint::new(NodeId::new(to), Port::new(1)),
            message: "m".to_owned(),
        }
    }

    #[test]
    fn filters_by_round_and_node() {
        let t = Trace {
            messages: vec![ev(0, 0, 1), ev(0, 1, 0), ev(1, 0, 1)],
            halts: vec![HaltEvent {
                round: 1,
                node: NodeId::new(1),
                output: "done".to_owned(),
            }],
        };
        assert_eq!(t.round_messages(0).count(), 2);
        assert_eq!(t.round_messages(1).count(), 1);
        assert_eq!(t.sent_by(NodeId::new(0)).count(), 2);
        assert_eq!(t.received_by(NodeId::new(0)).count(), 1);
        assert_eq!(t.message_count(), 3);
    }

    #[test]
    fn renders_readably() {
        let t = Trace {
            messages: vec![ev(0, 0, 1)],
            halts: vec![HaltEvent {
                round: 0,
                node: NodeId::new(0),
                output: "x".to_owned(),
            }],
        };
        let s = t.render();
        assert!(s.contains("round 0:"));
        assert!(s.contains("halt n0: x"));
        assert_eq!(Trace::new().render(), "(empty trace)\n");
    }
}

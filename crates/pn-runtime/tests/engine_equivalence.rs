//! Property tests: the three executions of one algorithm — native
//! `send_into`, the legacy allocating `send` path, and the parallel
//! driver — produce **bit-identical** [`pn_runtime::Run`]s.
//!
//! The inputs deliberately cover the awkward corners of the model:
//! shuffled port numberings, half-loops (fixed points of the involution),
//! link-loops (a node wired to itself through two ports), parallel
//! edges, and staggered halting (low-degree nodes fall silent while
//! high-degree neighbours keep running and observe `None`s).

use pn_graph::{generators, ports, Endpoint, PnGraphBuilder, Port, PortNumberedGraph};
use pn_runtime::{collect_send, NodeAlgorithm, Run, Simulator, WrongCount};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// The workhorse protocol: gossips a mixing hash of everything heard,
/// treats `None`s as distinct observations, and halts after `degree + 2`
/// rounds — so halting is staggered by degree and late rounds exercise
/// the frontier with silent neighbours.
#[derive(Clone)]
struct Churn {
    degree: usize,
    acc: u64,
    round_count: usize,
}

impl Churn {
    fn new(degree: usize) -> Self {
        Churn {
            degree,
            acc: degree as u64 ^ 0x9e37_79b9,
            round_count: 0,
        }
    }
}

impl NodeAlgorithm for Churn {
    type Message = u64;
    type Output = u64;

    fn send(&mut self, round: usize) -> Vec<u64> {
        collect_send(self, round, self.degree)
    }

    fn send_into(&mut self, round: usize, outbox: &mut [Option<u64>]) -> Result<(), WrongCount> {
        for (q, slot) in outbox.iter_mut().enumerate() {
            *slot = Some(self.acc.wrapping_add((round * 31 + q) as u64));
        }
        Ok(())
    }

    fn receive(&mut self, _round: usize, inbox: &[Option<u64>]) -> Option<u64> {
        for (q, m) in inbox.iter().enumerate() {
            match m {
                Some(x) => self.acc = self.acc.rotate_left(9) ^ x,
                None => self.acc = self.acc.wrapping_mul(37).wrapping_add(q as u64),
            }
        }
        self.round_count += 1;
        (self.round_count > self.degree + 1).then_some(self.acc)
    }
}

/// Forces the legacy engine path: delegates `send` to the inner
/// algorithm and does **not** override `send_into`, so the simulator
/// takes the default Vec-allocating delegation with its count check.
#[derive(Clone)]
struct LegacyPath<A>(A);

impl<A: NodeAlgorithm> NodeAlgorithm for LegacyPath<A> {
    type Message = A::Message;
    type Output = A::Output;

    fn send(&mut self, round: usize) -> Vec<A::Message> {
        self.0.send(round)
    }

    fn receive(&mut self, round: usize, inbox: &[Option<A::Message>]) -> Option<A::Output> {
        self.0.receive(round, inbox)
    }
}

fn assert_identical<O: PartialEq + std::fmt::Debug>(a: &Run<O>, b: &Run<O>, what: &str) {
    assert_eq!(a.outputs, b.outputs, "{what}: outputs differ");
    assert_eq!(a.halted_at, b.halted_at, "{what}: halted_at differs");
    assert_eq!(a.rounds, b.rounds, "{what}: rounds differ");
    assert_eq!(a.messages, b.messages, "{what}: messages differ");
}

fn check_all_paths(pg: &PortNumberedGraph) {
    let sim = Simulator::new(pg);
    let native = sim.run(Churn::new).unwrap();
    let legacy = sim.run(|d| LegacyPath(Churn::new(d))).unwrap();
    assert_identical(&native, &legacy, "send_into vs legacy send");
    for threads in [1usize, 3, 7] {
        let par = sim.run_parallel(Churn::new, threads).unwrap();
        assert_identical(&native, &par, &format!("sequential vs parallel({threads})"));
    }
}

/// A seeded multigraph with half-loops: random stubs paired up, with
/// leftovers and a seed-dependent share of pairs turned into fixed
/// points of the involution.
fn loopy_multigraph(n: usize, seed: u64) -> PortNumberedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = PnGraphBuilder::new();
    let mut stubs: Vec<Endpoint> = Vec::new();
    for _ in 0..n {
        let d = rng.gen_range(1usize..=4);
        let node = b.add_node(d);
        for p in 0..d {
            stubs.push(Endpoint::new(node, Port::from_index(p)));
        }
    }
    stubs.shuffle(&mut rng);
    while stubs.len() >= 2 {
        let a = stubs.pop().unwrap();
        if rng.gen_bool(0.2) {
            // A half-loop: the message comes straight back.
            b.fix_point(a).unwrap();
            continue;
        }
        let c = stubs.pop().unwrap();
        b.connect(a, c).unwrap();
    }
    if let Some(last) = stubs.pop() {
        b.fix_point(last).unwrap();
    }
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random simple graphs under shuffled port numberings.
    #[test]
    fn engines_agree_on_gnp(n in 2usize..32, p in 0.05f64..0.7, gseed in 0u64..500, pseed in 0u64..500) {
        let g = generators::gnp(n, p, gseed).unwrap();
        let pg = ports::shuffled_ports(&g, pseed).unwrap();
        check_all_paths(&pg);
    }

    /// Random regular graphs under shuffled port numberings.
    #[test]
    fn engines_agree_on_regular(n0 in 4usize..24, d in 1usize..6, gseed in 0u64..500, pseed in 0u64..500) {
        let d = d.min(n0 - 1);
        let n = if (n0 * d) % 2 == 1 { n0 + 1 } else { n0 };
        let g = generators::random_regular(n, d, gseed).unwrap();
        let pg = ports::shuffled_ports(&g, pseed).unwrap();
        check_all_paths(&pg);
    }

    /// Multigraphs with half-loops, link-loops and parallel edges.
    #[test]
    fn engines_agree_on_loopy_multigraphs(n in 1usize..24, seed in 0u64..10_000) {
        let pg = loopy_multigraph(n, seed);
        check_all_paths(&pg);
    }
}

#[test]
fn engines_agree_on_petersen_covering() {
    // The Petersen graph and a cyclic 3-lift of it (a covering graph):
    // staple workloads of the paper's lower-bound machinery.
    let pg = ports::shuffled_ports(&generators::petersen(), 11).unwrap();
    check_all_paths(&pg);
    let (lift, _) = pn_graph::covering::cyclic_lift(&pg, 3);
    check_all_paths(&lift);
}

#[test]
fn frontier_skips_halted_nodes_without_changing_results() {
    // A star: the hub (degree 12) outlives every leaf by many rounds; the
    // frontier shrinks to a single node for most of the execution.
    let g = ports::canonical_ports(&generators::star(12).unwrap()).unwrap();
    check_all_paths(&g);
    let run = Simulator::new(&g).run(Churn::new).unwrap();
    // Leaves (degree 1) halt after round 3; the hub needs 14 rounds.
    assert_eq!(run.rounds, 14);
    assert_eq!(run.halted_at.iter().filter(|&&r| r == 3).count(), 12);
}

#[test]
fn engines_agree_on_edgeless_graphs() {
    let g = ports::canonical_ports(&pn_graph::SimpleGraph::new(5)).unwrap();
    check_all_paths(&g);
}

// ---- Pool-engine edge cases: each asserted against the sequential
// `Run`, covering the corners of the chunk layout and the round loop. ----

#[test]
fn pool_with_more_threads_than_nodes() {
    // The pool clamps to one worker per node; the surplus spawns nothing
    // and empty tail chunks must neither panic nor change results.
    for n in [1usize, 2, 3, 5] {
        let g = ports::canonical_ports(&generators::path(n).unwrap()).unwrap();
        let sim = Simulator::new(&g);
        let seq = sim.run(Churn::new).unwrap();
        for threads in [n + 1, 2 * n + 3, 64] {
            let par = sim.run_parallel(Churn::new, threads).unwrap();
            assert_identical(&seq, &par, &format!("n = {n}, threads = {threads}"));
        }
    }
}

#[test]
fn pool_with_one_thread_is_bit_identical_to_run() {
    // threads == 1 takes the sequential engine verbatim — including the
    // trace, which the multi-worker pool does not produce.
    let g = ports::shuffled_ports(&generators::gnp(24, 0.2, 3).unwrap(), 4).unwrap();
    let sim = Simulator::new(&g);
    let seq = sim.run(Churn::new).unwrap();
    let par = sim.run_parallel(Churn::new, 1).unwrap();
    assert_identical(&seq, &par, "threads = 1");
    assert!(par.trace.is_none(), "no trace was requested");
    let sim = Simulator::with_options(
        &g,
        pn_runtime::RunOptions {
            record_trace: true,
            ..pn_runtime::RunOptions::default()
        },
    );
    let traced = sim.run_parallel(Churn::new, 1).unwrap();
    assert!(
        traced.trace.is_some(),
        "the single-worker pool honours record_trace like run()"
    );
}

#[test]
fn pool_when_every_node_halts_in_round_zero() {
    // One round, then global quiescence: the termination agreement must
    // fire on the very first barrier epoch.
    struct OneShot {
        degree: usize,
    }
    impl NodeAlgorithm for OneShot {
        type Message = u8;
        type Output = usize;
        fn send(&mut self, _r: usize) -> Vec<u8> {
            vec![7; self.degree]
        }
        fn receive(&mut self, _r: usize, inbox: &[Option<u8>]) -> Option<usize> {
            Some(inbox.iter().flatten().count())
        }
    }
    let g = ports::shuffled_ports(&generators::torus(5, 5).unwrap(), 9).unwrap();
    let sim = Simulator::new(&g);
    let seq = sim.run(|d: usize| OneShot { degree: d }).unwrap();
    assert_eq!(seq.rounds, 1);
    for threads in [2usize, 3, 8] {
        let par = sim
            .run_parallel(|d: usize| OneShot { degree: d }, threads)
            .unwrap();
        assert_eq!(par.outputs, seq.outputs, "threads = {threads}");
        assert_eq!(par.halted_at, seq.halted_at, "threads = {threads}");
        assert_eq!(par.rounds, 1, "threads = {threads}");
        assert_eq!(par.messages, seq.messages, "threads = {threads}");
    }
}

#[test]
fn pool_with_isolated_nodes() {
    // A degree-0 node has an empty port window: it must still run its
    // receive schedule (observing an empty inbox) and halt on time.
    let mut g = pn_graph::SimpleGraph::new(7);
    // Nodes 0-2 a triangle, node 3 isolated, nodes 4-5 an edge, node 6
    // isolated — isolated nodes in the middle and at the chunk tail.
    g.add_edge_ids(0, 1).unwrap();
    g.add_edge_ids(1, 2).unwrap();
    g.add_edge_ids(2, 0).unwrap();
    g.add_edge_ids(4, 5).unwrap();
    let pg = ports::canonical_ports(&g).unwrap();
    let sim = Simulator::new(&pg);
    let seq = sim.run(Churn::new).unwrap();
    // Churn halts after degree + 2 rounds: isolated nodes after 2.
    assert_eq!(seq.halted_at[3], 2);
    assert_eq!(seq.halted_at[6], 2);
    for threads in [2usize, 3, 7, 20] {
        let par = sim.run_parallel(Churn::new, threads).unwrap();
        assert_identical(&seq, &par, &format!("threads = {threads}"));
    }
}

//! Error-path and edge-case tests for the round engine: misbehaving
//! senders, message delivery to halted nodes, and zero-round runs —
//! the contracts the quality sweeps rely on when something goes wrong.

use pn_graph::{generators, ports, NodeId, PnGraphBuilder, Port};
use pn_runtime::{NodeAlgorithm, RunOptions, RuntimeError, Simulator, WrongCount};

/// Sends a fixed number of messages regardless of degree (legacy `send`
/// path).
struct FixedCountSender {
    count: usize,
}

impl NodeAlgorithm for FixedCountSender {
    type Message = u8;
    type Output = ();

    fn send(&mut self, _round: usize) -> Vec<u8> {
        vec![7; self.count]
    }

    fn receive(&mut self, _round: usize, _inbox: &[Option<u8>]) -> Option<()> {
        Some(())
    }
}

#[test]
fn legacy_send_with_too_few_messages_reports_the_node_and_counts() {
    // Star: hub has degree 3, leaves degree 1. Sending one message
    // everywhere breaks only at the hub.
    let g = ports::canonical_ports(&generators::star(3).unwrap()).unwrap();
    let err = Simulator::new(&g)
        .run(|_| FixedCountSender { count: 1 })
        .unwrap_err();
    match err {
        RuntimeError::WrongMessageCount {
            node,
            got,
            expected,
        } => {
            assert_eq!(node, NodeId::new(0), "the hub is node 0");
            assert_eq!(got, 1);
            assert_eq!(expected, 3);
        }
        other => panic!("expected WrongMessageCount, got {other}"),
    }
}

#[test]
fn legacy_send_with_too_many_messages_is_rejected() {
    let g = ports::canonical_ports(&generators::cycle(4).unwrap()).unwrap();
    let err = Simulator::new(&g)
        .run(|_| FixedCountSender { count: 5 })
        .unwrap_err();
    assert!(
        matches!(
            err,
            RuntimeError::WrongMessageCount {
                got: 5,
                expected: 2,
                ..
            }
        ),
        "got {err}"
    );
}

/// A native `send_into` that *reports* a wrong count instead of filling
/// the window — the engine must surface it as `WrongMessageCount`.
struct LyingNative;

impl NodeAlgorithm for LyingNative {
    type Message = u8;
    type Output = ();

    fn send(&mut self, _round: usize) -> Vec<u8> {
        unreachable!("simulator only calls send_into")
    }

    fn send_into(&mut self, _round: usize, _outbox: &mut [Option<u8>]) -> Result<(), WrongCount> {
        Err(WrongCount { got: 99 })
    }

    fn receive(&mut self, _round: usize, _inbox: &[Option<u8>]) -> Option<()> {
        Some(())
    }
}

#[test]
fn native_send_into_error_maps_to_wrong_message_count() {
    let g = ports::canonical_ports(&generators::path(3).unwrap()).unwrap();
    let err = Simulator::new(&g).run(|_| LyingNative).unwrap_err();
    match err {
        RuntimeError::WrongMessageCount { node, got, .. } => {
            assert_eq!(node, NodeId::new(0), "first frontier node fails first");
            assert_eq!(got, 99);
        }
        other => panic!("expected WrongMessageCount, got {other}"),
    }
}

/// Halts after a per-node number of rounds, recording everything heard.
struct TalkUntil {
    degree: usize,
    rounds_left: usize,
    heard: Vec<Vec<Option<u64>>>,
}

impl NodeAlgorithm for TalkUntil {
    type Message = u64;
    type Output = Vec<Vec<Option<u64>>>;

    fn send(&mut self, round: usize) -> Vec<u64> {
        vec![round as u64 + 10; self.degree]
    }

    fn receive(&mut self, _round: usize, inbox: &[Option<u64>]) -> Option<Self::Output> {
        self.heard.push(inbox.to_vec());
        self.rounds_left -= 1;
        (self.rounds_left == 0).then(|| self.heard.clone())
    }
}

#[test]
fn messages_to_halted_nodes_are_counted_but_never_resurface() {
    // Path a - b - c. Endpoints halt after round 1; the middle keeps
    // sending into their (halted) windows for two more rounds.
    let g = ports::canonical_ports(&generators::path(3).unwrap()).unwrap();
    let lifetime = |d: usize| if d == 1 { 1 } else { 3 };
    let run = Simulator::new(&g)
        .run(|d| TalkUntil {
            degree: d,
            rounds_left: lifetime(d),
            heard: Vec::new(),
        })
        .unwrap();
    assert_eq!(run.halted_at, vec![1, 3, 1]);
    // Round 1: all 4 port messages. Rounds 2 and 3: only the middle
    // node's 2 ports — delivered into halted windows, still counted.
    assert_eq!(run.messages, 4 + 2 + 2);
    // The middle node hears real messages in round 1 and `None` from
    // the halted endpoints afterwards.
    let middle = &run.outputs[1];
    assert_eq!(middle.len(), 3);
    assert_eq!(middle[0], vec![Some(10), Some(10)]);
    assert_eq!(middle[1], vec![None, None]);
    assert_eq!(middle[2], vec![None, None]);
    // The endpoints' recorded history is untouched by the posthumous
    // deliveries: exactly one round each.
    assert_eq!(run.outputs[0].len(), 1);
    assert_eq!(run.outputs[2].len(), 1);
}

#[test]
fn message_delivered_in_the_halting_round_does_not_leak() {
    // Both nodes of an edge halt in round 1 while messages are in
    // flight; the run completes cleanly with both messages delivered.
    let g = ports::canonical_ports(&generators::path(2).unwrap()).unwrap();
    let run = Simulator::new(&g)
        .run(|d| TalkUntil {
            degree: d,
            rounds_left: 1,
            heard: Vec::new(),
        })
        .unwrap();
    assert_eq!(run.rounds, 1);
    assert_eq!(run.messages, 2);
    assert_eq!(run.outputs[0], vec![vec![Some(10)]]);
    assert_eq!(run.outputs[1], vec![vec![Some(10)]]);
}

#[test]
fn zero_round_limit_fails_immediately_on_nonempty_graphs() {
    let g = ports::canonical_ports(&generators::cycle(5).unwrap()).unwrap();
    let sim = Simulator::with_options(
        &g,
        RunOptions {
            max_rounds: 0,
            ..RunOptions::default()
        },
    );
    let err = sim
        .run(|d| TalkUntil {
            degree: d,
            rounds_left: 1,
            heard: Vec::new(),
        })
        .unwrap_err();
    match err {
        RuntimeError::RoundLimitExceeded {
            limit,
            still_running,
        } => {
            assert_eq!(limit, 0);
            assert_eq!(still_running, 5, "no node ever ran");
        }
        other => panic!("expected RoundLimitExceeded, got {other}"),
    }
}

#[test]
fn zero_round_limit_is_fine_on_the_empty_graph() {
    // An empty graph needs zero rounds, so a zero budget suffices.
    let g = pn_graph::PortNumberedGraph::from_involution(vec![], vec![]).unwrap();
    let sim = Simulator::with_options(
        &g,
        RunOptions {
            max_rounds: 0,
            ..RunOptions::default()
        },
    );
    let run = sim
        .run(|d| TalkUntil {
            degree: d,
            rounds_left: 1,
            heard: Vec::new(),
        })
        .unwrap();
    assert_eq!(run.rounds, 0);
    assert_eq!(run.messages, 0);
    assert!(run.outputs.is_empty());
}

#[test]
#[should_panic(expected = "one input per node")]
fn run_with_inputs_rejects_wrong_input_length() {
    let g = ports::canonical_ports(&generators::path(3).unwrap()).unwrap();
    let inputs = vec![1u64, 2]; // three nodes, two inputs
    let _ = Simulator::new(&g).run_with_inputs(&inputs, |d, &x| TalkUntil {
        degree: d,
        rounds_left: (x as usize).max(1),
        heard: Vec::new(),
    });
}

#[test]
fn half_loop_sender_error_still_reported() {
    // A one-node graph with a directed loop: the misbehaving sender is
    // caught even on degenerate wiring.
    let mut b = PnGraphBuilder::new();
    let x = b.add_node(1);
    b.fix_point(pn_graph::Endpoint::new(x, Port::new(1)))
        .unwrap();
    let g = b.finish().unwrap();
    let err = Simulator::new(&g)
        .run(|_| FixedCountSender { count: 4 })
        .unwrap_err();
    assert!(matches!(
        err,
        RuntimeError::WrongMessageCount {
            got: 4,
            expected: 1,
            ..
        }
    ));
}

/// A node that never halts: the substrate for cancellation tests.
struct Chatter {
    degree: usize,
}

impl NodeAlgorithm for Chatter {
    type Message = u8;
    type Output = ();
    fn send(&mut self, _round: usize) -> Vec<u8> {
        vec![0; self.degree]
    }
    fn receive(&mut self, _round: usize, _inbox: &[Option<u8>]) -> Option<()> {
        None
    }
}

#[test]
fn pre_cancelled_token_aborts_before_the_first_round() {
    let g = ports::canonical_ports(&generators::cycle(5).unwrap()).unwrap();
    let token = pn_runtime::CancelToken::new();
    token.cancel();
    let err = Simulator::new(&g)
        .cancel_token(token)
        .run(|d| Chatter { degree: d })
        .unwrap_err();
    match err {
        RuntimeError::Cancelled {
            after_rounds,
            still_running,
        } => {
            assert_eq!(after_rounds, 0);
            assert_eq!(still_running, 5);
        }
        other => panic!("expected Cancelled, got {other}"),
    }
}

#[test]
fn expired_deadline_cancels_mid_run_on_both_engines() {
    use std::time::{Duration, Instant};

    let g = ports::canonical_ports(&generators::cycle(8).unwrap()).unwrap();
    for threads in [1usize, 3] {
        let token =
            pn_runtime::CancelToken::with_deadline(Instant::now() + Duration::from_millis(5));
        let sim = Simulator::new(&g).cancel_token(token);
        let result = if threads > 1 {
            sim.run_parallel(|d: usize| Chatter { degree: d }, threads)
        } else {
            sim.run(|d| Chatter { degree: d })
        };
        match result.unwrap_err() {
            RuntimeError::Cancelled { still_running, .. } => {
                assert_eq!(still_running, 8, "threads={threads}: nobody ever halts")
            }
            other => panic!("threads={threads}: expected Cancelled, got {other}"),
        }
    }
}

#[test]
fn uncancelled_token_changes_nothing() {
    let g = ports::canonical_ports(&generators::path(4).unwrap()).unwrap();
    let token = pn_runtime::CancelToken::new();
    let with = Simulator::new(&g)
        .cancel_token(token)
        .run(|d| TalkUntil {
            degree: d,
            rounds_left: 3,
            heard: Vec::new(),
        })
        .unwrap();
    let without = Simulator::new(&g)
        .run(|d| TalkUntil {
            degree: d,
            rounds_left: 3,
            heard: Vec::new(),
        })
        .unwrap();
    assert_eq!(with.outputs, without.outputs);
    assert_eq!(with.rounds, without.rounds);
    assert_eq!(with.messages, without.messages);
}

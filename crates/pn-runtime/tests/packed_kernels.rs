//! Property tests for the bit-packed execution tier: the packed bridge
//! ([`Simulator::run_packed`], sequential and chunked-parallel) and the
//! native word kernels ([`Simulator::run_packed_kernel`]) must be
//! **bit-identical** to the generic engine on every graph the
//! eligibility rules admit.
//!
//! The inputs cover the packed layout's awkward corners: random
//! bounded-degree graphs under shuffled port numberings, staggered
//! halting (the frontier compacts while word lanes of halted nodes go
//! quiet), node counts that are not multiples of the 64-bit word
//! capacity (partial tail words), degree-0 nodes (empty lane windows),
//! and half-loop multigraphs (lanes routed back to their own word).
//! Because every node's output hashes its full inbox history — port by
//! port, `None`s included — a single mis-gathered lane anywhere in the
//! run changes the asserted `Run`.

use pn_graph::{generators, ports, Endpoint, PnGraphBuilder, Port, PortNumberedGraph};
use pn_runtime::{
    collect_send, kernel_reference_run, lane_width_for, NodeAlgorithm, OrGossipKernel,
    PackedMessage, Run, Simulator, WrongCount,
};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A three-code message alphabet (2 coding bits rounded up to a 4-bit
/// lane): wide enough to catch lane-extraction bugs a bool would mask,
/// small enough to pack on every bounded-degree graph below.
#[derive(Clone, Debug, PartialEq)]
enum Tri {
    A,
    B(bool),
}

impl PackedMessage for Tri {
    fn lane_bits(_max_degree: usize) -> Option<u32> {
        lane_width_for(3)
    }

    fn encode(&self, _max_degree: usize) -> u64 {
        match self {
            Tri::A => 1,
            Tri::B(false) => 2,
            Tri::B(true) => 3,
        }
    }

    fn decode(code: u64, _max_degree: usize) -> Option<Self> {
        match code {
            1 => Some(Tri::A),
            2 => Some(Tri::B(false)),
            3 => Some(Tri::B(true)),
            _ => None,
        }
    }
}

/// The workhorse protocol: sends a per-port [`Tri`] derived from an
/// accumulator, hashes every received `(port, Option<Tri>)` pair into
/// the accumulator — so the output pins the whole route history — and
/// halts after `degree + 2` rounds: halting staggers by degree and the
/// frontier compacts while high-degree nodes keep observing the `None`s
/// of silent neighbours.
#[derive(Clone)]
struct StaggerTri {
    degree: usize,
    acc: u64,
    round_count: usize,
}

impl StaggerTri {
    fn new(degree: usize) -> Self {
        StaggerTri {
            degree,
            acc: (degree as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
            round_count: 0,
        }
    }
}

impl NodeAlgorithm for StaggerTri {
    type Message = Tri;
    type Output = u64;

    fn send(&mut self, round: usize) -> Vec<Tri> {
        collect_send(self, round, self.degree)
    }

    fn send_into(&mut self, _round: usize, outbox: &mut [Option<Tri>]) -> Result<(), WrongCount> {
        for (q, slot) in outbox.iter_mut().enumerate() {
            *slot = Some(match (self.acc >> (q % 60)) & 3 {
                0 => Tri::A,
                1 => Tri::B(false),
                _ => Tri::B(true),
            });
        }
        Ok(())
    }

    fn receive(&mut self, _round: usize, inbox: &[Option<Tri>]) -> Option<u64> {
        for (q, m) in inbox.iter().enumerate() {
            let code = match m {
                None => 0u64,
                Some(t) => t.encode(self.degree),
            };
            self.acc = self
                .acc
                .rotate_left(7)
                .wrapping_mul(31)
                .wrapping_add(code ^ (q as u64) << 8);
        }
        self.round_count += 1;
        (self.round_count > self.degree + 1).then_some(self.acc)
    }
}

fn assert_identical<O: PartialEq + std::fmt::Debug>(a: &Run<O>, b: &Run<O>, what: &str) {
    assert_eq!(a.outputs, b.outputs, "{what}: outputs differ");
    assert_eq!(a.halted_at, b.halted_at, "{what}: halted_at differs");
    assert_eq!(a.rounds, b.rounds, "{what}: rounds differ");
    assert_eq!(a.messages, b.messages, "{what}: messages differ");
}

/// Generic engine vs packed bridge (sequential and chunked-parallel).
fn check_bridge(pg: &PortNumberedGraph) {
    let sim = Simulator::new(pg);
    assert!(sim.packed_eligible::<Tri>(), "Tri packs on bounded degree");
    let generic = sim.run(StaggerTri::new).unwrap();
    let packed = sim.run_packed(StaggerTri::new).unwrap();
    assert_identical(&generic, &packed, "generic vs packed bridge");
    for threads in [2usize, 5] {
        let par = sim.run_packed_parallel(StaggerTri::new, threads).unwrap();
        assert_identical(
            &generic,
            &par,
            &format!("generic vs packed parallel({threads})"),
        );
    }
}

/// Word kernel vs its scalar twin on the generic engine.
fn check_kernel(pg: &PortNumberedGraph, rounds: usize) {
    let sim = Simulator::new(pg);
    let kernel = OrGossipKernel { rounds };
    let fast = sim.run_packed_kernel(&kernel).unwrap();
    let slow = kernel_reference_run(&sim, &kernel).unwrap();
    assert_identical(&fast, &slow, "word kernel vs scalar twin");
}

/// A seeded bounded-degree multigraph with half-loops: random stubs
/// paired up, a seed-dependent share turned into fixed points of the
/// involution (messages routed straight back into the sender's word).
fn loopy_multigraph(n: usize, seed: u64) -> PortNumberedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = PnGraphBuilder::new();
    let mut stubs: Vec<Endpoint> = Vec::new();
    for _ in 0..n {
        let d = rng.gen_range(1usize..=4);
        let node = b.add_node(d);
        for p in 0..d {
            stubs.push(Endpoint::new(node, Port::from_index(p)));
        }
    }
    stubs.shuffle(&mut rng);
    while stubs.len() >= 2 {
        let a = stubs.pop().unwrap();
        if rng.gen_bool(0.2) {
            b.fix_point(a).unwrap();
            continue;
        }
        let c = stubs.pop().unwrap();
        b.connect(a, c).unwrap();
    }
    if let Some(last) = stubs.pop() {
        b.fix_point(last).unwrap();
    }
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random bounded-degree simple graphs, shuffled ports, node counts
    /// straddling the 64-bit word capacity (partial tail words at
    /// `n % 64 != 0` and `port_count % 16 != 0`).
    #[test]
    fn bridge_matches_generic_on_gnp(n in 50usize..130, p in 0.02f64..0.12, gseed in 0u64..500, pseed in 0u64..500) {
        let g = generators::gnp(n, p, gseed).unwrap();
        let pg = ports::shuffled_ports(&g, pseed).unwrap();
        check_bridge(&pg);
    }

    /// Half-loop multigraphs: lanes gathered from the sender's own
    /// word, plus parallel edges and link-loops.
    #[test]
    fn bridge_matches_generic_on_loopy_multigraphs(n in 1usize..90, seed in 0u64..10_000) {
        let pg = loopy_multigraph(n, seed);
        check_bridge(&pg);
    }

    /// Word kernels on random regular graphs: even degrees take the
    /// SWAR ladder path (power-of-two windows), odd degrees the
    /// per-lane path — both against the scalar twin.
    #[test]
    fn kernel_matches_scalar_twin_on_regular(n0 in 60usize..130, d in 2usize..5, gseed in 0u64..500, pseed in 0u64..500, rounds in 1usize..6) {
        let n = if (n0 * d) % 2 == 1 { n0 + 1 } else { n0 };
        let g = generators::random_regular(n, d, gseed).unwrap();
        let pg = ports::shuffled_ports(&g, pseed).unwrap();
        check_kernel(&pg, rounds);
    }
}

#[test]
fn bridge_handles_degree_zero_nodes() {
    // Isolated nodes have empty lane windows in the packed layout; they
    // must still run their receive schedule and halt on time, in the
    // middle of a word and at the tail.
    let mut g = pn_graph::SimpleGraph::new(7);
    g.add_edge_ids(0, 1).unwrap();
    g.add_edge_ids(1, 2).unwrap();
    g.add_edge_ids(2, 0).unwrap();
    g.add_edge_ids(4, 5).unwrap();
    let pg = ports::canonical_ports(&g).unwrap();
    check_bridge(&pg);
    let run = Simulator::new(&pg).run_packed(StaggerTri::new).unwrap();
    // StaggerTri halts after degree + 2 rounds: isolated nodes after 2.
    assert_eq!(run.halted_at[3], 2);
    assert_eq!(run.halted_at[6], 2);
}

#[test]
fn bridge_handles_all_nodes_in_one_partial_word() {
    // n = 3 with 4-bit lanes: the entire graph lives in a fraction of
    // one word on both arenas.
    let pg = ports::canonical_ports(&generators::path(3).unwrap()).unwrap();
    check_bridge(&pg);
}

#[test]
fn kernel_handles_edgeless_regular_graphs() {
    // Degree 0 is regular: no lanes, no messages, outputs are the init
    // tokens and every node halts at the horizon.
    let pg = ports::canonical_ports(&pn_graph::SimpleGraph::new(5)).unwrap();
    let sim = Simulator::new(&pg);
    let kernel = OrGossipKernel { rounds: 3 };
    let fast = sim.run_packed_kernel(&kernel).unwrap();
    let slow = kernel_reference_run(&sim, &kernel).unwrap();
    assert_identical(&fast, &slow, "edgeless kernel vs twin");
    assert_eq!(fast.messages, 0);
    assert_eq!(fast.rounds, 3);
}

#[test]
fn kernel_handles_odd_tail_cycles() {
    // 257 = 4 * 64 + 1: one token in the fifth word; 67 exercises the
    // d = 2 SWAR path with a ragged final out word.
    for n in [67usize, 257] {
        let pg = ports::canonical_ports(&generators::cycle(n).unwrap()).unwrap();
        check_kernel(&pg, 5);
    }
}

#[test]
fn kernel_handles_half_loop_multigraphs() {
    // A 2-regular multigraph where some nodes are their own neighbour
    // through half-loops: build n nodes of degree 2, wire a seeded mix
    // of half-loops and a chain.
    let mut b = PnGraphBuilder::new();
    let mut stubs: Vec<Endpoint> = Vec::new();
    for _ in 0..70 {
        let node = b.add_node(2);
        stubs.push(Endpoint::new(node, Port::from_index(0)));
        stubs.push(Endpoint::new(node, Port::from_index(1)));
    }
    let mut rng = StdRng::seed_from_u64(42);
    stubs.shuffle(&mut rng);
    while stubs.len() >= 2 {
        let a = stubs.pop().unwrap();
        if rng.gen_bool(0.3) {
            b.fix_point(a).unwrap();
            continue;
        }
        let c = stubs.pop().unwrap();
        b.connect(a, c).unwrap();
    }
    if let Some(last) = stubs.pop() {
        b.fix_point(last).unwrap();
    }
    let pg = b.finish().unwrap();
    assert_eq!(pg.regular_degree(), Some(2));
    check_kernel(&pg, 4);
    check_bridge(&pg);
}

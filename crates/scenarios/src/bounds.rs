//! Additional [`BoundProvider`]s: certified LP lower bounds and the
//! cheap matching-only fallback.
//!
//! The default provider ([`crate::ExactBounds`]) runs the exact solvers
//! within budget and falls back to the folklore maximal-matching bounds
//! (`⌈|MM|/2⌉` for EDS, `|MM|` for VC) beyond them — bounds that can be
//! off by a factor of two. This module adds:
//!
//! * [`LpBounds`] — the same exact solvers within budget, but beyond
//!   them the **exact LP relaxation duals** from [`eds_lp`]: a
//!   fractional closed-edge-neighbourhood packing for EDS and a
//!   fractional matching for VC, solved in exact rational arithmetic
//!   and seeded from a maximal matching, so the bound is never looser
//!   than the folklore one. Every LP bound's [`DualCertificate`] is
//!   re-verified by the independent checker before the bound is used;
//!   a certificate that fails (a solver bug) is counted in
//!   [`LpBounds::infeasible_certificates`] and the record falls back
//!   to the folklore bound — CI gates on the counter staying zero.
//! * [`MmBounds`] — matching bounds only, no exact solver at all: the
//!   constant-cost provider for huge sweeps where even the LP budget
//!   check is unwanted.
//!
//! All providers keep the [`Bounds`] invariant: when `optimum` is
//! known, `lower_bound` equals it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use eds_baselines::{exact, two_approx};
use eds_lp::{dual_certificate, DualObjective, LpBudget};

use crate::scenario::Scenario;
use crate::session::{exact_min_vertex_cover, BoundProvider, Bounds};
use crate::sweep::SweepConfig;

/// Exact optima within the [`SweepConfig`] budgets; certified LP dual
/// bounds (with verified certificates) within the [`LpBudget`];
/// folklore matching bounds beyond both. See the [module docs](self).
///
/// Cloning is cheap and clones share the infeasible-certificate
/// counter, so a caller can keep a handle while the session owns the
/// provider:
///
/// ```
/// use eds_scenarios::{LpBounds, Registry, Session, VecSink};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lp = LpBounds::default();
/// let mut sink = VecSink::new();
/// Session::over(Registry::smoke()).bounds(lp.clone()).run(&mut sink)?;
/// assert_eq!(lp.infeasible_certificates(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct LpBounds {
    /// Budgets for the exact solvers (zeroed by
    /// [`LpBounds::without_exact`]).
    config: SweepConfig,
    /// Size budget for the exact-rational simplex.
    budget: LpBudget,
    /// Certificates that failed independent verification (a solver bug;
    /// the affected records fell back to the folklore bound).
    infeasible: Arc<AtomicUsize>,
}

impl LpBounds {
    /// A provider with explicit exact-solver and LP budgets.
    pub fn new(config: SweepConfig, budget: LpBudget) -> Self {
        LpBounds {
            config,
            budget,
            infeasible: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// LP bounds with the exact solvers disabled: every record gets a
    /// certificate-backed lower bound and no optimum. This is the
    /// configuration the acceptance gate measures against the folklore
    /// fallback.
    pub fn without_exact() -> Self {
        LpBounds::new(
            SweepConfig {
                exact_edge_limit: 0,
                exact_vc_node_limit: 0,
            },
            LpBudget::default(),
        )
    }

    /// Certificates that failed the independent feasibility check so
    /// far, across all clones of this provider. Always zero unless the
    /// simplex mis-solved — the `lp-bounds-smoke` CI job fails when it
    /// is not.
    pub fn infeasible_certificates(&self) -> usize {
        self.infeasible.load(Ordering::Relaxed)
    }

    /// The certified lower bound for `objective`: the verified LP dual
    /// bound within budget, the folklore matching bound otherwise.
    fn certified_lower(&self, scenario: &Scenario, objective: DualObjective) -> usize {
        let g = &scenario.simple;
        let cert = dual_certificate(g, objective, &self.budget);
        if cert.verify(g).is_ok() {
            return cert.bound;
        }
        self.infeasible.fetch_add(1, Ordering::Relaxed);
        mm_lower(g, objective)
    }
}

impl BoundProvider for LpBounds {
    fn eds_bounds(&self, scenario: &Scenario) -> Bounds {
        let optimum = (scenario.simple.edge_count() <= self.config.exact_edge_limit)
            .then(|| exact::minimum_eds_size(&scenario.simple));
        let lower_bound = optimum
            .unwrap_or_else(|| self.certified_lower(scenario, DualObjective::EdgeDomination));
        Bounds {
            optimum,
            lower_bound,
        }
    }

    fn vc_bounds(&self, scenario: &Scenario) -> Bounds {
        let optimum = (scenario.simple.node_count() <= self.config.exact_vc_node_limit)
            .then(|| exact_min_vertex_cover(scenario));
        let lower_bound =
            optimum.unwrap_or_else(|| self.certified_lower(scenario, DualObjective::VertexCover));
        Bounds {
            optimum,
            lower_bound,
        }
    }

    fn name(&self) -> &'static str {
        "lp"
    }
}

/// Folklore maximal-matching bounds only — no exact solver, no LP: the
/// constant-cost provider for huge sweeps. `optimum` is always `None`.
#[derive(Clone, Copy, Debug, Default)]
pub struct MmBounds;

/// The folklore matching lower bound for one objective.
fn mm_lower(g: &pn_graph::SimpleGraph, objective: DualObjective) -> usize {
    let mm = two_approx::two_approximation(g).len();
    match objective {
        DualObjective::EdgeDomination => mm.div_ceil(2),
        DualObjective::VertexCover => mm,
    }
}

impl BoundProvider for MmBounds {
    fn eds_bounds(&self, scenario: &Scenario) -> Bounds {
        Bounds {
            optimum: None,
            lower_bound: mm_lower(&scenario.simple, DualObjective::EdgeDomination),
        }
    }

    fn vc_bounds(&self, scenario: &Scenario) -> Bounds {
        Bounds {
            optimum: None,
            lower_bound: mm_lower(&scenario.simple, DualObjective::VertexCover),
        }
    }

    fn name(&self) -> &'static str {
        "mm"
    }
}

/// The provider selection behind the CLIs' `--bounds` flag — one parse
/// and one install path shared by `scenario_sweep` and `eds`, so adding
/// a provider cannot leave the two binaries disagreeing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BoundsMode {
    /// [`crate::ExactBounds`] (the session default).
    #[default]
    Exact,
    /// [`LpBounds`] with default budgets.
    Lp,
    /// [`MmBounds`].
    Mm,
}

impl BoundsMode {
    /// The accepted flag values, for usage strings.
    pub const NAMES: [&'static str; 3] = ["exact", "lp", "mm"];

    /// Parses a `--bounds` flag value.
    pub fn parse(mode: &str) -> Option<BoundsMode> {
        match mode {
            "exact" => Some(BoundsMode::Exact),
            "lp" => Some(BoundsMode::Lp),
            "mm" => Some(BoundsMode::Mm),
            _ => None,
        }
    }

    /// Installs the selected provider on a session. For [`BoundsMode::Lp`]
    /// the returned handle shares the provider's infeasible-certificate
    /// counter, so the caller can gate on it after the run.
    pub fn install(self, session: crate::Session) -> (crate::Session, Option<LpBounds>) {
        match self {
            BoundsMode::Exact => (session, None),
            BoundsMode::Lp => {
                let lp = LpBounds::default();
                (session.bounds(lp.clone()), Some(lp))
            }
            BoundsMode::Mm => (session.bounds(MmBounds), None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::scenario::{Family, PortPolicy, ScenarioSpec};
    use crate::session::Session;

    /// The acceptance gate for the LP subsystem: with the exact solver
    /// disabled, the LP lower bound dominates the folklore fallback on
    /// **every** smoke-registry record and is strictly tighter on at
    /// least a quarter of them, with zero infeasible certificates.
    #[test]
    fn smoke_lp_bounds_dominate_the_matching_fallback() {
        let lp = LpBounds::without_exact();
        let lp_records = Session::over(Registry::smoke())
            .bounds(lp.clone())
            .sequential()
            .collect()
            .unwrap();
        let mm_records = Session::over(Registry::smoke())
            .bounds(MmBounds)
            .sequential()
            .collect()
            .unwrap();
        assert_eq!(lp_records.len(), mm_records.len());
        assert!(!lp_records.is_empty());

        let mut tighter = 0usize;
        for (l, m) in lp_records.iter().zip(&mm_records) {
            assert_eq!(
                (l.scenario.as_str(), l.protocol),
                (m.scenario.as_str(), m.protocol)
            );
            assert_eq!(l.bounds, "lp");
            assert_eq!(m.bounds, "mm");
            assert_eq!(l.optimum, None, "exact solver is disabled");
            assert!(
                l.lower_bound >= m.lower_bound,
                "{}/{}: lp {} < folklore {}",
                l.scenario,
                l.protocol,
                l.lower_bound,
                m.lower_bound
            );
            if l.lower_bound > m.lower_bound {
                tighter += 1;
            }
        }
        assert!(
            4 * tighter >= lp_records.len(),
            "lp strictly tighter on only {tighter}/{} records",
            lp_records.len()
        );
        assert_eq!(lp.infeasible_certificates(), 0);
    }

    /// The sandwich against the exact optimum: an LP lower bound may
    /// never exceed it (weak duality made executable).
    #[test]
    fn lp_lower_bound_never_exceeds_the_exact_optimum() {
        for spec in Registry::smoke().iter() {
            let scenario = spec.build().unwrap();
            let lp = LpBounds::without_exact();
            let exact = crate::session::ExactBounds::default();
            for (lp_b, exact_b) in [
                (lp.eds_bounds(&scenario), exact.eds_bounds(&scenario)),
                (lp.vc_bounds(&scenario), exact.vc_bounds(&scenario)),
            ] {
                if let Some(opt) = exact_b.optimum {
                    assert!(
                        lp_b.lower_bound <= opt,
                        "{}: lp bound {} exceeds optimum {opt}",
                        scenario.name(),
                        lp_b.lower_bound
                    );
                }
            }
        }
    }

    #[test]
    fn lp_keeps_the_exact_optimum_within_budget() {
        let s = ScenarioSpec::new(Family::Petersen, 0, PortPolicy::Canonical)
            .build()
            .unwrap();
        let lp = LpBounds::default();
        let b = lp.eds_bounds(&s);
        assert_eq!(b.optimum, Some(3));
        assert_eq!(b.lower_bound, 3);
        let vc = lp.vc_bounds(&s);
        assert_eq!(vc.optimum, Some(6));
        assert_eq!(vc.lower_bound, 6);
    }

    #[test]
    fn clones_share_the_infeasible_counter() {
        let a = LpBounds::default();
        let b = a.clone();
        a.infeasible.fetch_add(2, Ordering::Relaxed);
        assert_eq!(b.infeasible_certificates(), 2);
    }

    #[test]
    fn mm_bounds_are_the_folklore_bounds() {
        let s = ScenarioSpec::new(Family::Cycle(9), 0, PortPolicy::Canonical)
            .build()
            .unwrap();
        let mm = two_approx::two_approximation(&s.simple).len();
        let b = MmBounds.eds_bounds(&s);
        assert_eq!(b.optimum, None);
        assert_eq!(b.lower_bound, mm.div_ceil(2));
        assert_eq!(MmBounds.vc_bounds(&s).lower_bound, mm);
    }
}
